//! ISP-style scenario: build relabeled routing tables (Theorem 4.5) for a
//! latency-weighted backbone + access network, then answer distance and
//! route queries from the labels — the "IP address contains routing
//! information" use case from the paper's introduction.
//!
//! Run with: `cargo run --release --example isp_latency`

use pde_repro::graphs::algo::{apsp, hop_diameter};
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::routing::{build_rtc, evaluate, PairSelection, RoutingScheme, RtcParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A dumbbell topology: two dense metro regions joined by a long-haul
    // path — exactly where hop diameter D matters.
    let mut rng = SmallRng::seed_from_u64(42);
    let g = gen::dumbbell(10, 8, Weights::Uniform { lo: 1, hi: 40 }, &mut rng);
    let n = g.len();
    println!(
        "network: {n} routers, {} links, hop diameter {}",
        g.num_edges(),
        hop_diameter(&g)
    );

    // Build the Theorem 4.5 scheme with k = 2 (stretch ≤ ~11).
    let params = RtcParams::new(2);
    let scheme = build_rtc(&g, &params);
    let m = &scheme.metrics;
    println!(
        "construction: {} rounds total (short-range PDE {}, skeleton PDE {}, \
         spanner broadcast {}, tree labels {}), skeleton size {}",
        m.total_rounds,
        m.pde_a_rounds,
        m.pde_s_rounds,
        m.spanner_broadcast_rounds,
        m.tree_label_rounds,
        m.skeleton_size
    );

    // Every router's "address" is its O(log n)-bit label.
    let w = pde_repro::graphs::NodeId(n as u32 - 1);
    let label = scheme.label(w);
    println!(
        "label of {w}: home={}, dist_home={}, tree_dfs={} ({} bits)",
        label.home,
        label.dist_home,
        label.tree_dfs,
        scheme.label_bits(w)
    );

    // Route a packet across the long haul, hop by hop.
    let mut x = pde_repro::graphs::NodeId(1);
    print!("route {x} → {w}: {x}");
    let mut hops = 0;
    while x != w {
        x = scheme
            .next_hop(x, w)
            .expect("stateless forwarding is total");
        print!(" → {x}");
        hops += 1;
        assert!(hops <= 4 * n, "routing loop");
    }
    println!();

    // Full evaluation against exact shortest paths.
    let exact = apsp(&g);
    let report = evaluate(&g, &scheme, &exact, PairSelection::All);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    println!(
        "all {} pairs routed: max stretch {:.3} (paper bound 6k−1 = 11), \
         avg {:.3}, max label {} bits, max table {} entries",
        report.pairs,
        report.max_stretch,
        report.avg_stretch,
        report.max_label_bits,
        report.max_table_entries
    );
}
