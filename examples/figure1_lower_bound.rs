//! Reproduces the paper's Figure 1 story: a graph where *exact*
//! `(S, h+1, σ)`-detection must push `h·σ` values through one bridge edge
//! (Ω(hσ) rounds), while (1+ε)-approximate PDE runs in
//! `O((h+σ)/ε²·log n)` rounds — and still satisfies Definition 2.2.
//!
//! Run with: `cargo run --release --example figure1_lower_bound`

use pde_repro::graphs::algo::{apsp, detection_reference};
use pde_repro::graphs::gen::figure1;
use pde_repro::pde_core::{run_pde, PdeParams};

fn main() {
    println!(" h  sigma |  n   | exact lower bound h*sigma | PDE rounds (eps=0.5)");
    println!("----------+------+---------------------------+---------------------");
    for (h, sigma) in [(4usize, 4usize), (6, 6), (8, 8), (10, 10), (12, 12)] {
        let fig = figure1(h, sigma);
        let sources = fig.source_flags();

        // Sanity: the exact hop-limited lists at each u_i are its own σ
        // attached sources — the h disjoint σ-sets that must all cross the
        // bridge {u_1, v_h}.
        let lists = detection_reference(&fig.graph, &sources, fig.horizon(), sigma);
        for (i, &ui) in fig.u_chain.iter().enumerate() {
            assert_eq!(lists[ui.index()].len(), sigma);
            for (_, s) in &lists[ui.index()] {
                assert!(fig.sources[i].contains(s));
            }
        }

        let out = run_pde(
            &fig.graph,
            &sources,
            &vec![false; fig.graph.len()],
            &PdeParams::new(fig.horizon(), sigma, 0.5),
        );
        println!(
            "{h:>3} {sigma:>5} | {:>4} | {:>25} | {:>8}",
            fig.graph.len(),
            h * sigma,
            out.metrics.total.rounds
        );

        // PDE estimates never underestimate (exact integer soundness).
        let exact = apsp(&fig.graph);
        for v in fig.graph.nodes() {
            for e in &out.lists[v.index()] {
                assert!(e.est >= exact.dist(v, e.src));
            }
        }
    }
    println!("\nExact detection scales with the h*sigma product; PDE with h+sigma.");
    println!("(At small sizes the log-factor overhead dominates; the *growth rates* differ.)");
}
