// Quickstart: approximate APSP and a distance query on a tiny network.
//
// Run with: `cargo run --release --example quickstart`
//
// (Plain `//` comments and a separate `demo` entry point, so that
// `tests/quickstart_smoke.rs` can `include!` this file verbatim and keep
// the public umbrella API exercised by `cargo test`.)

use pde_repro::graphs::algo;
use pde_repro::graphs::{NodeId, WGraph};
use pde_repro::pde_core::{approx_apsp, run_pde, PdeParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    demo()
}

/// The whole example; also run as a smoke test by the test suite.
pub fn demo() -> Result<(), Box<dyn std::error::Error>> {
    // A small weighted network: a ring with one expensive chord.
    let g = WGraph::from_edges(
        6,
        &[
            (0, 1, 3),
            (1, 2, 4),
            (2, 3, 2),
            (3, 4, 6),
            (4, 5, 1),
            (5, 0, 5),
            (0, 3, 20),
        ],
    )?;

    // 1. Deterministic (1+ε)-approximate APSP (Theorem 4.1).
    let eps = 0.25;
    let apsp = approx_apsp(&g, eps);
    let exact = algo::apsp(&g);
    println!(
        "(1+{eps})-approximate APSP in {} CONGEST rounds:",
        apsp.rounds()
    );
    for u in g.nodes() {
        for v in g.nodes() {
            if u < v {
                println!(
                    "  wd'({u}, {v}) = {:>3}   (exact {:>3})",
                    apsp.dist(u, v),
                    exact.dist(u, v)
                );
            }
        }
    }
    println!(
        "max stretch: {:.4} (bound {:.2})",
        apsp.max_stretch(&exact),
        1.0 + eps
    );

    // 2. Partial distance estimation towards a source set (Corollary 3.5):
    //    every node finds its two nearest "servers" within 3 hops.
    let servers = vec![true, false, false, true, false, false]; // S = {0, 3}
    let out = run_pde(&g, &servers, &[false; 6], &PdeParams::new(3, 2, eps));
    println!("\nnearest servers per node (σ=2, h=3):");
    for v in g.nodes() {
        let entries: Vec<String> = out.lists[v.index()]
            .iter()
            .map(|e| format!("{}@{}", e.src, e.est))
            .collect();
        println!("  {v}: {}", entries.join(", "));
    }

    // 3. Follow the computed next hops from node 2 to server 0. Route
    //    tracing works over a prebuilt topology (build once, query often).
    let topo = g.to_topology();
    let (path, weight) = out
        .trace_route(&topo, NodeId(2), NodeId(0))
        .map_err(|e| format!("routing failed: {e}"))?;
    let hops: Vec<String> = path.iter().map(ToString::to_string).collect();
    println!("\nroute 2 → 0: {} (weight {weight})", hops.join(" → "));
    Ok(())
}
