// Quickstart: build a distance oracle once, query it many times, and
// serve it from a snapshot — the unified `DistanceOracle` API.
//
// Run with: `cargo run --release --example quickstart`
//
// (Plain `//` comments and a separate `demo` entry point, so that
// `tests/quickstart_smoke.rs` can `include!` this file verbatim and keep
// the public umbrella API exercised by `cargo test`.)

use pde_repro::graphs::{NodeId, WGraph};
use pde_repro::oracle::{Backend, DistanceOracle, Oracle, OracleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    demo()
}

/// The whole example; also run as a smoke test by the test suite.
pub fn demo() -> Result<(), Box<dyn std::error::Error>> {
    // A small weighted network: a ring with one expensive chord.
    let g = WGraph::from_edges(
        6,
        &[
            (0, 1, 3),
            (1, 2, 4),
            (2, 3, 2),
            (3, 4, 6),
            (4, 5, 1),
            (5, 0, 5),
            (0, 3, 20),
        ],
    )?;

    // 1. One builder for every backend. Here: deterministic (1+ε)-
    //    approximate APSP (Theorem 4.1), built once, queried many times.
    let apsp = OracleBuilder::new(Backend::ApproxApsp).eps(0.25).build(&g);
    println!(
        "approx-APSP oracle: {} CONGEST rounds to build, {} KiB artifact, stretch <= {:.2}",
        apsp.build_metrics().rounds,
        apsp.size_bits() / 8 / 1024,
        apsp.stretch_bound(),
    );
    for u in g.nodes() {
        for v in g.nodes() {
            if u < v {
                println!("  wd'({u}, {v}) = {:>3}", apsp.estimate(u, v));
            }
        }
    }

    // 2. Batch queries answer straight out of flat tables — the serving
    //    path for heavy query traffic.
    let pairs: Vec<(NodeId, NodeId)> = vec![
        (NodeId(2), NodeId(0)),
        (NodeId(2), NodeId(5)),
        (NodeId(1), NodeId(4)),
    ];
    let mut answers = Vec::new();
    apsp.estimate_many(&pairs, &mut answers);
    println!("\nbatch answers: {answers:?}");

    // 3. Route tracing lives on the trait — no Topology plumbing. A PDE
    //    oracle towards a server set S = {0, 3} (Corollary 3.5).
    let servers = vec![true, false, false, true, false, false];
    let pde = OracleBuilder::new(Backend::Pde)
        .sources(servers)
        .horizon(3)
        .sigma(2)
        .build(&g);
    let route = pde
        .route(NodeId(2), NodeId(0))
        .ok_or("routing failed: no route 2 -> 0")?;
    let hops: Vec<String> = route.nodes.iter().map(ToString::to_string).collect();
    println!(
        "route 2 -> 0: {} (weight {}, {} hops)",
        hops.join(" -> "),
        route.weight,
        route.hops()
    );

    // 4. Build once, serve from disk: the snapshot round-trips with
    //    bit-identical answers.
    let mut bytes = Vec::new();
    apsp.save(&mut bytes)?;
    let served = Oracle::load(&mut &bytes[..])?;
    assert_eq!(
        served.estimate(NodeId(2), NodeId(0)),
        apsp.estimate(NodeId(2), NodeId(0)),
    );
    println!(
        "\nsnapshot: {} bytes, backend {}, answers identical after reload",
        bytes.len(),
        served.backend(),
    );
    Ok(())
}
