//! Compact routing on a WAN-scale topology: the Thorup–Zwick hierarchy of
//! Theorem 4.8, showing the table-size/stretch trade-off as k grows, plus
//! the Corollary 4.14 driver choosing a truncation strategy from the
//! diameter.
//!
//! Run with: `cargo run --release --example compact_wan`

use pde_repro::compact::{build_driver, build_hierarchy, CompactParams};
use pde_repro::graphs::algo::{apsp, hop_diameter};
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::Seed;
use pde_repro::routing::{evaluate, PairSelection};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = gen::gnp_connected(48, 0.12, Weights::Uniform { lo: 1, hi: 32 }, &mut rng);
    let exact = apsp(&g);
    let d = hop_diameter(&g);
    println!(
        "network: {} nodes, {} links, hop diameter {d}\n",
        g.len(),
        g.num_edges()
    );

    println!("k | stretch | max table | max label bits | build rounds");
    println!("--+---------+-----------+----------------+-------------");
    for k in [1u32, 2, 3, 4] {
        let mut params = CompactParams::new(k);
        params.c = 1.5;
        params.seed = Seed(7 ^ u64::from(k));
        let scheme = build_hierarchy(&g, &params);
        let report = evaluate(&g, &scheme, &exact, PairSelection::All);
        assert!(report.failures.is_empty(), "k={k}: {:?}", report.failures);
        println!(
            "{k} | {:7.3} | {:9} | {:14} | {}",
            report.max_stretch,
            report.max_table_entries,
            report.max_label_bits,
            scheme.metrics.total_rounds
        );
    }

    // Corollary 4.14: let the driver pick l0 and the upper-level mode.
    let mut params = CompactParams::new(3);
    params.seed = Seed(9);
    let (scheme, choice) = build_driver(&g, &params, d);
    let report = evaluate(&g, &scheme, &exact, PairSelection::All);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    println!(
        "\nCorollary 4.14 driver (k=3, D={d}): chose l0={} mode={:?}; \
         {} rounds (upper levels {}), stretch {:.3}",
        choice.l0,
        choice.mode,
        scheme.metrics.total_rounds,
        scheme.metrics.upper_rounds,
        report.max_stretch
    );
}
