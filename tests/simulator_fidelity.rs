//! Fidelity of the central simulation trick: running detection on a
//! delay-annotated topology must be *indistinguishable* (at real nodes)
//! from running it on the explicitly subdivided graph `G_i` with virtual
//! relay nodes — the equivalence DESIGN.md claims.

use pde_repro::congest::{NodeId, Topology};
use pde_repro::graphs::WGraph;
use pde_repro::sourcedetect::{run_detection, DetectParams};

/// Builds the explicit subdivision: each edge of `g` with subdivision
/// length `L = ceil(w/b)` becomes a path of `L` unit edges through fresh
/// virtual nodes.
fn subdivide(g: &WGraph, b: u64) -> (Topology, usize) {
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    let mut next = g.len() as u32;
    for &(u, v, w) in g.edges() {
        let len = w.div_ceil(b);
        let mut prev = u;
        for step in 1..len {
            edges.push((prev, next, 1));
            prev = next;
            next += 1;
            let _ = step;
        }
        edges.push((prev, v, 1));
    }
    (
        Topology::from_edges(next as usize, &edges).expect("subdivision is valid"),
        next as usize,
    )
}

#[test]
fn delayed_topology_equals_explicit_subdivision() {
    // A graph with heterogeneous weights → interesting subdivision.
    let g = WGraph::from_edges(
        6,
        &[
            (0, 1, 7),
            (1, 2, 3),
            (2, 3, 9),
            (3, 4, 2),
            (4, 5, 5),
            (5, 0, 4),
            (1, 4, 6),
        ],
    )
    .unwrap();
    for b in [1u64, 2, 3, 5] {
        let delayed = g.to_topology().with_delays(|w| w.div_ceil(b));
        let (explicit, total_nodes) = subdivide(&g, b);

        let real_sources = [true, false, false, true, false, false];
        let mut explicit_sources = vec![false; total_nodes];
        explicit_sources[..6].copy_from_slice(&real_sources);

        for (h, sigma) in [(4u64, 1usize), (8, 2), (16, 3)] {
            let params = DetectParams {
                h,
                sigma,
                msg_cap: None,
                exact_rounds: false,
            };
            let a = run_detection(&delayed, &real_sources, &[false; 6], &params);
            let b_out = run_detection(
                &explicit,
                &explicit_sources,
                &vec![false; total_nodes],
                &params,
            );
            for v in 0..6 {
                let la: Vec<(u64, NodeId)> = a.lists[v].iter().map(|e| (e.dist, e.src)).collect();
                let lb: Vec<(u64, NodeId)> =
                    b_out.lists[v].iter().map(|e| (e.dist, e.src)).collect();
                assert_eq!(
                    la, lb,
                    "node {v} lists differ between delayed and explicit G_i (b={b}, h={h}, σ={sigma})"
                );
            }
        }
    }
}

#[test]
fn delayed_run_uses_no_more_rounds() {
    // The delayed simulation's round count matches the explicit one
    // (both bounded by the same h+σ budget and quiescing together).
    let g = WGraph::from_edges(4, &[(0, 1, 6), (1, 2, 4), (2, 3, 8)]).unwrap();
    let b = 2;
    let delayed = g.to_topology().with_delays(|w| w.div_ceil(b));
    let (explicit, total) = subdivide(&g, b);
    let params = DetectParams {
        h: 12,
        sigma: 2,
        msg_cap: None,
        exact_rounds: false,
    };
    let mut s1 = vec![false; 4];
    s1[0] = true;
    let mut s2 = vec![false; total];
    s2[0] = true;
    let a = run_detection(&delayed, &s1, &[false; 4], &params);
    let b_out = run_detection(&explicit, &s2, &vec![false; total], &params);
    // The delayed run may outlast the explicit one by up to one max
    // delay: an in-flight message that a virtual relay would have culled
    // (dist ≥ h mid-chain) is only discarded on arrival.
    assert!(a.metrics.rounds <= b_out.metrics.rounds + delayed.max_delay() + 2);
    // The delayed run sends at most as many messages per *real* node.
    for v in 0..4 {
        assert!(a.msgs_per_node[v] <= b_out.msgs_per_node[v] + params.sigma as u64);
    }
}
