//! The dynamic-graph contracts (ISSUE 7):
//!
//! * **Repair identity** — for every backend, `OracleBuilder::repair`
//!   on a delta produces an oracle whose canonical artifact bytes are
//!   identical to a from-scratch build on the mutated graph, property-
//!   tested across graph families × delta kinds × seeds. Incremental
//!   repairs (matrix backends on edge deltas) and honest rebuilds
//!   (sampling-coupled schemes, node failures) go through the same
//!   entry point and meet the same obligation.
//! * **Failover guarantees** — `route_with_failover` under an arbitrary
//!   liveness mask answers with a *simple* path (loop-freedom) over
//!   live edges only, reaches the destination whenever it is connected
//!   in the masked graph (completeness), and its weight is bounded by
//!   the simple-path ceiling `(n−1)·w_max` — the stretch is measured
//!   against the masked graph's true distances.

use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::{GraphDelta, NodeId, WGraph};
use pde_repro::oracle::{route_with_failover, Backend, LivenessMask, OracleBuilder, TracedRoute};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn build_graph(family: u8, n: usize, weights: u8, seed: u64) -> WGraph {
    let w = match weights {
        0 => Weights::Unit,
        1 => Weights::Uniform { lo: 1, hi: 12 },
        _ => Weights::PowerOfTwo { max_exp: 6 },
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    match family {
        0 => gen::gnp_connected(n, 0.2, w, &mut rng),
        1 => gen::power_law(n, 2, w, &mut rng),
        2 => gen::ring_of_cliques(3 + n / 8, 4, w, &mut rng),
        _ => gen::hypercube(4, w, &mut rng), // 16 nodes
    }
}

/// Picks a delta of the requested kind deterministically from the graph:
/// a seed-picked weight change, or the first edge/node (in seed-rotated
/// order) whose failure keeps the graph connected. Falls back to a
/// weight change when no failure is survivable (bridge-only graphs).
fn pick_delta(g: &WGraph, kind: u8, seed: u64) -> GraphDelta {
    let edges = g.edges();
    match kind {
        0 => {
            let (u, v, w) = edges[(seed as usize) % edges.len()];
            GraphDelta::SetWeight {
                u: NodeId(u),
                v: NodeId(v),
                w: w + 1 + seed % 9,
            }
        }
        1 => {
            for off in 0..edges.len() {
                let (u, v, _) = edges[(seed as usize + off) % edges.len()];
                let delta = GraphDelta::FailEdge {
                    u: NodeId(u),
                    v: NodeId(v),
                };
                if g.apply_delta(&delta).is_ok() {
                    return delta;
                }
            }
            pick_delta(g, 0, seed)
        }
        _ => {
            for off in 0..g.len() {
                let v = NodeId(((seed as usize + off) % g.len()) as u32);
                let delta = GraphDelta::FailNode { v };
                if g.apply_delta(&delta).is_ok() {
                    return delta;
                }
            }
            pick_delta(g, 0, seed)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline repair contract: `repair(delta)` ≡ from-scratch
    /// rebuild on the mutated graph, byte for byte, for all 8 backends.
    #[test]
    fn repair_is_byte_identical_to_rebuild(
        case in ((0u8..4), (12usize..=22), (0u8..3), (0u64..1 << 40), (0u8..3))
    ) {
        let (family, n, weights, seed, kind) = case;
        let g = build_graph(family, n, weights, seed);
        let delta = pick_delta(&g, kind, seed);
        let g_after = g.apply_delta(&delta).unwrap();
        for backend in Backend::ALL {
            let builder = OracleBuilder::new(backend).seed(seed).k(2);
            let prev = builder.build(&g);
            let repaired = builder.repair(&g, &prev, &delta).unwrap();
            prop_assert_eq!(
                repaired.graph.edges(),
                g_after.edges(),
                "{} returned a different mutated graph", backend
            );
            let fresh = builder.build(&g_after);
            prop_assert_eq!(
                repaired.oracle.artifact_bytes(),
                fresh.artifact_bytes(),
                "{} repair diverged from rebuild ({}, family={}, n={}, w={}, seed={})",
                backend, delta, family, n, weights, seed
            );
            prop_assert_eq!(repaired.report.backend, backend);
        }
    }
}

/// Exact distances in the graph-minus-mask, by Dijkstra restricted to
/// live nodes and edges (`u64::MAX` = unreachable).
fn masked_dist(g: &WGraph, mask: &LivenessMask, s: NodeId) -> Vec<u64> {
    let n = g.len();
    let mut dist = vec![u64::MAX; n];
    if !mask.node_alive(s) {
        return dist;
    }
    dist[s.index()] = 0;
    let mut done = vec![false; n];
    loop {
        let mut best = usize::MAX;
        let mut bd = u64::MAX;
        for (i, d) in dist.iter().enumerate() {
            if !done[i] && *d < bd {
                bd = *d;
                best = i;
            }
        }
        if best == usize::MAX {
            return dist;
        }
        done[best] = true;
        let u = NodeId(best as u32);
        for (nbr, w) in g.neighbors(u) {
            if mask.edge_alive(u, nbr) && bd + w < dist[nbr.index()] {
                dist[nbr.index()] = bd + w;
            }
        }
    }
}

#[test]
fn failover_routes_are_loop_free_complete_and_stretch_bounded() {
    let mut rng = SmallRng::seed_from_u64(0xD1);
    let g = gen::gnp_connected(18, 0.18, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
    let n = g.len();
    let edges = g.edges();
    // An adversarial mask: two failed edges plus a failed node.
    let mut mask = LivenessMask::new(n);
    let (a, b, _) = edges[0];
    let (c, d, _) = edges[edges.len() / 2];
    mask.fail_edge(NodeId(a), NodeId(b));
    mask.fail_edge(NodeId(c), NodeId(d));
    let dead = NodeId(n as u32 - 1);
    mask.fail_node(dead);
    let live_edges: HashSet<(NodeId, NodeId)> = edges
        .iter()
        .filter(|&&(u, v, _)| mask.edge_alive(NodeId(u), NodeId(v)))
        .map(|&(u, v, _)| (NodeId(u.min(v)), NodeId(u.max(v))))
        .collect();
    let ceiling = (n as u64 - 1) * g.max_weight();

    for backend in Backend::ALL {
        let oracle = OracleBuilder::new(backend).seed(3).k(2).build(&g);
        let mut route = TracedRoute::default();
        let mut max_stretch = 1.0f64;
        for u in g.nodes() {
            let truth = masked_dist(&g, &mask, u);
            for v in g.nodes() {
                let outcome = route_with_failover(&oracle, &mask, u, v, &mut route);
                if u == v {
                    // Trivial pair — unless the node itself is dead.
                    assert_eq!(outcome.routed(), mask.node_alive(u), "{backend}: {u}→{u}");
                    continue;
                }
                if backend == Backend::BellmanFord {
                    // Estimate-only: no topology to detour over.
                    assert!(!outcome.routed(), "{backend}: {u}→{v}");
                    continue;
                }
                let reachable = truth[v.index()] != u64::MAX;
                assert_eq!(
                    outcome.routed(),
                    reachable,
                    "{backend}: {u}→{v} routed ≠ masked-reachable"
                );
                if !reachable {
                    continue;
                }
                // Loop-freedom: the detour is a simple path.
                let distinct: HashSet<NodeId> = route.nodes.iter().copied().collect();
                assert_eq!(
                    distinct.len(),
                    route.nodes.len(),
                    "{backend}: {u}→{v} loops"
                );
                // Live edges only.
                for hop in route.nodes.windows(2) {
                    let key = (hop[0].min(hop[1]), hop[0].max(hop[1]));
                    assert!(
                        live_edges.contains(&key),
                        "{backend}: {u}→{v} crossed dead edge {key:?}"
                    );
                }
                // Bounded stretch: never below the masked truth, never
                // above the simple-path ceiling.
                assert!(route.weight >= truth[v.index()], "{backend}: {u}→{v}");
                assert!(
                    route.weight <= ceiling,
                    "{backend}: {u}→{v} weight {} over ceiling {ceiling}",
                    route.weight
                );
                max_stretch = max_stretch.max(route.weight as f64 / truth[v.index()].max(1) as f64);
            }
        }
        if backend != Backend::BellmanFord {
            assert!(
                max_stretch >= 1.0 && max_stretch.is_finite(),
                "{backend}: stretch {max_stretch}"
            );
        }
    }
}
