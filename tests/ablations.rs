//! Ablations for the design choices DESIGN.md calls out: the ε / round
//! trade-off of the weight ladder, quiescence versus the theoretical round
//! budget, and the level structure of a PDE run.

use pde_repro::graphs::algo::apsp;
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::pde_core::rounding::{horizon, level_ladder};
use pde_repro::pde_core::{approx_apsp, run_pde, PdeParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph(seed: u64, hi: u64) -> pde_repro::graphs::WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi }, &mut rng)
}

#[test]
fn eps_trades_rounds_for_accuracy() {
    // Coarser ε ⇒ shorter horizons and fewer ladder rungs ⇒ fewer rounds;
    // accuracy bound loosens accordingly. Both directions must hold.
    let g = graph(1, 200);
    let exact = apsp(&g);
    let coarse = approx_apsp(&g, 1.0);
    let fine = approx_apsp(&g, 0.125);
    assert!(
        coarse.rounds() < fine.rounds(),
        "coarser eps must be cheaper: {} vs {}",
        coarse.rounds(),
        fine.rounds()
    );
    assert!(coarse.max_stretch(&exact) <= 2.0 + 1e-9);
    assert!(fine.max_stretch(&exact) <= 1.125 + 1e-9);
}

#[test]
fn ladder_density_follows_eps() {
    // The integer ladder has Θ(log_{1+ε} w_max) rungs: finer ε ⇒ more
    // rungs ⇒ more detection instances (the log n/ε factor of Cor 3.5).
    let coarse = level_ladder(1.0, 10_000).len();
    let fine = level_ladder(0.1, 10_000).len();
    assert!(fine > 3 * coarse, "ladders: fine {fine} vs coarse {coarse}");
    // And horizons scale inversely with ε.
    assert!(horizon(100, 0.1) > 3 * horizon(100, 0.5));
}

#[test]
fn quiescence_never_exceeds_theory_budget() {
    // The theoretical budget h' + σ per level is an upper bound; the
    // quiescence-stopped run must fit within the exact-budget run, with
    // identical outputs.
    let g = graph(2, 64);
    let sources: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
    let quiet = run_pde(&g, &sources, &[false; 24], &PdeParams::new(12, 4, 0.5));
    let exact_budget = run_pde(
        &g,
        &sources,
        &[false; 24],
        &PdeParams {
            exact_rounds: true,
            ..PdeParams::new(12, 4, 0.5)
        },
    );
    assert!(quiet.metrics.total.rounds <= exact_budget.metrics.total.rounds);
    for v in g.nodes() {
        assert_eq!(
            quiet.lists[v.index()],
            exact_budget.lists[v.index()],
            "outputs must not depend on the stopping rule (node {v})"
        );
    }
    // Per-level budget: h' + σ + 1 rounds each, never exceeded.
    let per_level_cap = quiet.horizon + 4 + 1;
    for (l, &r) in quiet.metrics.per_level_rounds.iter().enumerate() {
        assert!(r <= per_level_cap, "level {l} used {r} > {per_level_cap}");
    }
}

#[test]
fn unit_weight_graphs_skip_the_ladder() {
    // On unweighted inputs the reduction collapses to a single exact
    // instance — no approximation, minimal rounds (the [10] special case).
    let g = graph(3, 1);
    let exact = apsp(&g);
    let a = approx_apsp(&g, 0.25);
    assert_eq!(a.pde.levels, vec![1]);
    assert_eq!(a.max_stretch(&exact), 1.0);
}

#[test]
fn heavy_tails_use_more_ladder_rungs_than_uniform() {
    let g_small = graph(4, 4);
    let g_big = graph(4, 4000);
    let sources = vec![true; 24];
    let small = run_pde(&g_small, &sources, &[false; 24], &PdeParams::new(8, 4, 0.5));
    let big = run_pde(&g_big, &sources, &[false; 24], &PdeParams::new(8, 4, 0.5));
    assert!(big.levels.len() > small.levels.len());
    // More rungs ⇒ more sequential instances ⇒ more rounds.
    assert!(big.metrics.per_level_rounds.len() > small.metrics.per_level_rounds.len());
}
