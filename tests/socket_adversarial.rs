//! Adversarial sweep against the socket server's read loop: torn
//! frames, garbage, oversized lengths, slow-loris drips, and hostile
//! request contents. The contract under attack input is always the
//! same — a *typed* error frame (or a clean close), never a panic, and
//! never collateral damage to other connections.
//!
//! Wire shape pinned here (see `net`'s module docs): every response
//! payload starts `version u8 | status u8 | op u8 | req_id u64`, with
//! status `0xEE` marking an error frame and `req_id == 0` marking a
//! pre-decode failure.

use congest::NodeId;
use graphs::WGraph;
use net::{Client, NetServer, ServerConfig, WireError};
use oracle::{Backend, OracleBuilder};
use serve::OracleServer;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const STATUS_ERR: u8 = 0xEE;

fn ring_with_chord(n: u32) -> WGraph {
    let mut edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, 2)).collect();
    edges.push((0, n / 2, 3));
    WGraph::from_edges(n as usize, &edges).unwrap()
}

fn serve_ring(cfg: ServerConfig) -> NetServer {
    let g = ring_with_chord(8);
    let registry = Arc::new(OracleServer::new());
    registry.install("ring", OracleBuilder::new(Backend::Flooding).build(&g));
    NetServer::bind("127.0.0.1:0", registry, cfg).unwrap()
}

/// A valid `Estimate("ring", 0, 2)` request frame, length prefix
/// included — the donor body for the truncation sweep.
fn estimate_frame(req_id: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(1u8); // NET_VERSION
    payload.push(1u8); // Op::Estimate
    payload.extend_from_slice(&req_id.to_le_bytes());
    payload.extend_from_slice(&(4u16).to_le_bytes()); // name len
    payload.extend_from_slice(b"ring");
    payload.extend_from_slice(&0u32.to_le_bytes()); // u
    payload.extend_from_slice(&2u32.to_le_bytes()); // v
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Reads everything the server sends until EOF (bounded by the read
/// timeout), returning the raw bytes.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    out
}

/// Asserts `bytes` is exactly one error frame with `req_id == 0` (a
/// pre-decode failure report) followed by the close.
fn assert_predecode_error_frame(bytes: &[u8], what: &str) {
    assert!(bytes.len() >= 4 + 11, "{what}: no frame before close");
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    let payload = &bytes[4..];
    assert_eq!(payload.len(), len, "{what}: trailing bytes after the frame");
    assert_eq!(payload[0], 1, "{what}: wrong version byte");
    assert_eq!(payload[1], STATUS_ERR, "{what}: not an error frame");
    let req_id = u64::from_le_bytes(payload[3..11].try_into().unwrap());
    assert_eq!(req_id, 0, "{what}: pre-decode failures carry no request id");
}

#[test]
fn every_torn_request_prefix_leaves_the_server_serving() {
    let server = serve_ring(ServerConfig::default());
    let frame = estimate_frame(7);
    // Every strict prefix of a valid frame: a torn length prefix, a
    // torn header, a torn body — each on a fresh connection.
    for cut in 1..frame.len() {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&frame[..cut]).unwrap();
        raw.flush().unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        // The server may answer nothing (mid-frame EOF) or an error
        // frame (a whole-but-malformed payload); it must never hang or
        // panic. Draining to EOF proves the connection was closed.
        let _ = drain(&mut raw);
    }
    // The sweep cost the server nothing: a fresh client gets the right
    // answer.
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.estimate("ring", NodeId(0), NodeId(2)).unwrap(), 4);
    server.shutdown();
}

#[test]
fn garbage_version_and_unknown_op_get_typed_error_frames() {
    let server = serve_ring(ServerConfig::default());
    // Bogus version byte.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = estimate_frame(9);
    frame[4] = 0x42; // version byte inside the payload
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    assert_predecode_error_frame(&drain(&mut raw), "bad version");
    // Unknown opcode.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = estimate_frame(9);
    frame[5] = 0xAA; // op byte
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    assert_predecode_error_frame(&drain(&mut raw), "unknown op");
    // Truncated body wrapped in a *complete* frame (the length prefix
    // is honest, the payload is not): a malformed-payload report.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let whole = estimate_frame(9);
    let cut_payload = &whole[4..whole.len() - 3];
    let mut frame = Vec::new();
    frame.extend_from_slice(&(cut_payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(cut_payload);
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    assert_predecode_error_frame(&drain(&mut raw), "truncated body");
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.estimate("ring", NodeId(0), NodeId(2)).unwrap(), 4);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    let server = serve_ring(ServerConfig {
        max_frame: 1 << 16,
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // A length prefix claiming 256 MiB against a 64 KiB cap; no body
    // ever follows.
    raw.write_all(&(1u32 << 28).to_le_bytes()).unwrap();
    raw.flush().unwrap();
    assert_predecode_error_frame(&drain(&mut raw), "oversized");
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.estimate("ring", NodeId(0), NodeId(2)).unwrap(), 4);
    server.shutdown();
}

#[test]
fn slow_loris_drip_is_shed_by_the_frame_deadline() {
    let server = serve_ring(ServerConfig {
        deadline: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let frame = estimate_frame(1);
    // Drip one byte per 100 ms: each read lands inside the socket
    // timeout, but the whole frame blows the per-frame deadline — the
    // exact hole a per-byte timeout leaves open.
    let start = std::time::Instant::now();
    let mut dripped = 0;
    for &b in frame.iter() {
        if raw.write_all(&[b]).is_err() {
            break; // the server already hung up — the point is made
        }
        let _ = raw.flush();
        dripped += 1;
        std::thread::sleep(Duration::from_millis(100));
        if start.elapsed() > Duration::from_secs(2) {
            break;
        }
    }
    assert!(dripped < frame.len(), "the server accepted the whole drip");
    // The connection is dead, and the server is not: the handler thread
    // was released for honest clients.
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.estimate("ring", NodeId(0), NodeId(2)).unwrap(), 4);
    server.shutdown();
}

#[test]
fn out_of_range_node_id_costs_one_request_not_the_connection() {
    let server = serve_ring(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    // A node id far outside the 8-node oracle: whether the backend
    // answers or its handler panics into the unwind guard, the reply
    // must be a normal (possibly error) frame on this connection.
    match client.estimate("ring", NodeId(999_999), NodeId(0)) {
        Ok(_) => {}
        Err(WireError::Remote(msg)) => {
            assert!(
                msg.contains("panicked"),
                "remote error without the panic marker: {msg}"
            );
        }
        Err(e) => panic!("hostile node id got {e:?}, wanted Ok or Remote"),
    }
    // Same connection, same server: still serving.
    assert_eq!(client.estimate("ring", NodeId(0), NodeId(2)).unwrap(), 4);
    let metrics = server.metrics();
    assert!(metrics.requests >= 2);
    server.shutdown();
}

#[test]
fn oversized_batch_is_shed_with_a_typed_error_and_the_connection_survives() {
    let server = serve_ring(ServerConfig {
        max_batch_pairs: 4,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let big: Vec<(NodeId, NodeId)> = (0..8u32).map(|i| (NodeId(i % 8), NodeId(0))).collect();
    let err = client.estimate_many("ring", &big, false).unwrap_err();
    match err {
        WireError::Overloaded { active, cap } => {
            assert_eq!((active, cap), (8, 4));
        }
        other => panic!("oversized batch got {other:?}, wanted Overloaded"),
    }
    let (small, _) = client.estimate_many("ring", &big[..2], false).unwrap();
    assert_eq!(small.len(), 2);
    assert_eq!(server.metrics().requests_shed, 1);
    server.shutdown();
}
