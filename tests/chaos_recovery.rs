//! Crash-recovery identity: a serving process that dies after live
//! repairs must come back — from its checkpoint plus delta WAL — with a
//! byte-identical oracle artifact, for every backend. Also pins the two
//! recovery edge cases the format was designed around: a torn WAL tail
//! (crash mid-append) and a stale WAL left by a crash between
//! checkpoint write and WAL reset.

use congest::NodeId;
use graphs::{GraphDelta, WGraph};
use oracle::{Backend, OracleBuilder};
use serve::{DeltaWal, DynamicOracle, OracleServer};
use std::path::PathBuf;

/// A ring (weight 2) with three chords (weight 5). Failing a chord
/// never disconnects the graph, so every chord is a survivable
/// `FailEdge` delta.
fn chorded_ring(n: u32) -> WGraph {
    let mut edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, 2)).collect();
    edges.push((0, n / 2, 5));
    edges.push((1, n / 2 + 2, 5));
    edges.push((2, n / 2 + 4, 5));
    WGraph::from_edges(n as usize, &edges).unwrap()
}

fn chord_failures() -> [GraphDelta; 2] {
    [
        GraphDelta::FailEdge {
            u: NodeId(0),
            v: NodeId(6),
        },
        GraphDelta::FailEdge {
            u: NodeId(1),
            v: NodeId(8),
        },
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pde-chaos-recovery-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn live_artifact(registry: &OracleServer, name: &str) -> Vec<u8> {
    registry.lease(name).unwrap().oracle().artifact_bytes()
}

#[test]
fn recovery_is_byte_identical_for_every_backend() {
    let g = chorded_ring(12);
    for backend in Backend::ALL {
        let name = format!("rec-{}", backend.name());
        let dir = temp_dir(&name);
        let live = OracleServer::new();
        let dynamic =
            DynamicOracle::install_persistent(&live, &name, OracleBuilder::new(backend), &g, &dir)
                .unwrap();
        for delta in &chord_failures() {
            dynamic.repair_and_swap(&live, delta).unwrap();
        }
        assert_eq!(dynamic.wal_records(), 2, "{backend}: wal records");
        let live_bytes = live_artifact(&live, &name);
        // Crash: the process state is gone, only the files remain.
        drop(dynamic);
        drop(live);
        let cold = OracleServer::new();
        let (recovered, report) =
            DynamicOracle::recover(&cold, &name, OracleBuilder::new(backend), &dir).unwrap();
        assert_eq!(report.deltas_replayed, 2, "{backend}: replay count");
        assert!(!report.torn_tail, "{backend}: clean wal read as torn");
        assert!(!report.stale_wal_discarded, "{backend}: wal read as stale");
        assert_eq!(
            live_artifact(&cold, &name),
            live_bytes,
            "{backend}: recovered artifact differs from the live one"
        );
        // The recovered lifecycle keeps working: one more repair.
        recovered
            .repair_and_swap(
                &cold,
                &GraphDelta::FailEdge {
                    u: NodeId(2),
                    v: NodeId(10),
                },
            )
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_folds_the_wal_and_recovery_replays_only_the_tail() {
    let g = chorded_ring(12);
    let dir = temp_dir("fold");
    let live = OracleServer::new();
    let dynamic = DynamicOracle::install_persistent(
        &live,
        "fold",
        OracleBuilder::new(Backend::Flooding),
        &g,
        &dir,
    )
    .unwrap();
    let [first, second] = chord_failures();
    dynamic.repair_and_swap(&live, &first).unwrap();
    let folded = dynamic.checkpoint(&live).unwrap();
    assert_eq!(folded, 1, "checkpoint folded one delta");
    assert_eq!(dynamic.wal_records(), 0, "wal is empty after a fold");
    dynamic.repair_and_swap(&live, &second).unwrap();
    let live_bytes = live_artifact(&live, "fold");
    drop(dynamic);
    drop(live);
    let cold = OracleServer::new();
    let (_, report) =
        DynamicOracle::recover(&cold, "fold", OracleBuilder::new(Backend::Flooding), &dir).unwrap();
    assert_eq!(
        report.deltas_replayed, 1,
        "only the post-checkpoint delta replays"
    );
    assert_eq!(live_artifact(&cold, "fold"), live_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let g = chorded_ring(12);
    let dir = temp_dir("torn");
    let live = OracleServer::new();
    let dynamic = DynamicOracle::install_persistent(
        &live,
        "torn",
        OracleBuilder::new(Backend::Flooding),
        &g,
        &dir,
    )
    .unwrap();
    for delta in &chord_failures() {
        dynamic.repair_and_swap(&live, delta).unwrap();
    }
    let live_bytes = live_artifact(&live, "torn");
    drop(dynamic);
    drop(live);
    // Crash mid-append: a half-written frame at the tail.
    let wal_path = dir.join("torn.wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0x2C, 0x00, 0x00, 0x00, 0xDE, 0xAD]);
    std::fs::write(&wal_path, bytes).unwrap();
    let cold = OracleServer::new();
    let (_, report) =
        DynamicOracle::recover(&cold, "torn", OracleBuilder::new(Backend::Flooding), &dir).unwrap();
    assert!(report.torn_tail, "the torn tail must be reported");
    assert_eq!(report.deltas_replayed, 2, "whole records still replay");
    assert_eq!(live_artifact(&cold, "torn"), live_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_wal_from_an_interrupted_checkpoint_is_discarded() {
    let g = chorded_ring(12);
    let dir = temp_dir("stale");
    let live = OracleServer::new();
    let dynamic = DynamicOracle::install_persistent(
        &live,
        "stale",
        OracleBuilder::new(Backend::Flooding),
        &g,
        &dir,
    )
    .unwrap();
    let [first, _] = chord_failures();
    dynamic.repair_and_swap(&live, &first).unwrap();
    // Fold the delta into a new checkpoint (epoch 2, WAL reset)...
    dynamic.checkpoint(&live).unwrap();
    let live_bytes = live_artifact(&live, "stale");
    drop(dynamic);
    drop(live);
    // ...then simulate the crash window *between* checkpoint write and
    // WAL reset: put back an epoch-1 WAL still carrying the folded
    // delta. Replaying it would double-apply the failure.
    let wal_path = dir.join("stale.wal");
    let mut stale = DeltaWal::create(&wal_path, 1).unwrap();
    stale.append(&first).unwrap();
    drop(stale);
    let cold = OracleServer::new();
    let (_, report) =
        DynamicOracle::recover(&cold, "stale", OracleBuilder::new(Backend::Flooding), &dir)
            .unwrap();
    assert!(
        report.stale_wal_discarded,
        "the epoch-1 wal must be recognised as already folded"
    );
    assert_eq!(report.deltas_replayed, 0, "stale deltas must not replay");
    assert_eq!(live_artifact(&cold, "stale"), live_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
