//! Build-mode parity: for every backend, `BuildMode::Native` and
//! `BuildMode::Simulated` builds of the same graph/seed/knobs must
//! produce **byte-identical canonical artifacts** and identical query
//! answers, at every thread count — the determinism contract of the
//! native build engine (ISSUE 5).
//!
//! Property-tested over random graph families (G(n,p), Barabási–Albert,
//! ring of cliques, hypercube), weight ranges, and seeds; threads ∈
//! {1, 4}. The canonical artifact bytes ([`Oracle::artifact_bytes`]) are
//! the `save` stream with volatile measurement fields zeroed, so the
//! comparison covers the full serialized query state: topology, labels,
//! flat route tables, trees, spanner/skeleton matrices.

use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::NodeId;
use pde_repro::graphs::WGraph;
use pde_repro::oracle::{Backend, BuildMode, DistanceOracle, Oracle, OracleBuilder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// FNV-1a over a batch of query answers.
fn digest(values: &[u64]) -> u64 {
    let mut d = 0xcbf29ce484222325u64;
    for &x in values {
        for b in x.to_le_bytes() {
            d ^= u64::from(b);
            d = d.wrapping_mul(0x100000001b3);
        }
    }
    d
}

/// A generated parity case: graph family index, size, weight choice and
/// seed.
type Case = (u8, usize, u8, u64);

fn cases() -> impl Strategy<Value = Case> {
    ((0u8..4), (12usize..=26), (0u8..3), (0u64..1 << 40))
}

fn build_graph(family: u8, n: usize, weights: u8, seed: u64) -> WGraph {
    let w = match weights {
        0 => Weights::Unit,
        1 => Weights::Uniform { lo: 1, hi: 12 },
        _ => Weights::PowerOfTwo { max_exp: 6 },
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    match family {
        0 => gen::gnp_connected(n, 0.2, w, &mut rng),
        1 => gen::power_law(n, 2, w, &mut rng),
        2 => gen::ring_of_cliques(3 + n / 8, 4, w, &mut rng),
        _ => gen::hypercube(4, w, &mut rng), // 16 nodes
    }
}

fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n as u32)
        .flat_map(|u| (0..n as u32).map(move |v| (NodeId(u), NodeId(v))))
        .collect()
}

fn build(backend: Backend, g: &WGraph, seed: u64, mode: BuildMode, threads: usize) -> Oracle {
    OracleBuilder::new(backend)
        .seed(seed)
        .k(2)
        .build_mode(mode)
        .threads(threads)
        .build(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline contract: for all 8 backends, canonical artifact
    /// bytes and full query digests agree between Simulated and Native
    /// builds at threads ∈ {1, 4}.
    #[test]
    fn native_builds_are_byte_identical_to_simulated(case in cases()) {
        let (family, n, weights, seed) = case;
        let g = build_graph(family, n, weights, seed);
        let pairs = all_pairs(g.len());
        for backend in Backend::ALL {
            let reference = build(backend, &g, seed, BuildMode::Simulated, 1);
            let ref_bytes = reference.artifact_bytes();
            let mut out = Vec::new();
            reference.estimate_many(&pairs, &mut out);
            let ref_digest = digest(&out);
            for (mode, threads) in [
                (BuildMode::Simulated, 4),
                (BuildMode::Native, 1),
                (BuildMode::Native, 4),
            ] {
                let other = build(backend, &g, seed, mode, threads);
                prop_assert_eq!(
                    other.artifact_bytes(),
                    ref_bytes.clone(),
                    "{} artifact bytes diverged ({:?}, threads={}, family={}, n={}, w={}, seed={})",
                    backend, mode, threads, family, n, weights, seed
                );
                other.estimate_many(&pairs, &mut out);
                prop_assert_eq!(
                    digest(&out),
                    ref_digest,
                    "{} query digest diverged ({:?}, threads={})",
                    backend, mode, threads
                );
            }
        }
    }
}

/// The canonical artifact stream is itself a loadable snapshot that
/// answers identically (metrics read back as zeros).
#[test]
fn canonical_artifact_bytes_are_loadable() {
    let g = build_graph(0, 20, 1, 7);
    let pairs = all_pairs(g.len());
    for backend in Backend::ALL {
        let oracle = build(backend, &g, 7, BuildMode::Simulated, 1);
        let bytes = oracle.artifact_bytes();
        let loaded = Oracle::load(&mut &bytes[..]).expect("canonical bytes load");
        assert_eq!(loaded.build_metrics().rounds, 0, "{backend}");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        oracle.estimate_many(&pairs, &mut a);
        loaded.estimate_many(&pairs, &mut b);
        assert_eq!(a, b, "{backend}: canonical reload changed answers");
    }
}

/// Routing answers (next hops) also agree across modes — the archive
/// ports are part of the canonical artifact, so this is implied by byte
/// identity, but check through the query surface too.
#[test]
fn native_builds_route_identically() {
    let g = build_graph(1, 24, 1, 21);
    let sim = build(Backend::Rtc, &g, 21, BuildMode::Simulated, 1);
    let nat = build(Backend::Rtc, &g, 21, BuildMode::Native, 4);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(sim.next_hop(u, v), nat.next_hop(u, v), "({u},{v})");
            assert_eq!(sim.route(u, v), nat.route(u, v), "({u},{v})");
        }
    }
    assert!(sim.build_metrics().rounds > 0, "simulated charges rounds");
    assert_eq!(nat.build_metrics().rounds, 0, "native charges none");
}
