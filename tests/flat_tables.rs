//! Property-based tests for the flat SoA query tables that replaced the
//! hash maps on every oracle hot path (`pde_core::tables`): dense and CSR
//! [`PairTable`] lookups must agree with a `HashMap` model across random
//! probes — including misses and out-of-range keys — and [`FlatTables`]
//! lookups with a per-node `HashMap` model, with byte-identical
//! round-trips through the wire codecs.

use pde_repro::graphs::NodeId;
use pde_repro::pde_core::tables::{FlatTables, PairTable};
use pde_repro::pde_core::{RouteInfo, RouteTable};
use proptest::prelude::*;
use std::collections::HashMap;

/// A generated case: side length `k`, unique in-range pair entries, and
/// probe keys (deliberately allowed to fall outside `k`, which must
/// behave as a miss, matching the `HashMap` model).
type PairCase = (usize, Vec<(u32, u32, u64)>, Vec<(usize, usize)>);

fn pair_entries() -> impl Strategy<Value = PairCase> {
    (1usize..=40).prop_flat_map(|k| {
        let entries = proptest::collection::vec(
            ((0..k as u32), (0..k as u32), 0u64..1_000_000),
            0..(2 * k).min(60),
        );
        let probes = proptest::collection::vec(((0..k + 3), (0..k + 3)), 40);
        (Just(k), entries, probes).prop_map(|(k, raw, probes)| {
            // Deduplicate keys, first writer wins (the builders never
            // produce duplicates; PairTable asserts on them).
            let mut seen = HashMap::new();
            for (r, c, v) in raw {
                seen.entry((r, c)).or_insert(v);
            }
            let mut entries: Vec<(u32, u32, u64)> =
                seen.into_iter().map(|((r, c), v)| (r, c, v)).collect();
            entries.sort_unstable();
            (k, entries, probes)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense and CSR representations both agree with the `HashMap` model
    /// on every probe, hits and misses alike.
    #[test]
    fn pair_table_reps_agree_with_hashmap_model(case in pair_entries()) {
        let (k, entries, probes) = case;
        let model: HashMap<(usize, usize), u64> = entries
            .iter()
            .map(|&(r, c, v)| ((r as usize, c as usize), v))
            .collect();
        let dense = PairTable::dense(k, &entries);
        let csr = PairTable::csr(k, &entries);
        let auto = PairTable::auto(k, &entries);
        prop_assert_eq!(dense.len(), entries.len());
        prop_assert_eq!(csr.len(), entries.len());
        for &(r, c) in &probes {
            let want = model.get(&(r, c)).copied();
            prop_assert_eq!(dense.get(r, c), want, "dense ({}, {})", r, c);
            prop_assert_eq!(csr.get(r, c), want, "csr ({}, {})", r, c);
            prop_assert_eq!(auto.get(r, c), want, "auto ({}, {})", r, c);
        }
        // And over the full (plus one out-of-range rim) key square.
        for r in 0..k + 1 {
            for c in 0..k + 1 {
                prop_assert_eq!(dense.get(r, c), model.get(&(r, c)).copied());
                prop_assert_eq!(csr.get(r, c), model.get(&(r, c)).copied());
            }
        }
    }

    /// Both representations round-trip through the wire codec
    /// byte-identically, preserving the representation tag.
    #[test]
    fn pair_table_round_trips_byte_identically(case in pair_entries()) {
        let (k, entries, _probes) = case;
        for table in [PairTable::dense(k, &entries), PairTable::csr(k, &entries)] {
            let mut buf = Vec::new();
            table.write_into(&mut buf).unwrap();
            let back = PairTable::read_from(&mut &buf[..]).unwrap();
            prop_assert_eq!(&table, &back);
            let mut buf2 = Vec::new();
            back.write_into(&mut buf2).unwrap();
            prop_assert_eq!(buf, buf2);
            // Iteration agrees with construction.
            let got: Vec<(u32, u32, u64)> = table.iter().collect();
            prop_assert_eq!(got, entries.clone());
        }
    }

    /// Flat per-node route rows agree with the hash tables they were
    /// flattened from, across hits and misses.
    #[test]
    fn flat_tables_agree_with_route_table_model(
        tables in proptest::collection::vec(
            proptest::collection::vec(((0u32..30), 0u64..1_000, (0u32..4), (0u32..3)), 0..12),
            1..8,
        ),
        probes in proptest::collection::vec(((0u32..10), (0u32..33)), 60),
    ) {
        let model: Vec<RouteTable> = tables
            .iter()
            .map(|rows| {
                let mut t = RouteTable::default();
                for &(src, est, port, level) in rows {
                    t.insert(NodeId(src), RouteInfo { est, port, level });
                }
                t
            })
            .collect();
        let flat = FlatTables::from_tables(&model);
        prop_assert_eq!(flat.len_nodes(), model.len());
        for &(v, s) in &probes {
            let v = NodeId(v % model.len() as u32);
            let want = model[v.index()].get(&NodeId(s));
            let got = flat.get(v, NodeId(s));
            prop_assert_eq!(want.map(|r| (r.est, r.port)),
                got.map(|e| (e.est, e.port)), "({}, {})", v, s);
        }
        // The cold level array round-trips through unflatten.
        prop_assert_eq!(pde_repro::pde_core::tables::unflatten(&flat), model.clone());
        // Rows enumerate exactly the model's entries, sorted by source.
        for (v, table) in model.iter().enumerate() {
            let row = flat.row_vec(NodeId(v as u32));
            prop_assert_eq!(row.len(), table.len());
            prop_assert!(row.windows(2).all(|w| w[0].src < w[1].src));
        }
        // Byte-identical codec round-trip.
        let mut buf = Vec::new();
        flat.write_into(&mut buf).unwrap();
        let back = FlatTables::read_from(&mut &buf[..]).unwrap();
        prop_assert_eq!(&flat, &back);
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }
}
