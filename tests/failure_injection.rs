//! Failure-injection and edge-case tests: the model-level guard rails
//! (bandwidth enforcement, disconnected inputs, degenerate parameters,
//! message caps) fail loudly or degrade gracefully as documented.

use pde_repro::congest::{Config, Ctx, Message, NodeId, Program, Runtime, Topology};
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::WGraph;
use pde_repro::pde_core::{run_pde, PdeParams};
use pde_repro::sourcedetect::{run_detection, DetectParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
struct FatMsg;
impl Message for FatMsg {
    fn bit_size(&self) -> usize {
        10_000 // way over any reasonable B
    }
}

struct FatSender {
    sent: bool,
}
impl Program for FatSender {
    type Msg = FatMsg;
    fn round(&mut self, ctx: &mut Ctx<'_, FatMsg>) {
        if !self.sent && ctx.node() == NodeId(0) {
            self.sent = true;
            ctx.broadcast(FatMsg);
        }
    }
}

#[test]
fn oversize_messages_are_counted() {
    let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
    let programs = vec![FatSender { sent: false }, FatSender { sent: true }];
    let mut rt = Runtime::new(&topo, programs, Config::default());
    rt.run();
    assert_eq!(rt.metrics().bandwidth_violations, 1);
}

#[test]
#[should_panic(expected = "exceeds bandwidth")]
fn strict_bandwidth_panics() {
    let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
    let programs = vec![FatSender { sent: false }, FatSender { sent: true }];
    let cfg = Config {
        strict_bandwidth: true,
        ..Config::default()
    };
    let mut rt = Runtime::new(&topo, programs, cfg);
    rt.run();
}

#[test]
fn detection_messages_fit_congest_bandwidth() {
    // The real point of B = Θ(log n): every protocol message must fit.
    let mut rng = SmallRng::seed_from_u64(4);
    let g = gen::gnp_connected(30, 0.2, Weights::Uniform { lo: 1, hi: 1000 }, &mut rng);
    let sources = vec![true; 30];
    let out = run_pde(&g, &sources, &[false; 30], &PdeParams::new(30, 30, 0.5));
    // (dist, id, tag): comfortably within a 256-bit B for n=30, w≤1000.
    assert!(out.metrics.total.max_message_bits <= 128);
    assert_eq!(out.metrics.total.bandwidth_violations, 0);
}

#[test]
#[should_panic(expected = "connected")]
fn pde_rejects_disconnected_graphs() {
    let g = WGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
    run_pde(&g, &[true; 4], &[false; 4], &PdeParams::new(2, 2, 0.5));
}

#[test]
fn sigma_one_detects_single_closest() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = gen::path(10, Weights::Unit, &mut rng);
    let topo = g.to_topology();
    let sources = [
        true, false, false, false, false, false, false, false, false, true,
    ];
    let out = run_detection(
        &topo,
        &sources,
        &[false; 10],
        &DetectParams {
            h: 10,
            sigma: 1,
            msg_cap: None,
            exact_rounds: false,
        },
    );
    for v in 0..10 {
        assert_eq!(out.lists[v].len(), 1);
        let want = if v <= 4 { NodeId(0) } else { NodeId(9) };
        assert_eq!(out.lists[v][0].src, want, "node {v}");
    }
}

#[test]
fn message_cap_trades_accuracy_never_soundness() {
    // With a brutal cap, lists may be incomplete — but the entries that do
    // appear still never underestimate (soundness is unconditional).
    let mut rng = SmallRng::seed_from_u64(6);
    let g = gen::gnp_connected(20, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
    let sources = vec![true; 20];
    let capped = run_pde(
        &g,
        &sources,
        &[false; 20],
        &PdeParams {
            msg_cap: Some(2),
            ..PdeParams::new(20, 20, 0.5)
        },
    );
    let exact = pde_repro::graphs::algo::apsp(&g);
    for v in g.nodes() {
        for e in &capped.lists[v.index()] {
            assert!(e.est >= exact.dist(v, e.src));
        }
    }
}

#[test]
fn single_edge_graph_works_everywhere() {
    // Degenerate n=2: APSP, PDE, detection all behave.
    let g = WGraph::from_edges(2, &[(0, 1, 7)]).unwrap();
    let a = pde_repro::pde_core::approx_apsp(&g, 0.5);
    assert_eq!(a.dist(NodeId(0), NodeId(1)), 7);
    let exact = pde_repro::graphs::algo::apsp(&g);
    assert_eq!(a.max_stretch(&exact), 1.0);
}

#[test]
fn zero_eps_is_rejected() {
    let g = WGraph::from_edges(2, &[(0, 1, 1)]).unwrap();
    let res = std::panic::catch_unwind(|| {
        run_pde(&g, &[true; 2], &[false; 2], &PdeParams::new(1, 1, 0.0))
    });
    assert!(res.is_err(), "eps = 0 must be rejected");
}
