//! Failure-injection scenarios: the model-level guard rails (bandwidth
//! enforcement, disconnected inputs, degenerate parameters, message
//! caps) fail loudly or degrade gracefully as documented, and — the
//! dynamic-graph suite — edge/node failures injected against a **live**
//! `OracleServer` never panic, detour around the failure immediately,
//! and leave no stale next-hop once the repaired snapshot swaps in.

use pde_repro::congest::{Config, Ctx, Message, NodeId, Program, Runtime, Topology};
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::WGraph;
use pde_repro::oracle::{
    Backend, BuildError, DistanceOracle, FailoverOutcome, GraphDelta, OracleBuilder, TracedRoute,
};
use pde_repro::pde_core::{run_pde, try_run_pde, PdeParams};
use pde_repro::serve::{DynamicOracle, OracleServer};
use pde_repro::sourcedetect::{run_detection, DetectParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
struct FatMsg;
impl Message for FatMsg {
    fn bit_size(&self) -> usize {
        10_000 // way over any reasonable B
    }
}

struct FatSender {
    sent: bool,
}
impl Program for FatSender {
    type Msg = FatMsg;
    fn round(&mut self, ctx: &mut Ctx<'_, FatMsg>) {
        if !self.sent && ctx.node() == NodeId(0) {
            self.sent = true;
            ctx.broadcast(FatMsg);
        }
    }
}

#[test]
fn oversize_messages_are_counted() {
    let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
    let programs = vec![FatSender { sent: false }, FatSender { sent: true }];
    let mut rt = Runtime::new(&topo, programs, Config::default());
    rt.run();
    assert_eq!(rt.metrics().bandwidth_violations, 1);
}

#[test]
#[should_panic(expected = "exceeds bandwidth")]
fn strict_bandwidth_panics() {
    let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
    let programs = vec![FatSender { sent: false }, FatSender { sent: true }];
    let cfg = Config {
        strict_bandwidth: true,
        ..Config::default()
    };
    let mut rt = Runtime::new(&topo, programs, cfg);
    rt.run();
}

#[test]
fn detection_messages_fit_congest_bandwidth() {
    // The real point of B = Θ(log n): every protocol message must fit.
    let mut rng = SmallRng::seed_from_u64(4);
    let g = gen::gnp_connected(30, 0.2, Weights::Uniform { lo: 1, hi: 1000 }, &mut rng);
    let sources = vec![true; 30];
    let out = run_pde(&g, &sources, &[false; 30], &PdeParams::new(30, 30, 0.5));
    // (dist, id, tag): comfortably within a 256-bit B for n=30, w≤1000.
    assert!(out.metrics.total.max_message_bits <= 128);
    assert_eq!(out.metrics.total.bandwidth_violations, 0);
}

#[test]
fn pde_rejects_disconnected_graphs_with_typed_error() {
    let g = WGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
    let err = try_run_pde(&g, &[true; 4], &[false; 4], &PdeParams::new(2, 2, 0.5)).unwrap_err();
    assert!(
        matches!(err, BuildError::Disconnected { nodes: 4 }),
        "{err}"
    );
    // Every backend rejects the same input the same way, before any
    // pipeline stage can panic on it.
    for backend in Backend::ALL {
        let err = OracleBuilder::new(backend).try_build(&g).unwrap_err();
        assert!(
            matches!(err, BuildError::Disconnected { nodes: 4 }),
            "{backend}: {err}"
        );
    }
}

#[test]
fn sigma_one_detects_single_closest() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = gen::path(10, Weights::Unit, &mut rng);
    let topo = g.to_topology();
    let sources = [
        true, false, false, false, false, false, false, false, false, true,
    ];
    let out = run_detection(
        &topo,
        &sources,
        &[false; 10],
        &DetectParams {
            h: 10,
            sigma: 1,
            msg_cap: None,
            exact_rounds: false,
        },
    );
    for v in 0..10 {
        assert_eq!(out.lists[v].len(), 1);
        let want = if v <= 4 { NodeId(0) } else { NodeId(9) };
        assert_eq!(out.lists[v][0].src, want, "node {v}");
    }
}

#[test]
fn message_cap_trades_accuracy_never_soundness() {
    // With a brutal cap, lists may be incomplete — but the entries that do
    // appear still never underestimate (soundness is unconditional).
    let mut rng = SmallRng::seed_from_u64(6);
    let g = gen::gnp_connected(20, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
    let sources = vec![true; 20];
    let capped = run_pde(
        &g,
        &sources,
        &[false; 20],
        &PdeParams {
            msg_cap: Some(2),
            ..PdeParams::new(20, 20, 0.5)
        },
    );
    let exact = pde_repro::graphs::algo::apsp(&g);
    for v in g.nodes() {
        for e in &capped.lists[v.index()] {
            assert!(e.est >= exact.dist(v, e.src));
        }
    }
}

#[test]
fn single_edge_graph_works_everywhere() {
    // Degenerate n=2: APSP, PDE, detection all behave.
    let g = WGraph::from_edges(2, &[(0, 1, 7)]).unwrap();
    let a = pde_repro::pde_core::approx_apsp(&g, 0.5);
    assert_eq!(a.dist(NodeId(0), NodeId(1)), 7);
    let exact = pde_repro::graphs::algo::apsp(&g);
    assert_eq!(a.max_stretch(&exact), 1.0);
}

#[test]
fn zero_eps_is_rejected_with_typed_error() {
    let g = WGraph::from_edges(2, &[(0, 1, 1)]).unwrap();
    let err = try_run_pde(&g, &[true; 2], &[false; 2], &PdeParams::new(1, 1, 0.0)).unwrap_err();
    assert!(matches!(err, BuildError::InvalidParam { .. }), "{err}");
    let err = OracleBuilder::new(Backend::Pde)
        .eps(0.0)
        .try_build(&g)
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidParam { .. }), "{err}");
}

// ------------------------------------------- dynamic-graph scenarios --

/// A ring with a chord: sturdy enough that any single edge or node
/// failure leaves it connected, small enough for exact cross-checks.
fn chorded_ring(n: u32) -> WGraph {
    let mut edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, 2)).collect();
    edges.push((0, n / 2, 3));
    WGraph::from_edges(n as usize, &edges).unwrap()
}

fn small_builder(backend: Backend) -> OracleBuilder {
    OracleBuilder::new(backend).seed(7)
}

/// No route served off the repaired snapshot may cross the failed edge:
/// the artifact itself must have forgotten it, not just the mask.
fn assert_no_stale_next_hop(server: &OracleServer, name: &str, dead: (NodeId, NodeId)) {
    let lease = server.lease(name).unwrap();
    let oracle = lease.oracle();
    let n = oracle.len() as u32;
    let mut route = TracedRoute::default();
    for u in 0..n {
        for v in 0..n {
            let (u, v) = (NodeId(u), NodeId(v));
            if u == v || !oracle.route_into(u, v, &mut route) {
                continue;
            }
            for hop in route.nodes.windows(2) {
                let key = (hop[0].min(hop[1]), hop[0].max(hop[1]));
                assert!(
                    key != dead,
                    "stale next-hop: {u} → {v} still crosses failed edge {dead:?}"
                );
            }
        }
    }
}

#[test]
fn edge_failure_mid_serving_across_all_backends() {
    let g = chorded_ring(12);
    let (a, b) = (NodeId(3), NodeId(4));
    let delta = GraphDelta::FailEdge { u: a, v: b };
    let g_after = g.apply_delta(&delta).unwrap();
    for backend in Backend::ALL {
        let server = OracleServer::new();
        let dyn_oracle =
            DynamicOracle::install(&server, "live", small_builder(backend), &g).unwrap();
        let mut out = Vec::new();
        server
            .query("live", &[(NodeId(0), NodeId(6))], &mut out, 1)
            .unwrap();

        // Failure lands mid-serving: routes must stop using the edge
        // *now*, even though the artifact still contains it.
        dyn_oracle.fail_edge(a, b);
        let mut route = TracedRoute::default();
        let outcome = dyn_oracle.route(&server, a, b, &mut route).unwrap();
        if backend == Backend::BellmanFord {
            // Estimate-only backend: no topology, honest refusal.
            assert_eq!(outcome, FailoverOutcome::Unroutable, "{backend}");
        } else {
            assert!(
                matches!(outcome, FailoverOutcome::Detoured { .. }),
                "{backend}: {outcome:?}"
            );
            for hop in route.nodes.windows(2) {
                assert!(
                    (hop[0].min(hop[1]), hop[0].max(hop[1])) != (a, b),
                    "{backend}: detour crossed the failed edge"
                );
            }
        }

        // Repair off the live snapshot and hot-swap.
        let report = dyn_oracle.repair_and_swap(&server, &delta).unwrap();
        assert!(report.stale_window_nanos > 0, "{backend}");
        assert!(dyn_oracle.mask().is_clear(), "{backend}");
        if backend != Backend::BellmanFord {
            assert_no_stale_next_hop(&server, "live", (a, b));
        }

        // The swapped artifact is byte-identical to a fresh build on the
        // mutated graph (queries now reflect the new topology).
        let fresh = small_builder(backend).build(&g_after);
        let lease = server.lease("live").unwrap();
        assert_eq!(
            lease.oracle().artifact_bytes(),
            fresh.artifact_bytes(),
            "{backend}"
        );
    }
}

#[test]
fn node_failure_mid_serving_across_all_backends() {
    let g = chorded_ring(10);
    let dead = NodeId(7);
    let delta = GraphDelta::FailNode { v: dead };
    let g_after = g.apply_delta(&delta).unwrap();
    for backend in Backend::ALL {
        let server = OracleServer::new();
        let dyn_oracle =
            DynamicOracle::install(&server, "live", small_builder(backend), &g).unwrap();
        dyn_oracle.fail_node(dead);
        // Routes around the dead node (6 → 8 must not pass through 7).
        let mut route = TracedRoute::default();
        let outcome = dyn_oracle
            .route(&server, NodeId(6), NodeId(8), &mut route)
            .unwrap();
        if backend != Backend::BellmanFord {
            assert!(outcome.routed(), "{backend}: {outcome:?}");
            assert!(
                route.nodes.iter().all(|&x| x != dead),
                "{backend}: routed through the failed node"
            );
        }
        // Node repair is a rebuild everywhere (ids renumber), and the
        // mask resets to the new id space.
        let report = dyn_oracle.repair_and_swap(&server, &delta).unwrap();
        assert_eq!(report.repair.kind.tag(), "rebuilt", "{backend}");
        let mask = dyn_oracle.mask();
        assert!(mask.is_clear() && mask.len() == 9, "{backend}");
        let fresh = small_builder(backend).build(&g_after);
        let lease = server.lease("live").unwrap();
        assert_eq!(
            lease.oracle().artifact_bytes(),
            fresh.artifact_bytes(),
            "{backend}"
        );
    }
}

#[test]
fn concurrent_queries_survive_failure_and_swap() {
    // Hammer the server from reader threads while the main thread
    // injects a failure and swaps in the repaired snapshot: no panic,
    // every query answered, and the post-swap generation serves the
    // mutated graph.
    let g = chorded_ring(16);
    let delta = GraphDelta::FailEdge {
        u: NodeId(9),
        v: NodeId(10),
    };
    let server = OracleServer::new();
    let dyn_oracle =
        DynamicOracle::install(&server, "live", OracleBuilder::new(Backend::Flooding), &g).unwrap();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        for t in 0..3 {
            let (server, stop) = (&server, &stop);
            scope.spawn(move || {
                let pairs = vec![(NodeId(t), NodeId(15 - t))];
                let mut out = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    server.query("live", &pairs, &mut out, 1).unwrap();
                    assert_eq!(out.len(), 1);
                }
            });
        }
        let report = dyn_oracle.repair_and_swap(&server, &delta).unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        report
    });
    assert_eq!(report.repair.kind.tag(), "incremental");
    assert!(report.stale_window_nanos > 0);
    let fresh = OracleBuilder::new(Backend::Flooding).build(&g.apply_delta(&delta).unwrap());
    let lease = server.lease("live").unwrap();
    assert_eq!(lease.generation(), report.generation);
    assert_eq!(lease.oracle().artifact_bytes(), fresh.artifact_bytes());
}

#[test]
fn socket_clients_survive_live_repair_and_swap() {
    // The same scenario pushed through real sockets: client threads
    // hammer estimate_many over TCP while an admin connection injects an
    // edge failure and swaps in the repaired snapshot. Required: no
    // panic on either side, no route through the dead edge after the
    // mask lands, and every socket reply coherent — the answer vector
    // must match the generation that claims to have served it, never a
    // mix of pre- and post-repair rows.
    use pde_repro::net::{Client, NetServer, RouteOutcome, ServerConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    let g = chorded_ring(16);
    let (a, b) = (NodeId(9), NodeId(10));
    let delta = GraphDelta::FailEdge { u: a, v: b };
    let pairs: Vec<(NodeId, NodeId)> = (0..16u32)
        .map(|t| (NodeId(t), NodeId((t + 7) % 16)))
        .collect();

    // The only two coherent answer vectors: pre-repair (generation 1)
    // and post-repair (generation 2), computed from scratch.
    let mut pre = Vec::new();
    OracleBuilder::new(Backend::Flooding)
        .build(&g)
        .estimate_many(&pairs, &mut pre);
    let mut post = Vec::new();
    OracleBuilder::new(Backend::Flooding)
        .build(&g.apply_delta(&delta).unwrap())
        .estimate_many(&pairs, &mut post);
    assert_ne!(pre, post, "the delta must be visible in the answers");

    let registry = std::sync::Arc::new(OracleServer::new());
    let server = NetServer::bind(
        "127.0.0.1:0",
        std::sync::Arc::clone(&registry),
        ServerConfig::default(),
    )
    .unwrap();
    let dynamic =
        DynamicOracle::install(&registry, "live", OracleBuilder::new(Backend::Flooding), &g)
            .unwrap();
    server.register_dynamic(dynamic);
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    let summary = std::thread::scope(|scope| {
        for _ in 0..3 {
            let (stop, pairs, pre, post) = (&stop, &pairs, &pre, &post);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let (ests, generation) = client.estimate_many("live", pairs, false).unwrap();
                    match generation {
                        1 => assert_eq!(&ests, pre, "generation 1 served mixed answers"),
                        2 => assert_eq!(&ests, post, "generation 2 served mixed answers"),
                        other => panic!("unexpected generation {other}"),
                    }
                }
            });
        }
        let mut admin = Client::connect(addr).unwrap();
        // Mask over the wire: routes must detour immediately, while the
        // readers keep getting coherent generation-1 estimates.
        admin.fail_edge("live", a, b).unwrap();
        let (outcome, route) = admin.route("live", a, b).unwrap();
        assert!(
            matches!(outcome, RouteOutcome::Detoured { .. }),
            "{outcome:?}"
        );
        for hop in route.unwrap().nodes.windows(2) {
            assert!(
                (hop[0].min(hop[1]), hop[0].max(hop[1])) != (a, b),
                "socket route crossed the failed edge"
            );
        }
        // Repair over the wire; the hot swap lands between batches.
        let summary = admin.repair_and_swap("live", &delta).unwrap();
        // Let the readers observe the new generation before stopping.
        let (_, generation) = admin.estimate_many("live", &pairs, false).unwrap();
        assert_eq!(generation, summary.generation);
        stop.store(true, Ordering::Relaxed);
        summary
    });
    assert_eq!(summary.generation, 2);
    assert!(summary.incremental, "flooding repairs incrementally");
    assert!(summary.stale_window_nanos > 0);
    assert_no_stale_next_hop(&registry, "live", (a, b));
    server.shutdown();
}
