//! Smoke test for `examples/quickstart.rs`.
//!
//! The example file is `include!`d verbatim, so this test compiles the
//! exact code shown to users against the public umbrella API and runs it;
//! if the quickstart rots, `cargo test` fails — not just
//! `cargo build --examples`.

// `main` is only used when the file is built as an example.
#[allow(dead_code)]
mod quickstart {
    include!("../examples/quickstart.rs");
}

#[test]
fn quickstart_example_runs() {
    quickstart::demo().expect("quickstart example failed");
}
