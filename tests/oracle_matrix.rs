//! Backend matrix: every [`Backend`] built through [`OracleBuilder`] on
//! seeded random graphs (a) answers `estimate`/`estimate_many` through the
//! `DistanceOracle` trait, (b) satisfies its advertised `stretch_bound()`
//! against `graphs::algo::apsp` ground truth, and (c) round-trips through
//! `save`/`load` with bit-identical answers on 1k random queries.

use pde_repro::graphs::algo::apsp;
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::{NodeId, Seed, WGraph};
use pde_repro::oracle::{evaluate, Backend, DistanceOracle, Oracle, OracleBuilder, PairSelection};

fn graph(seed: u64) -> WGraph {
    let mut rng = Seed(seed).rng();
    gen::gnp_connected(26, 0.18, Weights::Uniform { lo: 1, hi: 30 }, &mut rng)
}

fn build(backend: Backend, g: &WGraph, seed: u64) -> Oracle {
    OracleBuilder::new(backend).seed(seed).k(2).build(g)
}

#[test]
fn every_backend_meets_its_advertised_stretch_bound() {
    for graph_seed in [1u64, 2] {
        let g = graph(graph_seed);
        let exact = apsp(&g);
        for backend in Backend::ALL {
            let oracle = build(backend, &g, 7 + graph_seed);
            assert_eq!(oracle.len(), g.len());
            assert_eq!(oracle.backend(), backend);
            let report = evaluate(&oracle, &g, &exact, PairSelection::All);
            assert!(
                report.failures.is_empty(),
                "{backend} (graph {graph_seed}): {:?}",
                &report.failures[..report.failures.len().min(5)]
            );
            let bound = oracle.stretch_bound();
            assert!(
                report.max_estimate_stretch <= bound + 1e-9,
                "{backend}: estimate stretch {} exceeds advertised {bound}",
                report.max_estimate_stretch
            );
            if report.routed > 0 {
                assert_eq!(report.routed, report.pairs, "{backend}: partial routing");
                assert!(
                    report.max_route_stretch <= bound + 1e-9,
                    "{backend}: route stretch {} exceeds advertised {bound}",
                    report.max_route_stretch
                );
            }
            assert!(report.size_bits > 0, "{backend}: empty artifact");
            assert!(report.p50_stretch >= 1.0 - 1e-12 && report.p50_stretch <= bound + 1e-9);
            assert!(report.p99_stretch <= bound + 1e-9);
        }
    }
}

#[test]
fn batch_queries_agree_with_point_queries() {
    let g = graph(3);
    let pairs: Vec<(NodeId, NodeId)> = (0..g.len() as u32)
        .flat_map(|u| (0..g.len() as u32).map(move |v| (NodeId(u), NodeId(v))))
        .collect();
    for backend in Backend::ALL {
        let oracle = build(backend, &g, 11);
        let mut batch = Vec::new();
        oracle.estimate_many(&pairs, &mut batch);
        assert_eq!(batch.len(), pairs.len(), "{backend}");
        for (&(u, v), &b) in pairs.iter().zip(&batch) {
            assert_eq!(b, oracle.estimate(u, v), "{backend} ({u},{v})");
            if u == v {
                assert_eq!(b, 0, "{backend}: nonzero diagonal");
            }
        }
    }
}

#[test]
fn batch_answers_are_identical_for_every_thread_count() {
    // The estimate_many_with determinism contract: the pair slice is
    // sharded into contiguous chunks with order-preserving writes, so
    // threads ∈ {1, 4, auto} must produce byte-identical outputs for
    // every backend (and agree with the sequential estimate_many).
    let g = graph(7);
    let square: Vec<(NodeId, NodeId)> = (0..g.len() as u32)
        .flat_map(|u| (0..g.len() as u32).map(move |v| (NodeId(u), NodeId(v))))
        .collect();
    // Tile past the per-worker shard floor (~1k pairs each) so the scoped
    // workers actually spawn.
    let pairs: Vec<(NodeId, NodeId)> = square
        .iter()
        .cycle()
        .take(8 * square.len())
        .copied()
        .collect();
    for backend in Backend::ALL {
        let oracle = build(backend, &g, 17);
        let mut seq = Vec::new();
        oracle.estimate_many(&pairs, &mut seq);
        for threads in [1usize, 4, 0] {
            let mut par = Vec::new();
            oracle.estimate_many_with(&pairs, &mut par, threads);
            assert_eq!(seq, par, "{backend}: threads={threads} changed answers");
        }
    }
}

#[test]
fn route_into_reuses_buffers_and_matches_route() {
    let g = graph(8);
    let mut buf = pde_repro::oracle::TracedRoute::default();
    for backend in Backend::ALL {
        let oracle = build(backend, &g, 19);
        for u in g.nodes().take(8) {
            for v in g.nodes().take(8) {
                let fresh = oracle.route(u, v);
                let ok = oracle.route_into(u, v, &mut buf);
                match fresh {
                    Some(r) => {
                        assert!(ok, "{backend} ({u},{v}): route_into disagrees with route");
                        assert_eq!(r, buf, "{backend} ({u},{v})");
                    }
                    None => assert!(!ok, "{backend} ({u},{v}): route_into found a phantom route"),
                }
            }
        }
    }
}

#[test]
fn save_load_round_trips_bit_identically_on_1k_random_queries() {
    let g = graph(4);
    use rand::Rng;
    let mut rng = Seed(0xDEC0DE).rng();
    let n = g.len() as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..1000)
        .map(|_| {
            (
                NodeId(rng.random_range(0..n)),
                NodeId(rng.random_range(0..n)),
            )
        })
        .collect();
    for backend in Backend::ALL {
        let oracle = build(backend, &g, 13);
        let mut bytes = Vec::new();
        oracle.save(&mut bytes).expect("save succeeds");
        assert_eq!(
            oracle.size_bits(),
            8 * bytes.len() as u64,
            "{backend}: size_bits must equal the serialized artifact size"
        );
        let loaded = Oracle::load(&mut &bytes[..]).expect("load succeeds");
        assert_eq!(loaded.backend(), backend);
        assert_eq!(loaded.len(), oracle.len());

        // Bit-identical point, batch and routing answers.
        let mut a = Vec::new();
        let mut b = Vec::new();
        oracle.estimate_many(&queries, &mut a);
        loaded.estimate_many(&queries, &mut b);
        assert_eq!(a, b, "{backend}: batch answers diverge after reload");
        for &(u, v) in &queries {
            assert_eq!(
                oracle.estimate(u, v),
                loaded.estimate(u, v),
                "{backend} ({u},{v})"
            );
            assert_eq!(
                oracle.next_hop(u, v),
                loaded.next_hop(u, v),
                "{backend} ({u},{v})"
            );
            assert_eq!(
                oracle.route(u, v),
                loaded.route(u, v),
                "{backend} ({u},{v})"
            );
        }

        // Metrics and bounds survive the round trip.
        assert_eq!(
            oracle.build_metrics().rounds,
            loaded.build_metrics().rounds,
            "{backend}"
        );
        assert_eq!(oracle.stretch_bound(), loaded.stretch_bound(), "{backend}");

        // Re-saving the loaded oracle reproduces the byte stream.
        let mut bytes2 = Vec::new();
        loaded.save(&mut bytes2).expect("re-save succeeds");
        assert_eq!(bytes, bytes2, "{backend}: snapshot is not canonical");
    }
}

#[test]
fn v3_snapshots_round_trip_and_answer_identically_to_v2() {
    // The v2 ↔ v3 cross-version matrix: for every backend, the arena
    // snapshot must (a) load back, (b) re-save byte-identically, and
    // (c) answer point, batch and routing queries bit-identically to the
    // oracle loaded from the v2 stream of the same build.
    let g = graph(4);
    use rand::Rng;
    let mut rng = Seed(0xDEC0DE).rng();
    let n = g.len() as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..1000)
        .map(|_| {
            (
                NodeId(rng.random_range(0..n)),
                NodeId(rng.random_range(0..n)),
            )
        })
        .collect();
    for backend in Backend::ALL {
        let oracle = build(backend, &g, 13);
        let mut v2 = Vec::new();
        oracle.save(&mut v2).expect("v2 save succeeds");
        let mut v3 = Vec::new();
        oracle.save_v3(&mut v3).expect("v3 save succeeds");
        assert_ne!(v2, v3, "{backend}: versions share a byte stream?");

        let from_v2 = Oracle::load(&mut &v2[..]).expect("v2 load succeeds");
        let from_v3 = Oracle::load(&mut &v3[..]).expect("v3 load succeeds");
        assert_eq!(from_v3.backend(), backend);
        assert_eq!(from_v3.len(), oracle.len());

        // Re-saving the v3-loaded oracle reproduces the arena stream.
        let mut v3_again = Vec::new();
        from_v3.save_v3(&mut v3_again).expect("re-save succeeds");
        assert_eq!(v3, v3_again, "{backend}: v3 snapshot is not canonical");
        // And it can still emit a v2 stream identical to the original.
        let mut v2_again = Vec::new();
        from_v3.save(&mut v2_again).expect("v2 re-save succeeds");
        assert_eq!(v2, v2_again, "{backend}: v3 load lost v2 state");

        // The in-memory fast path agrees with the streaming path.
        let from_buf = Oracle::load_bytes(&v3).expect("load_bytes succeeds");

        let mut a = Vec::new();
        let mut b = Vec::new();
        from_v2.estimate_many(&queries, &mut a);
        from_v3.estimate_many(&queries, &mut b);
        assert_eq!(a, b, "{backend}: v3 batch answers diverge from v2");
        from_buf.estimate_many(&queries, &mut b);
        assert_eq!(a, b, "{backend}: load_bytes answers diverge");
        for &(u, v) in &queries {
            assert_eq!(
                from_v2.estimate(u, v),
                from_v3.estimate(u, v),
                "{backend} ({u},{v})"
            );
            assert_eq!(
                from_v2.next_hop(u, v),
                from_v3.next_hop(u, v),
                "{backend} ({u},{v})"
            );
            assert_eq!(
                from_v2.route(u, v),
                from_v3.route(u, v),
                "{backend} ({u},{v})"
            );
        }
        assert_eq!(
            from_v2.build_metrics().rounds,
            from_v3.build_metrics().rounds,
            "{backend}"
        );
        assert_eq!(
            from_v2.stretch_bound(),
            from_v3.stretch_bound(),
            "{backend}"
        );
    }
}

#[test]
#[should_panic(expected = "one slot per pair")]
fn estimate_into_rejects_mismatched_batch_shapes() {
    // The batch kernel's shape contract is checked in release builds too:
    // a short output slice must panic, not silently skip the tail.
    let g = graph(3);
    let oracle = build(Backend::Flooding, &g, 11);
    let pairs = [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))];
    let mut out = [0u64; 1];
    oracle.estimate_into(&pairs, &mut out);
}

#[test]
fn corrupted_snapshots_are_rejected() {
    let g = graph(5);
    let oracle = build(Backend::ApproxApsp, &g, 1);
    let mut bytes = Vec::new();
    oracle.save(&mut bytes).unwrap();
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(Oracle::load(&mut &bad[..]).is_err());
    // Bad version.
    let mut bad = bytes.clone();
    bad[4] = 0xFF;
    assert!(Oracle::load(&mut &bad[..]).is_err());
    // Truncated payload.
    let half = &bytes[..bytes.len() / 2];
    assert!(Oracle::load(&mut &half[..]).is_err());
    // Tampered node count: a snapshot claiming an absurd n must come back
    // as InvalidData, not abort on a huge allocation. The BellmanFord
    // payload starts with its u64 node count right after the 39-byte
    // header.
    let bf = build(Backend::BellmanFord, &g, 1);
    let mut bytes = Vec::new();
    bf.save(&mut bytes).unwrap();
    bytes[39..47].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(Oracle::load(&mut &bytes[..]).is_err());
}

#[test]
fn pde_backend_supports_partial_source_sets() {
    let g = graph(6);
    let n = g.len();
    let sources: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let oracle = OracleBuilder::new(Backend::Pde)
        .sources(sources.clone())
        .horizon(n as u64)
        .build(&g);
    let exact = apsp(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            let est = oracle.estimate(u, v);
            if u == v {
                assert_eq!(est, 0);
            } else if sources[v.index()] {
                assert!(est >= exact.dist(u, v), "({u},{v}) underestimates");
                assert!(
                    est as f64 <= oracle.stretch_bound() * exact.dist(u, v) as f64 + 1e-9,
                    "({u},{v}): est {est} vs wd {}",
                    exact.dist(u, v)
                );
                // Route tracing straight from the trait — no Topology
                // plumbing on the caller side.
                let route = oracle.route(u, v).expect("covered pair routes");
                assert_eq!(*route.nodes.last().unwrap(), v);
                assert_eq!(route.hops(), route.nodes.len() - 1);
                assert!(route.weight <= est, "route heavier than estimate");
            } else {
                assert_eq!(est, pde_repro::graphs::INF, "non-source {v} covered?");
            }
        }
    }
}
