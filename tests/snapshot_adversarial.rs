//! Adversarial snapshot inputs: truncations at every byte boundary and
//! corrupted length fields must surface as `InvalidData` — typed
//! [`SnapshotError::Truncated`](pde_repro::congest::wire::SnapshotError)
//! for short streams — and never panic or request absurd allocations.

use pde_repro::congest::wire::is_truncated;
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::{Seed, WGraph};
use pde_repro::oracle::{Backend, Oracle, OracleBuilder};

fn graph(seed: u64) -> WGraph {
    let mut rng = Seed(seed).rng();
    gen::gnp_connected(18, 0.22, Weights::Uniform { lo: 1, hi: 9 }, &mut rng)
}

fn snapshots(backend: Backend) -> (Vec<u8>, Vec<u8>) {
    let oracle = OracleBuilder::new(backend).seed(23).k(2).build(&graph(21));
    let mut v2 = Vec::new();
    oracle.save(&mut v2).unwrap();
    let mut v3 = Vec::new();
    oracle.save_v3(&mut v3).unwrap();
    (v2, v3)
}

#[test]
fn every_one_byte_truncation_is_typed_truncated() {
    // Cut one byte at a time off the tail of a small PDOR file, through
    // every record boundary down to the empty stream: each prefix must
    // load as an error, and each error must be the *typed* truncation
    // (not a raw UnexpectedEof, not a misdiagnosed corruption). The v2
    // stream of one scheme backend and one matrix backend covers every
    // record shape (graphs, CSR tables, trees, labels, matrices); the
    // v3 arena path is swept for the same property.
    for backend in [Backend::Compact, Backend::ApproxApsp] {
        let (v2, v3) = snapshots(backend);
        for bytes in [&v2, &v3] {
            for keep in 0..bytes.len() {
                let err = match Oracle::load(&mut &bytes[..keep]) {
                    Err(e) => e,
                    Ok(_) => panic!("{backend}: truncation to {keep} bytes accepted"),
                };
                assert_eq!(
                    err.kind(),
                    std::io::ErrorKind::InvalidData,
                    "{backend} at {keep}: {err}"
                );
                assert!(
                    is_truncated(&err),
                    "{backend} at {keep}: untyped truncation: {err}"
                );
                assert!(
                    Oracle::load_bytes(&bytes[..keep]).is_err(),
                    "{backend} at {keep}: load_bytes accepted a truncation"
                );
            }
        }
    }
}

#[test]
fn every_single_byte_corruption_errors_or_loads_but_never_panics() {
    // Flip each byte of a full snapshot to 0xFF ^ original: loads may
    // succeed (bytes in unvalidated metric fields) but must never panic,
    // wrap a length into a huge allocation, or loop. The v3 arena is
    // stricter: its checksum means any body/directory damage must fail.
    for backend in [Backend::Rtc, Backend::Flooding] {
        let (v2, v3) = snapshots(backend);
        for at in 0..v2.len() {
            let mut bad = v2.clone();
            bad[at] ^= 0xFF;
            let _ = Oracle::load(&mut &bad[..]);
        }
        // v2 header metric bytes (rounds/msgs/nanos, offsets 15..39) are
        // carried, not validated — everything else must be rejected.
        let v3_header = 4 + 2 + 1 + 1; // magic + version + backend + pad
        let metrics_end = v3_header + 4 * 8;
        for at in 0..v3.len() {
            let mut bad = v3.clone();
            bad[at] ^= 0xFF;
            let loaded = Oracle::load_bytes(&bad);
            if at >= metrics_end {
                assert!(
                    loaded.is_err(),
                    "{backend}: v3 corruption at {at} survived the checksum"
                );
            }
        }
    }
}

#[test]
fn adversarial_length_fields_are_invalid_data_not_aborts() {
    // Plant maximal length/count fields at the front of each payload:
    // the readers must reject them by bound-check (InvalidData) before
    // any allocation sized by the field. The BellmanFord payload leads
    // with its node count, ApproxApsp with ε then the graph's node
    // count — both right after the 39-byte v2 header.
    let (bf_v2, _) = snapshots(Backend::BellmanFord);
    let mut bad = bf_v2.clone();
    bad[39..47].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = Oracle::load(&mut &bad[..]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(!is_truncated(&err), "bound check misreported as truncation");

    // Huge dense-matrix length prefix inside the payload: the length is
    // validated against the expected cell count.
    let (aps_v2, _) = snapshots(Backend::ApproxApsp);
    // Header (39) + eps (8) precede the graph; corrupt the graph's node
    // count field.
    let mut bad = aps_v2.clone();
    bad[47..55].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    let err = Oracle::load(&mut &bad[..]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // An adversarial v3 section directory: huge section count.
    let (_, mut v3) = snapshots(Backend::BellmanFord);
    let body_at = 4 + 2 + 1 + 1 + 4 * 8;
    v3[body_at..body_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = Oracle::load_bytes(&v3).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
