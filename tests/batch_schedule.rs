//! Property-based tests for the source-grouped batch query kernel
//! (PR 10): for every backend, grouped == ungrouped == scalar answers,
//! byte-identically, across batch orders (sorted, shuffled, reversed,
//! duplicate pairs, the diagonal) and thread counts ∈ {1, 4}.
//!
//! Two layers are pinned. [`DistanceOracle::estimate_grouped`] is probed
//! directly against a schedule built from random pairs — its scattered
//! answers must equal a scalar `estimate` sweep. And the full
//! `estimate_many_with` path is driven with batches large enough to
//! cross the grouping gate, in every order and at both thread counts,
//! asserting the submission-order answers never change.

use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::NodeId;
use pde_repro::oracle::{Backend, DistanceOracle, Oracle, OracleBuilder};
use pde_repro::pde_core::BatchSchedule;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

const N: usize = 40;

/// One build per backend for the whole test binary — the properties are
/// about the query path, so the (expensive) builds are shared.
fn oracles() -> &'static Vec<(Backend, Oracle)> {
    static ORACLES: OnceLock<Vec<(Backend, Oracle)>> = OnceLock::new();
    ORACLES.get_or_init(|| {
        let mut rng = SmallRng::seed_from_u64(0xBA7C5);
        let g = gen::gnp_connected(N, 0.14, Weights::Uniform { lo: 1, hi: 24 }, &mut rng);
        Backend::ALL
            .into_iter()
            .map(|b| (b, OracleBuilder::new(b).seed(7u64).k(2).build(&g)))
            .collect()
    })
}

/// Scalar ground truth in submission order.
fn scalar(o: &Oracle, pairs: &[(NodeId, NodeId)]) -> Vec<u64> {
    pairs.iter().map(|&(u, v)| o.estimate(u, v)).collect()
}

/// Applies `perm` to `pairs`, runs the batch, and un-permutes the
/// answers back to submission order.
fn run_permuted(o: &Oracle, pairs: &[(NodeId, NodeId)], perm: &[u32], threads: usize) -> Vec<u64> {
    let permuted: Vec<(NodeId, NodeId)> = perm.iter().map(|&i| pairs[i as usize]).collect();
    let mut out = Vec::new();
    o.estimate_many_with(&permuted, &mut out, threads);
    let mut unpermuted = vec![0u64; pairs.len()];
    for (&i, &ans) in perm.iter().zip(&out) {
        unpermuted[i as usize] = ans;
    }
    unpermuted
}

/// Random pairs over the node range, diagonal and duplicates included
/// (the generator happily repeats pairs; the diagonal is forced below).
fn pair_vec(len: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    proptest::collection::vec(((0..N as u32), (0..N as u32)), len).prop_map(|raw| {
        raw.into_iter()
            .map(|(u, v)| (NodeId(u), NodeId(v)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `estimate_grouped` + scatter equals a scalar sweep on every
    /// backend, for schedules built from arbitrary (duplicate-heavy)
    /// batches.
    #[test]
    fn grouped_kernel_matches_scalar(pairs in pair_vec(120), dup in 0usize..120) {
        // Force a duplicated pair and a diagonal entry into every case.
        let mut pairs = pairs;
        let d = pairs[dup % pairs.len()];
        pairs.push(d);
        pairs.push((d.0, d.0));
        let sched = BatchSchedule::build(&pairs, N);
        for (backend, o) in oracles() {
            let want = scalar(o, &pairs);
            let mut grouped = vec![0u64; pairs.len()];
            o.estimate_grouped(&pairs, sched.order(), &mut grouped);
            let mut got = vec![0u64; pairs.len()];
            sched.scatter(&grouped, &mut got);
            prop_assert_eq!(&got, &want, "{}: grouped kernel diverged", backend);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full batch path answers identically for every batch order and
    /// thread count — including batches below the grouping gate, where
    /// the direct path must agree with the scheduled one.
    #[test]
    fn batch_orders_and_threads_are_unobservable(pairs in pair_vec(64), shuffle_seed in 0u64..1000) {
        let mut shuffled: Vec<u32> = (0..pairs.len() as u32).collect();
        let mut rng = SmallRng::seed_from_u64(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.random_range(0..=i));
        }
        let mut sorted: Vec<u32> = (0..pairs.len() as u32).collect();
        sorted.sort_by_key(|&i| {
            let (u, v) = pairs[i as usize];
            (u.0, v.0)
        });
        let reversed: Vec<u32> = (0..pairs.len() as u32).rev().collect();
        for (backend, o) in oracles() {
            let want = scalar(o, &pairs);
            for perm in [&shuffled, &sorted, &reversed] {
                for threads in [1usize, 4] {
                    let got = run_permuted(o, &pairs, perm, threads);
                    prop_assert_eq!(
                        &got, &want,
                        "{}: batch order/threads={} changed answers", backend, threads
                    );
                }
            }
        }
    }
}

/// The grouping gate is crossed: a batch comfortably above ~4k pairs
/// runs the scheduled path (sequentially and sharded across 4 workers)
/// and must still answer byte-identically in every order.
#[test]
fn large_batches_cross_the_grouping_gate_deterministically() {
    let mut rng = SmallRng::seed_from_u64(0x5CED);
    let mut pairs: Vec<(NodeId, NodeId)> = (0..6_000)
        .map(|_| {
            (
                NodeId(rng.random_range(0..N as u32)),
                NodeId(rng.random_range(0..N as u32)),
            )
        })
        .collect();
    pairs.extend((0..N as u32).map(|u| (NodeId(u), NodeId(u))));

    let mut shuffled: Vec<u32> = (0..pairs.len() as u32).collect();
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.random_range(0..=i));
    }
    let mut sorted: Vec<u32> = (0..pairs.len() as u32).collect();
    sorted.sort_by_key(|&i| {
        let (u, v) = pairs[i as usize];
        (u.0, v.0)
    });
    let reversed: Vec<u32> = (0..pairs.len() as u32).rev().collect();

    for (backend, o) in oracles() {
        let mut want = Vec::new();
        o.estimate_many_with(&pairs, &mut want, 1);
        assert_eq!(
            want,
            scalar(o, &pairs),
            "{backend}: batch diverged from scalar"
        );
        for (name, perm) in [
            ("shuffled", &shuffled),
            ("sorted", &sorted),
            ("reversed", &reversed),
        ] {
            for threads in [1usize, 4] {
                let got = run_permuted(o, &pairs, perm, threads);
                assert_eq!(
                    got, want,
                    "{backend}: {name} order at threads={threads} changed answers"
                );
            }
        }
    }
}
