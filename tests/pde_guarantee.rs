//! End-to-end check of the PDE estimation guarantee (Definition 2.2 /
//! Theorem 3.3) on seeded random weighted graphs, against *independent*
//! ground truth from `crates/baselines`: the link-state baseline (topology
//! flooding + local Dijkstra) and the pipelined Bellman–Ford baseline,
//! cross-checked against each other before being trusted.
//!
//! For every node `v` and source `s` whose shortest weighted path uses at
//! most `h` hops (the paper's `h_{v,s} ≤ h`, with minimum-hop
//! tie-breaking), running PDE with `σ = |S|` must produce an entry for `s`
//! at `v` with
//!
//! ```text
//! wd(v, s) ≤ est ≤ (1 + ε) · wd(v, s)
//! ```
//!
//! and *every* listed entry — covered by the horizon or not — must be
//! sound (`est ≥ wd`, exactly, in integer arithmetic).

use pde_repro::baselines::{bellman_ford_apsp, flooding_apsp};
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::WGraph;
use pde_repro::pde_core::{run_pde, PdeParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Checks the PDE guarantee for one graph / source set / horizon / ε.
fn check_guarantee(g: &WGraph, sources: &[bool], h: u64, eps: f64, label: &str) {
    let n = g.len();
    assert_eq!(sources.len(), n, "{label}: bad source flags");
    let sigma = sources.iter().filter(|&&s| s).count();
    assert!(sigma > 0, "{label}: empty source set");

    // Ground truth, twice over: OSPF-style flooding (local Dijkstra) and
    // RIP-style Bellman–Ford must agree exactly before we trust either.
    let truth = flooding_apsp(g).apsp;
    let bf = bellman_ford_apsp(g);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(
                truth.dist(u, v),
                bf.dist(u, v),
                "{label}: Dijkstra and Bellman–Ford ground truths disagree at ({u}, {v})"
            );
        }
    }

    let out = run_pde(g, sources, &vec![false; n], &PdeParams::new(h, sigma, eps));

    for v in g.nodes() {
        let list = &out.lists[v.index()];
        assert!(
            list.len() <= sigma,
            "{label}: node {v} lists {} entries for σ = {sigma}",
            list.len()
        );

        // Soundness of everything reported, inside the horizon or not.
        for e in list {
            assert!(
                e.est >= truth.dist(v, e.src),
                "{label}: underestimate at ({v}, {}): {} < {}",
                e.src,
                e.est,
                truth.dist(v, e.src)
            );
        }

        // Completeness + (1+ε) accuracy for horizon-covered pairs.
        for s in g.nodes() {
            if !sources[s.index()] || u64::from(truth.hops(v, s)) > h {
                continue;
            }
            let wd = truth.dist(v, s);
            let e = list.iter().find(|e| e.src == s).unwrap_or_else(|| {
                panic!(
                    "{label}: source {s} within {} ≤ {h} hops of {v} missing from its list",
                    truth.hops(v, s)
                )
            });
            assert!(
                e.est as f64 <= (1.0 + eps) * wd as f64 + 1e-9,
                "{label}: estimate {} at ({v}, {s}) exceeds (1+{eps})·{wd}",
                e.est
            );
        }
    }
}

/// Sources on every third node.
fn sparse_sources(n: usize) -> Vec<bool> {
    (0..n).map(|i| i % 3 == 0).collect()
}

#[test]
fn gnp_uniform_weights_meet_guarantee() {
    for seed in [1u64, 2, 3] {
        for eps in [0.25, 0.5] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(16, 0.25, Weights::Uniform { lo: 1, hi: 50 }, &mut rng);
            let n = g.len();
            for h in [2u64, 4, n as u64] {
                let label = format!("gnp uniform seed={seed} eps={eps} h={h}");
                check_guarantee(&g, &sparse_sources(n), h, eps, &label);
            }
        }
    }
}

#[test]
fn gnp_power_of_two_weights_meet_guarantee() {
    // Heavy-tailed weights exercise many rungs of the (1+ε) weight ladder.
    for seed in [7u64, 8] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnp_connected(14, 0.3, Weights::PowerOfTwo { max_exp: 6 }, &mut rng);
        let n = g.len();
        for h in [3u64, n as u64] {
            let label = format!("gnp pow2 seed={seed} h={h}");
            check_guarantee(&g, &sparse_sources(n), h, 0.5, &label);
        }
    }
}

#[test]
fn random_tree_long_hop_paths_meet_guarantee() {
    // Trees maximize hop counts, so the horizon filter actually bites.
    for seed in [11u64, 12] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::random_tree(24, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let n = g.len();
        for h in [2u64, 5, n as u64] {
            let label = format!("tree seed={seed} h={h}");
            check_guarantee(&g, &sparse_sources(n), h, 0.25, &label);
        }
    }
}

#[test]
fn singleton_source_meets_guarantee() {
    let mut rng = SmallRng::seed_from_u64(21);
    let g = gen::gnp_connected(18, 0.2, Weights::Uniform { lo: 1, hi: 100 }, &mut rng);
    let n = g.len();
    let mut sources = vec![false; n];
    sources[n / 2] = true;
    for h in [3u64, n as u64] {
        let label = format!("singleton h={h}");
        check_guarantee(&g, &sources, h, 0.25, &label);
    }
}
