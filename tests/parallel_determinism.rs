//! Determinism of the parallel ladder: `run_pde` must produce *identical*
//! `lists`, `routes` and message/round metrics for every thread count, and
//! across repeated runs — the rungs are independent simulations merged in
//! ladder order, so scheduling must be unobservable.

use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::WGraph;
use pde_repro::pde_core::{run_pde, PdeOutput, PdeParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run(g: &WGraph, sources: &[bool], threads: usize) -> PdeOutput {
    let params = PdeParams::new(8, 4, 0.25).with_threads(threads);
    run_pde(g, sources, &vec![false; g.len()], &params)
}

/// Full structural equality of two PDE outputs, including metrics.
fn assert_identical(a: &PdeOutput, b: &PdeOutput, what: &str) {
    assert_eq!(a.lists, b.lists, "{what}: lists differ");
    assert_eq!(a.routes, b.routes, "{what}: routes differ");
    assert_eq!(a.levels, b.levels, "{what}: ladders differ");
    assert_eq!(a.horizon, b.horizon, "{what}: horizons differ");
    let (ma, mb) = (&a.metrics, &b.metrics);
    assert_eq!(ma.total.rounds, mb.total.rounds, "{what}: rounds differ");
    assert_eq!(
        ma.total.messages, mb.total.messages,
        "{what}: messages differ"
    );
    assert_eq!(
        ma.total.per_node_sent, mb.total.per_node_sent,
        "{what}: per-node counts differ"
    );
    assert_eq!(
        ma.total.per_round_sent.to_vec(),
        mb.total.per_round_sent.to_vec(),
        "{what}: per-round counts differ"
    );
    assert_eq!(
        ma.total.total_bits, mb.total.total_bits,
        "{what}: bit counts differ"
    );
    assert_eq!(
        ma.per_level_rounds, mb.per_level_rounds,
        "{what}: per-level rounds differ"
    );
    assert_eq!(
        ma.coordination_rounds, mb.coordination_rounds,
        "{what}: coordination rounds differ"
    );
    assert_eq!(
        ma.max_broadcasts_single_level, mb.max_broadcasts_single_level,
        "{what}: Lemma 3.4 stat differs"
    );
    assert_eq!(
        ma.max_broadcasts_total, mb.max_broadcasts_total,
        "{what}: total broadcast stat differs"
    );
}

#[test]
fn threads_do_not_change_outputs_on_random_graphs() {
    for seed in [3u64, 17, 40] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnp_connected(72, 0.1, Weights::Uniform { lo: 1, hi: 32 }, &mut rng);
        let sources: Vec<bool> = (0..g.len()).map(|i| i % 5 == 0).collect();
        let seq = run(&g, &sources, 1);
        for threads in [2, 4, 9] {
            let par = run(&g, &sources, threads);
            assert_identical(&seq, &par, &format!("seed {seed}, {threads} threads"));
        }
    }
}

#[test]
fn repeated_runs_are_identical() {
    // Same inputs → same outputs, run to run, for both the sequential and
    // the parallel path (no hidden global state, no map-iteration order).
    let mut rng = SmallRng::seed_from_u64(8);
    let g = gen::gnp_connected(64, 0.12, Weights::Uniform { lo: 1, hi: 48 }, &mut rng);
    let sources: Vec<bool> = (0..g.len()).map(|i| i % 3 == 0).collect();
    for threads in [1, 4] {
        let a = run(&g, &sources, threads);
        let b = run(&g, &sources, threads);
        assert_identical(&a, &b, &format!("repeat with {threads} threads"));
    }
}

#[test]
fn auto_threads_matches_sequential() {
    // threads = 0 (available_parallelism) must agree with threads = 1.
    let mut rng = SmallRng::seed_from_u64(21);
    let g = gen::grid(6, 6, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
    let sources: Vec<bool> = (0..g.len()).map(|i| i % 4 == 1).collect();
    let auto = run(&g, &sources, 0);
    let seq = run(&g, &sources, 1);
    assert_identical(&auto, &seq, "auto vs sequential");
}

#[test]
fn oracle_batch_queries_are_thread_count_invariant() {
    // The serving-side analogue of the ladder determinism: the
    // estimate_many_with pair shards write into disjoint, order-preserving
    // output regions, so every thread count (and repeated runs at the same
    // count) must produce identical answer vectors on every backend.
    use pde_repro::graphs::NodeId;
    use pde_repro::oracle::{Backend, DistanceOracle, OracleBuilder};
    use rand::Rng;

    let mut rng = SmallRng::seed_from_u64(0xBA7C4);
    let g = gen::gnp_connected(48, 0.12, Weights::Uniform { lo: 1, hi: 24 }, &mut rng);
    let n = g.len() as u32;
    // Big enough that the per-worker shard floor (~1k pairs) still yields
    // several workers — the parallel path must actually run here.
    let pairs: Vec<(NodeId, NodeId)> = (0..8192)
        .map(|_| {
            (
                NodeId(rng.random_range(0..n)),
                NodeId(rng.random_range(0..n)),
            )
        })
        .collect();
    for backend in [
        Backend::Pde,
        Backend::ApproxApsp,
        Backend::Rtc,
        Backend::Truncated,
        Backend::Flooding,
    ] {
        let oracle = OracleBuilder::new(backend).seed(5u64).k(2).build(&g);
        let mut seq = Vec::new();
        oracle.estimate_many_with(&pairs, &mut seq, 1);
        for threads in [2usize, 4, 9, 0] {
            let mut par = Vec::new();
            oracle.estimate_many_with(&pairs, &mut par, threads);
            assert_eq!(seq, par, "{backend}: threads={threads} changed answers");
        }
        let mut again = Vec::new();
        oracle.estimate_many_with(&pairs, &mut again, 4);
        assert_eq!(seq, again, "{backend}: repeat at threads=4 diverged");
    }
}
