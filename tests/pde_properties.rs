//! Property-based tests of the core PDE guarantees (Definition 2.2),
//! driven by randomly generated connected weighted graphs.

use pde_repro::graphs::{algo, NodeId, WGraph};
use pde_repro::pde_core::{run_pde, PdeParams};
use pde_repro::sourcedetect::{delayed_detection_reference, run_detection, DetectParams};
use proptest::prelude::*;

/// Strategy: a connected weighted graph on `n ∈ 5..=16` nodes — a random
/// spanning tree plus extra random edges, weights in `1..=max_w`.
fn connected_graph(max_w: u64) -> impl Strategy<Value = WGraph> {
    (5usize..=16).prop_flat_map(move |n| {
        let tree = proptest::collection::vec(1u64..=max_w, n - 1);
        let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
        let extra = proptest::collection::vec(((0..n as u32), (0..n as u32), 1u64..=max_w), 0..n);
        (tree, parents, extra).prop_map(move |(tw, par, extra)| {
            let mut edges: Vec<(u32, u32, u64)> = par
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, (i + 1) as u32, tw[i]))
                .collect();
            for (a, b, w) in extra {
                if a != b
                    && !edges.iter().any(|&(x, y, _)| {
                        (x, y) == (a.min(b), a.max(b)) || (y, x) == (a.min(b), a.max(b))
                    })
                {
                    edges.push((a.min(b), a.max(b), w));
                }
            }
            WGraph::connected_from_edges(n, &edges).expect("construction is connected")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: PDE estimates never underestimate true distances —
    /// exactly, in integer arithmetic (the reason for the integer ladder).
    #[test]
    fn estimates_never_underestimate(g in connected_graph(100), eps in prop_oneof![Just(0.25), Just(0.5), Just(1.0)]) {
        let n = g.len();
        let sources: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let out = run_pde(&g, &sources, &vec![false; n], &PdeParams::new(n as u64, n, eps));
        let exact = algo::apsp(&g);
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                prop_assert!(e.est >= exact.dist(v, e.src),
                    "underestimate at {v} for {}: {} < {}", e.src, e.est, exact.dist(v, e.src));
            }
            for (&s, r) in &out.routes[v.index()] {
                prop_assert!(r.est >= exact.dist(v, s));
            }
        }
    }

    /// Accuracy: with h = σ = n every source is listed within (1+ε).
    #[test]
    fn full_horizon_is_one_plus_eps_accurate(g in connected_graph(64)) {
        let n = g.len();
        let eps = 0.5;
        let sources = vec![true; n];
        let out = run_pde(&g, &sources, &vec![false; n], &PdeParams::new(n as u64, n, eps));
        let exact = algo::apsp(&g);
        for v in g.nodes() {
            prop_assert_eq!(out.lists[v.index()].len(), n);
            for e in &out.lists[v.index()] {
                let wd = exact.dist(v, e.src);
                prop_assert!(e.est as f64 <= (1.0 + eps) * wd as f64 + 1e-9,
                    "estimate {} vs wd {} at ({v}, {})", e.est, wd, e.src);
            }
        }
    }

    /// Output lists are sorted prefixes (Definition 2.2 shape).
    #[test]
    fn lists_are_sorted_prefixes(g in connected_graph(50), sigma in 1usize..6) {
        let n = g.len();
        let sources: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let out = run_pde(&g, &sources, &vec![false; n], &PdeParams::new(6, sigma, 0.5));
        for v in g.nodes() {
            let list = &out.lists[v.index()];
            prop_assert!(list.len() <= sigma);
            prop_assert!(list.windows(2).all(|w| (w[0].est, w[0].src) < (w[1].est, w[1].src)));
        }
    }

    /// Route tracing reaches the source with weight ≤ the estimate
    /// (the greedy-forwarding invariant behind every routing scheme here).
    #[test]
    fn routes_realize_estimates(g in connected_graph(40)) {
        let n = g.len();
        let sources: Vec<bool> = (0..n).map(|i| i < 3).collect();
        let out = run_pde(&g, &sources, &vec![false; n], &PdeParams::new(n as u64, 3, 0.5));
        let topo = g.to_topology();
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                if e.src == v { continue; }
                let (path, w) = out.trace_route(&topo, v, e.src)
                    .map_err(TestCaseError::fail)?;
                prop_assert_eq!(*path.last().unwrap(), e.src);
                prop_assert!(w <= e.est);
            }
        }
    }

    /// The distributed source-detection program agrees with the
    /// centralized reference on the delayed topology, for arbitrary
    /// delays (the unweighted algorithm of [10] is exact).
    #[test]
    fn detection_matches_reference(g in connected_graph(8), h in 2u64..12, sigma in 1usize..5) {
        let topo = g.to_topology().with_delays(|w| w.div_ceil(3));
        let n = g.len();
        let sources: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
        let out = run_detection(&topo, &sources, &vec![false; n],
            &DetectParams { h, sigma, msg_cap: None, exact_rounds: false });
        let reference = delayed_detection_reference(&topo, &sources, h, sigma);
        for v in topo.nodes() {
            let got: Vec<(u64, NodeId)> =
                out.lists[v.index()].iter().map(|e| (e.dist, e.src)).collect();
            prop_assert_eq!(&got, &reference[v.index()], "node {}", v);
        }
    }
}
