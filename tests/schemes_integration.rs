//! Cross-crate integration: all schemes and baselines on shared graphs —
//! agreement of exact baselines, stretch ordering, size trade-offs.

use pde_repro::baselines::{bellman_ford_apsp, flooding_apsp, ExactTz};
use pde_repro::compact::{build_hierarchy, build_truncated, CompactParams, UpperMode};
use pde_repro::graphs::algo::apsp;
use pde_repro::graphs::gen::{self, Weights};
use pde_repro::graphs::Seed;
use pde_repro::oracle::{Backend, DistanceOracle, OracleBuilder};
use pde_repro::pde_core::approx_apsp;
use pde_repro::routing::{build_rtc, evaluate, PairSelection, RoutingScheme, RtcParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph(seed: u64) -> pde_repro::graphs::WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::gnp_connected(26, 0.18, Weights::Uniform { lo: 1, hi: 30 }, &mut rng)
}

#[test]
fn exact_baselines_agree_with_reference() {
    let g = graph(1);
    let exact = apsp(&g);
    let bf = bellman_ford_apsp(&g);
    let fl = flooding_apsp(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(bf.dist(u, v), exact.dist(u, v));
            assert_eq!(fl.apsp.dist(u, v), exact.dist(u, v));
        }
    }
}

#[test]
fn apsp_estimates_dominate_exact_and_respect_eps() {
    let g = graph(2);
    let exact = apsp(&g);
    let approx = approx_apsp(&g, 0.25);
    for u in g.nodes() {
        for v in g.nodes() {
            if u != v {
                assert!(approx.dist(u, v) >= exact.dist(u, v));
            }
        }
    }
    // Note: estimates may be exact everywhere when the unit-rung level's
    // horizon covers the whole graph; the binding guarantee is ≤ 1+ε.
    assert!(approx.max_stretch(&exact) <= 1.25 + 1e-9);
}

#[test]
fn every_scheme_routes_every_pair() {
    let g = graph(3);
    let exact = apsp(&g);
    let rtc = build_rtc(&g, &RtcParams::new(2));
    let hier = build_hierarchy(&g, &CompactParams::new(2));
    let trunc = build_truncated(&g, &CompactParams::new(2), 1, UpperMode::Local);
    let tz = ExactTz::new(&g, 2, 3);

    let reports = [
        ("rtc", evaluate(&g, &rtc, &exact, PairSelection::All)),
        ("hierarchy", evaluate(&g, &hier, &exact, PairSelection::All)),
        (
            "truncated",
            evaluate(&g, &trunc, &exact, PairSelection::All),
        ),
        ("tz_exact", evaluate(&g, &tz, &exact, PairSelection::All)),
    ];
    for (name, r) in &reports {
        assert!(r.failures.is_empty(), "{name}: {:?}", r.failures);
        assert_eq!(r.pairs, g.len() * (g.len() - 1), "{name} skipped pairs");
        assert!(r.max_estimate_stretch >= 1.0);
    }
}

#[test]
fn estimates_are_sound_across_schemes() {
    let g = graph(4);
    let exact = apsp(&g);
    let rtc = build_rtc(&g, &RtcParams::new(2));
    let hier = build_hierarchy(&g, &CompactParams::new(3));
    for u in g.nodes() {
        for v in g.nodes() {
            if u == v {
                continue;
            }
            let wd = exact.dist(u, v);
            assert!(rtc.estimate(u, v) >= wd, "rtc underestimates ({u},{v})");
            assert!(hier.estimate(u, v) >= wd, "hier underestimates ({u},{v})");
        }
    }
}

#[test]
fn compact_tables_beat_full_tables() {
    // The compact hierarchy's whole point: far smaller tables than the
    // flooding baseline's Θ(m) link-state database.
    let g = graph(5);
    let fl = flooding_apsp(&g);
    let mut params = CompactParams::new(3);
    params.c = 1.5;
    let hier = build_hierarchy(&g, &params);
    let max_table = g.nodes().map(|v| hier.table_entries(v)).max().unwrap();
    assert!(
        max_table < fl.lsdb_edges,
        "compact table {max_table} not smaller than LSDB {}",
        fl.lsdb_edges
    );
}

#[test]
fn unified_oracle_api_agrees_with_per_crate_builders() {
    // The OracleBuilder wrappers are thin: with the same seed and knobs
    // they must produce the exact same scheme as the per-crate builders.
    let g = graph(7);
    let seed = 0xAB;

    let direct_rtc = build_rtc(
        &g,
        &RtcParams {
            seed: Seed(seed),
            ..RtcParams::new(2)
        },
    );
    let via_oracle = OracleBuilder::new(Backend::Rtc).seed(seed).k(2).build(&g);
    let mut cp = CompactParams::new(2);
    cp.seed = Seed(seed);
    let direct_hier = build_hierarchy(&g, &cp);
    let via_compact = OracleBuilder::new(Backend::Compact)
        .seed(seed)
        .k(2)
        .build(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(
                RoutingScheme::estimate(&direct_rtc, u, v),
                via_oracle.estimate(u, v),
                "rtc wrapper diverges at ({u},{v})"
            );
            assert_eq!(
                RoutingScheme::estimate(&direct_hier, u, v),
                via_compact.estimate(u, v),
                "compact wrapper diverges at ({u},{v})"
            );
        }
    }
}

#[test]
fn rounds_ordering_matches_paper_narrative() {
    // On dense-enough graphs: flooding pays ~m rounds, Bellman-Ford pays
    // many rounds, and both exceed a single BFS. We just confirm all
    // schemes report nonzero, internally consistent round counts.
    let g = graph(6);
    let bf = bellman_ford_apsp(&g);
    let fl = flooding_apsp(&g);
    assert!(bf.metrics.rounds > 0 && fl.metrics.rounds > 0);
    assert!(fl.metrics.rounds as usize >= g.num_edges() / g.len());
    let rtc = build_rtc(&g, &RtcParams::new(2));
    let m = &rtc.metrics;
    assert!(m.total_rounds >= m.pde_a_rounds + m.pde_s_rounds + m.spanner_broadcast_rounds);
}
