//! Umbrella crate for the PODC 2015 "Fast Partial Distance Estimation and
//! Applications" reproduction: re-exports every workspace crate so examples
//! and integration tests can use a single dependency.

pub use baselines;
pub use compact;
pub use congest;
pub use graphs;
pub use net;
pub use oracle;
pub use pde_core;
pub use routing;
pub use serve;
pub use sourcedetect;
pub use spanner;
pub use treeroute;
