//! Lock-cheap serving metrics: a log₂-bucketed latency histogram plus
//! the aggregate counter snapshot the server exposes through
//! [`crate::NetServer::metrics`] and the wire `Stats` op.

/// A 64-bucket base-2 latency histogram.
///
/// Bucket `i` counts samples with `floor(log2(ns)) == i` (bucket 0 also
/// takes 0 ns). Recording is one increment; quantiles walk the
/// cumulative counts and report the bucket's geometric midpoint
/// (`1.5 · 2^i`), so a quantile is exact to within its power-of-two
/// bucket — plenty for p50/p99 service-time reporting, with no
/// per-sample allocation and no unbounded reservoir.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    samples: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            samples: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample, in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        let bucket = 63u32.saturating_sub(nanos.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.samples += 1;
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, resolved to its
    /// bucket's midpoint; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.samples as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let base = 1u64 << i;
                return base + base / 2;
            }
        }
        u64::MAX
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.samples += other.samples;
    }
}

/// A point-in-time snapshot of the server's aggregate counters, as
/// returned by [`crate::NetServer::metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Requests answered across all connections.
    pub requests: u64,
    /// Frame bytes read (header + payload) across all connections.
    pub bytes_in: u64,
    /// Frame bytes written across all connections.
    pub bytes_out: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections refused at the door with a typed
    /// [`crate::WireError::Overloaded`] frame because the connection cap
    /// was saturated.
    pub connections_refused: u64,
    /// Requests shed with [`crate::WireError::Overloaded`] for breaking a
    /// per-request budget (oversized batch).
    pub requests_shed: u64,
    /// Median request service time (decode start → response encoded).
    pub p50_service_ns: u64,
    /// 99th-percentile request service time.
    pub p99_service_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_resolve_to_bucket_midpoints() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for _ in 0..99 {
            h.record(1_000); // bucket 9 (512..1024)
        }
        h.record(1 << 20); // one outlier in bucket 20
        assert_eq!(h.samples(), 100);
        let p50 = h.quantile(0.5);
        assert_eq!(p50, (1 << 9) + (1 << 8));
        // p99 still lands in the dense bucket (99 of 100 samples).
        assert_eq!(h.quantile(0.99), p50);
        // p100 reaches the outlier bucket.
        assert_eq!(h.quantile(1.0), (1 << 20) + (1 << 19));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(100);
        b.record(1 << 30);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert!(a.quantile(1.0) > 1 << 30);
    }

    #[test]
    fn zero_and_max_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.samples(), 2);
        assert!(h.quantile(0.0) >= 1);
    }
}
