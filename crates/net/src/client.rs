//! The blocking client: one TCP connection, reused across requests,
//! with explicit pipelining for batch submission.
//!
//! Every typed method is a strict request/response round trip. For
//! throughput, [`Client::queue_estimate_many`] writes requests without
//! waiting; [`Client::drain_estimate_many`] flushes once and collects
//! the replies in order (the server answers a connection's requests in
//! request order, so correlation is positional — `req_id` is checked,
//! not searched).
//!
//! Errors are typed end to end: a serve-layer rejection arrives as the
//! same [`WireError::Serve`] / [`WireError::Delta`] variant the server
//! raised; protocol corruption and socket failures are local
//! [`WireError`] variants. After a protocol-level error the connection
//! is poisoned (framing may be desynchronized) and every subsequent call
//! fails fast — reconnect to recover.

use crate::wire::{
    decode_response, InstallSummary, Op, RepairSummary, Request, Response, RouteOutcome,
    ServerStats, WireError,
};
use congest::wire::{read_frame, write_frame, MAX_FRAME_LEN};
use congest::NodeId;
use graphs::GraphDelta;
use oracle::TracedRoute;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking `net` client over one reused TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_req: u64,
    inflight: VecDeque<(u64, Op)>,
    max_frame: usize,
    poisoned: bool,
    /// Reused encode buffer — large pipelined batches must not pay an
    /// allocation per frame.
    scratch: Vec<u8>,
}

impl Client {
    /// Connects to a [`crate::NetServer`] at `addr`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_req: 0,
            inflight: VecDeque::new(),
            max_frame: MAX_FRAME_LEN,
            poisoned: false,
            scratch: Vec::new(),
        })
    }

    /// Bounds how long any single receive may block.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket rejects the option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Whether the connection has been poisoned by a socket- or
    /// protocol-level failure. A poisoned client fails every call fast;
    /// the only recovery is a fresh connection (which is what
    /// [`crate::RetryClient`] automates).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_usable(&self) -> Result<(), WireError> {
        if self.poisoned {
            return Err(WireError::Malformed(
                "connection poisoned by an earlier protocol error; reconnect".into(),
            ));
        }
        Ok(())
    }

    /// Encodes one request via `encode` into the reused scratch buffer
    /// and writes it without flushing; the reply is owed at position
    /// `inflight.len()`.
    fn queue_with(
        &mut self,
        op: Op,
        encode: impl FnOnce(u64, &mut Vec<u8>),
    ) -> Result<u64, WireError> {
        self.check_usable()?;
        self.next_req += 1;
        let req_id = self.next_req;
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        encode(req_id, &mut payload);
        let written = write_frame(&mut self.writer, &payload);
        self.scratch = payload;
        written.map_err(|e| self.poison(e.into()))?;
        self.inflight.push_back((req_id, op));
        Ok(req_id)
    }

    /// Writes `req` into the send buffer without flushing.
    fn queue(&mut self, req: &Request) -> Result<u64, WireError> {
        self.queue_with(req.op(), |req_id, out| req.encode_into(req_id, out))
    }

    fn poison(&mut self, e: WireError) -> WireError {
        // Socket-level and protocol-level failures desynchronize the
        // framing; server-relayed errors (handled elsewhere) do not.
        self.poisoned = true;
        e
    }

    /// Receives the next response, which must answer the oldest
    /// outstanding request.
    fn recv(&mut self) -> Result<Response, WireError> {
        use std::io::Write as _;
        self.check_usable()?;
        self.writer.flush().map_err(|e| self.poison(e.into()))?;
        let (want_id, want_op) = self
            .inflight
            .pop_front()
            .expect("recv called with no request outstanding");
        let payload = match read_frame(&mut self.reader, self.max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => return Err(self.poison(WireError::Truncated)),
            Err(e) => return Err(self.poison(e.into())),
        };
        let (req_id, op, body) = match decode_response(&payload) {
            Ok(decoded) => decoded,
            Err(e) => return Err(self.poison(e)),
        };
        match body {
            Err(e) => {
                if req_id == 0 {
                    // A pre-decode failure on the server: it reported
                    // and closed; nothing later will be answered.
                    return Err(self.poison(e));
                }
                if req_id != want_id {
                    return Err(self.poison(WireError::Malformed(format!(
                        "response for request {req_id} while awaiting {want_id}"
                    ))));
                }
                Err(e)
            }
            Ok(resp) => {
                if req_id != want_id || op != want_op {
                    return Err(self.poison(WireError::Malformed(format!(
                        "response {req_id}/{op:?} while awaiting {want_id}/{want_op:?}"
                    ))));
                }
                Ok(resp)
            }
        }
    }

    /// One strict round trip; rejects interleaving with queued requests.
    fn roundtrip(&mut self, req: &Request) -> Result<Response, WireError> {
        if !self.inflight.is_empty() {
            return Err(WireError::Malformed(
                "pipelined requests pending; drain them before a direct call".into(),
            ));
        }
        self.queue(req)?;
        self.recv()
    }

    /// One distance estimate from the named oracle.
    ///
    /// # Errors
    ///
    /// Server-relayed ([`WireError::Serve`]) or local wire errors.
    pub fn estimate(&mut self, name: &str, u: NodeId, v: NodeId) -> Result<u64, WireError> {
        match self.roundtrip(&Request::Estimate {
            name: name.to_string(),
            u,
            v,
        })? {
            Response::Estimate { est, .. } => Ok(est),
            other => Err(self.unexpected(other)),
        }
    }

    /// A batch of estimates; `batched` routes the submission through the
    /// server's shared admission batcher. Returns the answers in pair
    /// order and the generation that served them.
    ///
    /// # Errors
    ///
    /// Server-relayed ([`WireError::Serve`]) or local wire errors.
    pub fn estimate_many(
        &mut self,
        name: &str,
        pairs: &[(NodeId, NodeId)],
        batched: bool,
    ) -> Result<(Vec<u64>, u64), WireError> {
        if !self.inflight.is_empty() {
            return Err(WireError::Malformed(
                "pipelined requests pending; drain them before a direct call".into(),
            ));
        }
        self.queue_estimate_many(name, pairs, batched)?;
        self.recv_estimate_many()
    }

    /// Queues an `EstimateMany` without waiting for its answer. Collect
    /// with [`Client::drain_estimate_many`].
    ///
    /// # Errors
    ///
    /// Local wire errors (nothing has been received yet).
    pub fn queue_estimate_many(
        &mut self,
        name: &str,
        pairs: &[(NodeId, NodeId)],
        batched: bool,
    ) -> Result<(), WireError> {
        // Encodes straight from the borrowed slice: cloning the batch
        // into a `Request` would cost an allocation and a copy per
        // frame on the hottest path the client has.
        self.queue_with(Op::EstimateMany, |req_id, out| {
            crate::wire::encode_estimate_many(req_id, name, batched, pairs, out)
        })?;
        Ok(())
    }

    /// Queued requests whose replies have not been received yet.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Receives the single oldest queued `EstimateMany` reply. Together
    /// with [`Client::queue_estimate_many`] this keeps a bounded window
    /// of requests in flight — the shape that keeps both directions of
    /// the stream inside the socket buffers instead of stalling on TCP
    /// flow control.
    ///
    /// # Errors
    ///
    /// Server-relayed ([`WireError::Serve`]) or local wire errors, and
    /// [`WireError::Malformed`] when nothing is queued.
    pub fn recv_estimate_many(&mut self) -> Result<(Vec<u64>, u64), WireError> {
        if self.inflight.is_empty() {
            return Err(WireError::Malformed(
                "no pipelined request outstanding".into(),
            ));
        }
        match self.recv()? {
            Response::EstimateMany { ests, generation } => Ok((ests, generation)),
            other => Err(self.unexpected(other)),
        }
    }

    /// Flushes and collects every queued `EstimateMany` reply, in
    /// submission order.
    ///
    /// # Errors
    ///
    /// The first error (server-relayed or local) aborts the drain.
    pub fn drain_estimate_many(&mut self) -> Result<Vec<(Vec<u64>, u64)>, WireError> {
        let mut results = Vec::with_capacity(self.inflight.len());
        while !self.inflight.is_empty() {
            match self.recv()? {
                Response::EstimateMany { ests, generation } => results.push((ests, generation)),
                other => return Err(self.unexpected(other)),
            }
        }
        Ok(results)
    }

    /// The first hop of the route `u → v`, when the backend routes it.
    ///
    /// # Errors
    ///
    /// Server-relayed ([`WireError::Serve`]) or local wire errors.
    pub fn next_hop(
        &mut self,
        name: &str,
        u: NodeId,
        v: NodeId,
    ) -> Result<Option<NodeId>, WireError> {
        match self.roundtrip(&Request::NextHop {
            name: name.to_string(),
            u,
            v,
        })? {
            Response::NextHop { hop } => Ok(hop),
            other => Err(self.unexpected(other)),
        }
    }

    /// The full traced route `u → v` (failover-aware when the name is
    /// served dynamically).
    ///
    /// # Errors
    ///
    /// Server-relayed ([`WireError::Serve`]) or local wire errors.
    pub fn route(
        &mut self,
        name: &str,
        u: NodeId,
        v: NodeId,
    ) -> Result<(RouteOutcome, Option<TracedRoute>), WireError> {
        match self.roundtrip(&Request::Route {
            name: name.to_string(),
            u,
            v,
        })? {
            Response::Route { outcome, route } => Ok((outcome, route)),
            other => Err(self.unexpected(other)),
        }
    }

    /// Admin: install (or hot-swap) a snapshot from a file on the
    /// **server's** filesystem — the single-copy
    /// [`oracle::Oracle::load_path`] cold-start path.
    ///
    /// # Errors
    ///
    /// Server-relayed (I/O as [`WireError::Remote`], torn snapshots as
    /// [`WireError::Truncated`]) or local wire errors.
    pub fn install(&mut self, name: &str, path: &str) -> Result<InstallSummary, WireError> {
        match self.roundtrip(&Request::Install {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::Installed(summary) => Ok(summary),
            other => Err(self.unexpected(other)),
        }
    }

    /// Admin: install (or hot-swap) the snapshot bytes carried in the
    /// request frame.
    ///
    /// # Errors
    ///
    /// Server-relayed or local wire errors.
    pub fn swap(&mut self, name: &str, snapshot: &[u8]) -> Result<InstallSummary, WireError> {
        match self.roundtrip(&Request::Swap {
            name: name.to_string(),
            snapshot: snapshot.to_vec(),
        })? {
            Response::Installed(summary) => Ok(summary),
            other => Err(self.unexpected(other)),
        }
    }

    /// Admin: mask edge `{u, v}` as failed on a dynamic name.
    ///
    /// # Errors
    ///
    /// [`WireError::Serve`] with [`serve::ServeError::UnknownOracle`]
    /// when the name is not served dynamically.
    pub fn fail_edge(&mut self, name: &str, u: NodeId, v: NodeId) -> Result<(), WireError> {
        match self.roundtrip(&Request::FailEdge {
            name: name.to_string(),
            u,
            v,
        })? {
            Response::Failed => Ok(()),
            other => Err(self.unexpected(other)),
        }
    }

    /// Admin: mask node `v` as failed on a dynamic name.
    ///
    /// # Errors
    ///
    /// As [`Client::fail_edge`].
    pub fn fail_node(&mut self, name: &str, v: NodeId) -> Result<(), WireError> {
        match self.roundtrip(&Request::FailNode {
            name: name.to_string(),
            v,
        })? {
            Response::Failed => Ok(()),
            other => Err(self.unexpected(other)),
        }
    }

    /// Admin: repair the served artifact for `delta` and hot-swap the
    /// result in.
    ///
    /// # Errors
    ///
    /// Rejected deltas arrive as [`WireError::Delta`] with the variant
    /// intact; serve-layer failures as [`WireError::Serve`].
    pub fn repair_and_swap(
        &mut self,
        name: &str,
        delta: &GraphDelta,
    ) -> Result<RepairSummary, WireError> {
        match self.roundtrip(&Request::RepairAndSwap {
            name: name.to_string(),
            delta: *delta,
        })? {
            Response::Repaired(summary) => Ok(summary),
            other => Err(self.unexpected(other)),
        }
    }

    /// Server-wide, per-connection, and per-oracle statistics.
    ///
    /// # Errors
    ///
    /// Local wire errors.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(self.unexpected(other)),
        }
    }

    fn unexpected(&mut self, resp: Response) -> WireError {
        self.poison(WireError::Malformed(format!(
            "response body does not match its opcode: {resp:?}"
        )))
    }
}
