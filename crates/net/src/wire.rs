//! The `net` wire protocol: little-endian binary frames over any byte
//! stream, with typed errors that survive the round trip.
//!
//! Every message travels in one [`congest::wire::write_frame`] frame
//! (`u32` length prefix, bounded by the peer's configured cap). Inside
//! the frame:
//!
//! ```text
//! request  := ver u8 | op u8     | req_id u64 | body
//! response := ver u8 | status u8 | op u8 | req_id u64 | body
//! ```
//!
//! `req_id` is an opaque correlation id echoed verbatim; responses on one
//! connection are written in request order, which is what makes
//! pipelining ([`crate::Client::queue_estimate_many`]) safe. `status` is
//! [`STATUS_OK`] or [`STATUS_ERR`]; an error frame's body is an encoded
//! [`WireError`] — [`serve::ServeError`] and [`graphs::DeltaError`]
//! variants are carried structurally (tag + fields), not as strings, so
//! the client-side error is the same variant the server raised (pinned
//! by the round-trip tests below).
//!
//! Decoding takes the same adversarial posture as the snapshot readers:
//! every length is bounded before allocation (names by [`MAX_NAME_LEN`],
//! paths by [`MAX_PATH_LEN`], sequence counts by the bytes actually
//! remaining in the frame), trailing bytes are rejected, and corruption
//! yields a typed [`WireError`] — never a panic.

use congest::wire::WireWriter;
use congest::{NodeId, Port};
use graphs::{DeltaError, GraphDelta, GraphError};
use oracle::{Backend, TracedRoute};
use serve::{BatcherStats, ServeError};
use std::fmt;
use std::io;

/// Protocol version spoken by this build (the first byte of every
/// request and response payload).
pub const NET_VERSION: u8 = 1;

/// Response status byte: the request succeeded, the body is the typed
/// reply for its op.
pub const STATUS_OK: u8 = 0;

/// Response status byte: the body is an encoded [`WireError`].
pub const STATUS_ERR: u8 = 0xEE;

/// Longest accepted oracle name on the wire.
pub const MAX_NAME_LEN: usize = 256;

/// Longest accepted server-side snapshot path in an `Install` frame.
pub const MAX_PATH_LEN: usize = 4096;

/// Request opcodes. Stable numeric ids, append-only like
/// [`Backend::wire_tag`]: existing values never change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Single distance estimate.
    Estimate = 1,
    /// Batch estimates, optionally through the admission batcher.
    EstimateMany = 2,
    /// First hop of the route towards a destination.
    NextHop = 3,
    /// Full traced route (failover-aware for dynamic names).
    Route = 4,
    /// Admin: install a snapshot from a file on the **server's** disk
    /// (the single-copy [`oracle::Oracle::load_path`] cold start).
    Install = 5,
    /// Admin: hot-swap a snapshot carried inline in the frame.
    Swap = 6,
    /// Admin: mask an edge as failed on a dynamic oracle.
    FailEdge = 7,
    /// Admin: mask a node as failed on a dynamic oracle.
    FailNode = 8,
    /// Admin: repair the artifact for a delta and hot-swap the result.
    RepairAndSwap = 9,
    /// Server and per-oracle serving statistics.
    Stats = 10,
}

impl Op {
    /// The opcode for a wire byte (`None` for unassigned bytes).
    pub fn from_wire(op: u8) -> Option<Op> {
        use Op::*;
        [
            Estimate,
            EstimateMany,
            NextHop,
            Route,
            Install,
            Swap,
            FailEdge,
            FailNode,
            RepairAndSwap,
            Stats,
        ]
        .into_iter()
        .find(|o| *o as u8 == op)
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One `estimate(u, v)` on the named oracle.
    Estimate {
        /// Served name.
        name: String,
        /// Source.
        u: NodeId,
        /// Destination.
        v: NodeId,
    },
    /// One `estimate_many` batch on the named oracle.
    EstimateMany {
        /// Served name.
        name: String,
        /// Route the batch through the shared admission
        /// [`serve::Batcher`] (merging with concurrent submissions)
        /// instead of executing it alone.
        batched: bool,
        /// The query pairs.
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// `next_hop(u, v)` on the named oracle.
    NextHop {
        /// Served name.
        name: String,
        /// Source.
        u: NodeId,
        /// Destination.
        v: NodeId,
    },
    /// Full route `u → v`; detours around masked failures when the name
    /// is served dynamically.
    Route {
        /// Served name.
        name: String,
        /// Source.
        u: NodeId,
        /// Destination.
        v: NodeId,
    },
    /// Install (or hot-swap) a snapshot file from the server's disk.
    Install {
        /// Name to serve under.
        name: String,
        /// Path on the server's filesystem.
        path: String,
    },
    /// Install (or hot-swap) the snapshot bytes carried in this frame.
    Swap {
        /// Name to serve under.
        name: String,
        /// A complete v2 or v3 snapshot stream.
        snapshot: Vec<u8>,
    },
    /// Mask edge `{u, v}` as failed (dynamic names only).
    FailEdge {
        /// Served name.
        name: String,
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Mask node `v` as failed (dynamic names only).
    FailNode {
        /// Served name.
        name: String,
        /// The failed node.
        v: NodeId,
    },
    /// Repair the served artifact for `delta` and hot-swap it in
    /// (dynamic names only).
    RepairAndSwap {
        /// Served name.
        name: String,
        /// The graph mutation to fold into the artifact.
        delta: GraphDelta,
    },
    /// Server-wide and per-oracle statistics.
    Stats,
}

impl Request {
    /// This request's opcode.
    pub fn op(&self) -> Op {
        match self {
            Request::Estimate { .. } => Op::Estimate,
            Request::EstimateMany { .. } => Op::EstimateMany,
            Request::NextHop { .. } => Op::NextHop,
            Request::Route { .. } => Op::Route,
            Request::Install { .. } => Op::Install,
            Request::Swap { .. } => Op::Swap,
            Request::FailEdge { .. } => Op::FailEdge,
            Request::FailNode { .. } => Op::FailNode,
            Request::RepairAndSwap { .. } => Op::RepairAndSwap,
            Request::Stats => Op::Stats,
        }
    }
}

/// How a `Route` reply was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The artifact's own primary route (no failure in the way).
    Primary,
    /// The route detoured around masked failures at this many nodes.
    Detoured {
        /// Nodes where the path deviates from the primary next hop.
        detours: u64,
    },
    /// No route: unknown pair, estimate-only backend, or the masked
    /// failures partition the endpoints.
    Unroutable,
}

/// What an `Install`/`Swap` did (the wire form of
/// [`serve::InstallReport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstallSummary {
    /// Backend of the installed snapshot.
    pub backend: Backend,
    /// Nodes covered.
    pub n: u64,
    /// Install generation.
    pub generation: u64,
    /// Measured decode + install + first-probe time.
    pub cold_start_nanos: u64,
    /// Replaced snapshot, if the name was live: `(generation,
    /// leases_in_flight)` at swap time.
    pub replaced: Option<(u64, u64)>,
}

/// What a `RepairAndSwap` did (the wire form of
/// [`serve::RepairSwapReport`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairSummary {
    /// Generation of the repaired snapshot now being served.
    pub generation: u64,
    /// `true` when only affected rows were recomputed.
    pub incremental: bool,
    /// Rows recomputed (incremental repairs; 0 otherwise).
    pub rows_recomputed: u64,
    /// Total artifact rows (incremental repairs; 0 otherwise).
    pub rows_total: u64,
    /// Why the backend rebuilt instead (empty for incremental).
    pub reason: String,
    /// Wall-clock repair time.
    pub repair_nanos: u64,
    /// Failure-masked → repaired-snapshot-installed window.
    pub stale_window_nanos: u64,
}

/// Per-oracle serving statistics in a `Stats` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleStats {
    /// Served name.
    pub name: String,
    /// Backend answering this name.
    pub backend: Backend,
    /// Current snapshot generation.
    pub generation: u64,
    /// Queries answered through the current snapshot.
    pub queries_served: u64,
    /// Batches answered through the current snapshot.
    pub batches_served: u64,
    /// Outstanding leases on the current snapshot.
    pub leases_in_flight: u64,
    /// Admission-batcher occupancy for this name (zeros when no batched
    /// submission has been routed yet).
    pub batch: BatcherStats,
}

/// A `Stats` reply: aggregate server counters, the requesting
/// connection's own counters, and one [`OracleStats`] per served name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered across all connections (including this one).
    pub requests: u64,
    /// Frame bytes read across all connections.
    pub bytes_in: u64,
    /// Frame bytes written across all connections.
    pub bytes_out: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Median request service time (decode → response encoded), ns.
    pub p50_service_ns: u64,
    /// 99th-percentile request service time, ns.
    pub p99_service_ns: u64,
    /// Requests answered on the connection that asked.
    pub conn_requests: u64,
    /// Frame bytes read on the connection that asked.
    pub conn_bytes_in: u64,
    /// Frame bytes written on the connection that asked.
    pub conn_bytes_out: u64,
    /// Per-name serving counters, sorted by name.
    pub oracles: Vec<OracleStats>,
}

/// A decoded success response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Op::Estimate`].
    Estimate {
        /// Generation that answered.
        generation: u64,
        /// The estimate ([`graphs::INF`] outside coverage).
        est: u64,
    },
    /// Reply to [`Op::EstimateMany`].
    EstimateMany {
        /// Generation that answered (one generation for the whole
        /// batch — a hot swap lands between batches, never inside one).
        generation: u64,
        /// One answer per pair, in request order.
        ests: Vec<u64>,
    },
    /// Reply to [`Op::NextHop`].
    NextHop {
        /// The first hop, when the backend routes the pair.
        hop: Option<NodeId>,
    },
    /// Reply to [`Op::Route`].
    Route {
        /// How the route was produced.
        outcome: RouteOutcome,
        /// The traced route (absent when unroutable).
        route: Option<TracedRoute>,
    },
    /// Reply to [`Op::Install`] and [`Op::Swap`].
    Installed(InstallSummary),
    /// Reply to [`Op::FailEdge`] and [`Op::FailNode`]: the mask is in
    /// effect.
    Failed,
    /// Reply to [`Op::RepairAndSwap`].
    Repaired(RepairSummary),
    /// Reply to [`Op::Stats`].
    Stats(ServerStats),
}

// ------------------------------------------------------------ errors --

/// Everything that can go wrong on the `net` layer, local or remote.
///
/// The first five variants describe protocol-level corruption (either
/// side can raise them; a server relays them in an error frame before
/// closing the connection). [`WireError::Serve`] and
/// [`WireError::Delta`] carry the server's typed errors across the wire
/// **with their variant intact** — the round-trip tests pin every
/// variant. [`WireError::Remote`] is the catch-all for server-side
/// errors with no structural encoding (build failures, install I/O);
/// [`WireError::Io`] is a local socket failure and never travels.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The peer speaks a different protocol version.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// Unassigned opcode byte.
    UnknownOp {
        /// The opcode received.
        op: u8,
    },
    /// A length field exceeds the configured bound.
    Oversized {
        /// The length received.
        len: u64,
        /// The bound it broke.
        max: u64,
    },
    /// The stream ended mid-frame (torn write, dropped connection).
    Truncated,
    /// The frame parsed as bytes but not as a message.
    Malformed(String),
    /// The serving layer rejected the request.
    Serve(ServeError),
    /// A repair delta was rejected.
    Delta(DeltaError),
    /// The server shed the connection or request because a capacity
    /// bound was hit (connection cap, per-request batch budget). Always
    /// safe to retry after a backoff: nothing was executed.
    Overloaded {
        /// The load observed (active connections, or requested pairs).
        active: u64,
        /// The configured cap it exceeded.
        cap: u64,
    },
    /// Any other server-side failure, relayed as text.
    Remote(String),
    /// A local socket failure (never encoded on the wire).
    Io(io::ErrorKind, String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported net protocol version {got} (speaking {NET_VERSION})"
                )
            }
            WireError::UnknownOp { op } => write!(f, "unknown net opcode {op}"),
            WireError::Oversized { len, max } => {
                write!(f, "wire length {len} exceeds the configured bound {max}")
            }
            WireError::Truncated => write!(f, "net stream truncated mid-frame"),
            WireError::Malformed(msg) => write!(f, "malformed net frame: {msg}"),
            WireError::Serve(e) => write!(f, "serve error: {e}"),
            WireError::Delta(e) => write!(f, "delta rejected: {e}"),
            WireError::Overloaded { active, cap } => {
                write!(f, "server overloaded: {active} against a cap of {cap}")
            }
            WireError::Remote(msg) => write!(f, "remote error: {msg}"),
            WireError::Io(kind, msg) => write!(f, "socket error ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Serve(e) => Some(e),
            WireError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for WireError {
    fn from(e: ServeError) -> Self {
        WireError::Serve(e)
    }
}

impl From<DeltaError> for WireError {
    fn from(e: DeltaError) -> Self {
        WireError::Delta(e)
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof || congest::wire::is_truncated(&e) {
            WireError::Truncated
        } else {
            WireError::Io(e.kind(), e.to_string())
        }
    }
}

// ------------------------------------------------------ byte cursors --

/// Bounded little-endian reads over one frame's payload. Every length is
/// validated against what actually remains in the frame before any
/// allocation, and [`Cursor::finish`] rejects trailing bytes.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("invalid bool byte {b}"))),
        }
    }

    /// A `u16`-length-prefixed UTF-8 string bounded by `max`.
    pub(crate) fn str(&mut self, max: usize, what: &str) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        if len > max {
            return Err(WireError::Oversized {
                len: len as u64,
                max: max as u64,
            });
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what} is not UTF-8")))
    }

    /// A `u32` element count validated against the bytes remaining
    /// (`elem_bytes` per element), so a lying count cannot request an
    /// absurd allocation.
    pub(crate) fn count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        let have = self.remaining() / elem_bytes.max(1);
        if count > have {
            return Err(WireError::Malformed(format!(
                "{what} count {count} exceeds the {have} that fit in the frame"
            )));
        }
        Ok(count)
    }

    /// A `u64`-length-prefixed raw byte payload (the rest of the frame
    /// bounds it).
    pub(crate) fn blob(&mut self, what: &str) -> Result<Vec<u8>, WireError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(WireError::Malformed(format!(
                "{what} length {len} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after the message",
                self.buf.len()
            )))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str, max: usize) {
    debug_assert!(s.len() <= max && s.len() <= u16::MAX as usize);
    let mut w = WireWriter::new(out);
    w.u16(s.len() as u16).expect("vec write");
    w.bytes(s.as_bytes()).expect("vec write");
}

fn w(out: &mut Vec<u8>) -> WireWriter<'_> {
    WireWriter::new(out)
}

// --------------------------------------------------- request codecs --

/// Encodes an `EstimateMany` request payload straight from a borrowed
/// pair slice — the pipelined hot path, which must not clone the batch
/// into a [`Request`] first.
pub(crate) fn encode_estimate_many(
    req_id: u64,
    name: &str,
    batched: bool,
    pairs: &[(NodeId, NodeId)],
    out: &mut Vec<u8>,
) {
    w(out).u8(NET_VERSION).expect("vec write");
    w(out).u8(Op::EstimateMany as u8).expect("vec write");
    w(out).u64(req_id).expect("vec write");
    put_str(out, name, MAX_NAME_LEN);
    w(out).bool(batched).expect("vec write");
    w(out).u32(pairs.len() as u32).expect("vec write");
    // Hot path: one 8-byte append per pair, not two checked writer
    // calls — this loop carries the pipelined q/s.
    out.reserve(pairs.len() * 8);
    for &(u, v) in pairs {
        let mut le = [0u8; 8];
        le[..4].copy_from_slice(&u.0.to_le_bytes());
        le[4..].copy_from_slice(&v.0.to_le_bytes());
        out.extend_from_slice(&le);
    }
}

impl Request {
    /// Encodes the full request payload (header + body) into `out`.
    pub(crate) fn encode_into(&self, req_id: u64, out: &mut Vec<u8>) {
        if let Request::EstimateMany {
            name,
            batched,
            pairs,
        } = self
        {
            return encode_estimate_many(req_id, name, *batched, pairs, out);
        }
        w(out).u8(NET_VERSION).expect("vec write");
        w(out).u8(self.op() as u8).expect("vec write");
        w(out).u64(req_id).expect("vec write");
        match self {
            Request::Estimate { name, u, v }
            | Request::NextHop { name, u, v }
            | Request::Route { name, u, v }
            | Request::FailEdge { name, u, v } => {
                put_str(out, name, MAX_NAME_LEN);
                w(out).u32(u.0).expect("vec write");
                w(out).u32(v.0).expect("vec write");
            }
            Request::EstimateMany { .. } => unreachable!("delegated above"),
            Request::Install { name, path } => {
                put_str(out, name, MAX_NAME_LEN);
                put_str(out, path, MAX_PATH_LEN);
            }
            Request::Swap { name, snapshot } => {
                put_str(out, name, MAX_NAME_LEN);
                w(out).u64(snapshot.len() as u64).expect("vec write");
                w(out).bytes(snapshot).expect("vec write");
            }
            Request::FailNode { name, v } => {
                put_str(out, name, MAX_NAME_LEN);
                w(out).u32(v.0).expect("vec write");
            }
            Request::RepairAndSwap { name, delta } => {
                put_str(out, name, MAX_NAME_LEN);
                encode_delta(delta, out);
            }
            Request::Stats => {}
        }
    }

    /// Decodes a request payload into `(req_id, request)`.
    pub(crate) fn decode(payload: &[u8]) -> Result<(u64, Request), WireError> {
        let mut c = Cursor::new(payload);
        let ver = c.u8()?;
        if ver != NET_VERSION {
            return Err(WireError::BadVersion { got: ver });
        }
        let op_byte = c.u8()?;
        let op = Op::from_wire(op_byte).ok_or(WireError::UnknownOp { op: op_byte })?;
        let req_id = c.u64()?;
        let req = match op {
            Op::Estimate | Op::NextHop | Op::Route | Op::FailEdge => {
                let name = c.str(MAX_NAME_LEN, "oracle name")?;
                let (u, v) = (NodeId(c.u32()?), NodeId(c.u32()?));
                match op {
                    Op::Estimate => Request::Estimate { name, u, v },
                    Op::NextHop => Request::NextHop { name, u, v },
                    Op::Route => Request::Route { name, u, v },
                    _ => Request::FailEdge { name, u, v },
                }
            }
            Op::EstimateMany => {
                let name = c.str(MAX_NAME_LEN, "oracle name")?;
                let batched = c.bool()?;
                let count = c.count(8, "pair")?;
                // Hot path: the count is already validated against the
                // frame, so take the whole array and cut it locally.
                let raw = c.take(count * 8)?;
                let mut pairs = Vec::with_capacity(count);
                for le in raw.chunks_exact(8) {
                    pairs.push((
                        NodeId(u32::from_le_bytes(le[..4].try_into().expect("len 4"))),
                        NodeId(u32::from_le_bytes(le[4..].try_into().expect("len 4"))),
                    ));
                }
                Request::EstimateMany {
                    name,
                    batched,
                    pairs,
                }
            }
            Op::Install => Request::Install {
                name: c.str(MAX_NAME_LEN, "oracle name")?,
                path: c.str(MAX_PATH_LEN, "snapshot path")?,
            },
            Op::Swap => Request::Swap {
                name: c.str(MAX_NAME_LEN, "oracle name")?,
                snapshot: c.blob("snapshot")?,
            },
            Op::FailNode => Request::FailNode {
                name: c.str(MAX_NAME_LEN, "oracle name")?,
                v: NodeId(c.u32()?),
            },
            Op::RepairAndSwap => Request::RepairAndSwap {
                name: c.str(MAX_NAME_LEN, "oracle name")?,
                delta: decode_delta(&mut c)?,
            },
            Op::Stats => Request::Stats,
        };
        c.finish()?;
        Ok((req_id, req))
    }
}

fn encode_delta(delta: &GraphDelta, out: &mut Vec<u8>) {
    match *delta {
        GraphDelta::SetWeight { u, v, w: weight } => {
            w(out).u8(0).expect("vec write");
            w(out).u32(u.0).expect("vec write");
            w(out).u32(v.0).expect("vec write");
            w(out).u64(weight).expect("vec write");
        }
        GraphDelta::FailEdge { u, v } => {
            w(out).u8(1).expect("vec write");
            w(out).u32(u.0).expect("vec write");
            w(out).u32(v.0).expect("vec write");
        }
        GraphDelta::FailNode { v } => {
            w(out).u8(2).expect("vec write");
            w(out).u32(v.0).expect("vec write");
        }
    }
}

fn decode_delta(c: &mut Cursor<'_>) -> Result<GraphDelta, WireError> {
    match c.u8()? {
        0 => Ok(GraphDelta::SetWeight {
            u: NodeId(c.u32()?),
            v: NodeId(c.u32()?),
            w: c.u64()?,
        }),
        1 => Ok(GraphDelta::FailEdge {
            u: NodeId(c.u32()?),
            v: NodeId(c.u32()?),
        }),
        2 => Ok(GraphDelta::FailNode {
            v: NodeId(c.u32()?),
        }),
        k => Err(WireError::Malformed(format!("unknown delta kind {k}"))),
    }
}

// -------------------------------------------------- response codecs --

/// Encodes a success response payload (header + body) into `out`.
pub(crate) fn encode_response(req_id: u64, op: Op, resp: &Response, out: &mut Vec<u8>) {
    w(out).u8(NET_VERSION).expect("vec write");
    w(out).u8(STATUS_OK).expect("vec write");
    w(out).u8(op as u8).expect("vec write");
    w(out).u64(req_id).expect("vec write");
    match resp {
        Response::Estimate { generation, est } => {
            w(out).u64(*generation).expect("vec write");
            w(out).u64(*est).expect("vec write");
        }
        Response::EstimateMany { generation, ests } => {
            w(out).u64(*generation).expect("vec write");
            w(out).u32(ests.len() as u32).expect("vec write");
            // Hot path: bulk little-endian append, mirroring the pair
            // codec on the request side.
            out.reserve(ests.len() * 8);
            for &e in ests {
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        Response::NextHop { hop } => match hop {
            Some(h) => {
                w(out).u8(1).expect("vec write");
                w(out).u32(h.0).expect("vec write");
            }
            None => w(out).u8(0).expect("vec write"),
        },
        Response::Route { outcome, route } => {
            match outcome {
                RouteOutcome::Primary => w(out).u8(0).expect("vec write"),
                RouteOutcome::Detoured { detours } => {
                    w(out).u8(1).expect("vec write");
                    w(out).u64(*detours).expect("vec write");
                }
                RouteOutcome::Unroutable => w(out).u8(2).expect("vec write"),
            }
            match route {
                Some(r) => {
                    w(out).u8(1).expect("vec write");
                    w(out).u64(r.weight).expect("vec write");
                    w(out).u32(r.nodes.len() as u32).expect("vec write");
                    for &x in &r.nodes {
                        w(out).u32(x.0).expect("vec write");
                    }
                    w(out).u32(r.ports.len() as u32).expect("vec write");
                    for &p in &r.ports {
                        w(out).u32(p).expect("vec write");
                    }
                }
                None => w(out).u8(0).expect("vec write"),
            }
        }
        Response::Installed(s) => {
            w(out).u8(s.backend.wire_tag()).expect("vec write");
            w(out).u64(s.n).expect("vec write");
            w(out).u64(s.generation).expect("vec write");
            w(out).u64(s.cold_start_nanos).expect("vec write");
            match s.replaced {
                Some((generation, leases)) => {
                    w(out).u8(1).expect("vec write");
                    w(out).u64(generation).expect("vec write");
                    w(out).u64(leases).expect("vec write");
                }
                None => w(out).u8(0).expect("vec write"),
            }
        }
        Response::Failed => {}
        Response::Repaired(s) => {
            w(out).u64(s.generation).expect("vec write");
            w(out).bool(s.incremental).expect("vec write");
            w(out).u64(s.rows_recomputed).expect("vec write");
            w(out).u64(s.rows_total).expect("vec write");
            put_str(out, &s.reason, MAX_PATH_LEN);
            w(out).u64(s.repair_nanos).expect("vec write");
            w(out).u64(s.stale_window_nanos).expect("vec write");
        }
        Response::Stats(s) => {
            for x in [
                s.requests,
                s.bytes_in,
                s.bytes_out,
                s.connections_active,
                s.connections_total,
                s.p50_service_ns,
                s.p99_service_ns,
                s.conn_requests,
                s.conn_bytes_in,
                s.conn_bytes_out,
            ] {
                w(out).u64(x).expect("vec write");
            }
            w(out).u16(s.oracles.len() as u16).expect("vec write");
            for o in &s.oracles {
                put_str(out, &o.name, MAX_NAME_LEN);
                w(out).u8(o.backend.wire_tag()).expect("vec write");
                for x in [
                    o.generation,
                    o.queries_served,
                    o.batches_served,
                    o.leases_in_flight,
                    o.batch.submissions,
                    o.batch.groups,
                    o.batch.grouped_pairs,
                    o.batch.largest_group,
                ] {
                    w(out).u64(x).expect("vec write");
                }
            }
        }
    }
}

/// Encodes an error response payload (header + encoded error) into `out`.
pub(crate) fn encode_error(req_id: u64, op: u8, err: &WireError, out: &mut Vec<u8>) {
    w(out).u8(NET_VERSION).expect("vec write");
    w(out).u8(STATUS_ERR).expect("vec write");
    w(out).u8(op).expect("vec write");
    w(out).u64(req_id).expect("vec write");
    encode_wire_error(err, out);
}

fn encode_wire_error(err: &WireError, out: &mut Vec<u8>) {
    match err {
        WireError::BadVersion { got } => {
            w(out).u8(0).expect("vec write");
            w(out).u8(*got).expect("vec write");
        }
        WireError::UnknownOp { op } => {
            w(out).u8(1).expect("vec write");
            w(out).u8(*op).expect("vec write");
        }
        WireError::Oversized { len, max } => {
            w(out).u8(2).expect("vec write");
            w(out).u64(*len).expect("vec write");
            w(out).u64(*max).expect("vec write");
        }
        WireError::Truncated => w(out).u8(3).expect("vec write"),
        WireError::Malformed(msg) => {
            w(out).u8(4).expect("vec write");
            put_str(out, truncate_msg(msg), MAX_PATH_LEN);
        }
        WireError::Serve(e) => {
            w(out).u8(5).expect("vec write");
            let (sub, name) = match e {
                ServeError::UnknownOracle(n) => (0u8, n.as_str()),
                ServeError::Deadline(n) => (1, n.as_str()),
                ServeError::Retired(n) => (2, n.as_str()),
                // `ServeError` is non_exhaustive: future variants relay
                // as text until the codec learns them.
                other => {
                    w(out).u8(3).expect("vec write");
                    put_str(out, truncate_msg(&other.to_string()), MAX_PATH_LEN);
                    return;
                }
            };
            w(out).u8(sub).expect("vec write");
            put_str(out, truncate_msg(name), MAX_NAME_LEN);
        }
        WireError::Delta(e) => {
            w(out).u8(6).expect("vec write");
            match e {
                DeltaError::UnknownEdge { u, v } => {
                    w(out).u8(0).expect("vec write");
                    w(out).u32(u.0).expect("vec write");
                    w(out).u32(v.0).expect("vec write");
                }
                DeltaError::UnknownNode { v, n } => {
                    w(out).u8(1).expect("vec write");
                    w(out).u32(v.0).expect("vec write");
                    w(out).u64(*n as u64).expect("vec write");
                }
                DeltaError::ZeroWeight => w(out).u8(2).expect("vec write"),
                DeltaError::Disconnects => w(out).u8(3).expect("vec write"),
                // `Invalid` nests a `GraphError` with no stable wire
                // form (and is unreachable for deltas built through the
                // graphs API) — relay its message instead.
                DeltaError::Invalid(ge) => {
                    w(out).u8(4).expect("vec write");
                    put_str(out, truncate_msg(&ge.to_string()), MAX_PATH_LEN);
                }
            }
        }
        WireError::Overloaded { active, cap } => {
            w(out).u8(8).expect("vec write");
            w(out).u64(*active).expect("vec write");
            w(out).u64(*cap).expect("vec write");
        }
        WireError::Remote(msg) => {
            w(out).u8(7).expect("vec write");
            put_str(out, truncate_msg(msg), MAX_PATH_LEN);
        }
        // Local-only: if one is ever asked to cross, degrade to text.
        WireError::Io(kind, msg) => {
            w(out).u8(7).expect("vec write");
            put_str(out, truncate_msg(&format!("{kind:?}: {msg}")), MAX_PATH_LEN);
        }
    }
}

/// Clamps relayed error messages to what [`MAX_PATH_LEN`] permits.
fn truncate_msg(msg: &str) -> &str {
    let mut end = msg.len().min(MAX_PATH_LEN);
    while !msg.is_char_boundary(end) {
        end -= 1;
    }
    &msg[..end]
}

fn decode_wire_error(c: &mut Cursor<'_>) -> Result<WireError, WireError> {
    Ok(match c.u8()? {
        0 => WireError::BadVersion { got: c.u8()? },
        1 => WireError::UnknownOp { op: c.u8()? },
        2 => WireError::Oversized {
            len: c.u64()?,
            max: c.u64()?,
        },
        3 => WireError::Truncated,
        4 => WireError::Malformed(c.str(MAX_PATH_LEN, "error message")?),
        5 => {
            let sub = c.u8()?;
            if sub == 3 {
                WireError::Remote(c.str(MAX_PATH_LEN, "serve error")?)
            } else {
                let name = c.str(MAX_NAME_LEN, "oracle name")?;
                WireError::Serve(match sub {
                    0 => ServeError::UnknownOracle(name),
                    1 => ServeError::Deadline(name),
                    2 => ServeError::Retired(name),
                    k => return Err(WireError::Malformed(format!("unknown serve sub-code {k}"))),
                })
            }
        }
        6 => WireError::Delta(match c.u8()? {
            0 => DeltaError::UnknownEdge {
                u: NodeId(c.u32()?),
                v: NodeId(c.u32()?),
            },
            1 => DeltaError::UnknownNode {
                v: NodeId(c.u32()?),
                n: c.u64()? as usize,
            },
            2 => DeltaError::ZeroWeight,
            3 => DeltaError::Disconnects,
            4 => {
                let msg = c.str(MAX_PATH_LEN, "graph error")?;
                return Ok(WireError::Remote(format!(
                    "delta produced an invalid graph: {msg}"
                )));
            }
            k => return Err(WireError::Malformed(format!("unknown delta sub-code {k}"))),
        }),
        7 => WireError::Remote(c.str(MAX_PATH_LEN, "error message")?),
        8 => WireError::Overloaded {
            active: c.u64()?,
            cap: c.u64()?,
        },
        k => return Err(WireError::Malformed(format!("unknown error code {k}"))),
    })
}

/// Decodes a response payload into `(req_id, op, body-or-relayed-error)`.
///
/// The outer `Err` is a local decode failure (the frame itself is
/// corrupt); an inner `Err` is the error the **server** raised for this
/// request, reconstructed variant-intact.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_response(
    payload: &[u8],
) -> Result<(u64, Op, Result<Response, WireError>), WireError> {
    let mut c = Cursor::new(payload);
    let ver = c.u8()?;
    if ver != NET_VERSION {
        return Err(WireError::BadVersion { got: ver });
    }
    let status = c.u8()?;
    let op_byte = c.u8()?;
    let req_id = c.u64()?;
    if status == STATUS_ERR {
        // The op byte is advisory on error frames: a server reporting a
        // pre-decode failure (bad version, torn header) has no valid
        // opcode to echo.
        let err = decode_wire_error(&mut c)?;
        c.finish()?;
        let op = Op::from_wire(op_byte).unwrap_or(Op::Stats);
        return Ok((req_id, op, Err(err)));
    }
    if status != STATUS_OK {
        return Err(WireError::Malformed(format!(
            "unknown status byte {status}"
        )));
    }
    let op = Op::from_wire(op_byte).ok_or(WireError::UnknownOp { op: op_byte })?;
    let resp = match op {
        Op::Estimate => Response::Estimate {
            generation: c.u64()?,
            est: c.u64()?,
        },
        Op::EstimateMany => {
            let generation = c.u64()?;
            let count = c.count(8, "estimate")?;
            let raw = c.take(count * 8)?;
            let mut ests = Vec::with_capacity(count);
            for le in raw.chunks_exact(8) {
                ests.push(u64::from_le_bytes(le.try_into().expect("len 8")));
            }
            Response::EstimateMany { generation, ests }
        }
        Op::NextHop => Response::NextHop {
            hop: match c.u8()? {
                0 => None,
                1 => Some(NodeId(c.u32()?)),
                b => return Err(WireError::Malformed(format!("invalid hop flag {b}"))),
            },
        },
        Op::Route => {
            let outcome = match c.u8()? {
                0 => RouteOutcome::Primary,
                1 => RouteOutcome::Detoured { detours: c.u64()? },
                2 => RouteOutcome::Unroutable,
                b => return Err(WireError::Malformed(format!("invalid outcome byte {b}"))),
            };
            let route = match c.u8()? {
                0 => None,
                1 => {
                    let weight = c.u64()?;
                    let count = c.count(4, "route node")?;
                    let mut nodes = Vec::with_capacity(count);
                    for _ in 0..count {
                        nodes.push(NodeId(c.u32()?));
                    }
                    let count = c.count(4, "route port")?;
                    let mut ports: Vec<Port> = Vec::with_capacity(count);
                    for _ in 0..count {
                        ports.push(c.u32()?);
                    }
                    Some(TracedRoute {
                        nodes,
                        ports,
                        weight,
                    })
                }
                b => return Err(WireError::Malformed(format!("invalid route flag {b}"))),
            };
            Response::Route { outcome, route }
        }
        Op::Install | Op::Swap => {
            let tag = c.u8()?;
            let backend = Backend::from_wire_tag(tag)
                .ok_or_else(|| WireError::Malformed(format!("unknown backend tag {tag}")))?;
            Response::Installed(InstallSummary {
                backend,
                n: c.u64()?,
                generation: c.u64()?,
                cold_start_nanos: c.u64()?,
                replaced: match c.u8()? {
                    0 => None,
                    1 => Some((c.u64()?, c.u64()?)),
                    b => return Err(WireError::Malformed(format!("invalid replaced flag {b}"))),
                },
            })
        }
        Op::FailEdge | Op::FailNode => Response::Failed,
        Op::RepairAndSwap => Response::Repaired(RepairSummary {
            generation: c.u64()?,
            incremental: c.bool()?,
            rows_recomputed: c.u64()?,
            rows_total: c.u64()?,
            reason: c.str(MAX_PATH_LEN, "rebuild reason")?,
            repair_nanos: c.u64()?,
            stale_window_nanos: c.u64()?,
        }),
        Op::Stats => {
            let mut head = [0u64; 10];
            for slot in &mut head {
                *slot = c.u64()?;
            }
            let count = c.u16()? as usize;
            let mut oracles = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let name = c.str(MAX_NAME_LEN, "oracle name")?;
                let tag = c.u8()?;
                let backend = Backend::from_wire_tag(tag)
                    .ok_or_else(|| WireError::Malformed(format!("unknown backend tag {tag}")))?;
                let mut xs = [0u64; 8];
                for slot in &mut xs {
                    *slot = c.u64()?;
                }
                oracles.push(OracleStats {
                    name,
                    backend,
                    generation: xs[0],
                    queries_served: xs[1],
                    batches_served: xs[2],
                    leases_in_flight: xs[3],
                    batch: BatcherStats {
                        submissions: xs[4],
                        groups: xs[5],
                        grouped_pairs: xs[6],
                        largest_group: xs[7],
                    },
                });
            }
            Response::Stats(ServerStats {
                requests: head[0],
                bytes_in: head[1],
                bytes_out: head[2],
                connections_active: head[3],
                connections_total: head[4],
                p50_service_ns: head[5],
                p99_service_ns: head[6],
                conn_requests: head[7],
                conn_bytes_in: head[8],
                conn_bytes_out: head[9],
                oracles,
            })
        }
    };
    c.finish()?;
    Ok((req_id, op, Ok(resp)))
}

/// The error emitted when a graph delta round-trips through
/// [`GraphError`] — kept here so the doc link compiles.
#[doc(hidden)]
pub fn _doc_anchor(_: &GraphError) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        req.encode_into(42, &mut buf);
        let (req_id, back) = Request::decode(&buf).unwrap();
        assert_eq!(req_id, 42);
        assert_eq!(back, req);
    }

    #[test]
    fn requests_round_trip() {
        let name = "pde".to_string();
        roundtrip_request(Request::Estimate {
            name: name.clone(),
            u: NodeId(3),
            v: NodeId(9),
        });
        roundtrip_request(Request::EstimateMany {
            name: name.clone(),
            batched: true,
            pairs: vec![(NodeId(0), NodeId(1)), (NodeId(7), NodeId(2))],
        });
        roundtrip_request(Request::NextHop {
            name: name.clone(),
            u: NodeId(1),
            v: NodeId(2),
        });
        roundtrip_request(Request::Route {
            name: name.clone(),
            u: NodeId(1),
            v: NodeId(2),
        });
        roundtrip_request(Request::Install {
            name: name.clone(),
            path: "/tmp/x.snap".into(),
        });
        roundtrip_request(Request::Swap {
            name: name.clone(),
            snapshot: vec![1, 2, 3, 4, 5],
        });
        roundtrip_request(Request::FailEdge {
            name: name.clone(),
            u: NodeId(1),
            v: NodeId(2),
        });
        roundtrip_request(Request::FailNode {
            name: name.clone(),
            v: NodeId(5),
        });
        for delta in [
            GraphDelta::SetWeight {
                u: NodeId(0),
                v: NodeId(1),
                w: 7,
            },
            GraphDelta::FailEdge {
                u: NodeId(2),
                v: NodeId(3),
            },
            GraphDelta::FailNode { v: NodeId(4) },
        ] {
            roundtrip_request(Request::RepairAndSwap {
                name: name.clone(),
                delta,
            });
        }
        roundtrip_request(Request::Stats);
    }

    fn roundtrip_response(op: Op, resp: Response) {
        let mut buf = Vec::new();
        encode_response(7, op, &resp, &mut buf);
        let (req_id, back_op, body) = decode_response(&buf).unwrap();
        assert_eq!((req_id, back_op), (7, op));
        assert_eq!(body.unwrap(), resp);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(
            Op::Estimate,
            Response::Estimate {
                generation: 3,
                est: 99,
            },
        );
        roundtrip_response(
            Op::EstimateMany,
            Response::EstimateMany {
                generation: 2,
                ests: vec![1, u64::MAX, 0],
            },
        );
        roundtrip_response(Op::NextHop, Response::NextHop { hop: None });
        roundtrip_response(
            Op::NextHop,
            Response::NextHop {
                hop: Some(NodeId(12)),
            },
        );
        roundtrip_response(
            Op::Route,
            Response::Route {
                outcome: RouteOutcome::Detoured { detours: 2 },
                route: Some(TracedRoute {
                    nodes: vec![NodeId(0), NodeId(3), NodeId(1)],
                    ports: vec![2, 0],
                    weight: 11,
                }),
            },
        );
        roundtrip_response(
            Op::Route,
            Response::Route {
                outcome: RouteOutcome::Unroutable,
                route: None,
            },
        );
        roundtrip_response(
            Op::Install,
            Response::Installed(InstallSummary {
                backend: Backend::Rtc,
                n: 4096,
                generation: 5,
                cold_start_nanos: 123_456,
                replaced: Some((4, 2)),
            }),
        );
        roundtrip_response(Op::FailEdge, Response::Failed);
        roundtrip_response(
            Op::RepairAndSwap,
            Response::Repaired(RepairSummary {
                generation: 6,
                incremental: true,
                rows_recomputed: 4,
                rows_total: 16,
                reason: String::new(),
                repair_nanos: 1000,
                stale_window_nanos: 2000,
            }),
        );
        roundtrip_response(
            Op::Stats,
            Response::Stats(ServerStats {
                requests: 10,
                bytes_in: 100,
                bytes_out: 200,
                connections_active: 1,
                connections_total: 3,
                p50_service_ns: 5_000,
                p99_service_ns: 50_000,
                conn_requests: 4,
                conn_bytes_in: 40,
                conn_bytes_out: 80,
                oracles: vec![OracleStats {
                    name: "pde".into(),
                    backend: Backend::Pde,
                    generation: 2,
                    queries_served: 1000,
                    batches_served: 10,
                    leases_in_flight: 1,
                    batch: BatcherStats {
                        submissions: 8,
                        groups: 2,
                        grouped_pairs: 64,
                        largest_group: 5,
                    },
                }],
            }),
        );
    }

    /// The satellite contract: `ServeError` and `DeltaError` variants
    /// cross the wire intact (every reachable variant pinned), and the
    /// protocol-level `WireError` variants do too.
    #[test]
    fn errors_survive_the_wire_round_trip_variant_intact() {
        let cases = vec![
            WireError::BadVersion { got: 9 },
            WireError::UnknownOp { op: 200 },
            WireError::Oversized {
                len: 1 << 40,
                max: 1 << 28,
            },
            WireError::Truncated,
            WireError::Malformed("trailing bytes".into()),
            WireError::Serve(ServeError::UnknownOracle("pde".into())),
            WireError::Serve(ServeError::Deadline("rtc".into())),
            WireError::Serve(ServeError::Retired("compact".into())),
            WireError::Delta(DeltaError::UnknownEdge {
                u: NodeId(3),
                v: NodeId(4),
            }),
            WireError::Delta(DeltaError::UnknownNode { v: NodeId(9), n: 8 }),
            WireError::Delta(DeltaError::ZeroWeight),
            WireError::Delta(DeltaError::Disconnects),
            WireError::Remote("install failed: no such file".into()),
            WireError::Overloaded {
                active: 256,
                cap: 255,
            },
        ];
        for err in cases {
            let mut buf = Vec::new();
            encode_error(77, Op::Estimate as u8, &err, &mut buf);
            let (req_id, op, body) = decode_response(&buf).unwrap();
            assert_eq!((req_id, op), (77, Op::Estimate));
            assert_eq!(body.unwrap_err(), err, "variant must survive the wire");
        }
    }

    #[test]
    fn errors_implement_error_and_display_uniformly() {
        // The `?`-composition contract: everything is std::error::Error
        // with a Display that names the failure.
        fn check(e: &dyn std::error::Error) {
            assert!(!e.to_string().is_empty());
        }
        check(&WireError::Truncated);
        check(&ServeError::Deadline("x".into()));
        check(&DeltaError::Disconnects);
        // Source chains reach the carried typed error.
        let wrapped = WireError::Serve(ServeError::Retired("x".into()));
        assert!(std::error::Error::source(&wrapped).is_some());
        let wrapped = WireError::Delta(DeltaError::ZeroWeight);
        assert!(std::error::Error::source(&wrapped).is_some());
        // io::Error conversion types truncation.
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(WireError::from(eof), WireError::Truncated);
        let refused = io::Error::new(io::ErrorKind::ConnectionRefused, "nope");
        assert!(matches!(
            WireError::from(refused),
            WireError::Io(io::ErrorKind::ConnectionRefused, _)
        ));
    }

    #[test]
    fn adversarial_payloads_yield_typed_errors_never_panics() {
        // Empty, torn, and bit-flipped frames.
        assert!(Request::decode(&[]).is_err());
        let mut buf = Vec::new();
        Request::Estimate {
            name: "a".into(),
            u: NodeId(0),
            v: NodeId(1),
        }
        .encode_into(1, &mut buf);
        for cut in 0..buf.len() {
            let _ = Request::decode(&buf[..cut]); // must not panic
        }
        // Wrong version.
        let mut bad = buf.clone();
        bad[0] = 99;
        assert_eq!(
            Request::decode(&bad).unwrap_err(),
            WireError::BadVersion { got: 99 }
        );
        // Unknown opcode.
        let mut bad = buf.clone();
        bad[1] = 250;
        assert_eq!(
            Request::decode(&bad).unwrap_err(),
            WireError::UnknownOp { op: 250 }
        );
        // Trailing garbage.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(matches!(
            Request::decode(&bad).unwrap_err(),
            WireError::Malformed(_)
        ));
        // A lying pair count cannot request an absurd allocation.
        let mut buf = Vec::new();
        Request::EstimateMany {
            name: "a".into(),
            batched: false,
            pairs: vec![(NodeId(0), NodeId(1))],
        }
        .encode_into(1, &mut buf);
        let count_at = buf.len() - 8 - 4;
        buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&buf).unwrap_err(),
            WireError::Malformed(_)
        ));
    }
}
