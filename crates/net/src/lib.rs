//! Socket serving for the oracle registry: a length-framed binary wire
//! protocol, a threaded TCP server over [`serve::OracleServer`], and a
//! pipelined blocking client — `std::net` and `std::thread` only, like
//! the rest of the workspace.
//!
//! # Protocol
//!
//! Each message is one [`congest::wire`] frame (`u32` little-endian
//! length prefix, bounded before allocation) whose payload starts with a
//! version byte. Requests carry an opcode ([`Op`]) and an opaque
//! correlation id; responses echo both, in request order per
//! connection, which is what makes pipelining positional and simple.
//! Ten ops cover serving ([`Op::Estimate`], [`Op::EstimateMany`],
//! [`Op::NextHop`], [`Op::Route`]) and administration ([`Op::Install`],
//! [`Op::Swap`], [`Op::FailEdge`], [`Op::FailNode`],
//! [`Op::RepairAndSwap`], [`Op::Stats`]). Errors travel as explicit
//! error frames: [`serve::ServeError`] and [`graphs::DeltaError`] cross
//! the wire with their variant intact (pinned by tests), everything
//! else degrades to a typed [`WireError`] — corruption never panics
//! either side.
//!
//! # Determinism contract
//!
//! A socket-served answer is **byte-identical** to the in-process one:
//! the server dispatches [`Op::EstimateMany`] to the very same
//! [`serve::OracleServer::query`] / [`serve::Batcher::submit`] calls a
//! local caller would make, so `estimate_many` digests match across
//! process boundaries for every backend, before and after hot swaps.
//! The `net` smoke (`experiments -- net --smoke`) pins this digest
//! equality for all eight backends.
//!
//! # Robustness
//!
//! The identity contract has to hold on a network that misbehaves, so
//! the crate carries its own hardening on both sides of the socket.
//!
//! * **Client resilience** — [`RetryClient`] wraps a [`ReplicaSet`]
//!   (ordered replicas with health tracking and cooldown re-probing)
//!   and a [`RetryPolicy`] (bounded attempts, exponential backoff with
//!   deterministic seeded equal jitter). It retries an operation only
//!   when the underlying [`Client`] *poisoned* — a cut, stall, or
//!   refused dial, where the request provably produced no durable
//!   answer — and surfaces server-relayed typed errors untouched.
//! * **Overload protection** — [`NetServer`] refuses connections past
//!   [`ServerConfig::max_connections`] at the door and sheds oversized
//!   batches past [`ServerConfig::max_batch_pairs`], both with a typed
//!   [`WireError::Overloaded`]; slow-loris drips are bounded by a
//!   whole-frame deadline, and a handler panic is caught per request —
//!   the connection (and every lock) survives it.
//! * **Chaos harness** — [`ChaosProxy`] injects deterministic,
//!   replayable transport faults (cut or stalled reply streams on a
//!   seeded per-connection schedule) between a client and server; the
//!   `chaos` smoke (`experiments -- chaos --smoke`) drives every
//!   backend through it asserting digest-identical answers and zero
//!   panics.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use congest::NodeId;
//! use graphs::WGraph;
//! use oracle::{Backend, OracleBuilder};
//! use serve::OracleServer;
//! use net::{Client, NetServer, ServerConfig};
//!
//! let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]).unwrap();
//! let registry = Arc::new(OracleServer::new());
//! registry.install("ring", OracleBuilder::new(Backend::Flooding).build(&g));
//!
//! let server = NetServer::bind("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default())
//!     .unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! assert_eq!(client.estimate("ring", NodeId(0), NodeId(2)).unwrap(), 2);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod client;
mod metrics;
mod resilient;
mod server;
mod wire;

pub use chaos::{ChaosPlan, ChaosProxy};
pub use client::Client;
pub use metrics::{LatencyHistogram, NetMetrics};
pub use resilient::{ReplicaSet, RetryClient, RetryPolicy};
pub use server::{NetServer, ServerConfig};
pub use wire::{
    InstallSummary, Op, OracleStats, RepairSummary, RouteOutcome, ServerStats, WireError,
    MAX_NAME_LEN, MAX_PATH_LEN, NET_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use congest::NodeId;
    use graphs::{GraphDelta, WGraph};
    use oracle::{Backend, DistanceOracle, OracleBuilder};
    use serve::{DynamicOracle, OracleServer, ServeError};
    use std::sync::Arc;

    fn ring_with_chord(n: u32) -> WGraph {
        let mut edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, 2)).collect();
        edges.push((0, n / 2, 3));
        WGraph::from_edges(n as usize, &edges).unwrap()
    }

    fn serve_ring(n: u32) -> (NetServer, Arc<OracleServer>, WGraph) {
        let g = ring_with_chord(n);
        let registry = Arc::new(OracleServer::new());
        registry.install("ring", OracleBuilder::new(Backend::Flooding).build(&g));
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .unwrap();
        (server, registry, g)
    }

    #[test]
    fn estimates_match_in_process_answers_exactly() {
        let (server, registry, _g) = serve_ring(12);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = (0..12u32)
            .flat_map(|u| (0..12u32).map(move |v| (NodeId(u), NodeId(v))))
            .collect();
        let mut expected = Vec::new();
        let expected_gen = registry.query("ring", &pairs, &mut expected, 0).unwrap();
        // Singles.
        for &(u, v) in pairs.iter().take(5) {
            let lease = registry.lease("ring").unwrap();
            assert_eq!(
                client.estimate("ring", u, v).unwrap(),
                lease.oracle().estimate(u, v)
            );
        }
        // Direct batch and batched batch: identical bytes, one
        // generation.
        for batched in [false, true] {
            let (ests, generation) = client.estimate_many("ring", &pairs, batched).unwrap();
            assert_eq!(ests, expected);
            assert_eq!(generation, expected_gen);
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_submissions_come_back_in_order() {
        let (server, registry, _g) = serve_ring(10);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let shards: Vec<Vec<(NodeId, NodeId)>> = (0..8u32)
            .map(|s| (0..10u32).map(|v| (NodeId(s % 10), NodeId(v))).collect())
            .collect();
        for shard in &shards {
            client.queue_estimate_many("ring", shard, false).unwrap();
        }
        let results = client.drain_estimate_many().unwrap();
        assert_eq!(results.len(), shards.len());
        for (shard, (ests, _)) in shards.iter().zip(&results) {
            let mut expected = Vec::new();
            registry.query("ring", shard, &mut expected, 0).unwrap();
            assert_eq!(*ests, expected);
        }
        // The connection is still healthy for direct calls.
        assert_eq!(client.estimate("ring", NodeId(0), NodeId(0)).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn routes_and_next_hops_cross_the_wire() {
        let (server, registry, _g) = serve_ring(8);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let lease = registry.lease("ring").unwrap();
        let (u, v) = (NodeId(0), NodeId(3));
        assert_eq!(
            client.next_hop("ring", u, v).unwrap(),
            lease.oracle().next_hop(u, v)
        );
        let (outcome, route) = client.route("ring", u, v).unwrap();
        assert_eq!(outcome, RouteOutcome::Primary);
        assert_eq!(route, lease.oracle().route(u, v));
        server.shutdown();
    }

    #[test]
    fn swap_and_install_hot_swap_generations_over_the_wire() {
        let (server, registry, g) = serve_ring(8);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let oracle = OracleBuilder::new(Backend::Rtc).build(&g);
        let mut v2 = Vec::new();
        oracle.save(&mut v2).unwrap();
        let summary = client.swap("ring", &v2).unwrap();
        assert_eq!(summary.backend, Backend::Rtc);
        assert_eq!(summary.n, 8);
        assert!(summary.replaced.is_some(), "the flooding snapshot retired");
        // Install from a server-side file (the load_path cold start).
        let path =
            std::env::temp_dir().join(format!("net-test-install-{}.snap", std::process::id()));
        oracle.save_path_v3(&path).unwrap();
        let summary2 = client.install("ring", path.to_str().unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(summary2.generation > summary.generation);
        assert_eq!(
            registry.lease("ring").unwrap().generation(),
            summary2.generation
        );
        // A bad path is a typed remote error, and the connection
        // survives it.
        let err = client.install("ring", "/does/not/exist.snap").unwrap_err();
        assert!(matches!(err, WireError::Remote(_)), "got {err:?}");
        assert_eq!(client.estimate("ring", NodeId(0), NodeId(0)).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn serve_errors_cross_the_wire_variant_intact() {
        let (server, _registry, _g) = serve_ring(8);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.estimate("nope", NodeId(0), NodeId(1)).unwrap_err();
        assert_eq!(
            err,
            WireError::Serve(ServeError::UnknownOracle("nope".into()))
        );
        // Per-request failure: the connection keeps serving.
        assert_eq!(client.estimate("ring", NodeId(0), NodeId(0)).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn dynamic_admin_ops_fail_route_and_repair() {
        let g = ring_with_chord(8);
        let registry = Arc::new(OracleServer::new());
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .unwrap();
        let dynamic =
            DynamicOracle::install(&registry, "dyn", OracleBuilder::new(Backend::Flooding), &g)
                .unwrap();
        server.register_dynamic(dynamic);
        let mut client = Client::connect(server.local_addr()).unwrap();
        // Non-dynamic admin ops on an unknown name are typed errors.
        assert!(matches!(
            client.fail_edge("ring", NodeId(0), NodeId(1)).unwrap_err(),
            WireError::Serve(ServeError::UnknownOracle(_))
        ));
        // Mask an edge over the wire: routes detour immediately.
        client.fail_edge("dyn", NodeId(0), NodeId(1)).unwrap();
        let (outcome, route) = client.route("dyn", NodeId(0), NodeId(1)).unwrap();
        assert!(
            matches!(outcome, RouteOutcome::Detoured { .. }),
            "{outcome:?}"
        );
        let route = route.unwrap();
        for pair in route.nodes.windows(2) {
            let crosses = (pair[0], pair[1]) == (NodeId(0), NodeId(1))
                || (pair[0], pair[1]) == (NodeId(1), NodeId(0));
            assert!(!crosses, "route crossed the failed edge: {:?}", route.nodes);
        }
        // Repair over the wire: generation advances, estimates reflect
        // the repaired graph, routes return to primary.
        let before = registry.lease("dyn").unwrap().generation();
        let summary = client
            .repair_and_swap(
                "dyn",
                &GraphDelta::FailEdge {
                    u: NodeId(0),
                    v: NodeId(1),
                },
            )
            .unwrap();
        assert!(summary.generation > before);
        let (outcome, _) = client.route("dyn", NodeId(0), NodeId(1)).unwrap();
        assert_eq!(outcome, RouteOutcome::Primary);
        // A delta against a now-unknown edge comes back as the typed
        // DeltaError variant.
        let err = client
            .repair_and_swap(
                "dyn",
                &GraphDelta::FailEdge {
                    u: NodeId(0),
                    v: NodeId(1),
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            WireError::Delta(graphs::DeltaError::UnknownEdge {
                u: NodeId(0),
                v: NodeId(1)
            })
        );
        server.shutdown();
    }

    #[test]
    fn stats_report_serving_counters() {
        let (server, _registry, _g) = serve_ring(8);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let pairs = [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(5))];
        client.estimate_many("ring", &pairs, true).unwrap();
        client.estimate("ring", NodeId(0), NodeId(4)).unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.requests >= 2);
        assert_eq!(stats.connections_active, 1);
        assert!(stats.conn_requests >= 2);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
        assert_eq!(stats.oracles.len(), 1);
        let oracle_stats = &stats.oracles[0];
        assert_eq!(oracle_stats.name, "ring");
        assert_eq!(oracle_stats.backend, Backend::Flooding);
        assert!(oracle_stats.queries_served >= 3);
        assert_eq!(oracle_stats.batch.submissions, 1);
        assert!(stats.p50_service_ns > 0);
        let metrics = server.metrics();
        assert_eq!(metrics.requests, stats.requests + 1); // + the Stats call
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_and_eofs_clients() {
        let (server, _registry, _g) = serve_ring(8);
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.estimate("ring", NodeId(0), NodeId(0)).unwrap(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
        let err = client.estimate("ring", NodeId(0), NodeId(1)).unwrap_err();
        assert!(
            matches!(err, WireError::Truncated | WireError::Io(..)),
            "got {err:?}"
        );
    }

    #[test]
    fn version_mismatch_is_reported_then_fatal() {
        use std::io::Write as _;
        let (server, _registry, _g) = serve_ring(8);
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        // A frame with a bogus version byte.
        let payload = [9u8, 1, 0, 0, 0, 0, 0, 0, 0, 0];
        congest::wire::write_frame(&mut raw, &payload).unwrap();
        raw.flush().unwrap();
        let reply = congest::wire::read_frame(&mut raw, 1 << 20)
            .unwrap()
            .expect("an error frame before the close");
        let (req_id, _op, body) = wire::decode_response(&reply).unwrap();
        assert_eq!(req_id, 0, "pre-decode failures carry no request id");
        assert_eq!(body.unwrap_err(), WireError::BadVersion { got: 9 });
        // The server closed the connection afterwards.
        assert_eq!(congest::wire::read_frame(&mut raw, 1 << 20).unwrap(), None);
        server.shutdown();
    }
}
