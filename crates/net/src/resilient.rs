//! Client-side fault tolerance: bounded retries with deterministic
//! backoff, transparent reconnection, and replica failover.
//!
//! A bare [`Client`] is deliberately fragile: one torn frame poisons the
//! connection and every later call fails fast. That is the right
//! contract for the protocol layer — framing may be desynchronized, so
//! nothing after the fault can be trusted — but callers facing a lossy
//! network want the obvious recovery automated: reconnect, replay the
//! request, and fail over to another replica when the current one stays
//! dead. [`RetryClient`] is that automation:
//!
//! - a [`RetryPolicy`] bounds the attempts and spaces them with
//!   exponential backoff under **deterministic seeded jitter** (same
//!   seed, same delays — chaos runs stay reproducible);
//! - a [`ReplicaSet`] holds the server addresses with per-replica
//!   health: a replica that refuses connections (or keeps poisoning
//!   them) is marked unhealthy and skipped until its re-probe interval
//!   expires, so every attempt goes to the most plausible address
//!   first, and a dead primary costs one failed attempt — not one per
//!   request;
//! - only **idempotent** requests are replayed (estimates, routes,
//!   stats, snapshot installs — re-running any of them cannot change
//!   served answers). [`RetryClient::repair_and_swap`] is the
//!   exception: a repair observed-failed may still have been applied,
//!   so it is never replayed blindly (see its docs).
//!
//! Retried answers are byte-identical to a fault-free run: the server
//! recomputes them against the same deterministic artifact, so a query
//! that survives three reconnects returns exactly the bytes it would
//! have returned on a clean connection (pinned by `e16_chaos`).

use crate::client::Client;
use crate::wire::{InstallSummary, RepairSummary, RouteOutcome, ServerStats, WireError};
use congest::NodeId;
use graphs::GraphDelta;
use oracle::TracedRoute;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Bounded-retry settings with deterministic seeded jitter.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles every retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter stream. Two clients with the same seed sleep
    /// the same delays — chaos experiments stay reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// One step of the splitmix64 stream — the workspace-standard way to
/// derive deterministic pseudo-randomness from a seed (see
/// `graphs::seed`); vendored here to keep `net` free of a rand
/// dependency on its hot path.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The delay before attempt `attempt + 1` (so `attempt` counts the
    /// failures seen: 1 after the first). Exponential
    /// (`base · 2^(attempt-1)`, capped at `max_backoff`) with *equal*
    /// jitter: uniformly drawn from `[exp/2, exp]` using `draw`, so
    /// synchronized clients spread out while the bound stays intact.
    pub fn backoff(&self, attempt: u32, draw: u64) -> Duration {
        let base = self.base_backoff.as_nanos().max(1);
        let exp = base
            .saturating_mul(1u128 << attempt.saturating_sub(1).min(63))
            .min(self.max_backoff.as_nanos());
        let half = exp / 2;
        let jittered = half + u128::from(draw) % (exp - half + 1);
        Duration::from_nanos(u64::try_from(jittered).unwrap_or(u64::MAX))
    }
}

struct Replica {
    addr: SocketAddr,
    unhealthy_until: Option<Instant>,
}

/// An ordered set of interchangeable server addresses with per-replica
/// health tracking.
///
/// Connection attempts prefer healthy replicas (sticky to the last one
/// that worked); a replica that fails is marked unhealthy and skipped
/// until its re-probe interval expires. When *every* replica is
/// unhealthy the set still offers them all — availability over
/// bookkeeping: the alternative is refusing to try at all.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    reprobe: Duration,
    preferred: usize,
}

impl ReplicaSet {
    /// Builds a replica set from one or more addresses (each entry may
    /// resolve to several socket addresses; all are kept, in order).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when resolution fails or yields no address.
    pub fn new<A: ToSocketAddrs>(addrs: &[A]) -> Result<ReplicaSet, WireError> {
        let mut replicas = Vec::new();
        for a in addrs {
            for addr in a.to_socket_addrs()? {
                replicas.push(Replica {
                    addr,
                    unhealthy_until: None,
                });
            }
        }
        if replicas.is_empty() {
            return Err(WireError::Io(
                io::ErrorKind::AddrNotAvailable,
                "replica set resolved to no addresses".into(),
            ));
        }
        Ok(ReplicaSet {
            replicas,
            reprobe: Duration::from_millis(250),
            preferred: 0,
        })
    }

    /// Overrides the unhealthy re-probe interval (default 250 ms).
    #[must_use]
    pub fn with_reprobe(mut self, reprobe: Duration) -> ReplicaSet {
        self.reprobe = reprobe;
        self
    }

    /// The member addresses, in construction order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.iter().map(|r| r.addr).collect()
    }

    /// Replica indices in attempt order: healthy (or re-probe-due) ones
    /// first, rotating from the sticky preferred index; if every replica
    /// is marked unhealthy, all of them in rotation order.
    fn candidates(&self, now: Instant) -> Vec<usize> {
        let n = self.replicas.len();
        let rotation = (0..n).map(|i| (self.preferred + i) % n);
        let usable: Vec<usize> = rotation
            .clone()
            .filter(|&i| match self.replicas[i].unhealthy_until {
                None => true,
                Some(until) => now >= until,
            })
            .collect();
        if usable.is_empty() {
            rotation.collect()
        } else {
            usable
        }
    }

    fn mark_unhealthy(&mut self, idx: usize, now: Instant) {
        self.replicas[idx].unhealthy_until = Some(now + self.reprobe);
    }

    fn mark_healthy(&mut self, idx: usize) {
        self.replicas[idx].unhealthy_until = None;
        self.preferred = idx;
    }
}

/// A [`Client`] wrapper that retries idempotent requests across
/// reconnects and replica failover, per a [`RetryPolicy`].
///
/// See the [module docs](self) for the semantics. Pipelined submission
/// ([`Client::queue_estimate_many`]) is deliberately not wrapped: a
/// reconnect mid-window cannot know which queued requests the server
/// executed, so the resilient surface is strict request/response only.
pub struct RetryClient {
    replicas: ReplicaSet,
    policy: RetryPolicy,
    timeout: Option<Duration>,
    conn: Option<(usize, Client)>,
    jitter: u64,
    retries: u64,
    reconnects: u64,
}

impl RetryClient {
    /// Connects to the first reachable replica.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when no replica accepts a connection within the
    /// policy's attempt budget.
    pub fn connect(replicas: ReplicaSet, policy: RetryPolicy) -> Result<RetryClient, WireError> {
        let jitter = policy.jitter_seed;
        let mut client = RetryClient {
            replicas,
            policy,
            timeout: None,
            conn: None,
            jitter,
            retries: 0,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Bounds how long any single receive may block (applied to every
    /// current and future connection).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the live socket rejects the option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.timeout = timeout;
        if let Some((_, client)) = self.conn.as_mut() {
            client.set_timeout(timeout)?;
        }
        Ok(())
    }

    /// The replica currently connected, if any.
    pub fn current_replica(&self) -> Option<SocketAddr> {
        self.conn
            .as_ref()
            .map(|(idx, _)| self.replicas.replicas[*idx].addr)
    }

    /// Operations that needed at least one retry.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections established after the first (reconnects and
    /// failovers alike).
    pub fn reconnects(&self) -> u64 {
        // `self.reconnects` counts every successful dial, including the
        // initial one made by `connect`.
        self.reconnects.saturating_sub(1)
    }

    /// Drops a poisoned (or absent) connection and dials candidates in
    /// health order until one accepts.
    fn ensure_connected(&mut self) -> Result<(), WireError> {
        if let Some((_, client)) = self.conn.as_ref() {
            if !client.is_poisoned() {
                return Ok(());
            }
            self.conn = None;
        }
        let now = Instant::now();
        let mut last = WireError::Io(io::ErrorKind::NotConnected, "no replica reachable".into());
        for idx in self.replicas.candidates(now) {
            match Client::connect(self.replicas.replicas[idx].addr) {
                Ok(mut client) => {
                    if let Err(e) = client.set_timeout(self.timeout) {
                        last = e;
                        self.replicas.mark_unhealthy(idx, now);
                        continue;
                    }
                    self.reconnects += 1;
                    self.replicas.mark_healthy(idx);
                    self.conn = Some((idx, client));
                    return Ok(());
                }
                Err(e) => {
                    last = e;
                    self.replicas.mark_unhealthy(idx, now);
                }
            }
        }
        Err(last)
    }

    /// Runs one idempotent operation with reconnect-and-replay. A
    /// server-relayed per-request error returns immediately (the server
    /// answered; retrying cannot change a deterministic answer); a
    /// poisoned connection — torn frame, reset, refusal at the door —
    /// is dropped, the replica marked, and the request replayed against
    /// the next candidate after the policy's backoff.
    fn run<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let failed = match self.ensure_connected() {
                Ok(()) => {
                    let (idx, client) = self.conn.as_mut().expect("just connected");
                    let idx = *idx;
                    match op(client) {
                        Ok(v) => return Ok(v),
                        Err(e) => {
                            if client.is_poisoned() {
                                self.replicas.mark_unhealthy(idx, Instant::now());
                                self.conn = None;
                                e
                            } else {
                                // The connection is intact: this is the
                                // server's deterministic answer for the
                                // request. Surface it.
                                return Err(e);
                            }
                        }
                    }
                }
                Err(e) => e,
            };
            if attempt >= self.policy.max_attempts.max(1) {
                return Err(failed);
            }
            self.retries += 1;
            let draw = splitmix64(&mut self.jitter);
            std::thread::sleep(self.policy.backoff(attempt, draw));
        }
    }

    /// One distance estimate, retried across faults.
    ///
    /// # Errors
    ///
    /// The server's typed per-request error, or the last transport
    /// error once the attempt budget is spent.
    pub fn estimate(&mut self, name: &str, u: NodeId, v: NodeId) -> Result<u64, WireError> {
        self.run(|c| c.estimate(name, u, v))
    }

    /// A batch of estimates, retried across faults. Answers are
    /// byte-identical to a fault-free run — the server recomputes
    /// against the same deterministic artifact.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn estimate_many(
        &mut self,
        name: &str,
        pairs: &[(NodeId, NodeId)],
        batched: bool,
    ) -> Result<(Vec<u64>, u64), WireError> {
        self.run(|c| c.estimate_many(name, pairs, batched))
    }

    /// The first hop of the route `u → v`, retried across faults.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn next_hop(
        &mut self,
        name: &str,
        u: NodeId,
        v: NodeId,
    ) -> Result<Option<NodeId>, WireError> {
        self.run(|c| c.next_hop(name, u, v))
    }

    /// The full traced route `u → v`, retried across faults.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn route(
        &mut self,
        name: &str,
        u: NodeId,
        v: NodeId,
    ) -> Result<(RouteOutcome, Option<TracedRoute>), WireError> {
        self.run(|c| c.route(name, u, v))
    }

    /// Admin: install a snapshot from a file on the server's
    /// filesystem, retried across faults (re-installing the same
    /// snapshot is idempotent in effect: it can only advance the
    /// generation onto identical bytes).
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn install(&mut self, name: &str, path: &str) -> Result<InstallSummary, WireError> {
        self.run(|c| c.install(name, path))
    }

    /// Admin: install the snapshot bytes carried in the request,
    /// retried across faults.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn swap(&mut self, name: &str, snapshot: &[u8]) -> Result<InstallSummary, WireError> {
        self.run(|c| c.swap(name, snapshot))
    }

    /// Admin: mask edge `{u, v}` as failed (idempotent), retried.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn fail_edge(&mut self, name: &str, u: NodeId, v: NodeId) -> Result<(), WireError> {
        self.run(|c| c.fail_edge(name, u, v))
    }

    /// Admin: mask node `v` as failed (idempotent), retried.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn fail_node(&mut self, name: &str, v: NodeId) -> Result<(), WireError> {
        self.run(|c| c.fail_node(name, v))
    }

    /// Server statistics, retried across faults.
    ///
    /// # Errors
    ///
    /// As [`RetryClient::estimate`].
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        self.run(|c| c.stats())
    }

    /// Admin: repair-and-swap — **not replayed**. A repair is the one
    /// op here that is not idempotent (its delta names edges of the
    /// pre-delta graph; applying it twice fails, and a fault after the
    /// send leaves "applied or not?" unknowable from this side). The
    /// request is attempted once on a live connection; reconnection
    /// happens only *before* anything is sent. On a transport fault the
    /// caller decides — typically by reading the mask or stats first.
    ///
    /// # Errors
    ///
    /// The server's typed error, or the transport error of the single
    /// attempt.
    pub fn repair_and_swap(
        &mut self,
        name: &str,
        delta: &GraphDelta,
    ) -> Result<RepairSummary, WireError> {
        self.ensure_connected()?;
        let (idx, client) = self.conn.as_mut().expect("just connected");
        let idx = *idx;
        let result = client.repair_and_swap(name, delta);
        if result.is_err() && client.is_poisoned() {
            self.replicas.mark_unhealthy(idx, Instant::now());
            self.conn = None;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_monotone_in_expectation() {
        let policy = RetryPolicy::default();
        let mut a = policy.jitter_seed;
        let mut b = policy.jitter_seed;
        for attempt in 1..=10 {
            let da = policy.backoff(attempt, splitmix64(&mut a));
            let db = policy.backoff(attempt, splitmix64(&mut b));
            assert_eq!(da, db, "same seed must give the same delays");
            assert!(
                da <= policy.max_backoff,
                "cap respected at attempt {attempt}"
            );
            let exp = policy
                .base_backoff
                .saturating_mul(1 << (attempt - 1).min(30))
                .min(policy.max_backoff);
            assert!(da >= exp / 2, "equal jitter keeps at least half the step");
        }
    }

    #[test]
    fn replica_set_rotates_marks_and_reprobes() {
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:19001".parse().unwrap(),
            "127.0.0.1:19002".parse().unwrap(),
            "127.0.0.1:19003".parse().unwrap(),
        ];
        let mut set = ReplicaSet::new(&addrs)
            .unwrap()
            .with_reprobe(Duration::from_millis(50));
        let t0 = Instant::now();
        assert_eq!(set.candidates(t0), vec![0, 1, 2]);
        set.mark_unhealthy(0, t0);
        assert_eq!(set.candidates(t0), vec![1, 2], "unhealthy skipped");
        set.mark_healthy(1);
        assert_eq!(set.candidates(t0), vec![1, 2], "sticky to the last success");
        // All down: the set still offers everything.
        set.mark_unhealthy(1, t0);
        set.mark_unhealthy(2, t0);
        assert_eq!(set.candidates(t0), vec![1, 2, 0]);
        // Past the re-probe interval the marks expire.
        let later = t0 + Duration::from_millis(60);
        assert_eq!(set.candidates(later), vec![1, 2, 0]);
    }

    #[test]
    fn empty_replica_set_is_a_typed_error() {
        let none: &[SocketAddr] = &[];
        assert!(matches!(
            ReplicaSet::new(none),
            Err(WireError::Io(io::ErrorKind::AddrNotAvailable, _))
        ));
    }
}
