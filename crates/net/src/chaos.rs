//! A fault-injecting TCP proxy for chaos testing the serving stack.
//!
//! [`ChaosProxy`] sits between a [`crate::Client`] and a
//! [`crate::NetServer`], forwarding bytes while injecting the transport
//! faults a lossy network produces: frames torn mid-payload, abrupt
//! disconnects, and stalled reads. The schedule is **deterministic** —
//! derived from the plan's seed and the connection index, never from a
//! clock or OS entropy — so a chaos run that finds a bug replays
//! exactly.
//!
//! The proxy is deliberately one-sided: the client→server direction is
//! forwarded verbatim while server→client replies are faulted. Cutting
//! a reply mid-frame poisons the client ([`crate::WireError::Truncated`]
//! / `Io`), which is precisely the recovery path
//! [`crate::RetryClient`] automates — and because requests always
//! arrive whole, the server sees only clean frames followed by EOF,
//! never a half request it could misparse. (Torn *requests* are covered
//! separately by the wire-level adversarial tests, which need byte
//! precision a proxy cannot guarantee.)
//!
//! Every `clean_every`-th connection is passed through fault-free, so a
//! retrying client always makes progress: a bounded retry budget meets a
//! guaranteed-clean connection before it is spent.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// The deterministic fault schedule for a [`ChaosProxy`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Seed for the per-connection fault draw. Same seed, same faults.
    pub seed: u64,
    /// Every `clean_every`-th connection (the 3rd, 6th, ... for 3) is
    /// forwarded fault-free, guaranteeing retry progress. The clean slot
    /// is the *last* of each cycle — the very first connection faults,
    /// so a client that never reconnects cannot dodge the chaos. 0
    /// means *no* clean connections.
    pub clean_every: u32,
    /// Minimum server→client bytes forwarded before a fault fires.
    pub min_prefix: usize,
    /// Maximum server→client bytes forwarded before a fault fires.
    pub max_prefix: usize,
    /// How long a stall fault holds the reply before cutting the
    /// connection. Keep it above the client's read timeout to exercise
    /// the timeout path, or below to exercise pure disconnects.
    pub stall: Duration,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0xC4A0_5CA0_5CA0_5EED,
            clean_every: 3,
            min_prefix: 64,
            max_prefix: 4096,
            stall: Duration::from_millis(50),
        }
    }
}

/// What the proxy does to one connection's server→client stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Forward everything untouched.
    Clean,
    /// Forward `prefix` bytes, then close both sides abruptly —
    /// typically mid-frame, which is what poisons the client.
    CutAfter { prefix: usize },
    /// Forward `prefix` bytes, hold the rest for the plan's stall
    /// duration, then close. Exercises read-timeout handling.
    StallAfter { prefix: usize },
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// The fault for connection `index` (0-based), deterministically.
    fn fault_for(&self, index: u64) -> Fault {
        if self.clean_every > 0 && (index + 1).is_multiple_of(u64::from(self.clean_every)) {
            return Fault::Clean;
        }
        let mut state = self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let draw = splitmix64(&mut state);
        let span = self.max_prefix.saturating_sub(self.min_prefix).max(1) as u64;
        let prefix = self.min_prefix + (splitmix64(&mut state) % span) as usize;
        match draw % 3 {
            0 | 1 => Fault::CutAfter { prefix },
            _ => Fault::StallAfter { prefix },
        }
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct ProxyState {
    upstream: SocketAddr,
    plan: ChaosPlan,
    stopping: AtomicBool,
    connections: AtomicU64,
    faults: AtomicU64,
    /// Clones of every live stream (both sides), so
    /// [`ChaosProxy::kill_live_connections`] can cut them mid-traffic.
    live: Mutex<Vec<TcpStream>>,
}

/// A fault-injecting TCP proxy. See the [module docs](self).
pub struct ChaosProxy {
    state: Arc<ProxyState>,
    addr: SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream` under
    /// `plan`'s fault schedule.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            upstream,
            plan,
            stopping: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(listener, accept_state))
            .expect("spawning the chaos accept thread");
        Ok(ChaosProxy {
            state,
            addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.state.connections.load(Ordering::SeqCst)
    }

    /// Faults injected so far (connections whose reply stream was cut
    /// or stalled).
    pub fn faults_injected(&self) -> u64 {
        self.state.faults.load(Ordering::SeqCst)
    }

    /// Abruptly cuts every connection currently flowing through the
    /// proxy — the "server died mid-traffic" event. New connections
    /// keep being accepted; pair with a downed upstream to simulate a
    /// full outage.
    pub fn kill_live_connections(&self) {
        let mut live = lock_recover(&self.state.live);
        for stream in live.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Stops accepting and cuts every live connection (idempotent).
    pub fn shutdown(&self) {
        if self.state.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; it
        // observes `stopping` and exits.
        let _ = TcpStream::connect(self.addr);
        self.kill_live_connections();
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ProxyState>) {
    for incoming in listener.incoming() {
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let down = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let index = state.connections.fetch_add(1, Ordering::SeqCst);
        let fault = state.plan.fault_for(index);
        let conn_state = Arc::clone(&state);
        let _ = thread::Builder::new()
            .name(format!("chaos-conn-{index}"))
            .spawn(move || handle_connection(down, fault, conn_state));
    }
}

fn track(state: &ProxyState, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        lock_recover(&state.live).push(clone);
    }
}

fn handle_connection(down: TcpStream, fault: Fault, state: Arc<ProxyState>) {
    let up = match TcpStream::connect(state.upstream) {
        Ok(s) => s,
        Err(_) => {
            // Upstream is down: drop the client immediately, the same
            // observable outcome as a refused connection.
            let _ = down.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = down.set_nodelay(true);
    let _ = up.set_nodelay(true);
    track(&state, &down);
    track(&state, &up);
    if fault != Fault::Clean {
        state.faults.fetch_add(1, Ordering::SeqCst);
    }

    // Client → server: forwarded verbatim, so the server only ever sees
    // whole requests (or EOF).
    let (c2s_down, c2s_up) = match (down.try_clone(), up.try_clone()) {
        (Ok(d), Ok(u)) => (d, u),
        _ => {
            let _ = down.shutdown(Shutdown::Both);
            let _ = up.shutdown(Shutdown::Both);
            return;
        }
    };
    let uphill = thread::Builder::new()
        .name("chaos-c2s".into())
        .spawn(move || forward(c2s_down, c2s_up, Fault::Clean, Duration::ZERO));

    // Server → client: the faulted direction.
    forward(up, down, fault, state.plan.stall);
    if let Ok(handle) = uphill {
        let _ = handle.join();
    }
}

/// Pumps bytes `from` → `to` until EOF, an error, or the fault fires.
/// Both streams are shut down on exit so the peer threads unblock.
fn forward(mut from: TcpStream, mut to: TcpStream, fault: Fault, stall: Duration) {
    let budget = match fault {
        Fault::Clean => usize::MAX,
        Fault::CutAfter { prefix } | Fault::StallAfter { prefix } => prefix,
    };
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        let want = buf.len().min(budget - forwarded);
        if want == 0 {
            if matches!(fault, Fault::StallAfter { .. }) {
                thread::sleep(stall);
            }
            break;
        }
        match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                    break;
                }
                forwarded += n;
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_periodically_clean() {
        let plan = ChaosPlan::default();
        for index in 0..64 {
            assert_eq!(
                plan.fault_for(index),
                plan.fault_for(index),
                "same index must draw the same fault"
            );
            if (index + 1) % u64::from(plan.clean_every) == 0 {
                assert_eq!(plan.fault_for(index), Fault::Clean);
            } else {
                assert_ne!(
                    plan.fault_for(index),
                    Fault::Clean,
                    "off-cycle connections must fault (index {index})"
                );
            }
        }
        // Faulted connections actually exist, and prefixes respect the
        // configured window.
        let mut faulted = 0;
        for index in 0..64 {
            match plan.fault_for(index) {
                Fault::Clean => {}
                Fault::CutAfter { prefix } | Fault::StallAfter { prefix } => {
                    faulted += 1;
                    assert!((plan.min_prefix..plan.max_prefix).contains(&prefix));
                }
            }
        }
        assert!(faulted >= 32, "most non-clean slots must fault");
    }

    #[test]
    fn clean_every_zero_never_passes_clean() {
        let plan = ChaosPlan {
            clean_every: 0,
            ..ChaosPlan::default()
        };
        for index in 0..32 {
            assert_ne!(plan.fault_for(index), Fault::Clean);
        }
    }
}
