//! The threaded TCP front end over [`serve::OracleServer`].
//!
//! One accept thread, one handler thread per connection (`std::net` +
//! `std::thread`; the workspace is std-only by design). Each handler
//! reads length-framed requests off a `BufReader`, dispatches against
//! the shared registry, and writes the reply through a `BufWriter` —
//! flushing only when no further request is already buffered, which is
//! what makes client-side pipelining effective without ever blocking a
//! lone request behind an unflushed response.
//!
//! Serving semantics are inherited, not reimplemented:
//!
//! - answers come from [`serve::OracleServer::query`] /
//!   [`serve::ServedOracle::query`] — byte-identical to in-process
//!   `estimate_many` (the determinism contract pinned by the `net`
//!   smoke). An `EstimateMany` frame big enough to cross the grouping
//!   gate runs the oracle's source-grouped schedule kernel; the smoke
//!   additionally sends one batch shuffled and sorted and pins the
//!   answers pair-for-pair;
//! - batched submissions go through the shared admission
//!   [`serve::Batcher`], merging with concurrent submissions from every
//!   connection;
//! - hot swap retires generations, never interrupts them;
//! - [`NetServer::shutdown`] drains in-flight work: stop accepting,
//!   close the read side of every connection (responses already being
//!   written still complete), join the handlers, then retire the
//!   batchers so late submissions fail with [`ServeError::Retired`]
//!   instead of wedging.

use crate::metrics::{LatencyHistogram, NetMetrics};
use crate::wire::{
    self, InstallSummary, OracleStats, RepairSummary, Request, Response, RouteOutcome, ServerStats,
    WireError,
};
use congest::wire::{read_frame, write_frame, MAX_FRAME_LEN};
use oracle::{DistanceOracle, FailoverOutcome, RepairError, TracedRoute};
use serve::{Batcher, BatcherStats, DynamicOracle, OracleServer, RepairSwapError, ServeError};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poison instead of propagating it.
///
/// A connection handler that panics while holding one of the server's
/// locks must degrade to *one* failed request — not cascade panics into
/// every thread that later touches the same lock (which is what
/// `.lock().expect("poisoned")` did). Every structure behind these
/// locks stays internally valid across a panic (plain map
/// inserts/removes, counter bumps, histogram increments), so the
/// recovered guard is safe to keep using.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning for a [`NetServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Admission window for batched `EstimateMany` submissions (how long
    /// a group leader waits for concurrent submitters to join).
    pub batch_window: Duration,
    /// Worker threads per `estimate_many` call (0 = sequential), passed
    /// straight through to the oracle's batch kernel.
    pub threads: usize,
    /// Per-request deadline. Applied as the socket read/write timeout
    /// (an idle or wedged connection is closed once it expires) and as
    /// the admission batcher's deadline (`ServeError::Deadline` on the
    /// wire instead of an unbounded wait). `None` disables both.
    pub deadline: Option<Duration>,
    /// Largest accepted frame payload; oversized frames are rejected
    /// before allocation and the connection is closed.
    pub max_frame: usize,
    /// Connection cap: a connection arriving while this many handlers
    /// are already active is refused with a typed
    /// [`WireError::Overloaded`] error frame and closed — shed at the
    /// door instead of queued into an unbounded thread backlog.
    pub max_connections: usize,
    /// Per-request budget on `EstimateMany` pairs: a batch larger than
    /// this is refused with [`WireError::Overloaded`] (the connection
    /// survives) instead of monopolizing the shared batcher.
    pub max_batch_pairs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_window: Duration::from_micros(250),
            threads: 0,
            deadline: Some(Duration::from_secs(30)),
            max_frame: MAX_FRAME_LEN,
            max_connections: 1024,
            max_batch_pairs: 1 << 22,
        }
    }
}

struct ServerState {
    registry: Arc<OracleServer>,
    dynamics: Mutex<HashMap<String, Arc<DynamicOracle>>>,
    batchers: Mutex<HashMap<String, Arc<Batcher>>>,
    cfg: ServerConfig,
    stopping: AtomicBool,
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    connections_active: AtomicU64,
    connections_total: AtomicU64,
    connections_refused: AtomicU64,
    requests_shed: AtomicU64,
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    service: Mutex<LatencyHistogram>,
}

/// Per-connection counters, folded into `Stats` replies.
#[derive(Default)]
struct ConnCounters {
    requests: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// A running TCP serving front end over one [`OracleServer`] registry.
///
/// Dropping the server (or calling [`NetServer::shutdown`]) performs the
/// graceful drain described in the module docs.
pub struct NetServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts the accept loop over
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<OracleServer>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            registry,
            dynamics: Mutex::new(HashMap::new()),
            batchers: Mutex::new(HashMap::new()),
            cfg,
            stopping: AtomicBool::new(false),
            conn_streams: Mutex::new(HashMap::new()),
            conn_handles: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            service: Mutex::new(LatencyHistogram::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(NetServer {
            state,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a [`DynamicOracle`] lifecycle under its served name,
    /// enabling the `FailEdge` / `FailNode` / `RepairAndSwap` admin ops
    /// and failover-aware `Route` for that name. Returns the shared
    /// handle so the host can keep driving the lifecycle in-process too.
    pub fn register_dynamic(&self, dynamic: DynamicOracle) -> Arc<DynamicOracle> {
        let dynamic = Arc::new(dynamic);
        lock_recover(&self.state.dynamics).insert(dynamic.name().to_string(), Arc::clone(&dynamic));
        dynamic
    }

    /// A point-in-time snapshot of the aggregate serving counters.
    pub fn metrics(&self) -> NetMetrics {
        let service = lock_recover(&self.state.service);
        NetMetrics {
            requests: self.state.requests.load(Ordering::Relaxed),
            bytes_in: self.state.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.state.bytes_out.load(Ordering::Relaxed),
            connections_active: self.state.connections_active.load(Ordering::Relaxed),
            connections_total: self.state.connections_total.load(Ordering::Relaxed),
            connections_refused: self.state.connections_refused.load(Ordering::Relaxed),
            requests_shed: self.state.requests_shed.load(Ordering::Relaxed),
            p50_service_ns: service.quantile(0.50),
            p99_service_ns: service.quantile(0.99),
        }
    }

    /// Gracefully stops the server (idempotent): stop accepting, close
    /// the read side of every connection so handlers finish their
    /// in-flight responses and exit, join them, then retire the
    /// admission batchers ([`ServeError::Retired`] for anything still
    /// queued — the PR 7 retirement semantics, not an abort).
    pub fn shutdown(&self) {
        if self.state.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop out of `accept()` with a throwaway
        // connection; it observes `stopping` and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = lock_recover(&self.accept).take() {
            let _ = handle.join();
        }
        // EOF every reader. Writes still complete: only the read half
        // closes, so a response mid-flight reaches its client.
        for stream in lock_recover(&self.state.conn_streams).values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles = std::mem::take(&mut *lock_recover(&self.state.conn_handles));
        for handle in handles {
            let _ = handle.join();
        }
        let batchers = std::mem::take(&mut *lock_recover(&self.state.batchers));
        for batcher in batchers.values() {
            batcher.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Overload protection at the door: past the connection cap, the
        // arrival gets one typed refusal frame and is closed — shed
        // instead of queued into an unbounded thread backlog. (Checked
        // here rather than left to the OS accept queue so the refusal
        // is an explicit, retry-after-backoff signal, not a silent
        // stall.)
        let active = state.connections_active.load(Ordering::Relaxed);
        if active >= state.cfg.max_connections as u64 {
            state.connections_refused.fetch_add(1, Ordering::Relaxed);
            refuse_overloaded(stream, active, state.cfg.max_connections as u64);
            continue;
        }
        let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock_recover(&state.conn_streams).insert(conn_id, clone);
        }
        state.connections_total.fetch_add(1, Ordering::Relaxed);
        state.connections_active.fetch_add(1, Ordering::Relaxed);
        let conn_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name(format!("net-conn-{conn_id}"))
            .spawn(move || {
                let _ = handle_connection(&conn_state, stream, conn_id);
                lock_recover(&conn_state.conn_streams).remove(&conn_id);
                conn_state
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            });
        match handle {
            Ok(h) => lock_recover(&state.conn_handles).push(h),
            Err(_) => {
                // Spawn failed: undo the registration and drop the
                // connection instead of leaking it.
                lock_recover(&state.conn_streams).remove(&conn_id);
                state.connections_active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Writes one [`WireError::Overloaded`] error frame to a refused
/// connection and closes it. Best effort with a short write timeout: a
/// peer that will not read its refusal is simply dropped — the accept
/// loop must never block on a victim of its own cap.
fn refuse_overloaded(stream: TcpStream, active: u64, cap: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut reply = Vec::new();
    wire::encode_error(0, 0, &WireError::Overloaded { active, cap }, &mut reply);
    let mut stream = stream;
    let _ = write_frame(&mut stream, &reply);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_connection(state: &ServerState, stream: TcpStream, _conn_id: u64) -> io::Result<()> {
    // The per-request deadline doubles as the socket timeout: a
    // connection idle (or wedged mid-frame) past it is closed rather
    // than parked forever.
    stream.set_read_timeout(state.cfg.deadline)?;
    stream.set_write_timeout(state.cfg.deadline)?;
    // Without this, a response whose tail does not fill a segment sits
    // in the kernel until the peer's delayed ACK (~4ms) — Nagle is
    // poison for pipelined request/response traffic.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut conn = ConnCounters::default();
    let mut reply = Vec::new();
    loop {
        // Slow-loris shedding: the per-request deadline bounds the
        // *whole* frame, not each read syscall. The socket timeout alone
        // resets on every byte, so a client dripping one byte per
        // timeout window could hold a handler thread forever; the frame
        // deadline closes it once the total budget is spent.
        let mut guarded = FrameDeadlineReader {
            inner: &mut reader,
            deadline: state.cfg.deadline.map(|d| Instant::now() + d),
        };
        let payload = match read_frame(&mut guarded, state.cfg.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF: the client closed (or shutdown EOF'd us).
            Ok(None) => break,
            // Timeout, torn frame, or an oversized length: the stream
            // is no longer trustworthy — close it. Oversized gets an
            // explanatory error frame first (the framing itself is
            // still intact at that point).
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData && !congest::wire::is_truncated(&e) {
                    let err = WireError::Oversized {
                        len: 0,
                        max: state.cfg.max_frame as u64,
                    };
                    let _ = send_error(&mut writer, &mut conn, state, 0, 0, &err);
                }
                break;
            }
        };
        let frame_bytes = (4 + payload.len()) as u64;
        conn.bytes_in += frame_bytes;
        state.bytes_in.fetch_add(frame_bytes, Ordering::Relaxed);
        let t0 = Instant::now();
        match Request::decode(&payload) {
            Err(e) => {
                // Protocol-level corruption is fatal for the connection:
                // framing may be desynchronized. Report, then close.
                let _ = send_error(&mut writer, &mut conn, state, 0, 0, &e);
                break;
            }
            Ok((req_id, req)) => {
                let op = req.op();
                reply.clear();
                // Panic isolation: a handler that panics (a bug, or a
                // hostile request reaching an unguarded index) costs
                // exactly one failed request. The shared state is safe
                // to keep using afterwards: everything it touches is
                // behind poison-recovering locks whose contents stay
                // valid across a panic, which is what makes the unwind
                // boundary sound here.
                let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(state, &conn, req)))
                    .unwrap_or_else(|_| {
                        Err(WireError::Remote(
                            "request handler panicked; the request was dropped".into(),
                        ))
                    });
                match outcome {
                    Ok(resp) => wire::encode_response(req_id, op, &resp, &mut reply),
                    // Serve-level errors are per-request: reply and keep
                    // the connection.
                    Err(e) => wire::encode_error(req_id, op as u8, &e, &mut reply),
                }
                write_frame(&mut writer, &reply)?;
                let frame_bytes = (4 + reply.len()) as u64;
                conn.bytes_out += frame_bytes;
                state.bytes_out.fetch_add(frame_bytes, Ordering::Relaxed);
                conn.requests += 1;
                state.requests.fetch_add(1, Ordering::Relaxed);
                let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                lock_recover(&state.service).record(nanos);
            }
        }
        // Pipelining: only flush when no further request is already
        // buffered — about to block on the socket is the one moment a
        // response may not be withheld.
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
    writer.flush()
}

/// A [`Read`] adapter that fails with `TimedOut` once a wall-clock
/// deadline for the frame in progress has passed. Each underlying read
/// is already bounded by the socket timeout, so the *total* time a
/// handler can spend on one frame is `deadline + one socket timeout` —
/// the bound that sheds slow-loris clients.
struct FrameDeadlineReader<'a, R> {
    inner: &'a mut R,
    deadline: Option<Instant>,
}

impl<R: Read> Read for FrameDeadlineReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame deadline exceeded (slow-loris shed)",
                ));
            }
        }
        self.inner.read(buf)
    }
}

fn send_error(
    writer: &mut BufWriter<TcpStream>,
    conn: &mut ConnCounters,
    state: &ServerState,
    req_id: u64,
    op: u8,
    err: &WireError,
) -> io::Result<()> {
    let mut reply = Vec::new();
    wire::encode_error(req_id, op, err, &mut reply);
    write_frame(writer, &reply)?;
    let frame_bytes = (4 + reply.len()) as u64;
    conn.bytes_out += frame_bytes;
    state.bytes_out.fetch_add(frame_bytes, Ordering::Relaxed);
    writer.flush()
}

fn install_summary(report: serve::InstallReport) -> InstallSummary {
    InstallSummary {
        backend: report.backend,
        n: report.n as u64,
        generation: report.generation,
        cold_start_nanos: report.cold_start_nanos,
        replaced: report
            .replaced
            .map(|r| (r.generation, r.leases_in_flight as u64)),
    }
}

fn install_error(e: io::Error) -> WireError {
    if congest::wire::is_truncated(&e) || e.kind() == io::ErrorKind::UnexpectedEof {
        WireError::Truncated
    } else {
        WireError::Remote(format!("install failed: {e}"))
    }
}

fn dynamic_for(state: &ServerState, name: &str) -> Result<Arc<DynamicOracle>, WireError> {
    lock_recover(&state.dynamics)
        .get(name)
        .cloned()
        .ok_or_else(|| WireError::Serve(ServeError::UnknownOracle(name.to_string())))
}

fn batcher_for(state: &ServerState, name: &str) -> Arc<Batcher> {
    let mut cache = lock_recover(&state.batchers);
    Arc::clone(cache.entry(name.to_string()).or_insert_with(|| {
        state.registry.batcher(
            name,
            state.cfg.batch_window,
            state.cfg.threads,
            state.cfg.deadline,
        )
    }))
}

fn dispatch(state: &ServerState, conn: &ConnCounters, req: Request) -> Result<Response, WireError> {
    let registry = &state.registry;
    match req {
        Request::Estimate { name, u, v } => {
            let lease = registry
                .lease(&name)
                .ok_or(ServeError::UnknownOracle(name))?;
            let mut out = Vec::with_capacity(1);
            lease.query(&[(u, v)], &mut out, 1);
            Ok(Response::Estimate {
                generation: lease.generation(),
                est: out[0],
            })
        }
        Request::EstimateMany {
            name,
            batched,
            pairs,
        } => {
            // Budget check before any work: an oversized batch is shed
            // with a typed refusal instead of monopolizing the batcher
            // (the connection survives — the request was well-formed,
            // just too greedy).
            if pairs.len() > state.cfg.max_batch_pairs {
                state.requests_shed.fetch_add(1, Ordering::Relaxed);
                return Err(WireError::Overloaded {
                    active: pairs.len() as u64,
                    cap: state.cfg.max_batch_pairs as u64,
                });
            }
            if batched {
                let batcher = batcher_for(state, &name);
                let (ests, generation) = batcher.submit(registry, pairs)?;
                Ok(Response::EstimateMany { generation, ests })
            } else {
                let mut ests = Vec::with_capacity(pairs.len());
                let generation = registry.query(&name, &pairs, &mut ests, state.cfg.threads)?;
                Ok(Response::EstimateMany { generation, ests })
            }
        }
        Request::NextHop { name, u, v } => {
            let lease = registry
                .lease(&name)
                .ok_or(ServeError::UnknownOracle(name))?;
            Ok(Response::NextHop {
                hop: lease.oracle().next_hop(u, v),
            })
        }
        Request::Route { name, u, v } => {
            let dynamic = lock_recover(&state.dynamics).get(&name).cloned();
            let mut route = TracedRoute::default();
            if let Some(dynamic) = dynamic {
                // Failover-aware: detours around the live failure mask.
                let outcome = dynamic.route(registry, u, v, &mut route)?;
                let (outcome, route) = match outcome {
                    FailoverOutcome::Primary => (RouteOutcome::Primary, Some(route)),
                    FailoverOutcome::Detoured { detours } => (
                        RouteOutcome::Detoured {
                            detours: detours as u64,
                        },
                        Some(route),
                    ),
                    FailoverOutcome::Unroutable => (RouteOutcome::Unroutable, None),
                };
                Ok(Response::Route { outcome, route })
            } else {
                let lease = registry
                    .lease(&name)
                    .ok_or(ServeError::UnknownOracle(name))?;
                if lease.oracle().route_into(u, v, &mut route) {
                    Ok(Response::Route {
                        outcome: RouteOutcome::Primary,
                        route: Some(route),
                    })
                } else {
                    Ok(Response::Route {
                        outcome: RouteOutcome::Unroutable,
                        route: None,
                    })
                }
            }
        }
        Request::Install { name, path } => registry
            .install_path(&name, Path::new(&path))
            .map(|report| Response::Installed(install_summary(report)))
            .map_err(install_error),
        Request::Swap { name, snapshot } => registry
            .install_shared(&name, congest::arena::SharedBytes::from_vec(snapshot))
            .map(|report| Response::Installed(install_summary(report)))
            .map_err(install_error),
        Request::FailEdge { name, u, v } => {
            dynamic_for(state, &name)?.fail_edge(u, v);
            Ok(Response::Failed)
        }
        Request::FailNode { name, v } => {
            dynamic_for(state, &name)?.fail_node(v);
            Ok(Response::Failed)
        }
        Request::RepairAndSwap { name, delta } => {
            let report = dynamic_for(state, &name)?
                .repair_and_swap(registry, &delta)
                .map_err(|e| match e {
                    RepairSwapError::Serve(e) => WireError::Serve(e),
                    RepairSwapError::Repair(RepairError::Delta(d)) => WireError::Delta(d),
                    RepairSwapError::Repair(other) => {
                        WireError::Remote(format!("repair failed: {other}"))
                    }
                    RepairSwapError::Persist(msg) => {
                        WireError::Remote(format!("repair not installed, wal append failed: {msg}"))
                    }
                })?;
            let (incremental, rows_recomputed, rows_total, reason) = match report.repair.kind {
                oracle::RepairKind::Incremental {
                    rows_recomputed,
                    rows_total,
                } => (true, rows_recomputed as u64, rows_total as u64, ""),
                oracle::RepairKind::Rebuilt { reason } => (false, 0, 0, reason),
            };
            Ok(Response::Repaired(RepairSummary {
                generation: report.generation,
                incremental,
                rows_recomputed,
                rows_total,
                reason: reason.to_string(),
                repair_nanos: report.repair.repair_nanos,
                stale_window_nanos: report.stale_window_nanos,
            }))
        }
        Request::Stats => {
            let batcher_stats: HashMap<String, BatcherStats> = lock_recover(&state.batchers)
                .iter()
                .map(|(name, b)| (name.clone(), b.stats()))
                .collect();
            let mut oracles = Vec::new();
            for name in registry.names() {
                let Some(lease) = registry.lease(&name) else {
                    continue;
                };
                let Some(stats) = registry.lease_stats(&name) else {
                    continue;
                };
                oracles.push(OracleStats {
                    backend: lease.oracle().backend(),
                    generation: stats.generation,
                    queries_served: stats.queries_served,
                    batches_served: stats.batches_served,
                    leases_in_flight: stats.leases_in_flight as u64,
                    batch: batcher_stats.get(&name).copied().unwrap_or_default(),
                    name,
                });
            }
            let service = lock_recover(&state.service);
            Ok(Response::Stats(ServerStats {
                requests: state.requests.load(Ordering::Relaxed),
                bytes_in: state.bytes_in.load(Ordering::Relaxed),
                bytes_out: state.bytes_out.load(Ordering::Relaxed),
                connections_active: state.connections_active.load(Ordering::Relaxed),
                connections_total: state.connections_total.load(Ordering::Relaxed),
                p50_service_ns: service.quantile(0.50),
                p99_service_ns: service.quantile(0.99),
                conn_requests: conn.requests,
                conn_bytes_in: conn.bytes_in,
                conn_bytes_out: conn.bytes_out,
                oracles,
            }))
        }
    }
}
