//! End-to-end validation of the compact hierarchy (Lemma 4.7 /
//! Theorem 4.8): every pair routes without failures, stretch within the
//! ε-adjusted `4k−3` ceiling, labels `O(k log n)`.

use compact::{build_hierarchy, CompactParams, HorizonMode};
use graphs::algo::{apsp, shortest_path_diameter};
use graphs::gen::{self, Weights};
use graphs::Seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use routing::{evaluate, PairSelection, RoutingScheme};

/// Lemma 4.6's bound at finite ε: `(1+ε)^{4(k−1)}·(4(k−1)+1)`.
fn ceiling(k: u32, eps: f64) -> f64 {
    let l = f64::from(k - 1);
    (1.0 + eps).powi(4 * (k as i32 - 1) + 4) * (4.0 * l + 1.0)
}

fn check(g: &graphs::WGraph, k: u32, seed: u64, horizon: HorizonMode) {
    let mut params = CompactParams::new(k);
    params.seed = Seed(seed);
    params.horizon = horizon;
    let scheme = build_hierarchy(g, &params);
    let exact = apsp(g);
    let report = evaluate(g, &scheme, &exact, PairSelection::All);
    assert!(
        report.failures.is_empty(),
        "routing failures (k={k}, seed={seed}): {:?}",
        &report.failures[..report.failures.len().min(5)]
    );
    let ceil = ceiling(k.max(2), params.eps);
    assert!(
        report.max_stretch <= ceil,
        "stretch {} exceeds ceiling {ceil} (k={k}, seed={seed})",
        report.max_stretch
    );
    assert!(
        report.max_estimate_stretch <= ceil,
        "estimate stretch {} exceeds ceiling {ceil} (k={k}, seed={seed})",
        report.max_estimate_stretch
    );
}

#[test]
fn k1_is_near_exact() {
    // k = 1: a single level, S_0 = V, full tables — stretch ≤ 1+ε-ish.
    let mut rng = SmallRng::seed_from_u64(1);
    let g = gen::gnp_connected(20, 0.2, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
    let scheme = build_hierarchy(&g, &CompactParams::new(1));
    let exact = apsp(&g);
    let report = evaluate(&g, &scheme, &exact, PairSelection::All);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(report.max_stretch <= 1.25f64.powi(2) + 1e-9);
}

#[test]
fn random_graphs_k2() {
    for seed in 0..3 {
        let mut rng = SmallRng::seed_from_u64(20 + seed);
        let g = gen::gnp_connected(28, 0.15, Weights::Uniform { lo: 1, hi: 40 }, &mut rng);
        check(&g, 2, seed, HorizonMode::Lemma47);
    }
}

#[test]
fn random_graphs_k3() {
    for seed in 0..2 {
        let mut rng = SmallRng::seed_from_u64(40 + seed);
        let g = gen::gnp_connected(30, 0.18, Weights::Uniform { lo: 1, hi: 25 }, &mut rng);
        check(&g, 3, seed, HorizonMode::Lemma47);
    }
}

#[test]
fn spd_horizon_mode_theorem_4_8() {
    let mut rng = SmallRng::seed_from_u64(60);
    let g = gen::gnp_connected(26, 0.15, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
    let spd = u64::from(shortest_path_diameter(&g));
    check(&g, 2, 3, HorizonMode::Spd(spd));
}

#[test]
fn structured_graphs_k2() {
    let mut rng = SmallRng::seed_from_u64(70);
    let grid = gen::grid(5, 5, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
    check(&grid, 2, 4, HorizonMode::Lemma47);
    let clique = gen::weighted_clique_multihop(12);
    check(&clique, 2, 5, HorizonMode::Lemma47);
}

#[test]
fn tables_shrink_with_k() {
    // The point of the hierarchy: larger k → smaller tables (Õ(n^{1/k})).
    let mut rng = SmallRng::seed_from_u64(80);
    let g = gen::gnp_connected(48, 0.12, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
    let exact = apsp(&g);
    let mut sizes = Vec::new();
    for k in [1u32, 3] {
        let mut p = CompactParams::new(k);
        p.c = 1.0; // tighter σ so the trend is visible at this scale
        let scheme = build_hierarchy(&g, &p);
        let report = evaluate(&g, &scheme, &exact, PairSelection::All);
        assert!(report.failures.is_empty(), "k={k}: {:?}", report.failures);
        sizes.push(report.max_table_entries);
    }
    assert!(
        sizes[1] < sizes[0],
        "tables did not shrink with k: {sizes:?}"
    );
}

#[test]
fn label_bits_grow_linearly_in_k() {
    let mut rng = SmallRng::seed_from_u64(90);
    let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
    let mut bits = Vec::new();
    for k in [1u32, 2, 4] {
        let scheme = build_hierarchy(&g, &CompactParams::new(k));
        bits.push(g.nodes().map(|v| scheme.label_bits(v)).max().unwrap());
    }
    assert!(bits[0] < bits[1] && bits[1] < bits[2], "bits: {bits:?}");
    // O(k log n): k=4 labels within 4× the k=1 id-only label + slack.
    assert!(bits[2] <= 4 * (bits[1] + 16));
}
