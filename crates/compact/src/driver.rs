//! Corollary 4.14: choosing the truncation level from `D`.
//!
//! For `k ≥ 3`, pick `l0` closest to `k(log D / log n + 1)/2` (clamped to
//! `[k/2+1, k−1]`) and run the Lemma 4.12 simulation; the alternative is
//! to broadcast `G̃(l0)` (with `l0` balancing `n^{l0/k}` against
//! `n^{2(k−l0)/k}`) and solve the upper levels locally. The corollary's
//! bound is the minimum of the two:
//! `Õ(min{(Dn)^{1/2}·n^{1/k}, n^{2/3+2/(3k)}} + D)`. For `k = 2` the
//! minimum is always attained by the broadcast variant.

use crate::hierarchy::CompactParams;
use crate::truncated::{build_truncated, TruncatedScheme, UpperMode};
use graphs::WGraph;

/// The driver's decision record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverChoice {
    /// Chosen truncation level.
    pub l0: u32,
    /// Chosen upper-level mode.
    pub mode: UpperMode,
    /// The hop diameter the choice was based on.
    pub diameter: u32,
}

/// Picks `l0` and the upper mode per Corollary 4.14 and builds the scheme.
///
/// `diameter` is the hop diameter `D` (known to nodes after `O(D)` rounds
/// of BFS; callers typically pass `graphs::algo::hop_diameter`).
///
/// # Panics
///
/// Panics if `k < 2` (no truncation possible) or on build failures.
pub fn build_driver(
    g: &WGraph,
    params: &CompactParams,
    diameter: u32,
) -> (TruncatedScheme, DriverChoice) {
    let k = params.k;
    assert!(k >= 2, "Corollary 4.14 needs k ≥ 2");
    let n = g.len() as f64;

    let choice = if k == 2 {
        // "If k = 2, the minimum is attained for the second term."
        DriverChoice {
            l0: 1,
            mode: UpperMode::Local,
            diameter,
        }
    } else {
        // l0 ≈ k(log D / log n + 1)/2, clamped to [k/2+1, k−1].
        let ratio = f64::from(diameter.max(1)).ln() / n.ln().max(1.0);
        let raw = (f64::from(k) * (ratio + 1.0) / 2.0).round() as i64;
        let lo = i64::from(k / 2 + 1);
        let hi = i64::from(k - 1);
        let l0_sim = raw.clamp(lo, hi) as u32;
        // Broadcast-local alternative: l0 balancing n^{l0/k} = n^{2(k−l0)/k}
        // → l0 = 2k/3.
        let l0_loc = ((2 * k).div_ceil(3)).clamp(1, k - 1);
        // Estimated costs (the corollary's two terms).
        let cost_sim = (f64::from(diameter.max(1)) * n).sqrt() * n.powf(1.0 / f64::from(k));
        let cost_loc = n.powf(2.0 / 3.0 + 2.0 / (3.0 * f64::from(k)));
        if cost_sim <= cost_loc {
            DriverChoice {
                l0: l0_sim,
                mode: UpperMode::Simulated,
                diameter,
            }
        } else {
            DriverChoice {
                l0: l0_loc,
                mode: UpperMode::Local,
                diameter,
            }
        }
    };

    let scheme = build_truncated(g, params, choice.l0, choice.mode);
    (scheme, choice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo::{apsp, hop_diameter};
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use routing::{evaluate, PairSelection};

    #[test]
    fn k2_always_chooses_local_broadcast() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
        let d = hop_diameter(&g);
        let (_, choice) = build_driver(&g, &CompactParams::new(2), d);
        assert_eq!(choice.mode, UpperMode::Local);
        assert_eq!(choice.l0, 1);
    }

    #[test]
    fn large_diameter_prefers_local_small_prefers_sim() {
        // The decision rule itself (costs cross over in D).
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::gnp_connected(30, 0.25, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
        let (_, tiny_d) = build_driver(&g, &CompactParams::new(4), 1);
        let (_, huge_d) = build_driver(&g, &CompactParams::new(4), 10_000);
        assert_eq!(tiny_d.mode, UpperMode::Simulated);
        assert_eq!(huge_d.mode, UpperMode::Local);
    }

    #[test]
    fn driver_scheme_routes_correctly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::gnp_connected(26, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        let d = hop_diameter(&g);
        let (scheme, choice) = build_driver(&g, &CompactParams::new(3), d);
        let exact = apsp(&g);
        let report = evaluate(&g, &scheme, &exact, PairSelection::All);
        assert!(
            report.failures.is_empty(),
            "choice {choice:?}: {:?}",
            &report.failures[..report.failures.len().min(5)]
        );
    }
}
