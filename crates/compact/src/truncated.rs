//! Theorem 4.13: the truncated hierarchy over the level-`l0` skeleton
//! graph `G̃(l0)` (Definition 4.9, Lemmas 4.10–4.12).
//!
//! Levels `< l0` are built exactly as in Lemma 4.7. Levels `≥ l0` run on
//! the *virtual* skeleton graph `G̃(l0)` whose vertices are `S_{l0}` and
//! whose edges are the mutual PDE estimates between nearby skeleton
//! nodes. Two upper-level modes are provided:
//!
//! * [`UpperMode::Simulated`] — PDE is executed on `G̃(l0)` and every
//!   simulated round's messages are pipelined over a BFS tree of `G`; the
//!   charged cost is `Σ_i M_i + rounds·D` exactly as in Lemma 4.12.
//! * [`UpperMode::Local`] — the Corollary 4.14 alternative: broadcast all
//!   of `G̃(l0)`'s edges over the BFS tree (real pipelined broadcast,
//!   measured) and let every node solve the upper levels locally and
//!   exactly on `G̃(l0)` (`Õ(n^{l0/k} + |S_{l0}|² + D)` rounds).
//!
//! Routing combines three stateless phases, all folded into one monotone
//! potential (see DESIGN.md): lower-level options, an upper-level phase
//! that walks base chains and skeleton waypoint paths towards the
//! destination's connector `t*`, and a final base-tree descent.

use congest::bfs::build_bfs;
use congest::pipeline::broadcast_all;
use congest::{bits_for, label_record_bits, Message, Metrics, NodeId, Topology};
use graphs::{DenseIndex, WGraph, INF};
use pde_core::pipeline::{
    self, mutual_edges, parallel_map, virtual_graph, with_resample, BuildError, StageLog,
};
use pde_core::{resolve_entry_indices, run_pde, BuildMode, FlatTables, PairTable, PdeParams};
use routing::RoutingScheme;
use std::collections::HashMap;
use treeroute::TreeSet;

use crate::hierarchy::{trace_chain, CompactParams};
use crate::levels::{level_flags, sample_levels};

/// How the upper (≥ `l0`) levels are computed on `G̃(l0)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpperMode {
    /// Simulate PDE on `G̃(l0)`, pipelining each round over a BFS tree
    /// (Lemma 4.12; cost `Σ_i M_i + rounds·D`, charged from measurements).
    Simulated,
    /// Broadcast `G̃(l0)` and solve the upper levels locally & exactly
    /// (Corollary 4.14, second variant).
    Local,
}

/// A broadcastable `G̃` edge.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct GtEdge(u32, u32, u64);

impl Message for GtEdge {
    fn bit_size(&self) -> usize {
        bits_for(u64::from(self.0) + 1) + bits_for(u64::from(self.1) + 1) + bits_for(self.2 + 1)
    }
}

/// Per-level upper pivot information in a node's label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpperPivot {
    /// The pivot `s'_l(w) ∈ S_l`.
    pub pivot: NodeId,
    /// Combined estimate `wd'(w, s'_l(w))` (Lemma 4.10).
    pub est: u64,
    /// The skeleton connector `t*` realizing the estimate.
    pub t_star: NodeId,
    /// `wd'_base(w, t*)`.
    pub est_base: u64,
    /// `w`'s DFS label in the base tree `T^base_{t*}`.
    pub base_dfs: u64,
}

/// Label of the truncated scheme: lower pivots as in
/// [`crate::CompactLabel`] plus per-upper-level connector records. Still
/// `O(k log n)` bits (the paper's two-part tree labels of Lemma 4.12).
#[derive(Clone, Debug)]
pub struct TruncLabel {
    /// The node's own id.
    pub id: NodeId,
    /// Pivot records for levels `1..l0`: `(pivot, dist, tree_dfs)`.
    pub lower: Vec<(NodeId, u64, u64)>,
    /// Pivot records for levels `l0..k`.
    pub upper: Vec<UpperPivot>,
}

impl TruncLabel {
    /// Semantic size in bits: own id, one `(pivot, dist, dfs)` record per
    /// lower level and one `(pivot, connector, est, est_base, dfs)` record
    /// per upper level — all via the shared
    /// [`congest::label_record_bits`] formula.
    pub fn bits(&self, n: usize) -> usize {
        let n = n as u64;
        label_record_bits(n, 1, &[])
            + self
                .lower
                .iter()
                .map(|&(_, d, f)| label_record_bits(n, 1, &[d, f]))
                .sum::<usize>()
            + self
                .upper
                .iter()
                .map(|u| label_record_bits(n, 2, &[u.est, u.est_base, u.base_dfs]))
                .sum::<usize>()
    }
}

/// Build metrics of the truncated scheme.
#[derive(Clone, Debug)]
pub struct TruncatedMetrics {
    /// Total rounds, including the charged skeleton-simulation cost.
    pub total_rounds: u64,
    /// Rounds of the lower-level PDE runs.
    pub lower_rounds: u64,
    /// Rounds of the `(S_{l0}, h_{l0}, |S_{l0}|)`-estimation.
    pub base_rounds: u64,
    /// Charged rounds for the upper levels (simulated `Σ M_i + r·D`, or
    /// the measured broadcast in `Local` mode).
    pub upper_rounds: u64,
    /// Distributed tree-labeling rounds.
    pub tree_label_rounds: u64,
    /// Aggregate metrics.
    pub total: Metrics,
    /// `|S_{l0}|`.
    pub skeleton_size: usize,
    /// Edges of `G̃(l0)`.
    pub gt_edges: usize,
    /// The declarative stage list this build executed (measurement
    /// metadata; not serialized).
    pub stages: StageLog,
}

/// The truncated compact scheme (Theorem 4.13 / Corollary 4.14).
///
/// Query-side state is flat: route archives are source-sorted CSR rows
/// ([`FlatTables`]), the skeleton index is a dense per-node array, and the
/// upper-level `(node, source)` maps are [`PairTable`]s (dense `k × k` or
/// row-sorted CSR) — no query ever probes a hash map.
#[derive(Debug)]
pub struct TruncatedScheme {
    pub(crate) topo: Topology,
    pub(crate) l0: u32,
    /// Lower-level PDE route archives, `runs[l]` for `l < l0`, flattened.
    pub(crate) lower_routes: Vec<FlatTables>,
    /// `(S_{l0}, h_{l0}, |S_{l0}|)` route archive, flattened.
    pub(crate) base_routes: FlatTables,
    /// Pre-resolved skeleton index of each `base_routes` arena entry's
    /// source (derived, not serialized): the upper-level query loops walk
    /// this side table instead of doing a per-entry `skel_index` load.
    pub(crate) base_row_idx: Vec<u32>,
    pub(crate) skel_ids: Vec<NodeId>,
    pub(crate) skel_index: DenseIndex,
    /// `G̃(l0)` in skeleton-index space.
    pub(crate) gt_graph: WGraph,
    /// Per upper level `j = l − l0`: `(node index, source index) → est`.
    pub(crate) upper_est: Vec<PairTable>,
    /// Per upper level: `(from index, source index) → next index` chains.
    pub(crate) upper_next: Vec<PairTable>,
    /// Lower pivot trees (levels `1..l0`).
    pub(crate) lower_trees: Vec<TreeSet>,
    /// Base trees `T^base_t` (descent of the last segment).
    pub(crate) base_trees: TreeSet,
    /// Per-node labels.
    pub labels: Vec<TruncLabel>,
    pub(crate) bunch_sizes: Vec<usize>,
    /// Build metrics.
    pub metrics: TruncatedMetrics,
}

/// Builds the truncated hierarchy, panicking on unrecoverable sampling
/// failures (see [`try_build_truncated`]).
///
/// `l0` must satisfy `1 ≤ l0 ≤ k−1` (Theorem 4.13 uses
/// `k/2+1 ≤ l0 ≤ k−1`; smaller values are allowed for experimentation).
///
/// # Panics
///
/// Panics on invalid `l0` or disconnected inputs, and — with advice to
/// raise `c` — when a w.h.p. event (disconnected `G̃`, missing pivots)
/// fails on both the primary sample and the one derived resample.
pub fn build_truncated(
    g: &WGraph,
    params: &CompactParams,
    l0: u32,
    mode: UpperMode,
) -> TruncatedScheme {
    try_build_truncated(g, params, l0, mode).unwrap_or_else(|e| {
        panic!("truncated build failed after one resample: {e} (CompactParams::c)")
    })
}

/// Builds the truncated hierarchy, retrying once on a
/// [`graphs::Seed::derive`]d resample when a w.h.p. event fails.
///
/// # Errors
///
/// Returns the second attempt's [`BuildError`] when both samples fail.
///
/// # Panics
///
/// Panics on invalid `l0`/`k` or disconnected inputs.
pub fn try_build_truncated(
    g: &WGraph,
    params: &CompactParams,
    l0: u32,
    upper: UpperMode,
) -> Result<TruncatedScheme, BuildError> {
    assert!(params.k >= 2, "truncation needs k ≥ 2");
    assert!((1..params.k).contains(&l0), "l0 must be in 1..k");
    with_resample(params.seed, |seed, _attempt| {
        let p = CompactParams {
            seed,
            ..params.clone()
        };
        build_attempt(g, &p, l0, upper)
    })
}

/// One build attempt at a fixed seed: the declarative stage list.
fn build_attempt(
    g: &WGraph,
    params: &CompactParams,
    l0: u32,
    mode: UpperMode,
) -> Result<TruncatedScheme, BuildError> {
    let n = g.len();
    let k = params.k;
    let build_mode = params.mode;
    let topo = g.to_topology();
    let mut total = Metrics::new(n);
    let mut stages = StageLog::default();

    let (levels, _) = sample_levels(n, k, params.seed);
    stages.push("level-sample", 0);
    let ln_n = (n as f64).ln().max(1.0);
    let sigma =
        ((params.c * (n as f64).powf(1.0 / f64::from(k)) * ln_n).ceil() as usize).clamp(1, n);

    // ---- Lower levels (< l0), exactly as Lemma 4.7. ----
    let mut lower_routes = Vec::new();
    let mut lower_lists = Vec::new();
    let mut lower_rounds = 0u64;
    for l in 0..l0 {
        let sources = level_flags(&levels, l);
        let tags = level_flags(&levels, l + 1);
        let h = ((params.c * (n as f64).powf(f64::from(l + 1) / f64::from(k)) * ln_n).ceil()
            as u64)
            .clamp(1, 2 * n as u64);
        let pde = run_pde(
            g,
            &sources,
            &tags,
            &PdeParams::new(h, sigma, params.eps)
                .with_threads(params.threads)
                .with_mode(build_mode),
        );
        lower_rounds += pde.metrics.total.rounds;
        total.absorb(&pde.metrics.total);
        lower_routes.push(pde.routes);
        lower_lists.push(pde.lists);
    }
    stages.push("pde-lower-levels", lower_rounds);

    // ---- Base estimation: (S_{l0}, h_{l0}, |S_{l0}|). ----
    let skel_flags = level_flags(&levels, l0);
    let skel_ids: Vec<NodeId> = g.nodes().filter(|v| skel_flags[v.index()]).collect();
    let skel_index = DenseIndex::new(n, &skel_ids);
    let h_base = ((params.c * (n as f64).powf(f64::from(l0) / f64::from(k)) * ln_n).ceil() as u64)
        .clamp(1, 2 * n as u64);
    let base = run_pde(
        g,
        &skel_flags,
        &vec![false; n],
        &PdeParams::new(h_base, skel_ids.len().max(1), params.eps)
            .with_threads(params.threads)
            .with_mode(build_mode),
    );
    let base_rounds = base.metrics.total.rounds;
    total.absorb(&base.metrics.total);
    stages.push("pde-base", base_rounds);

    // ---- G̃(l0): mutual estimates, weight = max of the two. ----
    let m = skel_ids.len();
    let gt_edges = mutual_edges(&base.routes, &skel_ids, &skel_index);
    let gt_graph = virtual_graph(m, &gt_edges, "G̃(l0)")?;
    stages.push("virtual-graph", 0);

    // ---- Upper levels on G̃. ----
    // The per-level maps are merged through hash tables (the natural shape
    // while estimates trickle in) and flattened into `PairTable`s for the
    // query side as each level finishes. The BFS tree only carries
    // simulated pipelining/broadcast costs, so native builds skip it.
    let (bfs, d_hat) = match build_mode {
        BuildMode::Simulated => {
            let (bfs, bfs_metrics) = build_bfs(&topo, NodeId(0));
            total.absorb(&bfs_metrics);
            let d_hat = 2 * bfs.height + 1;
            (Some(bfs), d_hat)
        }
        BuildMode::Native => (None, 0),
    };
    let mut upper_est: Vec<PairTable> = Vec::new();
    let mut upper_next: Vec<PairTable> = Vec::new();
    let mut upper_rounds = 0u64;
    let gt_topo = gt_graph.to_topology();
    let flatten_pairs = |map: &HashMap<(usize, usize), u64>| -> PairTable {
        let mut entries: Vec<(u32, u32, u64)> = map
            .iter()
            .map(|(&(a, b), &v)| (a as u32, b as u32, v))
            .collect();
        entries.sort_unstable();
        PairTable::auto(m.max(1), &entries)
    };

    match mode {
        UpperMode::Simulated => {
            for l in l0..k {
                let src_flags: Vec<bool> =
                    skel_ids.iter().map(|&s| levels[s.index()] >= l).collect();
                let tag_flags: Vec<bool> = skel_ids
                    .iter()
                    .map(|&s| l + 1 < k && levels[s.index()] > l)
                    .collect();
                let h = ((params.c * (n as f64).powf(f64::from(l + 1 - l0) / f64::from(k)) * ln_n)
                    .ceil() as u64)
                    .clamp(1, 2 * m.max(1) as u64);
                let sig = if l == k - 1 {
                    sigma.max(src_flags.iter().filter(|&&f| f).count())
                } else {
                    sigma
                };
                let run = run_pde(
                    &gt_graph,
                    &src_flags,
                    &tag_flags,
                    &PdeParams::new(h, sig.max(1), params.eps)
                        .with_threads(params.threads)
                        .with_mode(build_mode),
                );
                // Lemma 4.12 cost: every simulated round's messages are
                // pipelined over the BFS tree of G.
                let cost = run.metrics.total.messages + run.metrics.total.rounds * d_hat;
                upper_rounds += cost;
                total.charge_rounds(cost);

                let mut est_map = HashMap::new();
                let mut next_map: HashMap<(usize, usize), u64> = HashMap::new();
                #[allow(clippy::needless_range_loop)] // i indexes flags and maps
                for i in 0..m {
                    if src_flags[i] {
                        est_map.insert((i, i), 0u64);
                    }
                    for (&src, r) in &run.routes[i] {
                        est_map.insert((i, src.index()), r.est);
                        let nb = gt_topo.neighbor(NodeId(i as u32), r.port);
                        next_map.insert((i, src.index()), nb.index() as u64);
                    }
                }
                upper_est.push(flatten_pairs(&est_map));
                upper_next.push(flatten_pairs(&next_map));
            }
        }
        UpperMode::Local => {
            // Broadcast G̃'s edges for real (simulated builds only — the
            // native engine already has them globally), then solve
            // locally & exactly, one Dijkstra per skeleton node sharded
            // over the worker threads.
            if let Some(bfs) = &bfs {
                let mut items: Vec<Vec<GtEdge>> = vec![Vec::new(); n];
                for &(a, b, w) in gt_graph.edges() {
                    items[skel_ids[a as usize].index()].push(GtEdge(a, b, w));
                }
                let (_, bc) = broadcast_all(&topo, bfs, items);
                upper_rounds = bc.rounds;
                total.absorb(&bc);
            }
            let sp_rows = parallel_map(params.threads, m, |i| {
                graphs::algo::dijkstra(&gt_graph, NodeId(i as u32))
            });
            for l in l0..k {
                let src_flags: Vec<bool> =
                    skel_ids.iter().map(|&s| levels[s.index()] >= l).collect();
                let mut est_map = HashMap::new();
                let mut next_map: HashMap<(usize, usize), u64> = HashMap::new();
                for (i, spi) in sp_rows.iter().enumerate() {
                    #[allow(clippy::needless_range_loop)] // j indexes flags and dists
                    for j in 0..m {
                        if !src_flags[j] || spi.dist[j] == INF {
                            continue;
                        }
                        est_map.insert((i, j), spi.dist[j]);
                        if i != j {
                            let mut cur = NodeId(j as u32);
                            while let Some(p) = spi.parent[cur.index()] {
                                if p == NodeId(i as u32) {
                                    break;
                                }
                                cur = p;
                            }
                            next_map.insert((i, j), cur.index() as u64);
                        }
                    }
                }
                upper_est.push(flatten_pairs(&est_map));
                upper_next.push(flatten_pairs(&next_map));
            }
        }
    }
    stages.push("upper-levels", upper_rounds);

    // ---- Connectors: per node, its known (skeleton index, est) pairs. ----
    let conn: Vec<Vec<(usize, u64)>> = g
        .nodes()
        .map(|v| {
            let mut c: Vec<(usize, u64)> = base.routes[v.index()]
                .iter()
                .filter_map(|(&t, r)| skel_index.get(t).map(|i| (i, r.est)))
                .collect();
            if let Some(i) = skel_index.get(v) {
                c.push((i, 0));
            }
            c.sort_unstable();
            c
        })
        .collect();

    // ---- Lower pivot trees. ----
    let mut lower_trees = Vec::new();
    let mut tree_label_rounds = 0u64;
    let mut lower_pivots: Vec<Vec<(NodeId, u64)>> = Vec::new();
    for l in 1..l0 {
        let run = &lower_lists[l as usize];
        let mut pv: Vec<(NodeId, u64)> = Vec::with_capacity(n);
        for v in g.nodes() {
            match run[v.index()].first() {
                Some(e) => pv.push((e.src, e.est)),
                None => return Err(BuildError::NoPivot { node: v, level: l }),
            }
        }
        let mut set = TreeSet::new();
        for v in g.nodes() {
            let chain = trace_chain(&lower_routes[l as usize], &topo, v, pv[v.index()].0);
            set.add_chain(&chain);
        }
        set.build();
        let lab = pipeline::label_trees(&topo, &set, build_mode);
        tree_label_rounds += lab.rounds;
        total.absorb(&lab);
        lower_trees.push(set);
        lower_pivots.push(pv);
    }

    // ---- Upper pivots + connectors, base trees from connector chains. ----
    // per node, per upper level: (s_idx, t_idx, est, est_base)
    let mut upper_info: Vec<Vec<(usize, usize, u64, u64)>> = vec![Vec::new(); n];
    let mut base_trees = TreeSet::new();
    for (j, l) in (l0..k).enumerate() {
        let flags: Vec<bool> = skel_ids.iter().map(|&s| levels[s.index()] >= l).collect();
        for v in g.nodes() {
            let mut best: Option<(u64, usize, usize, u64)> = None;
            for &(t, eb) in &conn[v.index()] {
                for (i, &f) in flags.iter().enumerate() {
                    if !f {
                        continue;
                    }
                    if let Some(eg) = upper_est[j].get(t, i) {
                        let tot = eb.saturating_add(eg);
                        if best.is_none_or(|(b, bs, _, _)| (tot, i) < (b, bs)) {
                            best = Some((tot, i, t, eb));
                        }
                    }
                }
            }
            let Some((est, s_idx, t_idx, eb)) = best else {
                return Err(BuildError::NoPivot { node: v, level: l });
            };
            upper_info[v.index()].push((s_idx, t_idx, est, eb));
            let chain = trace_chain(&base.routes, &topo, v, skel_ids[t_idx]);
            base_trees.add_chain(&chain);
        }
    }
    base_trees.build();
    let lab = pipeline::label_trees(&topo, &base_trees, build_mode);
    tree_label_rounds += lab.rounds;
    total.absorb(&lab);

    // ---- Labels. ----
    let labels: Vec<TruncLabel> = g
        .nodes()
        .map(|v| {
            let lower: Vec<(NodeId, u64, u64)> = (1..l0)
                .map(|l| {
                    let (s, d) = lower_pivots[(l - 1) as usize][v.index()];
                    let dfs = lower_trees[(l - 1) as usize].trees[&s]
                        .label(v)
                        .expect("labeled in lower pivot tree");
                    (s, d, dfs)
                })
                .collect();
            let upper: Vec<UpperPivot> = upper_info[v.index()]
                .iter()
                .map(|&(s_idx, t_idx, est, eb)| UpperPivot {
                    pivot: skel_ids[s_idx],
                    est,
                    t_star: skel_ids[t_idx],
                    est_base: eb,
                    base_dfs: base_trees.trees[&skel_ids[t_idx]]
                        .label(v)
                        .expect("labeled in base tree"),
                })
                .collect();
            TruncLabel {
                id: v,
                lower,
                upper,
            }
        })
        .collect();

    // ---- Table sizes (bunch analogue). ----
    let mut bunch_sizes = vec![0usize; n];
    for l in 0..l0 {
        let run = &lower_lists[l as usize];
        for v in g.nodes() {
            let list = &run[v.index()];
            let cut = list.iter().find(|e| e.tag).map(|e| (e.est, e.src));
            bunch_sizes[v.index()] += match cut {
                Some(c) => list.iter().take_while(|e| (e.est, e.src) < c).count(),
                None => list.len(),
            };
        }
    }
    for v in g.nodes() {
        bunch_sizes[v.index()] += conn[v.index()].len().min(sigma);
    }

    stages.push("tree-labels", tree_label_rounds);
    let metrics = TruncatedMetrics {
        total_rounds: total.rounds,
        lower_rounds,
        base_rounds,
        upper_rounds,
        tree_label_rounds,
        total,
        skeleton_size: m,
        gt_edges: gt_graph.num_edges(),
        stages,
    };

    let base_flat = FlatTables::from_tables(&base.routes);
    let base_row_idx = resolve_entry_indices(&base_flat, &skel_index);
    Ok(TruncatedScheme {
        topo,
        l0,
        lower_routes: pde_core::tables::flatten_runs(&lower_routes),
        base_routes: base_flat,
        base_row_idx,
        skel_ids,
        skel_index,
        gt_graph,
        upper_est,
        upper_next,
        lower_trees,
        base_trees,
        labels,
        bunch_sizes,
        metrics,
    })
}

impl TruncatedScheme {
    /// The `l0` truncation level.
    pub fn l0(&self) -> u32 {
        self.l0
    }

    /// The topology the scheme was built on (shared with route tracing
    /// and snapshot serialization, so callers need no separate copy).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The waypoint path (skeleton indices, from the pivot `s` down to
    /// `t_star`) and its suffix weights for upper level `j`.
    fn waypoints(&self, j: usize, t_star: usize, s: usize) -> Option<(Vec<usize>, Vec<u64>)> {
        let mut path = vec![t_star];
        let mut cur = t_star;
        while cur != s {
            let nxt = self.upper_next[j].get(cur, s)? as usize;
            path.push(nxt);
            cur = nxt;
            if path.len() > self.skel_ids.len() + 1 {
                return None;
            }
        }
        path.reverse(); // now s = path[0], …, t* = path.last()
        let mut suffix = vec![0u64; path.len()];
        for i in (0..path.len() - 1).rev() {
            let w = self
                .gt_graph
                .edge_weight(NodeId(path[i] as u32), NodeId(path[i + 1] as u32))
                .expect("waypoint steps are G̃ edges");
            suffix[i] = suffix[i + 1] + w;
        }
        Some((path, suffix))
    }

    /// The minimum potential option at `x` for `dest`: `(estimate, hop)`.
    fn best_option(&self, x: NodeId, dest: NodeId) -> Option<(u64, NodeId)> {
        let label = &self.labels[dest.index()];
        let mut best: Option<(u64, NodeId)> = None;
        // Ties broken by the smaller next-hop id, so the choice does not
        // depend on routing-table iteration order (keeps answers
        // bit-identical across snapshot save/load).
        let consider = |est: u64, hop: NodeId, best: &mut Option<(u64, NodeId)>| {
            if best.is_none_or(|b| (est, hop) < b) {
                *best = Some((est, hop));
            }
        };

        if let Some(e) = self.lower_routes[0].get(x, dest) {
            consider(e.est, self.topo.neighbor(x, e.port), &mut best);
        }
        for (i, &(pivot, d_w, _)) in label.lower.iter().enumerate() {
            let l = i + 1;
            if x == pivot {
                continue;
            }
            if let Some(e) = self.lower_routes[l].get(x, pivot) {
                consider(
                    e.est.saturating_add(d_w),
                    self.topo.neighbor(x, e.port),
                    &mut best,
                );
            }
        }
        for (j, up) in label.upper.iter().enumerate() {
            let s_idx = self.skel_index.get(up.pivot).expect("pivot in skeleton");
            let t_idx = self
                .skel_index
                .get(up.t_star)
                .expect("connector in skeleton");
            let Some((path, suffix)) = self.waypoints(j, t_idx, s_idx) else {
                continue;
            };
            let descent_budget = up.est_base;
            let budget_a = suffix[0].saturating_add(descent_budget);
            // Phase A: reach the pivot via any connector — one contiguous
            // row with its pre-resolved skeleton indices alongside.
            let range = self.base_routes.row_range(x);
            let idx = &self.base_row_idx[range.clone()];
            for (e, &ti) in self.base_routes.entries_in(range).zip(idx) {
                if ti == DenseIndex::NONE {
                    continue;
                }
                if let Some(eg) = self.upper_est[j].get(ti as usize, s_idx) {
                    consider(
                        e.est.saturating_add(eg).saturating_add(budget_a),
                        self.topo.neighbor(x, e.port),
                        &mut best,
                    );
                }
            }
            if let Some(xi) = self.skel_index.get(x) {
                if xi != s_idx {
                    if let Some(eg) = self.upper_est[j].get(xi, s_idx) {
                        if let Some(z) = self.upper_next[j].get(xi, s_idx) {
                            if let Some(e) = self.base_routes.get(x, self.skel_ids[z as usize]) {
                                consider(
                                    eg.saturating_add(budget_a),
                                    self.topo.neighbor(x, e.port),
                                    &mut best,
                                );
                            }
                        }
                    }
                }
            }
            // Phase B: walk the waypoint path towards t*.
            for jdx in 0..path.len().saturating_sub(1) {
                let y_next = self.skel_ids[path[jdx + 1]];
                let rem = suffix[jdx + 1].saturating_add(descent_budget);
                if x == y_next {
                    continue;
                }
                if let Some(e) = self.base_routes.get(x, y_next) {
                    consider(
                        e.est.saturating_add(rem),
                        self.topo.neighbor(x, e.port),
                        &mut best,
                    );
                }
            }
        }
        best
    }

    /// The source-grouped batch kernel behind
    /// `oracle::DistanceOracle::estimate_grouped`: answers
    /// `pairs[order[i]]` into `out[i]`, resolving the queried node's
    /// lower-level row cursors, base-routes row range (with its
    /// pre-resolved skeleton indices) and own skeleton index once per
    /// equal-source group. Computes exactly
    /// [`RoutingScheme::estimate`] per pair.
    pub fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let mut lower_rows: Vec<pde_core::RowCursor<'_>> =
            Vec::with_capacity(self.lower_routes.len());
        let mut start = 0usize;
        while start < order.len() {
            let end = pde_core::schedule::group_end(pairs, order, start);
            let x = pairs[order[start] as usize].0;
            lower_rows.clear();
            lower_rows.extend(self.lower_routes.iter().map(|t| t.cursor(x)));
            let base_range = self.base_routes.row_range(x);
            let base_idx = &self.base_row_idx[base_range.clone()];
            let xi = self.skel_index.get(x);
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                let dest = pairs[i as usize].1;
                if x == dest {
                    *slot = 0;
                    continue;
                }
                let label = &self.labels[dest.index()];
                let mut best = INF;
                if let Some(e) = lower_rows[0].get(dest) {
                    best = best.min(e.est);
                }
                for (li, &(pivot, d_w, _)) in label.lower.iter().enumerate() {
                    let l = li + 1;
                    let here = if x == pivot {
                        0
                    } else {
                        lower_rows[l].get(pivot).map_or(INF, |e| e.est)
                    };
                    best = best.min(here.saturating_add(d_w));
                }
                for (j, up) in label.upper.iter().enumerate() {
                    let s_idx = self.skel_index.get(up.pivot).expect("pivot in skeleton");
                    let mut to_pivot = INF;
                    for (e, &ti) in self
                        .base_routes
                        .entries_in(base_range.clone())
                        .zip(base_idx)
                    {
                        if ti == DenseIndex::NONE {
                            continue;
                        }
                        if let Some(eg) = self.upper_est[j].get(ti as usize, s_idx) {
                            to_pivot = to_pivot.min(e.est.saturating_add(eg));
                        }
                    }
                    if let Some(xi) = xi {
                        if let Some(eg) = self.upper_est[j].get(xi, s_idx) {
                            to_pivot = to_pivot.min(eg);
                        }
                    }
                    best = best.min(to_pivot.saturating_add(up.est));
                }
                *slot = best;
            }
            start = end;
        }
    }
}

impl RoutingScheme for TruncatedScheme {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
        if x == dest {
            return None;
        }
        let label = &self.labels[dest.index()];
        for (i, &(pivot, _, dfs)) in label.lower.iter().enumerate() {
            if let Some(tree) = self.lower_trees[i].trees.get(&pivot) {
                if tree.in_subtree(x, dfs) {
                    if let Some(child) = tree.next_hop_down(x, dfs) {
                        return Some(child);
                    }
                }
            }
        }
        for up in &label.upper {
            if let Some(tree) = self.base_trees.trees.get(&up.t_star) {
                if tree.in_subtree(x, up.base_dfs) {
                    if let Some(child) = tree.next_hop_down(x, up.base_dfs) {
                        return Some(child);
                    }
                }
            }
        }
        self.best_option(x, dest).map(|(_, hop)| hop)
    }

    fn estimate(&self, x: NodeId, dest: NodeId) -> u64 {
        if x == dest {
            return 0;
        }
        let label = &self.labels[dest.index()];
        let mut best = INF;
        if let Some(e) = self.lower_routes[0].get(x, dest) {
            best = best.min(e.est);
        }
        for (i, &(pivot, d_w, _)) in label.lower.iter().enumerate() {
            let l = i + 1;
            let here = if x == pivot {
                0
            } else {
                self.lower_routes[l].get(x, pivot).map_or(INF, |e| e.est)
            };
            best = best.min(here.saturating_add(d_w));
        }
        for (j, up) in label.upper.iter().enumerate() {
            let s_idx = self.skel_index.get(up.pivot).expect("pivot in skeleton");
            let mut to_pivot = INF;
            let range = self.base_routes.row_range(x);
            let idx = &self.base_row_idx[range.clone()];
            for (e, &ti) in self.base_routes.entries_in(range).zip(idx) {
                if ti == DenseIndex::NONE {
                    continue;
                }
                if let Some(eg) = self.upper_est[j].get(ti as usize, s_idx) {
                    to_pivot = to_pivot.min(e.est.saturating_add(eg));
                }
            }
            if let Some(xi) = self.skel_index.get(x) {
                if let Some(eg) = self.upper_est[j].get(xi, s_idx) {
                    to_pivot = to_pivot.min(eg);
                }
            }
            best = best.min(to_pivot.saturating_add(up.est));
        }
        best
    }

    fn label_bits(&self, v: NodeId) -> usize {
        self.labels[v.index()].bits(self.labels.len())
    }

    fn table_entries(&self, v: NodeId) -> usize {
        let mut tree_rows: usize = self
            .lower_trees
            .iter()
            .flat_map(|set| set.trees.values())
            .filter_map(|t| t.children.get(&v).map(|ch| 1 + ch.len()))
            .sum();
        tree_rows += self
            .base_trees
            .trees
            .values()
            .filter_map(|t| t.children.get(&v).map(|ch| 1 + ch.len()))
            .sum::<usize>();
        self.bunch_sizes[v.index()] + tree_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo::apsp;
    use graphs::gen::{self, Weights};
    use graphs::Seed;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use routing::{evaluate, PairSelection};

    fn check(g: &WGraph, k: u32, l0: u32, mode: UpperMode, seed: u64) {
        let mut params = CompactParams::new(k);
        params.seed = Seed(seed);
        let scheme = build_truncated(g, &params, l0, mode);
        let exact = apsp(g);
        let report = evaluate(g, &scheme, &exact, PairSelection::All);
        assert!(
            report.failures.is_empty(),
            "failures (k={k}, l0={l0}, {mode:?}): {:?}",
            &report.failures[..report.failures.len().min(5)]
        );
        // ε-adjusted ceiling with the waypoint-descent constant
        // (documented in EXPERIMENTS.md).
        let ceil = (4.0 * f64::from(k) - 3.0) * (1.0 + params.eps).powi(6) * 2.0;
        assert!(
            report.max_stretch <= ceil,
            "stretch {} > {ceil} (k={k}, l0={l0}, {mode:?})",
            report.max_stretch
        );
    }

    #[test]
    fn simulated_mode_routes_k2() {
        for seed in 0..2 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(26, 0.18, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
            check(&g, 2, 1, UpperMode::Simulated, seed);
        }
    }

    #[test]
    fn local_mode_routes_k2() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::gnp_connected(26, 0.18, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
        check(&g, 2, 1, UpperMode::Local, 11);
    }

    #[test]
    fn simulated_mode_routes_k3_l02() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = gen::gnp_connected(30, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        check(&g, 3, 2, UpperMode::Simulated, 21);
    }

    #[test]
    fn upper_rounds_are_charged() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 15 }, &mut rng);
        let scheme = build_truncated(&g, &CompactParams::new(2), 1, UpperMode::Simulated);
        assert!(scheme.metrics.upper_rounds > 0);
        assert!(scheme.metrics.total_rounds >= scheme.metrics.upper_rounds);
    }
}
