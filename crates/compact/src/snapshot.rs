//! Binary snapshot codecs for the compact hierarchies (Theorems 4.8 and
//! 4.13), using the handwritten little-endian framing of
//! [`congest::wire`].
//!
//! **Record version 2** (the flat-table layout): route archives are
//! serialized as [`FlatTables`] CSR rows and the truncated upper-level
//! maps as [`PairTable`]s — both written *as stored* (rows are sorted by
//! construction), so reload → re-save is byte-identical and reloaded
//! schemes answer queries bit-identically to the originals. Version-1
//! streams (PR 3's hash-table layout, which carried no version tag) are
//! rejected with `InvalidData`; rebuild the scheme and re-save. Build
//! metrics are persisted in summary form (round/message totals and
//! per-stage breakdowns); bounded per-round histories are not.

use crate::hierarchy::{CompactBuildMetrics, CompactLabel, CompactScheme};
use crate::truncated::{TruncLabel, TruncatedMetrics, TruncatedScheme, UpperPivot};
use congest::wire::{check_record_version, clamped_capacity, invalid_data, WireReader, WireWriter};
use congest::{Metrics, NodeId, Topology};
use graphs::{DenseIndex, WGraph};
use pde_core::{FlatTables, PairTable};
use std::io::{self, Read, Write};
use treeroute::TreeSet;

/// Version of the scheme records this codec writes (see module docs).
pub const COMPACT_RECORD_VERSION: u16 = 2;

fn write_flat_runs(sink: &mut dyn Write, runs: &[FlatTables]) -> io::Result<()> {
    WireWriter::new(sink).len(runs.len())?;
    for run in runs {
        run.write_into(sink)?;
    }
    Ok(())
}

fn read_flat_runs(source: &mut dyn Read, topo: &Topology) -> io::Result<Vec<FlatTables>> {
    let count = WireReader::new(source).len64(congest::wire::MAX_SEQ_LEN)?;
    let mut runs = Vec::with_capacity(clamped_capacity(count));
    for _ in 0..count {
        let run = FlatTables::read_from(source)?;
        run.validate(topo)?;
        runs.push(run);
    }
    Ok(runs)
}

fn write_tree_sets(sink: &mut dyn Write, sets: &[TreeSet]) -> io::Result<()> {
    WireWriter::new(sink).len(sets.len())?;
    for set in sets {
        set.write_into(sink)?;
    }
    Ok(())
}

fn read_tree_sets(source: &mut dyn Read) -> io::Result<Vec<TreeSet>> {
    let count = WireReader::new(source).len64(congest::wire::MAX_SEQ_LEN)?;
    let mut sets = Vec::with_capacity(clamped_capacity(count));
    for _ in 0..count {
        sets.push(TreeSet::read_from(source)?);
    }
    Ok(sets)
}

fn write_u64_seq(w: &mut WireWriter<'_>, xs: &[u64]) -> io::Result<()> {
    w.len(xs.len())?;
    for &x in xs {
        w.u64(x)?;
    }
    Ok(())
}

fn read_u64_seq(r: &mut WireReader<'_>) -> io::Result<Vec<u64>> {
    let n = r.len64(congest::wire::MAX_SEQ_LEN)?;
    let mut xs = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        xs.push(r.u64()?);
    }
    Ok(xs)
}

impl CompactScheme {
    /// Serializes the hierarchy's full query state (record version 2).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, false)
    }

    /// [`CompactScheme::write_into`] with the volatile measurement fields
    /// (round/message totals) written as zeros — the canonical artifact
    /// form shared by simulated and native builds (deterministic fields
    /// such as level sizes, horizons, σ and sampling attempts are kept;
    /// they are identical across modes). Stays loadable by
    /// [`CompactScheme::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_canonical_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, true)
    }

    fn write_into_opts(&self, sink: &mut dyn Write, canonical: bool) -> io::Result<()> {
        WireWriter::new(sink).u16(COMPACT_RECORD_VERSION)?;
        self.topo.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.u32(self.k)?;
        w.len(self.levels.len())?;
        for &l in &self.levels {
            w.u32(l)?;
        }
        w.len(self.bunch_sizes.len())?;
        for &b in &self.bunch_sizes {
            w.usize(b)?;
        }
        w.len(self.labels.len())?;
        for label in &self.labels {
            w.u32(label.id.0)?;
            w.len(label.pivots.len())?;
            for &(s, d, f) in &label.pivots {
                w.u32(s.0)?;
                w.u64(d)?;
                w.u64(f)?;
            }
        }
        write_flat_runs(sink, &self.routes)?;
        write_tree_sets(sink, &self.trees)?;
        let mut w = WireWriter::new(sink);
        let mt = &self.metrics;
        let zero = |x: u64| if canonical { 0 } else { x };
        w.u64(zero(mt.total_rounds))?;
        if canonical {
            write_u64_seq(&mut w, &vec![0u64; mt.per_level_rounds.len()])?;
        } else {
            write_u64_seq(&mut w, &mt.per_level_rounds)?;
        }
        w.u64(zero(mt.tree_label_rounds))?;
        w.u64(zero(mt.total.rounds))?;
        w.u64(zero(mt.total.messages))?;
        w.len(mt.level_sizes.len())?;
        for &s in &mt.level_sizes {
            w.usize(s)?;
        }
        w.u32(mt.sample_attempts)?;
        write_u64_seq(&mut w, &mt.horizons)?;
        w.usize(mt.sigma)?;
        Ok(())
    }

    /// Deserializes a hierarchy written by [`CompactScheme::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes or an unsupported record
    /// version.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        check_record_version(source, COMPACT_RECORD_VERSION, "compact scheme")?;
        let topo = Topology::read_from(source)?;
        let n = topo.len();
        let mut r = WireReader::new(source);
        let k = r.u32()?;
        if k == 0 {
            return Err(invalid_data("compact snapshot with k = 0"));
        }
        // Shape checks: queries index levels[v], routes[l] row v,
        // labels[v].pivots[l-1] and trees[l-1], so all per-node tables
        // must cover every node and all per-level tables every level —
        // a short table must fail here, not at query time.
        let num_levels = r.len(n)?;
        if num_levels != n {
            return Err(invalid_data("compact level table shorter than n"));
        }
        let mut levels = Vec::with_capacity(clamped_capacity(num_levels));
        for _ in 0..num_levels {
            levels.push(r.u32()?);
        }
        let nb = r.len(n)?;
        if nb != n {
            return Err(invalid_data("compact bunch table shorter than n"));
        }
        let mut bunch_sizes = Vec::with_capacity(clamped_capacity(nb));
        for _ in 0..nb {
            bunch_sizes.push(r.usize()?);
        }
        let nl = r.len(n)?;
        if nl != n {
            return Err(invalid_data("compact label table shorter than n"));
        }
        let mut labels = Vec::with_capacity(clamped_capacity(nl));
        for _ in 0..nl {
            let id = NodeId(r.u32()?);
            let np = r.len(n)?;
            if np != (k - 1) as usize {
                return Err(invalid_data("compact label pivot count mismatch"));
            }
            let mut pivots = Vec::with_capacity(clamped_capacity(np));
            for _ in 0..np {
                let s = NodeId(r.u32()?);
                let d = r.u64()?;
                let f = r.u64()?;
                pivots.push((s, d, f));
            }
            labels.push(CompactLabel { id, pivots });
        }
        let routes = read_flat_runs(source, &topo)?;
        if routes.len() != k as usize {
            return Err(invalid_data("compact route run shape mismatch"));
        }
        let trees = read_tree_sets(source)?;
        if trees.len() != (k - 1) as usize {
            return Err(invalid_data("compact tree set count mismatch"));
        }
        let mut r = WireReader::new(source);
        let total_rounds = r.u64()?;
        let per_level_rounds = read_u64_seq(&mut r)?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let ns = r.len(n)?;
        let mut level_sizes = Vec::with_capacity(clamped_capacity(ns));
        for _ in 0..ns {
            level_sizes.push(r.usize()?);
        }
        let sample_attempts = r.u32()?;
        let horizons = read_u64_seq(&mut r)?;
        let sigma = r.usize()?;
        Ok(CompactScheme {
            topo,
            k,
            levels,
            routes,
            bunch_sizes,
            trees,
            labels,
            metrics: CompactBuildMetrics {
                total_rounds,
                per_level_rounds,
                tree_label_rounds,
                total,
                level_sizes,
                sample_attempts,
                horizons,
                sigma,
                stages: Default::default(),
            },
        })
    }
}

impl CompactScheme {
    /// Emits the hierarchy into a v3 arena: per-level route archives and
    /// per-node arrays as typed sections, detection trees and metrics as
    /// embedded v2 streams.
    pub fn write_arena(
        &self,
        a: &mut congest::arena::ArenaWriter,
        canonical: bool,
    ) -> io::Result<()> {
        self.topo.write_arena(a);
        a.u64s(&[u64::from(self.k)]);
        a.u32s(&self.levels);
        let bunches: Vec<u64> = self.bunch_sizes.iter().map(|&b| b as u64).collect();
        a.u64s(&bunches);
        let ids: Vec<u32> = self.labels.iter().map(|l| l.id.0).collect();
        let piv_s: Vec<u32> = self
            .labels
            .iter()
            .flat_map(|l| l.pivots.iter().map(|&(s, _, _)| s.0))
            .collect();
        let piv_d: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.pivots.iter().map(|&(_, d, _)| d))
            .collect();
        let piv_f: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.pivots.iter().map(|&(_, _, f)| f))
            .collect();
        a.u32s(&ids);
        a.u32s(&piv_s);
        a.u64s(&piv_d);
        a.u64s(&piv_f);
        for run in &self.routes {
            run.write_arena(a);
        }
        a.stream(|sink| write_tree_sets(sink, &self.trees))?;
        a.stream(|sink| {
            let mut w = WireWriter::new(sink);
            let mt = &self.metrics;
            let zero = |x: u64| if canonical { 0 } else { x };
            w.u64(zero(mt.total_rounds))?;
            if canonical {
                write_u64_seq(&mut w, &vec![0u64; mt.per_level_rounds.len()])?;
            } else {
                write_u64_seq(&mut w, &mt.per_level_rounds)?;
            }
            w.u64(zero(mt.tree_label_rounds))?;
            w.u64(zero(mt.total.rounds))?;
            w.u64(zero(mt.total.messages))?;
            w.len(mt.level_sizes.len())?;
            for &s in &mt.level_sizes {
                w.usize(s)?;
            }
            w.u32(mt.sample_attempts)?;
            write_u64_seq(&mut w, &mt.horizons)?;
            w.usize(mt.sigma)
        })
    }

    /// Reads what [`CompactScheme::write_arena`] wrote, with the same
    /// shape checks as the v2 reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Self> {
        let topo = Topology::read_arena(c)?;
        let n = topo.len();
        let meta = c.u64s()?;
        let [k] = meta[..] else {
            return Err(invalid_data("compact meta section misshapen"));
        };
        let k = u32::try_from(k).map_err(|_| invalid_data("compact k overflow"))?;
        if k == 0 {
            return Err(invalid_data("compact snapshot with k = 0"));
        }
        let levels = c.u32s()?;
        if levels.len() != n {
            return Err(invalid_data("compact level table shorter than n"));
        }
        let bunch_sizes: Vec<usize> = c
            .u64s()?
            .into_iter()
            .map(|b| usize::try_from(b).map_err(|_| invalid_data("bunch size overflow")))
            .collect::<io::Result<_>>()?;
        if bunch_sizes.len() != n {
            return Err(invalid_data("compact bunch table shorter than n"));
        }
        let ids = c.u32s()?;
        let piv_s = c.u32s()?;
        let piv_d = c.u64s()?;
        let piv_f = c.u64s()?;
        let stride = (k - 1) as usize;
        let total = congest::wire::seq_product(n, stride, "compact pivot table")?;
        if ids.len() != n || piv_s.len() != total || piv_d.len() != total || piv_f.len() != total {
            return Err(invalid_data("compact label sections disagree on length"));
        }
        let labels: Vec<CompactLabel> = (0..n)
            .map(|v| CompactLabel {
                id: NodeId(ids[v]),
                pivots: (v * stride..(v + 1) * stride)
                    .map(|i| (NodeId(piv_s[i]), piv_d[i], piv_f[i]))
                    .collect(),
            })
            .collect();
        let mut routes = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let run = FlatTables::read_arena(c)?;
            run.validate(&topo)?;
            routes.push(run);
        }
        let trees = read_tree_sets(&mut c.bytes()?)?;
        if trees.len() != (k - 1) as usize {
            return Err(invalid_data("compact tree set count mismatch"));
        }
        let mut meta = c.bytes()?;
        let mut r = WireReader::new(&mut meta);
        let total_rounds = r.u64()?;
        let per_level_rounds = read_u64_seq(&mut r)?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let ns = r.len(n)?;
        let mut level_sizes = Vec::with_capacity(clamped_capacity(ns));
        for _ in 0..ns {
            level_sizes.push(r.usize()?);
        }
        let sample_attempts = r.u32()?;
        let horizons = read_u64_seq(&mut r)?;
        let sigma = r.usize()?;
        Ok(CompactScheme {
            topo,
            k,
            levels,
            routes,
            bunch_sizes,
            trees,
            labels,
            metrics: CompactBuildMetrics {
                total_rounds,
                per_level_rounds,
                tree_label_rounds,
                total,
                level_sizes,
                sample_attempts,
                horizons,
                sigma,
                stages: Default::default(),
            },
        })
    }
}

impl TruncatedScheme {
    /// Serializes the truncated scheme's full query state (record
    /// version 2).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, false)
    }

    /// [`TruncatedScheme::write_into`] with the volatile measurement
    /// fields (round/message totals) written as zeros — the canonical
    /// artifact form shared by simulated and native builds. Stays
    /// loadable by [`TruncatedScheme::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_canonical_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, true)
    }

    fn write_into_opts(&self, sink: &mut dyn Write, canonical: bool) -> io::Result<()> {
        WireWriter::new(sink).u16(COMPACT_RECORD_VERSION)?;
        self.topo.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.u32(self.l0)?;
        w.len(self.skel_ids.len())?;
        for &s in &self.skel_ids {
            w.u32(s.0)?;
        }
        write_flat_runs(sink, &self.lower_routes)?;
        self.base_routes.write_into(sink)?;
        self.gt_graph.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.len(self.upper_est.len())?;
        for table in &self.upper_est {
            table.write_into(sink)?;
        }
        let mut w = WireWriter::new(sink);
        w.len(self.upper_next.len())?;
        for table in &self.upper_next {
            table.write_into(sink)?;
        }
        write_tree_sets(sink, &self.lower_trees)?;
        self.base_trees.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.len(self.labels.len())?;
        for label in &self.labels {
            w.u32(label.id.0)?;
            w.len(label.lower.len())?;
            for &(s, d, f) in &label.lower {
                w.u32(s.0)?;
                w.u64(d)?;
                w.u64(f)?;
            }
            w.len(label.upper.len())?;
            for up in &label.upper {
                w.u32(up.pivot.0)?;
                w.u64(up.est)?;
                w.u32(up.t_star.0)?;
                w.u64(up.est_base)?;
                w.u64(up.base_dfs)?;
            }
        }
        w.len(self.bunch_sizes.len())?;
        for &b in &self.bunch_sizes {
            w.usize(b)?;
        }
        let mt = &self.metrics;
        let zero = |x: u64| if canonical { 0 } else { x };
        w.u64(zero(mt.total_rounds))?;
        w.u64(zero(mt.lower_rounds))?;
        w.u64(zero(mt.base_rounds))?;
        w.u64(zero(mt.upper_rounds))?;
        w.u64(zero(mt.tree_label_rounds))?;
        w.u64(zero(mt.total.rounds))?;
        w.u64(zero(mt.total.messages))?;
        w.usize(mt.skeleton_size)?;
        w.usize(mt.gt_edges)?;
        Ok(())
    }

    /// Deserializes a scheme written by [`TruncatedScheme::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes or an unsupported record
    /// version.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        check_record_version(source, COMPACT_RECORD_VERSION, "truncated scheme")?;
        let topo = Topology::read_from(source)?;
        let n = topo.len();
        let mut r = WireReader::new(source);
        let l0 = r.u32()?;
        if l0 == 0 {
            return Err(invalid_data("truncated snapshot with l0 = 0"));
        }
        let m = r.len(n)?;
        let mut skel_ids = Vec::with_capacity(clamped_capacity(m));
        let mut seen = vec![false; n];
        for _ in 0..m {
            let id = NodeId(r.u32()?);
            if id.index() >= n {
                return Err(invalid_data("skeleton id out of range"));
            }
            // Duplicates would panic in DenseIndex::new below; corrupted
            // bytes must come back as InvalidData, never an abort.
            if std::mem::replace(&mut seen[id.index()], true) {
                return Err(invalid_data("duplicate skeleton id"));
            }
            skel_ids.push(id);
        }
        let skel_index = DenseIndex::new(n, &skel_ids);
        // Shape checks mirror the query paths: lower_routes[l] for
        // l < l0, base_routes rows, labels[v] with l0−1 lower and
        // |upper_est| upper records — short tables fail here, not at
        // query time.
        let lower_routes = read_flat_runs(source, &topo)?;
        if lower_routes.len() != l0 as usize {
            return Err(invalid_data("truncated lower route shape mismatch"));
        }
        let base_routes = FlatTables::read_from(source)?;
        base_routes.validate(&topo)?;
        let gt_graph = WGraph::read_from(source)?;
        if gt_graph.len() != m.max(1) {
            return Err(invalid_data("truncated skeleton graph size mismatch"));
        }
        let read_pair_tables =
            |source: &mut dyn Read, check_next: bool| -> io::Result<Vec<PairTable>> {
                let count = WireReader::new(source).len64(congest::wire::MAX_SEQ_LEN)?;
                let mut tables = Vec::with_capacity(clamped_capacity(count));
                for _ in 0..count {
                    let t = PairTable::read_from(source)?;
                    if t.k() != m.max(1) {
                        return Err(invalid_data("pair table side length mismatch"));
                    }
                    if check_next {
                        // Next-hop values are skeleton indices; an out-of-range
                        // one would panic at query time, not load time.
                        for (_, _, v) in t.iter() {
                            if v >= m.max(1) as u64 {
                                return Err(invalid_data("upper_next index out of range"));
                            }
                        }
                    }
                    tables.push(t);
                }
                Ok(tables)
            };
        let upper_est = read_pair_tables(source, false)?;
        let upper_next = read_pair_tables(source, true)?;
        if upper_next.len() != upper_est.len() {
            return Err(invalid_data("truncated upper map count mismatch"));
        }
        let ne = upper_est.len();
        let lower_trees = read_tree_sets(source)?;
        if lower_trees.len() != (l0 - 1) as usize {
            return Err(invalid_data("truncated lower tree count mismatch"));
        }
        let base_trees = TreeSet::read_from(source)?;
        let mut r = WireReader::new(source);
        let nl = r.len(n)?;
        if nl != n {
            return Err(invalid_data("truncated label table shorter than n"));
        }
        let mut labels = Vec::with_capacity(clamped_capacity(nl));
        for _ in 0..nl {
            let id = NodeId(r.u32()?);
            let lo = r.len(n)?;
            if lo != (l0 - 1) as usize {
                return Err(invalid_data("truncated label lower count mismatch"));
            }
            let mut lower = Vec::with_capacity(clamped_capacity(lo));
            for _ in 0..lo {
                let s = NodeId(r.u32()?);
                let d = r.u64()?;
                let f = r.u64()?;
                lower.push((s, d, f));
            }
            let hi = r.len(n)?;
            if hi != ne {
                return Err(invalid_data("truncated label upper count mismatch"));
            }
            let mut upper = Vec::with_capacity(clamped_capacity(hi));
            for _ in 0..hi {
                let up = UpperPivot {
                    pivot: NodeId(r.u32()?),
                    est: r.u64()?,
                    t_star: NodeId(r.u32()?),
                    est_base: r.u64()?,
                    base_dfs: r.u64()?,
                };
                // Queries resolve both through skel_index and expect
                // membership; a non-skeleton pivot must fail here, not
                // panic at query time.
                if up.pivot.index() >= n
                    || up.t_star.index() >= n
                    || !skel_index.contains(up.pivot)
                    || !skel_index.contains(up.t_star)
                {
                    return Err(invalid_data("label upper pivot not in skeleton"));
                }
                upper.push(up);
            }
            labels.push(TruncLabel { id, lower, upper });
        }
        let nb = r.len(n)?;
        if nb != n {
            return Err(invalid_data("truncated bunch table shorter than n"));
        }
        let mut bunch_sizes = Vec::with_capacity(clamped_capacity(nb));
        for _ in 0..nb {
            bunch_sizes.push(r.usize()?);
        }
        let total_rounds = r.u64()?;
        let lower_rounds = r.u64()?;
        let base_rounds = r.u64()?;
        let upper_rounds = r.u64()?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let skeleton_size = r.usize()?;
        let gt_edges = r.usize()?;
        let base_row_idx = pde_core::resolve_entry_indices(&base_routes, &skel_index);
        Ok(TruncatedScheme {
            topo,
            l0,
            lower_routes,
            base_routes,
            base_row_idx,
            skel_ids,
            skel_index,
            gt_graph,
            upper_est,
            upper_next,
            lower_trees,
            base_trees,
            labels,
            bunch_sizes,
            metrics: TruncatedMetrics {
                total_rounds,
                lower_rounds,
                base_rounds,
                upper_rounds,
                tree_label_rounds,
                total,
                skeleton_size,
                gt_edges,
                stages: Default::default(),
            },
        })
    }

    /// Emits the truncated scheme into a v3 arena: route archives, pair
    /// tables, the skeleton graph and the per-node label arrays as typed
    /// sections; detection trees and metrics as embedded v2 streams.
    pub fn write_arena(
        &self,
        a: &mut congest::arena::ArenaWriter,
        canonical: bool,
    ) -> io::Result<()> {
        self.topo.write_arena(a);
        a.u64s(&[u64::from(self.l0), self.upper_est.len() as u64]);
        let skel: Vec<u32> = self.skel_ids.iter().map(|s| s.0).collect();
        a.u32s(&skel);
        for run in &self.lower_routes {
            run.write_arena(a);
        }
        self.base_routes.write_arena(a);
        self.gt_graph.write_arena(a);
        for table in &self.upper_est {
            table.write_arena(a);
        }
        for table in &self.upper_next {
            table.write_arena(a);
        }
        a.stream(|sink| write_tree_sets(sink, &self.lower_trees))?;
        a.stream(|sink| self.base_trees.write_into(sink))?;
        let ids: Vec<u32> = self.labels.iter().map(|l| l.id.0).collect();
        let lo_s: Vec<u32> = self
            .labels
            .iter()
            .flat_map(|l| l.lower.iter().map(|&(s, _, _)| s.0))
            .collect();
        let lo_d: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.lower.iter().map(|&(_, d, _)| d))
            .collect();
        let lo_f: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.lower.iter().map(|&(_, _, f)| f))
            .collect();
        let up_pivot: Vec<u32> = self
            .labels
            .iter()
            .flat_map(|l| l.upper.iter().map(|u| u.pivot.0))
            .collect();
        let up_est: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.upper.iter().map(|u| u.est))
            .collect();
        let up_t_star: Vec<u32> = self
            .labels
            .iter()
            .flat_map(|l| l.upper.iter().map(|u| u.t_star.0))
            .collect();
        let up_est_base: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.upper.iter().map(|u| u.est_base))
            .collect();
        let up_base_dfs: Vec<u64> = self
            .labels
            .iter()
            .flat_map(|l| l.upper.iter().map(|u| u.base_dfs))
            .collect();
        a.u32s(&ids);
        a.u32s(&lo_s);
        a.u64s(&lo_d);
        a.u64s(&lo_f);
        a.u32s(&up_pivot);
        a.u64s(&up_est);
        a.u32s(&up_t_star);
        a.u64s(&up_est_base);
        a.u64s(&up_base_dfs);
        let bunches: Vec<u64> = self.bunch_sizes.iter().map(|&b| b as u64).collect();
        a.u64s(&bunches);
        a.stream(|sink| {
            let mut w = WireWriter::new(sink);
            let mt = &self.metrics;
            let zero = |x: u64| if canonical { 0 } else { x };
            w.u64(zero(mt.total_rounds))?;
            w.u64(zero(mt.lower_rounds))?;
            w.u64(zero(mt.base_rounds))?;
            w.u64(zero(mt.upper_rounds))?;
            w.u64(zero(mt.tree_label_rounds))?;
            w.u64(zero(mt.total.rounds))?;
            w.u64(zero(mt.total.messages))?;
            w.usize(mt.skeleton_size)?;
            w.usize(mt.gt_edges)
        })
    }

    /// Reads what [`TruncatedScheme::write_arena`] wrote, with the same
    /// shape and skeleton-membership checks as the v2 reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Self> {
        let topo = Topology::read_arena(c)?;
        let n = topo.len();
        let meta = c.u64s()?;
        let [l0, ne] = meta[..] else {
            return Err(invalid_data("truncated meta section misshapen"));
        };
        let l0 = u32::try_from(l0).map_err(|_| invalid_data("truncated l0 overflow"))?;
        if l0 == 0 {
            return Err(invalid_data("truncated snapshot with l0 = 0"));
        }
        let ne = usize::try_from(ne).map_err(|_| invalid_data("upper map count overflow"))?;
        if ne > n {
            return Err(invalid_data("upper map count exceeds n"));
        }
        let skel_raw = c.u32s()?;
        let m = skel_raw.len();
        if m > n {
            return Err(invalid_data("skeleton larger than n"));
        }
        let mut skel_ids = Vec::with_capacity(m);
        let mut seen = vec![false; n];
        for id in skel_raw {
            let id = NodeId(id);
            if id.index() >= n {
                return Err(invalid_data("skeleton id out of range"));
            }
            if std::mem::replace(&mut seen[id.index()], true) {
                return Err(invalid_data("duplicate skeleton id"));
            }
            skel_ids.push(id);
        }
        let skel_index = DenseIndex::new(n, &skel_ids);
        let mut lower_routes = Vec::with_capacity(l0 as usize);
        for _ in 0..l0 {
            let run = FlatTables::read_arena(c)?;
            run.validate(&topo)?;
            lower_routes.push(run);
        }
        let base_routes = FlatTables::read_arena(c)?;
        base_routes.validate(&topo)?;
        let gt_graph = WGraph::read_arena(c)?;
        if gt_graph.len() != m.max(1) {
            return Err(invalid_data("truncated skeleton graph size mismatch"));
        }
        let read_pair_tables = |c: &mut congest::arena::ArenaCursor<'_>,
                                check_next: bool|
         -> io::Result<Vec<PairTable>> {
            let mut tables = Vec::with_capacity(ne);
            for _ in 0..ne {
                let t = PairTable::read_arena(c)?;
                if t.k() != m.max(1) {
                    return Err(invalid_data("pair table side length mismatch"));
                }
                if check_next {
                    for (_, _, v) in t.iter() {
                        if v >= m.max(1) as u64 {
                            return Err(invalid_data("upper_next index out of range"));
                        }
                    }
                }
                tables.push(t);
            }
            Ok(tables)
        };
        let upper_est = read_pair_tables(c, false)?;
        let upper_next = read_pair_tables(c, true)?;
        let lower_trees = read_tree_sets(&mut c.bytes()?)?;
        if lower_trees.len() != (l0 - 1) as usize {
            return Err(invalid_data("truncated lower tree count mismatch"));
        }
        let base_trees = TreeSet::read_from(&mut c.bytes()?)?;
        let ids = c.u32s()?;
        let lo_s = c.u32s()?;
        let lo_d = c.u64s()?;
        let lo_f = c.u64s()?;
        let up_pivot = c.u32s()?;
        let up_est = c.u64s()?;
        let up_t_star = c.u32s()?;
        let up_est_base = c.u64s()?;
        let up_base_dfs = c.u64s()?;
        let lo_stride = (l0 - 1) as usize;
        let lo_total = congest::wire::seq_product(n, lo_stride, "truncated lower labels")?;
        let up_total = congest::wire::seq_product(n, ne, "truncated upper labels")?;
        if ids.len() != n
            || lo_s.len() != lo_total
            || lo_d.len() != lo_total
            || lo_f.len() != lo_total
            || up_pivot.len() != up_total
            || up_est.len() != up_total
            || up_t_star.len() != up_total
            || up_est_base.len() != up_total
            || up_base_dfs.len() != up_total
        {
            return Err(invalid_data("truncated label sections disagree on length"));
        }
        let mut labels = Vec::with_capacity(n);
        for (v, &id) in ids.iter().enumerate() {
            let lower: Vec<(NodeId, u64, u64)> = (v * lo_stride..(v + 1) * lo_stride)
                .map(|i| (NodeId(lo_s[i]), lo_d[i], lo_f[i]))
                .collect();
            let mut upper = Vec::with_capacity(ne);
            for i in v * ne..(v + 1) * ne {
                let up = UpperPivot {
                    pivot: NodeId(up_pivot[i]),
                    est: up_est[i],
                    t_star: NodeId(up_t_star[i]),
                    est_base: up_est_base[i],
                    base_dfs: up_base_dfs[i],
                };
                if up.pivot.index() >= n
                    || up.t_star.index() >= n
                    || !skel_index.contains(up.pivot)
                    || !skel_index.contains(up.t_star)
                {
                    return Err(invalid_data("label upper pivot not in skeleton"));
                }
                upper.push(up);
            }
            labels.push(TruncLabel {
                id: NodeId(id),
                lower,
                upper,
            });
        }
        let bunch_sizes: Vec<usize> = c
            .u64s()?
            .into_iter()
            .map(|b| usize::try_from(b).map_err(|_| invalid_data("bunch size overflow")))
            .collect::<io::Result<_>>()?;
        if bunch_sizes.len() != n {
            return Err(invalid_data("truncated bunch table shorter than n"));
        }
        let mut meta = c.bytes()?;
        let mut r = WireReader::new(&mut meta);
        let total_rounds = r.u64()?;
        let lower_rounds = r.u64()?;
        let base_rounds = r.u64()?;
        let upper_rounds = r.u64()?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let skeleton_size = r.usize()?;
        let gt_edges = r.usize()?;
        let base_row_idx = pde_core::resolve_entry_indices(&base_routes, &skel_index);
        Ok(TruncatedScheme {
            topo,
            l0,
            lower_routes,
            base_routes,
            base_row_idx,
            skel_ids,
            skel_index,
            gt_graph,
            upper_est,
            upper_next,
            lower_trees,
            base_trees,
            labels,
            bunch_sizes,
            metrics: TruncatedMetrics {
                total_rounds,
                lower_rounds,
                base_rounds,
                upper_rounds,
                tree_label_rounds,
                total,
                skeleton_size,
                gt_edges,
                stages: Default::default(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{build_hierarchy, CompactParams};
    use crate::truncated::{build_truncated, UpperMode};
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use routing::RoutingScheme;

    fn assert_query_identical<S: RoutingScheme>(g: &WGraph, a: &S, b: &S) {
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.estimate(u, v), b.estimate(u, v), "({u},{v})");
                assert_eq!(a.next_hop(u, v), b.next_hop(u, v), "({u},{v})");
            }
            assert_eq!(a.label_bits(u), b.label_bits(u));
            assert_eq!(a.table_entries(u), b.table_entries(u));
        }
    }

    #[test]
    fn hierarchy_snapshot_round_trips() {
        let mut rng = SmallRng::seed_from_u64(44);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        let scheme = build_hierarchy(&g, &CompactParams::new(3));
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        let back = CompactScheme::read_from(&mut &buf[..]).unwrap();
        assert_query_identical(&g, &scheme, &back);
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn truncated_snapshot_round_trips() {
        let mut rng = SmallRng::seed_from_u64(45);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        for mode in [UpperMode::Local, UpperMode::Simulated] {
            let scheme = build_truncated(&g, &CompactParams::new(2), 1, mode);
            let mut buf = Vec::new();
            scheme.write_into(&mut buf).unwrap();
            let back = TruncatedScheme::read_from(&mut &buf[..]).unwrap();
            assert_query_identical(&g, &scheme, &back);
            let mut buf2 = Vec::new();
            back.write_into(&mut buf2).unwrap();
            assert_eq!(buf, buf2, "{mode:?}");
        }
    }

    #[test]
    fn arena_round_trips_are_query_and_byte_identical() {
        let mut rng = SmallRng::seed_from_u64(47);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);

        let scheme = build_hierarchy(&g, &CompactParams::new(3));
        let mut a = congest::arena::ArenaWriter::new();
        scheme.write_arena(&mut a, false).unwrap();
        let mut bytes = Vec::new();
        a.finish(&mut bytes).unwrap();
        let reader = congest::arena::ArenaReader::parse(congest::arena::SharedBytes::from_vec(
            bytes.clone(),
        ))
        .unwrap();
        let mut c = reader.cursor();
        let back = CompactScheme::read_arena(&mut c).unwrap();
        c.expect_end().unwrap();
        assert_query_identical(&g, &scheme, &back);
        let mut a2 = congest::arena::ArenaWriter::new();
        back.write_arena(&mut a2, false).unwrap();
        let mut bytes2 = Vec::new();
        a2.finish(&mut bytes2).unwrap();
        assert_eq!(bytes, bytes2);

        for mode in [UpperMode::Local, UpperMode::Simulated] {
            let scheme = build_truncated(&g, &CompactParams::new(2), 1, mode);
            let mut a = congest::arena::ArenaWriter::new();
            scheme.write_arena(&mut a, false).unwrap();
            let mut bytes = Vec::new();
            a.finish(&mut bytes).unwrap();
            let reader = congest::arena::ArenaReader::parse(congest::arena::SharedBytes::from_vec(
                bytes.clone(),
            ))
            .unwrap();
            let mut c = reader.cursor();
            let back = TruncatedScheme::read_arena(&mut c).unwrap();
            c.expect_end().unwrap();
            assert_query_identical(&g, &scheme, &back);
            let mut a2 = congest::arena::ArenaWriter::new();
            back.write_arena(&mut a2, false).unwrap();
            let mut bytes2 = Vec::new();
            a2.finish(&mut bytes2).unwrap();
            assert_eq!(bytes, bytes2, "{mode:?}");
        }
    }

    #[test]
    fn record_version_gate_rejects_other_versions() {
        let mut rng = SmallRng::seed_from_u64(46);
        let g = gen::gnp_connected(16, 0.25, Weights::Unit, &mut rng);
        let scheme = build_hierarchy(&g, &CompactParams::new(2));
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        assert_eq!(u16::from_le_bytes([buf[0], buf[1]]), COMPACT_RECORD_VERSION);
        buf[0] = 1;
        buf[1] = 0;
        let err = CompactScheme::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("record version"), "{err}");
    }
}
