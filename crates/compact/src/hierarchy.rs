//! The per-level hierarchy construction (Lemma 4.7 / Theorem 4.8).
//!
//! [`build_hierarchy`] is a declarative stage list over the shared build
//! pipeline: level sampling → one PDE ladder per level → pivots → trees.
//! Both [`BuildMode`]s produce byte-identical schemes; the simulated
//! build charges the Lemma 4.7 rounds (recorded per stage in
//! [`CompactBuildMetrics::stages`]).

use congest::{label_record_bits, Metrics, NodeId, Topology};
use graphs::{Seed, WGraph};
use pde_core::pipeline::{self, with_resample, BuildError, StageLog};
use pde_core::{run_pde, BuildMode, FlatTables, PdeParams};
use treeroute::TreeSet;

use crate::levels::{level_flags, sample_levels};

/// How per-level detection horizons are chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HorizonMode {
    /// Lemma 4.7: `h_{l+1} = c · n^{(l+1)/k} · ln n` for the level-`l` run.
    Lemma47,
    /// Theorem 4.8: a uniform horizon `h = SPD` (the caller supplies the
    /// bound — the paper assumes an upper bound on `SPD` is known).
    Spd(u64),
}

/// Parameters for [`build_hierarchy`].
#[derive(Clone, Debug)]
pub struct CompactParams {
    /// Number of hierarchy levels `k` (stretch `4k−3+o(1)`).
    pub k: u32,
    /// PDE approximation parameter ε.
    pub eps: f64,
    /// Constant `c` in horizons and list sizes.
    pub c: f64,
    /// RNG seed for level sampling.
    pub seed: Seed,
    /// Horizon selection (Lemma 4.7 vs Theorem 4.8).
    pub horizon: HorizonMode,
    /// Build engine (see [`BuildMode`]); artifacts are identical across
    /// modes.
    pub mode: BuildMode,
    /// Worker threads for ladder rungs and native stages (`0` = auto,
    /// `1` = sequential); outputs are identical for every value.
    pub threads: usize,
}

impl CompactParams {
    /// Defaults for a given `k` (Lemma 4.7 horizons, simulated build,
    /// auto threads).
    pub fn new(k: u32) -> Self {
        CompactParams {
            k,
            eps: 0.25,
            c: 2.0,
            seed: Seed(0xBEEF),
            horizon: HorizonMode::Lemma47,
            mode: BuildMode::Simulated,
            threads: 0,
        }
    }

    /// Sets the build engine.
    #[must_use]
    pub fn with_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// A node's label: `O(k log n)` bits (Theorem 4.8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactLabel {
    /// The node's own id.
    pub id: NodeId,
    /// For each level `l ∈ {1, …, k−1}` (index `l−1`): the pivot
    /// `s'_l(w)`, the estimate `wd'_l(w, s'_l(w))`, and `w`'s DFS label in
    /// the detection tree `T_{s'_l(w)}`.
    pub pivots: Vec<(NodeId, u64, u64)>,
}

impl CompactLabel {
    /// Semantic label size in bits: the node's own id plus one
    /// `(pivot id, distance, DFS index)` record per level, via the shared
    /// [`congest::label_record_bits`] formula.
    pub fn bits(&self, n: usize) -> usize {
        let n = n as u64;
        label_record_bits(n, 1, &[])
            + self
                .pivots
                .iter()
                .map(|&(_, d, f)| label_record_bits(n, 1, &[d, f]))
                .sum::<usize>()
    }
}

/// Build metrics for the hierarchy.
#[derive(Clone, Debug)]
pub struct CompactBuildMetrics {
    /// Total rounds over all stages.
    pub total_rounds: u64,
    /// Rounds per PDE level run (index = level `l`).
    pub per_level_rounds: Vec<u64>,
    /// Rounds of distributed tree labeling (all levels).
    pub tree_label_rounds: u64,
    /// Aggregate simulator metrics.
    pub total: Metrics,
    /// `|S_l|` for each level.
    pub level_sizes: Vec<usize>,
    /// Level re-sampling attempts.
    pub sample_attempts: u32,
    /// The horizons used per level run.
    pub horizons: Vec<u64>,
    /// The list size σ used.
    pub sigma: usize,
    /// The declarative stage list this build executed (measurement
    /// metadata; not serialized).
    pub stages: StageLog,
}

/// The constructed compact scheme.
#[derive(Debug)]
pub struct CompactScheme {
    pub(crate) topo: Topology,
    /// `k`.
    pub k: u32,
    /// Per-node sampled level.
    pub levels: Vec<u32>,
    /// `routes[l]`: the level-`l` PDE routing archive (sources `S_l`),
    /// flattened into source-sorted per-node rows — queries binary-search
    /// a contiguous row instead of probing a hash map.
    pub routes: Vec<FlatTables>,
    /// `bunch_sizes[v]`: Σ_l |S'_l(v)| — the paper-sized table entries.
    pub bunch_sizes: Vec<usize>,
    /// Detection-tree sets, one per pivot level `l ∈ {1, …, k−1}`
    /// (index `l−1`).
    pub trees: Vec<TreeSet>,
    /// Per-node labels.
    pub labels: Vec<CompactLabel>,
    /// Build metrics.
    pub metrics: CompactBuildMetrics,
}

impl CompactScheme {
    /// The topology the scheme was built on (shared with route tracing
    /// and snapshot serialization, so callers need no separate copy).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

// Next-hop chain tracing is shared pipeline machinery now; keep the
// crate-local name the query/tree code uses.
pub(crate) use pde_core::pipeline::trace_chain;

/// Builds the Lemma 4.7 / Theorem 4.8 hierarchy on `g`, panicking on
/// unrecoverable sampling failures (see [`try_build_hierarchy`]).
///
/// # Panics
///
/// Panics on disconnected inputs and — with advice to raise `c` — when a
/// w.h.p. event (a node missing a pivot at some level) fails on both the
/// primary sample and the one derived resample.
pub fn build_hierarchy(g: &WGraph, params: &CompactParams) -> CompactScheme {
    try_build_hierarchy(g, params).unwrap_or_else(|e| {
        panic!("hierarchy build failed after one resample: {e} (CompactParams::c)")
    })
}

/// Builds the hierarchy, retrying once on a [`Seed::derive`]d resample
/// when a w.h.p. event fails.
///
/// # Errors
///
/// Returns the second attempt's [`BuildError`] when both samples fail.
///
/// # Panics
///
/// Panics on structurally invalid inputs (fewer than two nodes, `k == 0`,
/// a disconnected graph).
pub fn try_build_hierarchy(
    g: &WGraph,
    params: &CompactParams,
) -> Result<CompactScheme, BuildError> {
    assert!(g.len() >= 2, "need at least two nodes");
    assert!(params.k >= 1, "k must be ≥ 1");
    with_resample(params.seed, |seed, _attempt| {
        let p = CompactParams {
            seed,
            ..params.clone()
        };
        build_attempt(g, &p)
    })
}

/// One build attempt at a fixed seed: the declarative stage list.
fn build_attempt(g: &WGraph, params: &CompactParams) -> Result<CompactScheme, BuildError> {
    let n = g.len();
    let k = params.k;
    let mode = params.mode;
    let topo = g.to_topology();
    let mut total = Metrics::new(n);
    let mut stages = StageLog::default();

    let (levels, sample_attempts) = sample_levels(n, k, params.seed);
    stages.push("level-sample", 0);
    let level_sizes: Vec<usize> = (0..k)
        .map(|l| levels.iter().filter(|&&lv| lv >= l).count())
        .collect();

    let ln_n = (n as f64).ln().max(1.0);
    let sigma_base =
        ((params.c * (n as f64).powf(1.0 / f64::from(k)) * ln_n).ceil() as usize).clamp(1, n);

    // One PDE run per level l, sources S_l, tags = membership in S_{l+1}.
    let mut routes = Vec::with_capacity(k as usize);
    let mut lists = Vec::with_capacity(k as usize);
    let mut per_level_rounds = Vec::with_capacity(k as usize);
    let mut horizons = Vec::with_capacity(k as usize);
    for l in 0..k {
        let sources = level_flags(&levels, l);
        let tags = if l + 1 < k {
            level_flags(&levels, l + 1)
        } else {
            vec![false; n]
        };
        let h = match params.horizon {
            HorizonMode::Lemma47 => {
                ((params.c * (n as f64).powf(f64::from(l + 1) / f64::from(k)) * ln_n).ceil() as u64)
                    .clamp(1, 2 * n as u64)
            }
            HorizonMode::Spd(spd) => spd.max(1),
        };
        let sigma = if l == k - 1 {
            sigma_base.max(level_sizes[l as usize])
        } else {
            sigma_base
        };
        horizons.push(h);
        let pde = run_pde(
            g,
            &sources,
            &tags,
            &PdeParams::new(h, sigma, params.eps)
                .with_threads(params.threads)
                .with_mode(mode),
        );
        per_level_rounds.push(pde.metrics.total.rounds);
        total.absorb(&pde.metrics.total);
        routes.push(pde.routes);
        lists.push(pde.lists);
    }
    for &r in &per_level_rounds {
        stages.push("pde-level", r);
    }

    // Pivots s'_l(v) for l in 1..=k-1: the first entry of v's level-l list
    // (all sources of run l are S_l, so the first entry is the closest).
    let mut pivots: Vec<Vec<(NodeId, u64)>> = Vec::with_capacity(k as usize - 1);
    for l in 1..k {
        let run = &lists[l as usize];
        let mut pv: Vec<(NodeId, u64)> = Vec::with_capacity(n);
        for v in g.nodes() {
            match run[v.index()].first() {
                Some(e) => pv.push((e.src, e.est)),
                None => return Err(BuildError::NoPivot { node: v, level: l }),
            }
        }
        pivots.push(pv);
    }
    stages.push("pivot-selection", 0);

    // Bunches: entries of the level-l list strictly below the level-(l+1)
    // pivot (by (est, src) order); the full list at the top level.
    let mut bunch_sizes = vec![0usize; n];
    for l in 0..k {
        let run = &lists[l as usize];
        for v in g.nodes() {
            let list = &run[v.index()];
            let cnt = if l + 1 < k {
                let cut = list.iter().find(|e| e.tag).map(|e| (e.est, e.src));
                match cut {
                    Some(c) => list.iter().take_while(|e| (e.est, e.src) < c).count(),
                    None => list.len(),
                }
            } else {
                list.len()
            };
            bunch_sizes[v.index()] += cnt;
        }
    }

    // Detection trees per pivot level; labels are the central DFS labels
    // of each TreeSet, validated by (and charged as) the distributed
    // labeling protocol in simulated builds.
    let mut trees = Vec::with_capacity(k as usize - 1);
    let mut tree_label_rounds = 0u64;
    for l in 1..k {
        let mut set = TreeSet::new();
        for v in g.nodes() {
            let (s, _) = pivots[(l - 1) as usize][v.index()];
            let chain = trace_chain(&routes[l as usize], &topo, v, s);
            set.add_chain(&chain);
        }
        set.build();
        let labeling = pipeline::label_trees(&topo, &set, mode);
        tree_label_rounds += labeling.rounds;
        total.absorb(&labeling);
        trees.push(set);
    }
    stages.push("tree-labels", tree_label_rounds);

    let labels: Vec<CompactLabel> = g
        .nodes()
        .map(|v| {
            let per: Vec<(NodeId, u64, u64)> = (1..k)
                .map(|l| {
                    let (s, d) = pivots[(l - 1) as usize][v.index()];
                    let dfs = trees[(l - 1) as usize].trees[&s]
                        .label(v)
                        .expect("node labeled in its pivot tree");
                    (s, d, dfs)
                })
                .collect();
            CompactLabel { id: v, pivots: per }
        })
        .collect();

    let metrics = CompactBuildMetrics {
        total_rounds: total.rounds,
        per_level_rounds,
        tree_label_rounds,
        total,
        level_sizes,
        sample_attempts,
        horizons,
        sigma: sigma_base,
        stages,
    };

    Ok(CompactScheme {
        topo,
        k,
        levels,
        routes: pde_core::tables::flatten_runs(&routes),
        bunch_sizes,
        trees,
        labels,
        metrics,
    })
}
