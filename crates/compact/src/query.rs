//! Stateless routing and distance queries for the compact hierarchy.
//!
//! The forwarding potential at node `x` for destination `w` is
//!
//! ```text
//! Φ(x) = min over levels l of:
//!          l = 0:        wd'_0(x, w)
//!          l ∈ 1..k−1:   wd'_l(x, s'_l(w)) + wd'_l(w, s'_l(w))
//! ```
//!
//! where the second summand comes from `w`'s label. Following the chosen
//! level's next-hop chain decreases Φ by at least the traversed edge
//! weight, so the walk reaches some pivot `s'_l(w)` (or `w` directly);
//! there, DFS-interval descent of `T_{s'_l(w)}` takes over (tree mode has
//! priority and is self-sustaining). Lemma 4.6 bounds the resulting
//! stretch by `4k−3+o(1)`.

use crate::hierarchy::CompactScheme;
use congest::NodeId;
use graphs::INF;
use routing::RoutingScheme;

impl CompactScheme {
    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> &crate::hierarchy::CompactLabel {
        &self.labels[v.index()]
    }

    /// The level-`l` potential option at `x` for destination `dest`:
    /// `(estimate, next hop)`.
    fn option(&self, x: NodeId, dest: NodeId, l: u32) -> Option<(u64, NodeId)> {
        if l == 0 {
            return self.routes[0]
                .get(x, dest)
                .map(|e| (e.est, self.topo.neighbor(x, e.port)));
        }
        let (pivot, d_w, _) = self.labels[dest.index()].pivots[(l - 1) as usize];
        if x == pivot {
            return None; // already there; tree mode handles descent
        }
        self.routes[l as usize]
            .get(x, pivot)
            .map(|e| (e.est.saturating_add(d_w), self.topo.neighbor(x, e.port)))
    }

    /// The source-grouped batch kernel behind
    /// `oracle::DistanceOracle::estimate_grouped`: answers
    /// `pairs[order[i]]` into `out[i]`, resolving the queried node's row
    /// cursor in each of the `k` level tables once per equal-source
    /// group. Computes exactly [`RoutingScheme::estimate`] per pair.
    pub fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let mut rows: Vec<pde_core::RowCursor<'_>> = Vec::with_capacity(self.routes.len());
        let mut start = 0usize;
        while start < order.len() {
            let end = pde_core::schedule::group_end(pairs, order, start);
            let x = pairs[order[start] as usize].0;
            rows.clear();
            rows.extend(self.routes.iter().map(|t| t.cursor(x)));
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                let dest = pairs[i as usize].1;
                if x == dest {
                    *slot = 0;
                    continue;
                }
                let mut best = rows[0].get(dest).map_or(INF, |e| e.est);
                for l in 1..self.k {
                    let (pivot, d_w, _) = self.labels[dest.index()].pivots[(l - 1) as usize];
                    let here = if x == pivot {
                        0
                    } else {
                        rows[l as usize].get(pivot).map_or(INF, |e| e.est)
                    };
                    best = best.min(here.saturating_add(d_w));
                }
                *slot = best;
            }
            start = end;
        }
    }
}

impl RoutingScheme for CompactScheme {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
        if x == dest {
            return None;
        }
        let label = &self.labels[dest.index()];
        // Tree mode: if x sits in some pivot tree of dest with dest in its
        // subtree, descend the cheapest such tree.
        let mut tree_best: Option<(u64, NodeId)> = None;
        for (i, &(pivot, d_w, dfs)) in label.pivots.iter().enumerate() {
            if let Some(tree) = self.trees[i].trees.get(&pivot) {
                if tree.in_subtree(x, dfs) {
                    if let Some(child) = tree.next_hop_down(x, dfs) {
                        if tree_best.is_none_or(|(b, _)| d_w < b) {
                            tree_best = Some((d_w, child));
                        }
                    }
                }
            }
        }
        if let Some((_, child)) = tree_best {
            return Some(child);
        }
        // Φ mode: the minimum over level options.
        let mut best: Option<(u64, NodeId)> = None;
        for l in 0..self.k {
            if let Some((est, hop)) = self.option(x, dest, l) {
                if best.is_none_or(|(b, _)| est < b) {
                    best = Some((est, hop));
                }
            }
        }
        best.map(|(_, hop)| hop)
    }

    fn estimate(&self, x: NodeId, dest: NodeId) -> u64 {
        if x == dest {
            return 0;
        }
        // Estimate-only reduction: same level options as `option`, but
        // without resolving next hops — the minimum is independent of the
        // hop tie-break, so no per-level `Topology` loads.
        let mut best = self.routes[0].get(x, dest).map_or(INF, |e| e.est);
        for l in 1..self.k {
            let (pivot, d_w, _) = self.labels[dest.index()].pivots[(l - 1) as usize];
            // If x *is* the level-l pivot of dest, the estimate is the
            // label distance itself.
            let here = if x == pivot {
                0
            } else {
                self.routes[l as usize].get(x, pivot).map_or(INF, |e| e.est)
            };
            best = best.min(here.saturating_add(d_w));
        }
        best
    }

    fn label_bits(&self, v: NodeId) -> usize {
        self.labels[v.index()].bits(self.labels.len())
    }

    fn table_entries(&self, v: NodeId) -> usize {
        // Paper-sized tables: bunches plus per-tree interval rows.
        let tree_rows: usize = self
            .trees
            .iter()
            .flat_map(|set| set.trees.values())
            .filter_map(|t| t.children.get(&v).map(|ch| 1 + ch.len()))
            .sum();
        self.bunch_sizes[v.index()] + tree_rows
    }
}

#[cfg(test)]
mod tests {
    use crate::hierarchy::{build_hierarchy, CompactParams};
    use graphs::gen::{self, Weights};
    use graphs::Seed;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use routing::RoutingScheme;

    #[test]
    fn self_queries_are_trivial() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::gnp_connected(20, 0.2, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
        let scheme = build_hierarchy(&g, &CompactParams::new(2));
        for v in g.nodes() {
            assert_eq!(scheme.next_hop(v, v), None);
            assert_eq!(scheme.estimate(v, v), 0);
        }
    }

    #[test]
    fn labels_have_k_minus_1_pivots() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
        for k in [1u32, 2, 3] {
            let mut p = CompactParams::new(k);
            p.seed = Seed(99);
            let scheme = build_hierarchy(&g, &p);
            for v in g.nodes() {
                assert_eq!(scheme.label(v).pivots.len(), (k - 1) as usize);
            }
        }
    }
}
