//! Compact routing via approximate Thorup–Zwick hierarchies — Section 4.3
//! of the PODC 2015 paper.
//!
//! Implements three constructions:
//!
//! * [`build_hierarchy`] — the per-level construction of Lemma 4.7 /
//!   Theorem 4.8: `k` sample levels `S_0 ⊇ S_1 ⊇ … ⊇ S_{k−1}` (geometric,
//!   `Pr[level ≥ l] = n^{−l/k}`), one PDE pass per level with horizon
//!   `h_{l+1} = Θ(n^{(l+1)/k} log n)` (or `h = SPD`, Theorem 4.8), bunches
//!   `S'_l(v)`, pivots `s'_l(v)`, detection trees and tree labels. Tables
//!   are `Õ(n^{1/k})`, labels `O(k log n)` bits, stretch `4k−3+o(1)`.
//! * [`build_truncated`] — Theorem 4.13: levels `≥ l0` are "short
//!   circuited" by simulating PDE on the level-`l0` skeleton graph
//!   `G̃(l0)` (Definition 4.9), pipelining every simulated round's
//!   messages over a BFS tree (Lemma 4.12); costs
//!   `Õ(n^{l0/k} + n^{(k−l0)/k}·D)` rounds.
//! * [`build_driver`] — Corollary 4.14: chooses `l0` from `D` and falls
//!   back to "broadcast `G̃(l0)` and solve locally" when that is cheaper,
//!   for `Õ(min{(Dn)^{1/2}·n^{1/k}, n^{2/3+2/(3k)}} + D)` rounds.
//!
//! All three produce a [`CompactScheme`] implementing
//! [`routing::RoutingScheme`], so the shared evaluator measures their
//! stretch/table/label trade-offs (experiments E5, E6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod hierarchy;
pub mod levels;
pub mod query;
pub mod snapshot;
pub mod truncated;

pub use driver::{build_driver, DriverChoice};
pub use hierarchy::{
    build_hierarchy, try_build_hierarchy, CompactBuildMetrics, CompactLabel, CompactParams,
    CompactScheme, HorizonMode,
};
pub use pde_core::pipeline::BuildError;
pub use pde_core::BuildMode;
pub use truncated::{
    build_truncated, try_build_truncated, TruncLabel, TruncatedMetrics, TruncatedScheme, UpperMode,
    UpperPivot,
};
