//! Geometric level sampling for the Thorup–Zwick hierarchy.
//!
//! The samplers live in the shared build pipeline
//! ([`pde_core::pipeline`]) so every scheme draws its levels the same
//! way; this module re-exports them under their historical paths.

pub use pde_core::pipeline::{level_flags, level_set, sample_levels};

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::Seed;

    #[test]
    fn top_level_nonempty() {
        for s in 0..20u64 {
            let (levels, _) = sample_levels(50, 3, Seed(4).derive(s));
            assert!(!level_set(&levels, 2).is_empty());
        }
    }

    #[test]
    fn set_sizes_shrink_geometrically() {
        let (levels, _) = sample_levels(10_000, 2, Seed(5));
        let s1 = level_set(&levels, 1).len();
        // E[|S_1|] = 10000^{1/2} = 100.
        assert!((40..=220).contains(&s1), "|S_1| = {s1} far from 100");
    }

    #[test]
    fn k1_is_trivial() {
        let (levels, attempts) = sample_levels(10, 1, Seed(6));
        assert!(levels.iter().all(|&l| l == 0));
        assert_eq!(attempts, 1);
        assert_eq!(level_flags(&levels, 0), vec![true; 10]);
    }
}
