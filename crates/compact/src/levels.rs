//! Geometric level sampling for the Thorup–Zwick hierarchy.

use congest::NodeId;
use graphs::Seed;
use rand::Rng;

/// Samples a level for every node: `Pr[level(v) ≥ l] = n^{−l/k}` for
/// `l ∈ {0, …, k−1}` (Section 4.3, step 1), retrying with fresh coins
/// until the top set `S_{k−1}` is nonempty (the paper conditions on this
/// w.h.p. event). The coins come from `seed`'s own stream, so the levels
/// are a pure function of `(n, k, seed)`.
///
/// Returns `(levels, attempts)`.
///
/// # Panics
///
/// Panics if `k == 0` or after 1000 failed attempts.
pub fn sample_levels(n: usize, k: u32, seed: Seed) -> (Vec<u32>, u32) {
    assert!(k >= 1, "k must be ≥ 1");
    let mut rng = seed.rng();
    let p = (n as f64).powf(-1.0 / f64::from(k));
    for attempt in 1..=1000 {
        let levels: Vec<u32> = (0..n)
            .map(|_| {
                let mut l = 0;
                while l < k - 1 && rng.random_bool(p) {
                    l += 1;
                }
                l
            })
            .collect();
        if k == 1 || levels.iter().any(|&l| l == k - 1) {
            return (levels, attempt);
        }
    }
    panic!("level sampling failed 1000 times (n={n}, k={k})");
}

/// The member list of `S_l` given per-node levels.
pub fn level_set(levels: &[u32], l: u32) -> Vec<NodeId> {
    levels
        .iter()
        .enumerate()
        .filter(|&(_, &lv)| lv >= l)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// Membership flags for `S_l`.
pub fn level_flags(levels: &[u32], l: u32) -> Vec<bool> {
    levels.iter().map(|&lv| lv >= l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_nested() {
        let (levels, _) = sample_levels(200, 4, Seed(3));
        for l in 1..4 {
            let upper = level_set(&levels, l);
            let lower = level_set(&levels, l - 1);
            assert!(
                upper.iter().all(|v| lower.contains(v)),
                "S_{l} ⊄ S_{}",
                l - 1
            );
        }
        assert_eq!(level_set(&levels, 0).len(), 200);
    }

    #[test]
    fn top_level_nonempty() {
        for s in 0..20u64 {
            let (levels, _) = sample_levels(50, 3, Seed(4).derive(s));
            assert!(!level_set(&levels, 2).is_empty());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (a, _) = sample_levels(100, 3, Seed(11));
        let (b, _) = sample_levels(100, 3, Seed(11));
        assert_eq!(a, b);
    }

    #[test]
    fn set_sizes_shrink_geometrically() {
        let (levels, _) = sample_levels(10_000, 2, Seed(5));
        let s1 = level_set(&levels, 1).len();
        // E[|S_1|] = 10000^{1/2} = 100.
        assert!((40..=220).contains(&s1), "|S_1| = {s1} far from 100");
    }

    #[test]
    fn k1_is_trivial() {
        let (levels, attempts) = sample_levels(10, 1, Seed(6));
        assert!(levels.iter().all(|&l| l == 0));
        assert_eq!(attempts, 1);
    }
}
