//! Incremental repair: rebuild only what a [`GraphDelta`] touched, with
//! a byte-identity proof obligation.
//!
//! [`OracleBuilder::repair`] takes the graph an oracle was built on, the
//! built oracle, and one delta, and produces an oracle for the mutated
//! graph whose [`crate::Oracle::artifact_bytes`] are **byte-identical**
//! to a from-scratch build — for every backend (pinned by
//! `tests/dynamic_repair.rs` and the `dynamic --smoke` CI step). How
//! much work that takes depends on how the backend's artifact couples to
//! the graph:
//!
//! * **Matrix backends** ([`Backend::Flooding`],
//!   [`Backend::BellmanFord`]) store one exact row per source, and a row
//!   is a pure function of the graph alone. A raised or removed edge
//!   `{x, y}` is classified per source `s` from the **old** row in
//!   `O(deg)` (see `classify_row`): non-tight rows are bit-identical
//!   and kept; a tight row whose far endpoint keeps an *alternative*
//!   tight predecessor keeps all its distances (every shortest path
//!   survives by prefix replacement) and at most re-derives its
//!   first hops from the kept distances
//!   ([`graphs::algo::first_hops_from_dist`]) — and only when the
//!   stored row shows the canonical tree actually entered `y` across
//!   the edge; only rows whose distances truly change rerun the per-row
//!   Dijkstra kernel ([`graphs::algo::sssp_with_first_hops`]). Identity
//!   holds by construction (same kernels, pinned derivations), and a
//!   single-edge repair touches a small fraction of rows instead of the
//!   ~half a coarse tightness test would — [`RepairKind::Incremental`]
//!   reports the ratio.
//! * **Sampling-coupled schemes** (PDE, ApproxApsp, RTC, Compact,
//!   Truncated, ExactTz) key their skeleton/level samples and ladder
//!   stages on node ids and the global seed; a delta invalidates rungs
//!   globally, and per-rung per-source state is exactly what the
//!   compact artifact does *not* store. Repair for these is an honest
//!   staged rebuild through the same pipeline
//!   ([`RepairKind::Rebuilt`] names the reason) — still through one
//!   entry point, so callers measure instead of guessing.
//! * **Node failure** renumbers the id space (dense `0..n` ids are
//!   load-bearing in every artifact), which reshuffles every id-keyed
//!   sample: node deltas rebuild on all backends.
//!
//! The repaired oracle is computed natively (artifacts are mode- and
//! thread-invariant, so this changes no bytes) and its volatile metrics
//! are those of a native build, exactly like a fresh
//! [`OracleBuilder::build`] in the builder's configuration.

use crate::backends::{self, Inner};
use crate::{Backend, BuildError, DistanceOracle, Oracle, OracleBuilder};
use graphs::{DeltaError, GraphDelta, NodeId, WGraph};
use std::fmt;
use std::time::Instant;

/// How a repair was carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairKind {
    /// Only the affected source rows were recomputed.
    Incremental {
        /// Rows actually recomputed.
        rows_recomputed: usize,
        /// Total rows in the artifact (`n`).
        rows_total: usize,
    },
    /// The backend's artifact couples globally to the graph; the repair
    /// ran the full staged rebuild.
    Rebuilt {
        /// Why incremental repair does not apply.
        reason: &'static str,
    },
}

impl RepairKind {
    /// Short tag for tables (`"incremental"` / `"rebuilt"`).
    pub fn tag(&self) -> &'static str {
        match self {
            RepairKind::Incremental { .. } => "incremental",
            RepairKind::Rebuilt { .. } => "rebuilt",
        }
    }
}

/// What a repair did and what it cost.
#[derive(Clone, Copy, Debug)]
pub struct RepairReport {
    /// The repaired backend.
    pub backend: Backend,
    /// The delta that was applied.
    pub delta: GraphDelta,
    /// Incremental or rebuilt, with the per-kind detail.
    pub kind: RepairKind,
    /// Wall-clock repair time (delta application + recompute).
    pub repair_nanos: u64,
}

/// A successful repair: the oracle for the mutated graph, the mutated
/// graph itself (callers need it for the *next* delta), and the report.
#[derive(Debug)]
pub struct Repaired {
    /// The repaired oracle (byte-identical to a from-scratch build on
    /// [`Repaired::graph`]).
    pub oracle: Oracle,
    /// The mutated graph.
    pub graph: WGraph,
    /// What happened.
    pub report: RepairReport,
}

/// Why a repair failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The delta does not apply to the graph (unknown edge/node, zero
    /// weight, would disconnect).
    Delta(DeltaError),
    /// Rebuilding on the mutated graph failed.
    Build(BuildError),
    /// The oracle was built by a different backend than this builder
    /// configures — the repair would silently change schemes.
    BackendMismatch {
        /// The builder's backend.
        expected: Backend,
        /// The oracle's backend.
        got: Backend,
    },
    /// The oracle covers a different node count than the given graph —
    /// it cannot have been built on it.
    GraphMismatch {
        /// Nodes covered by the oracle.
        oracle_nodes: usize,
        /// Nodes in the supplied graph.
        graph_nodes: usize,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Delta(e) => write!(f, "delta rejected: {e}"),
            RepairError::Build(e) => write!(f, "rebuild on mutated graph failed: {e}"),
            RepairError::BackendMismatch { expected, got } => {
                write!(f, "builder configures {expected} but the oracle is {got}")
            }
            RepairError::GraphMismatch {
                oracle_nodes,
                graph_nodes,
            } => write!(
                f,
                "oracle covers {oracle_nodes} nodes, graph has {graph_nodes}"
            ),
        }
    }
}

impl std::error::Error for RepairError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepairError::Delta(e) => Some(e),
            RepairError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeltaError> for RepairError {
    fn from(e: DeltaError) -> Self {
        RepairError::Delta(e)
    }
}

impl From<BuildError> for RepairError {
    fn from(e: BuildError) -> Self {
        RepairError::Build(e)
    }
}

/// How one source row reacts to an edge transition `w_old → w_new` on
/// `{a, b}` (`w_new = u64::MAX` for a removal).
enum RowFix {
    /// Bit-identical: keep the stored row.
    Keep,
    /// Distances survive, but the canonical shortest-path tree entered
    /// `y` across the edge: re-derive the first hops from the kept
    /// distances (only entries at distance ≥ `wd(s, y)` can move).
    Rederive {
        /// The far endpoint of the tight direction.
        y: NodeId,
    },
    /// Distances change. `Some(y)` when the raise/removal left `y`
    /// without a tight predecessor, so the decremental patch applies;
    /// `None` (weight decreases) reruns the full per-row kernel.
    Recompute {
        /// The far endpoint, when the decremental patch applies.
        y: Option<NodeId>,
    },
}

/// One edge transition `w_old → w_new` on `{a, b}` (`w_new = u64::MAX`
/// encodes a removal), shared by every row classification of a repair.
#[derive(Clone, Copy)]
struct EdgeTransition {
    a: NodeId,
    b: NodeId,
    w_old: u64,
    w_new: u64,
}

/// Classifies one source row exactly (up to a sound over-approximation
/// on the rare branches), from the stored row alone:
///
/// * A raised or removed edge matters only if it was *tight* from `s`
///   (`wd(s,x) + w_old = wd(s,y)`; the edge itself forces
///   `|da − db| ≤ w_old`, so with weights ≥ 1 at most one direction is
///   tight). Non-tight rows are bit-identical.
/// * If `y` keeps **no other tight predecessor**, every shortest
///   `s → y` path crossed the edge and the distance row changes:
///   recompute. Conversely, an alternative tight predecessor `v`
///   certifies that no shortest path *to v* can cross the edge (any
///   path through `y` is already longer than `wd(s,v) < wd(s,y)`), so
///   every distance survives by prefix replacement — an `O(deg y)`
///   scan, exact where the old `da + w ≤ db` test was satisfied by
///   roughly half the rows of a unit-weight graph.
/// * With distances unchanged, `hops`/`parent` (and hence the stored
///   first-hop row) can only move if the canonical tree entered `y`
///   across the edge, i.e. `parent[y] = x`. On a **unit-weight** graph
///   that is decidable exactly from the row: `hops ≡ dist`, so every
///   tight predecessor is a minimum-hop candidate and the canonical
///   parent is the minimum-id tight predecessor — `parent[y] = x` iff
///   `x` has the smallest id among `y`'s tight predecessors. With
///   general weights the candidate hops are unknown and the test falls
///   back to the necessary condition `next[y] = next[x]` (or
///   `next[y] = y` when `x = s`), a sound over-approximation. Rows
///   failing the test are bit-identical; rows passing it re-derive the
///   first hops from the kept distances. Backends that store no first
///   hops skip this tier entirely.
/// * Weight decreases fall back to the coarse tightness test on the new
///   weight (the benchmark and repair fast paths are raises/removals).
///
/// Rows whose distances *do* change are patched decrementally
/// ([`patch_dist_row`]): only the vertices that lost every shortest path
/// re-enter a (small) Dijkstra, seeded from their unaffected neighbors.
fn classify_row(
    g_old: &WGraph,
    dist: &[u64],
    next: Option<&[u32]>,
    unit_weights: bool,
    s: u32,
    edge: EdgeTransition,
) -> RowFix {
    let EdgeTransition { a, b, w_old, w_new } = edge;
    let (da, db) = (dist[a.index()], dist[b.index()]);
    if w_new < w_old {
        return if da.saturating_add(w_new) <= db || db.saturating_add(w_new) <= da {
            RowFix::Recompute { y: None }
        } else {
            RowFix::Keep
        };
    }
    let (x, y) = if da.saturating_add(w_old) == db {
        (a, b)
    } else if db.saturating_add(w_old) == da {
        (b, a)
    } else {
        return RowFix::Keep;
    };
    let dy = dist[y.index()];
    let mut min_tight_pred = u32::MAX;
    let mut has_alternative = false;
    for (v, w) in g_old.neighbors(y) {
        if dist[v.index()].saturating_add(w) == dy {
            min_tight_pred = min_tight_pred.min(v.0);
            has_alternative |= v != x;
        }
    }
    if !has_alternative {
        return RowFix::Recompute { y: Some(y) };
    }
    match next {
        None => RowFix::Keep,
        Some(next) => {
            let tree_entered_via_edge = if unit_weights {
                min_tight_pred == x.0
            } else {
                let expected = if x.0 == s { y.0 } else { next[x.index()] };
                next[y.index()] == expected
            };
            if tree_entered_via_edge {
                RowFix::Rederive { y }
            } else {
                RowFix::Keep
            }
        }
    }
}

/// The reachable vertices at distance ≥ `dmin`, in nondecreasing
/// distance order (counting sort over the small ranges bounded weights
/// produce; comparison sort otherwise).
fn tail_by_distance(dist: &[u64], dmin: u64) -> Vec<u32> {
    let mut tail: Vec<u32> = (0..dist.len() as u32)
        .filter(|&v| {
            let d = dist[v as usize];
            d >= dmin && d != graphs::INF
        })
        .collect();
    let span = tail
        .iter()
        .map(|&v| dist[v as usize] - dmin)
        .max()
        .unwrap_or(0);
    if span < 4 * dist.len() as u64 {
        let mut start = vec![0u32; span as usize + 2];
        for &v in &tail {
            start[(dist[v as usize] - dmin) as usize + 1] += 1;
        }
        for i in 1..start.len() {
            start[i] += start[i - 1];
        }
        let mut out = vec![0u32; tail.len()];
        for &v in &tail {
            let slot = &mut start[(dist[v as usize] - dmin) as usize];
            out[*slot as usize] = v;
            *slot += 1;
        }
        out
    } else {
        tail.sort_unstable_by_key(|&v| dist[v as usize]);
        tail
    }
}

/// Exact decremental patch of one distance row, in place, after a raise
/// or removal of a tight edge `x → y` that left `y` with no alternative
/// tight predecessor (so `wd(s, y)` strictly grows).
///
/// Phase 1 walks the row's tail in old-distance order and marks the
/// *affected* vertices — those whose every tight predecessor is itself
/// affected, seeded by `y`; exactly these lose all their shortest paths
/// to the change (an unaffected tight predecessor certifies a surviving
/// path by prefix replacement). An affected vertex sits within
/// `w_max_old` of the last one, so the walk stops early once the
/// frontier goes quiet. Phase 2 reseeds every affected vertex from its
/// unaffected neighbors in the *new* graph (which reintroduces a merely
/// raised edge at its new weight) and runs Dijkstra restricted to the
/// affected set — unaffected distances are already final.
fn patch_dist_row(g_new: &WGraph, g_old: &WGraph, dist: &mut [u64], y: NodeId, w_max_old: u64) {
    let dy = dist[y.index()];
    let tail = tail_by_distance(dist, dy);
    let n = dist.len();
    let mut affected = vec![false; n];
    affected[y.index()] = true;
    let mut aff_list = vec![y.0];
    let mut last_affected = dy;
    for &vi in &tail {
        let v = NodeId(vi);
        if v == y {
            continue;
        }
        let dv = dist[v.index()];
        if dv > last_affected.saturating_add(w_max_old) {
            break;
        }
        if dv == dy {
            continue; // tight predecessors sit strictly below dy
        }
        let all_affected = g_old
            .neighbors(v)
            .filter(|&(p, w)| dist[p.index()].saturating_add(w) == dv)
            .all(|(p, _)| affected[p.index()]);
        if all_affected {
            affected[v.index()] = true;
            aff_list.push(vi);
            last_affected = dv;
        }
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        std::collections::BinaryHeap::new();
    for &vi in &aff_list {
        let v = NodeId(vi);
        let mut seed = u64::MAX;
        for (p, w) in g_new.neighbors(v) {
            if !affected[p.index()] {
                seed = seed.min(dist[p.index()].saturating_add(w));
            }
        }
        dist[v.index()] = seed;
        if seed != u64::MAX {
            heap.push(std::cmp::Reverse((seed, vi)));
        }
    }
    let mut done = vec![false; n];
    while let Some(std::cmp::Reverse((d, vi))) = heap.pop() {
        let v = NodeId(vi);
        if done[v.index()] || d > dist[v.index()] {
            continue;
        }
        done[v.index()] = true;
        for (u, w) in g_new.neighbors(v) {
            if affected[u.index()] && !done[u.index()] {
                let nd = d.saturating_add(w);
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    heap.push(std::cmp::Reverse((nd, u.0)));
                }
            }
        }
    }
}

/// Unit-weight tail re-derivation of a first-hop row: with `hops ≡
/// dist` the canonical parent of every vertex is its minimum-id tight
/// predecessor, and entries below `dmin` keep their stored value (their
/// canonical paths never leave the unchanged prefix of the row). The
/// `dist` row must already be the new one.
fn patch_next_row_unit(g_new: &WGraph, s: u32, dist: &[u64], next: &mut [u32], dmin: u64) {
    let tail = tail_by_distance(dist, dmin);
    for &vi in &tail {
        if vi == s {
            continue;
        }
        let v = NodeId(vi);
        let dv = dist[v.index()];
        let mut parent = u32::MAX;
        for (p, w) in g_new.neighbors(v) {
            if dist[p.index()].saturating_add(w) == dv {
                parent = parent.min(p.0);
            }
        }
        next[v.index()] = if parent == s {
            vi
        } else {
            next[parent as usize]
        };
    }
}

/// The reason tag for sampling-coupled backends.
const REASON_SAMPLED: &str = "id/seed-keyed sampling couples the artifact globally";
/// The reason tag for node deltas.
const REASON_RENUMBER: &str = "node failure renumbers ids; every sample reshuffles";

impl OracleBuilder {
    /// Repairs `prev` — built by this builder's recipe on `g_old` — into
    /// an oracle for `g_old` with `delta` applied.
    ///
    /// The result's [`crate::Oracle::artifact_bytes`] are byte-identical
    /// to `self.build(&g_old.apply_delta(delta)?)`; see the
    /// [module docs](self) for which backends get true incremental
    /// repair and which fall back to a staged rebuild (the
    /// [`RepairReport`] says which happened and what it cost).
    ///
    /// # Errors
    ///
    /// [`RepairError::Delta`] when the delta does not apply,
    /// [`RepairError::Build`] when the rebuild path fails on the mutated
    /// graph, and the mismatch variants when `prev` was not built by
    /// this backend on a graph of this size.
    pub fn repair(
        &self,
        g_old: &WGraph,
        prev: &Oracle,
        delta: &GraphDelta,
    ) -> Result<Repaired, RepairError> {
        if prev.backend() != self.backend() {
            return Err(RepairError::BackendMismatch {
                expected: self.backend(),
                got: prev.backend(),
            });
        }
        if prev.len() != g_old.len() {
            return Err(RepairError::GraphMismatch {
                oracle_nodes: prev.len(),
                graph_nodes: g_old.len(),
            });
        }
        let start = Instant::now();
        let g_new = g_old.apply_delta(delta)?;
        let (inner, kind) = match (&prev.inner, delta) {
            // Node failure renumbers ids: full rebuild on every backend.
            (_, GraphDelta::FailNode { .. }) => (
                build_fresh(self, &g_new)?,
                RepairKind::Rebuilt {
                    reason: REASON_RENUMBER,
                },
            ),
            (Inner::Flood(prev), _) => {
                let (repaired, rows) = repair_flood(prev, g_old, &g_new, delta);
                (
                    Inner::Flood(repaired),
                    RepairKind::Incremental {
                        rows_recomputed: rows,
                        rows_total: g_new.len(),
                    },
                )
            }
            (Inner::Bf(prev), _) => {
                let (repaired, rows) = repair_bf(prev, g_old, &g_new, delta);
                (
                    Inner::Bf(repaired),
                    RepairKind::Incremental {
                        rows_recomputed: rows,
                        rows_total: g_new.len(),
                    },
                )
            }
            _ => (
                build_fresh(self, &g_new)?,
                RepairKind::Rebuilt {
                    reason: REASON_SAMPLED,
                },
            ),
        };
        let mut inner = inner;
        let repair_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        backends::set_build_nanos(&mut inner, repair_nanos);
        Ok(Repaired {
            oracle: Oracle { inner },
            graph: g_new,
            report: RepairReport {
                backend: self.backend(),
                delta: *delta,
                kind,
                repair_nanos,
            },
        })
    }
}

/// The rebuild fallback: a fresh native build through the staged
/// pipeline (artifacts are mode-invariant, so forcing native changes no
/// bytes — only the volatile round/message metrics, which the canonical
/// stream zeroes anyway).
fn build_fresh(b: &OracleBuilder, g_new: &WGraph) -> Result<Inner, BuildError> {
    backends::build_inner(&b.clone().build_mode(crate::BuildMode::Native), g_new)
}

/// The changed edge as an [`EdgeTransition`], with `w_new = u64::MAX`
/// for a removal. Only called for edge deltas.
fn edge_transition(g_old: &WGraph, delta: &GraphDelta) -> EdgeTransition {
    match *delta {
        GraphDelta::SetWeight { u, v, w } => {
            let w_old = g_old.edge_weight(u, v).expect("validated by apply_delta");
            EdgeTransition {
                a: u,
                b: v,
                w_old,
                w_new: w,
            }
        }
        GraphDelta::FailEdge { u, v } => {
            let w_old = g_old.edge_weight(u, v).expect("validated by apply_delta");
            EdgeTransition {
                a: u,
                b: v,
                w_old,
                w_new: u64::MAX,
            }
        }
        GraphDelta::FailNode { .. } => unreachable!("node deltas always rebuild"),
    }
}

fn repair_flood(
    prev: &crate::FloodOracle,
    g_old: &WGraph,
    g_new: &WGraph,
    delta: &GraphDelta,
) -> (crate::FloodOracle, usize) {
    let n = g_new.len();
    let edge = edge_transition(g_old, delta);
    let unit_old = g_old.max_weight() == 1;
    let unit_new = g_new.max_weight() == 1;
    let w_max_old = g_old.max_weight();
    let mut dist = prev.dist.clone();
    let mut next = prev.next.clone();
    let mut rows = 0;
    for s in 0..n {
        let row = s * n..(s + 1) * n;
        let fix = classify_row(
            g_old,
            &dist[row.clone()],
            Some(&next[row.clone()]),
            unit_old,
            s as u32,
            edge,
        );
        match fix {
            RowFix::Keep => {}
            RowFix::Rederive { y } => {
                rows += 1;
                let dmin = dist[row.start + y.index()];
                if unit_new {
                    patch_next_row_unit(g_new, s as u32, &dist[row.clone()], &mut next[row], dmin);
                } else {
                    let hops = graphs::algo::first_hops_from_dist(
                        g_new,
                        NodeId(s as u32),
                        &dist[row.clone()],
                    );
                    next[row].copy_from_slice(&hops);
                }
            }
            RowFix::Recompute { y: Some(y) } => {
                rows += 1;
                let dmin = dist[row.start + y.index()];
                patch_dist_row(g_new, g_old, &mut dist[row.clone()], y, w_max_old);
                if unit_new {
                    patch_next_row_unit(g_new, s as u32, &dist[row.clone()], &mut next[row], dmin);
                } else {
                    let hops = graphs::algo::first_hops_from_dist(
                        g_new,
                        NodeId(s as u32),
                        &dist[row.clone()],
                    );
                    next[row].copy_from_slice(&hops);
                }
            }
            RowFix::Recompute { y: None } => {
                rows += 1;
                let (sssp, hop_row) = graphs::algo::sssp_with_first_hops(g_new, NodeId(s as u32));
                dist[row.clone()].copy_from_slice(&sssp.dist);
                next[row].copy_from_slice(&hop_row);
            }
        }
    }
    let repaired = crate::FloodOracle {
        g: g_new.clone(),
        topo: g_new.to_topology(),
        dist,
        next,
        lsdb_edges: g_new.num_edges(),
        metrics: backends::metrics(Backend::Flooding, n, 0, 0),
    };
    (repaired, rows)
}

fn repair_bf(
    prev: &crate::BfOracle,
    g_old: &WGraph,
    g_new: &WGraph,
    delta: &GraphDelta,
) -> (crate::BfOracle, usize) {
    let n = g_new.len();
    let edge = edge_transition(g_old, delta);
    let w_max_old = g_old.max_weight();
    let mut dist = prev.dist.clone();
    let mut rows = 0;
    for s in 0..n {
        let row = s * n..(s + 1) * n;
        // Distance-only artifact: the `Rederive` tier cannot arise.
        let fix = classify_row(g_old, &dist[row.clone()], None, false, s as u32, edge);
        match fix {
            RowFix::Recompute { y: Some(y) } => {
                rows += 1;
                patch_dist_row(g_new, g_old, &mut dist[row], y, w_max_old);
            }
            RowFix::Recompute { y: None } => {
                rows += 1;
                let sssp = graphs::algo::dijkstra(g_new, NodeId(s as u32));
                dist[row].copy_from_slice(&sssp.dist);
            }
            RowFix::Keep | RowFix::Rederive { .. } => {}
        }
    }
    let repaired = crate::BfOracle {
        n,
        dist,
        metrics: backends::metrics(Backend::BellmanFord, n, 0, 0),
    };
    (repaired, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph() -> WGraph {
        let mut rng = SmallRng::seed_from_u64(11);
        gen::gnp_connected(24, 0.18, Weights::Uniform { lo: 1, hi: 9 }, &mut rng)
    }

    /// A non-bridge edge of `g` (one whose removal keeps connectivity).
    fn removable_edge(g: &WGraph) -> (NodeId, NodeId) {
        for &(u, v, _) in g.edges() {
            let d = GraphDelta::FailEdge {
                u: NodeId(u),
                v: NodeId(v),
            };
            if g.apply_delta(&d).is_ok() {
                return (NodeId(u), NodeId(v));
            }
        }
        panic!("graph has only bridges");
    }

    fn assert_identity(backend: Backend, delta: GraphDelta) {
        let g = test_graph();
        let builder = OracleBuilder::new(backend);
        let prev = builder.build(&g);
        let repaired = builder.repair(&g, &prev, &delta).expect("repair");
        let fresh = builder.build(&g.apply_delta(&delta).unwrap());
        assert_eq!(
            repaired.oracle.artifact_bytes(),
            fresh.artifact_bytes(),
            "{backend}: repair({delta}) diverged from a from-scratch build"
        );
    }

    #[test]
    fn flooding_set_weight_is_incremental_and_identical() {
        let g = test_graph();
        let &(u, v, w) = &g.edges()[0];
        let delta = GraphDelta::SetWeight {
            u: NodeId(u),
            v: NodeId(v),
            w: w + 3,
        };
        let builder = OracleBuilder::new(Backend::Flooding);
        let prev = builder.build(&g);
        let repaired = builder.repair(&g, &prev, &delta).unwrap();
        match repaired.report.kind {
            RepairKind::Incremental {
                rows_recomputed,
                rows_total,
            } => assert!(rows_recomputed <= rows_total),
            RepairKind::Rebuilt { .. } => panic!("flooding edge delta must be incremental"),
        }
        assert_identity(Backend::Flooding, delta);
    }

    #[test]
    fn bellman_ford_fail_edge_is_incremental_and_identical() {
        let g = test_graph();
        let (u, v) = removable_edge(&g);
        let delta = GraphDelta::FailEdge { u, v };
        assert_identity(Backend::BellmanFord, delta);
    }

    #[test]
    fn node_failure_rebuilds_everywhere() {
        let g = test_graph();
        // Find a removable node.
        let v = (0..g.len() as u32)
            .map(NodeId)
            .find(|&v| g.apply_delta(&GraphDelta::FailNode { v }).is_ok())
            .expect("some node is removable");
        let builder = OracleBuilder::new(Backend::Flooding);
        let prev = builder.build(&g);
        let repaired = builder
            .repair(&g, &prev, &GraphDelta::FailNode { v })
            .unwrap();
        assert!(matches!(repaired.report.kind, RepairKind::Rebuilt { .. }));
        assert_identity(Backend::Flooding, GraphDelta::FailNode { v });
    }

    #[test]
    fn mismatches_are_typed() {
        let g = test_graph();
        let flood = OracleBuilder::new(Backend::Flooding).build(&g);
        let err = OracleBuilder::new(Backend::BellmanFord)
            .repair(&g, &flood, &GraphDelta::FailNode { v: NodeId(0) })
            .unwrap_err();
        assert!(matches!(err, RepairError::BackendMismatch { .. }));

        let delta_err = OracleBuilder::new(Backend::Flooding)
            .repair(
                &g,
                &flood,
                &GraphDelta::SetWeight {
                    u: NodeId(0),
                    v: NodeId(0),
                    w: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(delta_err, RepairError::Delta(_)));
    }
}
