//! Oracle-generic evaluation: stretch percentiles, route validation and
//! measured query throughput for any [`DistanceOracle`].
//!
//! This is the successor of `routing::eval` (which remains the
//! scheme-level evaluator used inside the scheme crates): it works on the
//! unified trait object, so one report format covers every backend, and
//! it additionally measures the batch query path
//! ([`DistanceOracle::estimate_many`]) in queries per second.

use crate::{DistanceOracle, PairSelection, TracedRoute};
use congest::NodeId;
use graphs::algo::Apsp;
use graphs::{WGraph, INF};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Evaluation report for one oracle on one graph.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Pairs evaluated.
    pub pairs: usize,
    /// Pairs successfully routed (0 for estimate-only backends).
    pub routed: usize,
    /// Median estimate stretch (estimate / wd).
    pub p50_stretch: f64,
    /// 99th-percentile estimate stretch.
    pub p99_stretch: f64,
    /// Worst estimate stretch.
    pub max_estimate_stretch: f64,
    /// Worst routed stretch (route weight / wd); `NaN` when nothing
    /// routed.
    pub max_route_stretch: f64,
    /// Mean routed stretch; `NaN` when nothing routed.
    pub avg_route_stretch: f64,
    /// Longest route, in hops.
    pub max_route_hops: usize,
    /// Serialized artifact size in bits.
    pub size_bits: u64,
    /// Measured batch throughput of `estimate_many` on the pair list in
    /// its submitted (shuffled/sampled) order, in queries/second.
    pub queries_per_sec: f64,
    /// Measured batch throughput on a `(u, v)`-sorted copy of the same
    /// pair list — the grouped-kernel best case. Comparing against
    /// [`EvalReport::queries_per_sec`] shows how much of the schedule win
    /// survives when the batch arrives pre-shuffled (the sort itself is
    /// then the only extra work).
    pub queries_per_sec_sorted: f64,
    /// Failures (missing estimates, underestimates, broken routes).
    /// Tests assert this is empty.
    pub failures: Vec<String>,
}

/// Materializes the pair list for a selection.
pub(crate) fn pair_list(n: usize, pairs: PairSelection) -> Vec<(NodeId, NodeId)> {
    match pairs {
        PairSelection::All => (0..n as u32)
            .flat_map(|u| (0..n as u32).map(move |v| (NodeId(u), NodeId(v))))
            .filter(|(u, v)| u != v)
            .collect(),
        PairSelection::Sample { count, seed } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..count)
                .map(|_| {
                    let u = rng.random_range(0..n as u32);
                    let mut v = rng.random_range(0..n as u32);
                    while v == u {
                        v = rng.random_range(0..n as u32);
                    }
                    (NodeId(u), NodeId(v))
                })
                .collect()
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Evaluates `oracle` on the selected pairs against exact ground truth,
/// sequentially (`threads = 1`); see [`evaluate_with`].
pub fn evaluate(
    oracle: &dyn DistanceOracle,
    g: &WGraph,
    exact: &Apsp,
    pairs: PairSelection,
) -> EvalReport {
    evaluate_with(oracle, g, exact, pairs, 1)
}

/// Evaluates `oracle` on the selected pairs against exact ground truth.
///
/// Estimates are validated for soundness (never below `wd`) and coverage;
/// routes — when the backend routes at all — are traced through
/// [`DistanceOracle::route_into`] (one reused buffer, no per-pair
/// allocation) and validated for termination and weight soundness. Batch
/// throughput is measured by timing repeated
/// [`DistanceOracle::estimate_many_with`] sweeps over the pair list with
/// the given `threads` knob (`0` = auto, `1` = sequential); answers are
/// identical for every knob value, only the measured q/s changes.
pub fn evaluate_with(
    oracle: &dyn DistanceOracle,
    g: &WGraph,
    exact: &Apsp,
    pairs: PairSelection,
    threads: usize,
) -> EvalReport {
    let list = pair_list(g.len(), pairs);
    let mut failures = Vec::new();

    // --- Batch estimates (also the throughput measurement). ---
    let mut out = Vec::new();
    oracle.estimate_many_with(&list, &mut out, threads);
    let reps = (100_000 / list.len().max(1)).clamp(1, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        oracle.estimate_many_with(&list, &mut out, threads);
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let queries_per_sec = (reps * list.len()) as f64 / secs;

    // Grouped vs shuffled throughput: the same pairs pre-sorted by
    // (source, dest) — answers are order-independent, so only the
    // timing differs.
    let mut sorted_list = list.clone();
    sorted_list.sort_unstable_by_key(|&(u, v)| (u.0, v.0));
    let mut sorted_out = Vec::new();
    oracle.estimate_many_with(&sorted_list, &mut sorted_out, threads);
    let t0 = Instant::now();
    for _ in 0..reps {
        oracle.estimate_many_with(&sorted_list, &mut sorted_out, threads);
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let queries_per_sec_sorted = (reps * sorted_list.len()) as f64 / secs;

    let mut est_stretch: Vec<f64> = Vec::with_capacity(list.len());
    for (&(u, v), &est) in list.iter().zip(&out) {
        let wd = exact.dist(u, v);
        debug_assert_ne!(wd, INF, "evaluation requires a connected graph");
        if est == INF {
            failures.push(format!("no estimate for ({u}, {v})"));
            continue;
        }
        if est < wd {
            failures.push(format!("estimate {est} below wd {wd} for ({u}, {v})"));
            continue;
        }
        est_stretch.push(est as f64 / wd as f64);
    }
    est_stretch.sort_unstable_by(f64::total_cmp);
    let max_estimate_stretch = est_stretch.last().copied().unwrap_or(f64::NAN);

    // --- Routes (skipped wholesale for estimate-only backends). ---
    let supports_routing = list.iter().any(|&(u, v)| oracle.next_hop(u, v).is_some());
    let mut routed = 0usize;
    let mut max_route_stretch = 0.0f64;
    let mut sum_route_stretch = 0.0f64;
    let mut max_route_hops = 0usize;
    if supports_routing {
        // One buffer for the whole sweep: route-heavy evaluation loops
        // must not allocate per query.
        let mut route = TracedRoute::default();
        for &(u, v) in &list {
            let wd = exact.dist(u, v);
            if !oracle.route_into(u, v, &mut route) {
                failures.push(format!("route failed for ({u}, {v})"));
                continue;
            }
            if route.nodes.last() != Some(&v) || route.ports.len() + 1 != route.nodes.len() {
                failures.push(format!("malformed route for ({u}, {v})"));
                continue;
            }
            if route.weight < wd {
                failures.push(format!(
                    "route weight {} below wd {wd} for ({u}, {v})",
                    route.weight
                ));
                continue;
            }
            let s = route.weight as f64 / wd as f64;
            max_route_stretch = max_route_stretch.max(s);
            sum_route_stretch += s;
            max_route_hops = max_route_hops.max(route.ports.len());
            routed += 1;
        }
    }

    EvalReport {
        pairs: list.len(),
        routed,
        p50_stretch: percentile(&est_stretch, 50.0),
        p99_stretch: percentile(&est_stretch, 99.0),
        max_estimate_stretch,
        max_route_stretch: if routed > 0 {
            max_route_stretch
        } else {
            f64::NAN
        },
        avg_route_stretch: if routed > 0 {
            sum_route_stretch / routed as f64
        } else {
            f64::NAN
        },
        max_route_hops,
        size_bits: oracle.size_bits(),
        queries_per_sec,
        queries_per_sec_sorted,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, OracleBuilder};
    use graphs::algo::apsp;
    use graphs::gen::{self, Weights};

    #[test]
    fn exact_backends_report_stretch_one() {
        let mut rng = graphs::Seed(5).rng();
        let g = gen::gnp_connected(16, 0.25, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let exact = apsp(&g);
        for backend in [Backend::Flooding, Backend::BellmanFord] {
            let o = OracleBuilder::new(backend).build(&g);
            let r = evaluate(&o, &g, &exact, PairSelection::All);
            assert!(r.failures.is_empty(), "{backend}: {:?}", r.failures);
            assert_eq!(r.pairs, 16 * 15);
            assert!((r.max_estimate_stretch - 1.0).abs() < 1e-12, "{backend}");
            assert!((r.p50_stretch - 1.0).abs() < 1e-12);
            assert!(r.queries_per_sec > 0.0);
            if backend == Backend::Flooding {
                assert_eq!(r.routed, r.pairs, "flooding routes every pair");
                assert!((r.max_route_stretch - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(r.routed, 0, "bellman-ford is estimate-only");
            }
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let mut rng = graphs::Seed(6).rng();
        let g = gen::gnp_connected(14, 0.3, Weights::Unit, &mut rng);
        let exact = apsp(&g);
        let o = OracleBuilder::new(Backend::ApproxApsp).build(&g);
        let sel = PairSelection::Sample { count: 40, seed: 9 };
        let a = evaluate(&o, &g, &exact, sel);
        let b = evaluate(&o, &g, &exact, sel);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.max_route_hops, b.max_route_hops);
        assert_eq!(a.p50_stretch, b.p50_stretch);
    }
}
