//! Failure-aware routing: a compact liveness mask plus a detour router
//! that survives dead edges and nodes.
//!
//! Between the moment a link dies and the moment a repaired oracle is
//! hot-swapped in, the artifact's `next_hop` tables still point at the
//! failed element. Rather than return dead paths during that window,
//! [`route_with_failover`] walks the graph with the oracle as its guide:
//! at every node it tries the artifact's primary next hop first, and
//! when that hop is masked dead (or already visited) it detours to the
//! live neighbor whose **oracle estimate** to the destination is
//! smallest — for the hierarchical schemes that estimate is exactly the
//! skeleton/tree distance, so the detour follows the hierarchy instead
//! of flooding blindly. A visited set makes the search a depth-first
//! walk over live nodes, which yields two guarantees by construction:
//!
//! * **Loop freedom** — the returned route is a simple path (every node
//!   appears at most once; the DFS never revisits).
//! * **Completeness** — if the destination is reachable in the masked
//!   graph at all, a route is found; [`FailoverOutcome::Unroutable`] is
//!   returned only when the failures genuinely partition source from
//!   destination (or the backend has no topology to walk —
//!   [`crate::Backend::BellmanFord`] is estimate-only).
//!
//! The stretch of a detour is bounded: a simple path has at most
//! `n − 1` hops, so its weight is at most `(n − 1) · w_max`; the
//! *measured* detour stretch against true masked-graph distances is
//! what `e14_dynamic` reports per backend. When nothing relevant is
//! masked the router follows the primary hops exactly and reports
//! [`FailoverOutcome::Primary`] — the guarantee degrades only where
//! failures force it to.
//!
//! [`LivenessMask`] is the compact failure record: one bit per node
//! plus a sorted list of packed dead-edge keys (8 bytes per failed
//! edge), so masking is `O(1)` / `O(log f)` and the mask for a healthy
//! graph is a few machine words regardless of `n`.

use crate::{DistanceOracle, TracedRoute};
use congest::NodeId;

/// Packs an undirected edge into one sortable `u64` key.
#[inline]
fn edge_key(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = (u.0.min(v.0), u.0.max(v.0));
    (u64::from(a) << 32) | u64::from(b)
}

/// A compact record of failed nodes and edges: a node bitset plus a
/// sorted set of packed edge keys. See the [module docs](self).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LivenessMask {
    n: usize,
    dead_nodes: Vec<u64>,
    dead_node_count: usize,
    dead_edges: Vec<u64>,
}

impl LivenessMask {
    /// An all-alive mask over `n` nodes.
    pub fn new(n: usize) -> Self {
        LivenessMask {
            n,
            dead_nodes: vec![0; n.div_ceil(64)],
            dead_node_count: 0,
            dead_edges: Vec::new(),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the mask covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` when nothing is masked dead.
    pub fn is_clear(&self) -> bool {
        self.dead_node_count == 0 && self.dead_edges.is_empty()
    }

    /// Number of failed nodes.
    pub fn failed_nodes(&self) -> usize {
        self.dead_node_count
    }

    /// Number of individually failed edges (edges incident to failed
    /// nodes are masked through the node, not counted here).
    pub fn failed_edges(&self) -> usize {
        self.dead_edges.len()
    }

    /// Marks node `v` dead (idempotent).
    pub fn fail_node(&mut self, v: NodeId) {
        let (w, b) = (v.index() / 64, v.index() % 64);
        if self.dead_nodes[w] & (1 << b) == 0 {
            self.dead_nodes[w] |= 1 << b;
            self.dead_node_count += 1;
        }
    }

    /// Marks node `v` alive again (idempotent).
    pub fn revive_node(&mut self, v: NodeId) {
        let (w, b) = (v.index() / 64, v.index() % 64);
        if self.dead_nodes[w] & (1 << b) != 0 {
            self.dead_nodes[w] &= !(1 << b);
            self.dead_node_count -= 1;
        }
    }

    /// Marks edge `{u, v}` dead (idempotent).
    pub fn fail_edge(&mut self, u: NodeId, v: NodeId) {
        let key = edge_key(u, v);
        if let Err(at) = self.dead_edges.binary_search(&key) {
            self.dead_edges.insert(at, key);
        }
    }

    /// Marks edge `{u, v}` alive again (idempotent).
    pub fn revive_edge(&mut self, u: NodeId, v: NodeId) {
        if let Ok(at) = self.dead_edges.binary_search(&edge_key(u, v)) {
            self.dead_edges.remove(at);
        }
    }

    /// Clears every failure.
    pub fn clear(&mut self) {
        self.dead_nodes.fill(0);
        self.dead_node_count = 0;
        self.dead_edges.clear();
    }

    /// `true` when node `v` is alive.
    #[inline]
    pub fn node_alive(&self, v: NodeId) -> bool {
        self.dead_nodes[v.index() / 64] & (1 << (v.index() % 64)) == 0
    }

    /// `true` when edge `{u, v}` is alive **and** both endpoints are.
    #[inline]
    pub fn edge_alive(&self, u: NodeId, v: NodeId) -> bool {
        self.node_alive(u)
            && self.node_alive(v)
            && self.dead_edges.binary_search(&edge_key(u, v)).is_err()
    }
}

/// How [`route_with_failover`] answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailoverOutcome {
    /// The route follows the artifact's primary next hops exactly (no
    /// failure was in the way).
    Primary,
    /// The route reached the destination but deviated from the primary
    /// next hop at `detours` of its nodes.
    Detoured {
        /// Number of hops on the final path that differ from the
        /// artifact's primary next hop at that node.
        detours: usize,
    },
    /// No live path exists (the failures partition the pair), an
    /// endpoint is dead, or the backend exposes no topology to walk.
    Unroutable,
}

impl FailoverOutcome {
    /// `true` when a route was produced.
    pub fn routed(&self) -> bool {
        !matches!(self, FailoverOutcome::Unroutable)
    }
}

/// One DFS frame: the node, its candidate arcs in preference order, and
/// the next candidate to try.
struct Frame {
    node: NodeId,
    port: congest::Port,
    cands: Vec<(NodeId, congest::Port)>,
    next: usize,
}

/// Routes `u → v` around the failures in `mask`, filling `out` with the
/// traced path (allocations reused across calls). See the
/// [module docs](self) for the guarantees.
///
/// # Panics
///
/// Panics when `mask` covers a different node count than the oracle.
pub fn route_with_failover(
    oracle: &dyn DistanceOracle,
    mask: &LivenessMask,
    u: NodeId,
    v: NodeId,
    out: &mut TracedRoute,
) -> FailoverOutcome {
    let n = oracle.len();
    assert_eq!(mask.len(), n, "liveness mask covers a different graph");
    let unroutable = |out: &mut TracedRoute| {
        out.nodes.clear();
        out.ports.clear();
        out.weight = 0;
        FailoverOutcome::Unroutable
    };
    if !mask.node_alive(u) || !mask.node_alive(v) {
        return unroutable(out);
    }
    if u == v {
        out.nodes.clear();
        out.ports.clear();
        out.weight = 0;
        out.nodes.push(u);
        return FailoverOutcome::Primary;
    }
    let Some(topo) = oracle.topology() else {
        return unroutable(out);
    };

    // Candidate arcs of `x`, best first: the artifact's primary next hop,
    // then live neighbors by ascending oracle estimate to `v` (ties by
    // id, so the walk is deterministic).
    let candidates = |x: NodeId| -> Vec<(NodeId, congest::Port)> {
        let primary = oracle.next_hop(x, v);
        let mut cands: Vec<(u64, NodeId, congest::Port)> = topo
            .arcs(x)
            .filter(|&(_, nbr, _, _)| mask.edge_alive(x, nbr))
            .map(|(port, nbr, _, _)| (oracle.estimate(nbr, v), nbr, port))
            .collect();
        cands.sort_unstable_by_key(|&(est, nbr, _)| (Some(nbr) != primary, est, nbr.0));
        cands
            .into_iter()
            .map(|(_, nbr, port)| (nbr, port))
            .collect()
    };

    let mut visited = vec![0u64; n.div_ceil(64)];
    let visit = |x: NodeId, visited: &mut Vec<u64>| {
        let (w, b) = (x.index() / 64, x.index() % 64);
        let fresh = visited[w] & (1 << b) == 0;
        visited[w] |= 1 << b;
        fresh
    };
    visit(u, &mut visited);
    let mut stack = vec![Frame {
        node: u,
        port: 0,
        cands: candidates(u),
        next: 0,
    }];
    loop {
        let Some(frame) = stack.last_mut() else {
            return unroutable(out); // DFS exhausted: genuinely partitioned
        };
        if frame.next >= frame.cands.len() {
            stack.pop();
            continue;
        }
        let (nbr, port) = frame.cands[frame.next];
        frame.next += 1;
        let from = frame.node;
        if !visit(nbr, &mut visited) {
            continue;
        }
        if nbr == v {
            // Materialize the path from the live stack frames.
            out.nodes.clear();
            out.ports.clear();
            out.weight = 0;
            let mut detours = 0;
            for f in stack.iter() {
                out.nodes.push(f.node);
            }
            out.nodes.push(v);
            for (i, f) in stack.iter().enumerate() {
                let taken_port = if f.node == from {
                    port
                } else {
                    stack[i + 1].port
                };
                let hop = out.nodes[i + 1];
                out.ports.push(taken_port);
                out.weight += topo.weight(f.node, taken_port);
                if oracle.next_hop(f.node, v) != Some(hop) {
                    detours += 1;
                }
            }
            return if detours == 0 {
                FailoverOutcome::Primary
            } else {
                FailoverOutcome::Detoured { detours }
            };
        }
        let cands = candidates(nbr);
        stack.push(Frame {
            node: nbr,
            port,
            cands,
            next: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, OracleBuilder};
    use graphs::WGraph;

    fn ring_with_chord() -> WGraph {
        // 0-1-2-3-4-5-0 ring plus a 1-4 chord.
        WGraph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 0, 1),
                (1, 4, 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mask_tracks_nodes_and_edges() {
        let mut m = LivenessMask::new(70);
        assert!(m.is_clear());
        m.fail_node(NodeId(65));
        m.fail_edge(NodeId(2), NodeId(1));
        m.fail_edge(NodeId(1), NodeId(2)); // idempotent, either order
        assert!(!m.node_alive(NodeId(65)));
        assert!(!m.edge_alive(NodeId(1), NodeId(2)));
        assert!(
            !m.edge_alive(NodeId(0), NodeId(65)),
            "dead endpoint kills edges"
        );
        assert_eq!((m.failed_nodes(), m.failed_edges()), (1, 1));
        m.revive_node(NodeId(65));
        m.revive_edge(NodeId(1), NodeId(2));
        assert!(m.is_clear());
    }

    #[test]
    fn clear_mask_follows_primary_route() {
        let g = ring_with_chord();
        let oracle = OracleBuilder::new(Backend::Flooding).build(&g);
        let mask = LivenessMask::new(g.len());
        let mut out = TracedRoute::default();
        let outcome = route_with_failover(&oracle, &mask, NodeId(0), NodeId(3), &mut out);
        assert_eq!(outcome, FailoverOutcome::Primary);
        assert_eq!(out.weight, 3);
    }

    #[test]
    fn dead_edge_detours_loop_free() {
        let g = ring_with_chord();
        let oracle = OracleBuilder::new(Backend::Flooding).build(&g);
        let mut mask = LivenessMask::new(g.len());
        // Kill the primary 0→3 direction's first edge both ways around.
        mask.fail_edge(NodeId(0), NodeId(1));
        let mut out = TracedRoute::default();
        let outcome = route_with_failover(&oracle, &mask, NodeId(0), NodeId(3), &mut out);
        assert!(matches!(outcome, FailoverOutcome::Detoured { .. }));
        assert_eq!(*out.nodes.last().unwrap(), NodeId(3));
        // Loop-free: simple path.
        let mut seen: Vec<_> = out.nodes.iter().map(|x| x.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), out.nodes.len());
        // Never traverses the dead edge.
        for w in out.nodes.windows(2) {
            assert!(mask.edge_alive(w[0], w[1]));
        }
    }

    #[test]
    fn partition_is_unroutable() {
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let oracle = OracleBuilder::new(Backend::Flooding).build(&g);
        let mut mask = LivenessMask::new(3);
        mask.fail_node(NodeId(1));
        let mut out = TracedRoute::default();
        let outcome = route_with_failover(&oracle, &mask, NodeId(0), NodeId(2), &mut out);
        assert_eq!(outcome, FailoverOutcome::Unroutable);
        assert!(out.nodes.is_empty());
    }

    #[test]
    fn estimate_only_backend_degrades_to_unroutable() {
        let g = ring_with_chord();
        let oracle = OracleBuilder::new(Backend::BellmanFord).build(&g);
        let mask = LivenessMask::new(g.len());
        let mut out = TracedRoute::default();
        let outcome = route_with_failover(&oracle, &mask, NodeId(0), NodeId(3), &mut out);
        assert_eq!(outcome, FailoverOutcome::Unroutable);
    }
}
