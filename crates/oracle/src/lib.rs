//! One `DistanceOracle` API over every scheme in the workspace.
//!
//! The paper's point is that partial distance estimation is a *primitive*
//! many applications are built on — approximate APSP (Theorem 4.1),
//! routing tables with relabeling (Theorem 4.5), compact Thorup–Zwick
//! hierarchies (Theorems 4.8/4.13) — and Thorup–Zwick-style distance
//! oracles are exactly the "preprocess into a compact artifact, then
//! answer queries" contract a production system wants. This crate makes
//! that contract first-class:
//!
//! * [`DistanceOracle`] — the unified query surface: `estimate`, batch
//!   [`DistanceOracle::estimate_many`] and its threaded sibling
//!   [`DistanceOracle::estimate_many_with`] (`threads` knob: `0` = auto,
//!   `1` = sequential; answers are byte-identical for every thread count
//!   — see the trait docs for the determinism contract), `next_hop`,
//!   full [`DistanceOracle::route`] tracing (no manual `Topology`
//!   plumbing) with an allocation-free [`DistanceOracle::route_into`]
//!   variant, the advertised [`DistanceOracle::stretch_bound`], the
//!   serialized artifact size, and build metrics. Every backend's query
//!   state is flat structure-of-arrays (CSR route rows, dense matrices,
//!   dense skeleton indexes) — the hot path never hashes and never
//!   allocates.
//! * [`OracleBuilder`] — one builder over every [`Backend`] with
//!   consistently named knobs (`seed`, `threads`, `eps`, `k`, `horizon`,
//!   `sigma`, `c`, `l0`), replacing the per-crate
//!   `PdeParams`/`RtcParams`/`CompactParams` constructors (which remain
//!   as the underlying implementations).
//! * [`Oracle::save`] / [`Oracle::load`] — a versioned binary snapshot
//!   (handwritten little-endian framing, no serde) so an oracle is built
//!   once and served from disk; reloaded oracles answer queries
//!   bit-identically (verified by `tests/oracle_matrix.rs`).
//! * [`evaluate`] — an oracle-generic evaluator with stretch percentiles
//!   and measured queries/second.
//!
//! ```
//! use graphs::WGraph;
//! use oracle::{Backend, DistanceOracle, Oracle, OracleBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = WGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 9)])?;
//! let oracle = OracleBuilder::new(Backend::ApproxApsp).eps(0.25).build(&g);
//! assert!(oracle.estimate(graphs::NodeId(0), graphs::NodeId(2)) >= 5);
//! let mut bytes = Vec::new();
//! oracle.save(&mut bytes)?;
//! let served = Oracle::load(&mut &bytes[..])?;
//! assert_eq!(
//!     served.estimate(graphs::NodeId(0), graphs::NodeId(2)),
//!     oracle.estimate(graphs::NodeId(0), graphs::NodeId(2)),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod eval;
pub mod failover;
pub mod repair;
mod snapshot;

use congest::{NodeId, Port};
use graphs::{Seed, WGraph, INF};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Instant;

pub use backends::{
    ApsOracle, BfOracle, CompactOracle, FloodOracle, PdeOracle, RtcOracle, TruncatedOracle,
    TzOracle,
};
pub use eval::{evaluate, evaluate_with, EvalReport};
pub use failover::{route_with_failover, FailoverOutcome, LivenessMask};
pub use graphs::{DeltaError, GraphDelta};
/// The shared staged build pipeline (stage logs, sampling, virtual-graph
/// assembly, recoverable [`BuildError`]s) — re-exported from `pde_core`
/// so `oracle::pipeline` is the one documented entry point.
pub use pde_core::pipeline;
pub use pde_core::pipeline::BuildError;
pub use pde_core::BuildMode;
pub use repair::{RepairError, RepairKind, RepairReport, Repaired};
pub use routing::PairSelection;

/// A fully traced route: the visited nodes (`u` first, destination last),
/// the output port taken at each intermediate node, and the total edge
/// weight.
///
/// Route-heavy loops should allocate one of these and refill it through
/// [`DistanceOracle::route_into`] — the node and port buffers are reused,
/// so tracing costs `O(path)` with zero allocations in steady state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TracedRoute {
    /// Visited nodes, source first and destination last.
    pub nodes: Vec<NodeId>,
    /// Port taken at each node along the way (`nodes.len() - 1` entries).
    pub ports: Vec<Port>,
    /// Sum of traversed edge weights.
    pub weight: u64,
}

impl TracedRoute {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.ports.len()
    }
}

/// Resolves a `threads` knob exactly like `pde_core::run_pde` does
/// (`0` = [`std::thread::available_parallelism`], otherwise the given
/// count), additionally capped by the number of work items — one shared
/// implementation for every threaded surface in the workspace.
use pde_core::pipeline::resolve_threads;
use pde_core::BatchSchedule;

/// Build-time metrics common to every backend.
#[derive(Clone, Copy, Debug)]
pub struct OracleBuildMetrics {
    /// Which backend built this oracle.
    pub backend: Backend,
    /// Number of nodes covered.
    pub n: usize,
    /// CONGEST rounds charged by the distributed construction
    /// (0 for centralized baselines).
    pub rounds: u64,
    /// Messages sent by the distributed construction.
    pub messages: u64,
    /// Wall-clock build time in nanoseconds. Snapshots persist the
    /// *original* build's time — loading is not rebuilding.
    pub build_nanos: u64,
}

/// The unified build-once / query-many surface over every scheme.
///
/// Implementations must uphold: `estimate(u, u) == 0`; estimates never
/// underestimate the true distance; a returned [`TracedRoute`] ends at
/// the destination and walks real graph edges. `estimate` returns
/// [`graphs::INF`] when the backend has no answer for the pair (possible
/// only for partial-coverage PDE oracles).
///
/// # Batch queries, threads, and determinism
///
/// [`DistanceOracle::estimate_into`] is the scalar kernel: it fills an
/// output slice pair by pair, reading only immutable scheme state (the
/// `Sync` supertrait makes that shareable). The batch entry points layer
/// on top:
///
/// * [`DistanceOracle::estimate_many`] — sequential batch (threads = 1);
/// * [`DistanceOracle::estimate_many_with`] — takes a `threads` knob
///   mirroring `pde_core::run_pde`'s (`0` = auto via
///   [`std::thread::available_parallelism`], `1` = sequential, else the
///   given worker count).
///
/// ## The scheduling / determinism contract
///
/// Large batches run through a **source-grouped schedule**
/// ([`pde_core::schedule::BatchSchedule`]): an order-preserving
/// permutation of the query indices, sorted by `(source row, dest key)`,
/// is executed by [`DistanceOracle::estimate_grouped`] — flat-table
/// backends resolve per-row metadata (CSR start, bucket index base,
/// shift) once per equal-source group instead of per query — and the
/// answers are scattered back through the permutation. Because each
/// answer is a pure function of its pair and lands at the index the pair
/// occupies, the output is **byte-identical for every batch order**
/// (shuffled, sorted, reversed, duplicated) and equal to the scalar
/// [`DistanceOracle::estimate_into`] path.
///
/// The parallel path shards the *schedule*, not the raw pair slice: a
/// group-aware splitter cuts only at group boundaries (no source row's
/// group is split across workers), one scoped worker fills each
/// contiguous schedule region, and one scatter pass restores submission
/// order — so the output is also **byte-identical for every thread
/// count** (pinned by `tests/parallel_determinism.rs`,
/// `tests/batch_schedule.rs` and the `queries --smoke` CI step). Small
/// batches, where building a schedule would cost more than it saves,
/// keep the direct contiguous sharding; the answers are identical either
/// way. No worker mutates shared state; scheduling is unobservable.
pub trait DistanceOracle: Sync {
    /// Number of nodes covered.
    fn len(&self) -> usize;

    /// `true` if the oracle covers no nodes (never for valid builds).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance estimate `wd'(u, v)` (`0` on the diagonal, [`INF`] when
    /// the pair is outside the oracle's coverage).
    fn estimate(&self, u: NodeId, v: NodeId) -> u64;

    /// The scalar batch kernel: writes `estimate(u, v)` for each pair into
    /// the parallel `out` slice.
    ///
    /// The default loops over [`DistanceOracle::estimate`]; flat-table
    /// backends override it to stream straight out of dense arrays.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != pairs.len()` — a shape mismatch is a
    /// caller bug, and silently zipping to the shorter length would leave
    /// stale answers in the tail (use [`check_batch_shape`] in overrides).
    fn estimate_into(&self, pairs: &[(NodeId, NodeId)], out: &mut [u64]) {
        check_batch_shape(pairs, out);
        for (slot, &(u, v)) in out.iter_mut().zip(pairs) {
            *slot = self.estimate(u, v);
        }
    }

    /// Batch estimates: fills `out` with one answer per pair, in order
    /// (sequential; see [`DistanceOracle::estimate_many_with`] for the
    /// threaded variant).
    fn estimate_many(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<u64>) {
        self.estimate_many_with(pairs, out, 1);
    }

    /// The schedule-order batch kernel: writes `estimate(u, v)` for
    /// `pairs[order[i]]` into `out[i]` — answers land in *schedule*
    /// order; the caller scatters them back to submission order via
    /// [`BatchSchedule::scatter`].
    ///
    /// `order` is a slice of a [`BatchSchedule`] permutation, so equal
    /// sources are contiguous. The default loops over
    /// [`DistanceOracle::estimate`]; flat-table backends override it to
    /// resolve row metadata once per equal-source group. Every override
    /// must compute exactly `estimate(u, v)` per pair — that is what
    /// keeps grouped answers byte-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != order.len()`, or (in the default) when
    /// an index in `order` is out of bounds for `pairs`.
    fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        for (slot, &i) in out.iter_mut().zip(order) {
            let (u, v) = pairs[i as usize];
            *slot = self.estimate(u, v);
        }
    }

    /// Batch estimates with a `threads` knob (`0` = auto, `1` =
    /// sequential); output is identical for every value — see the trait
    /// docs for the determinism contract. The worker count is additionally
    /// capped at one per ~1k pairs, so tiny batches run sequentially
    /// instead of paying thread-spawn overhead that dwarfs the queries.
    ///
    /// Batches of at least ~4k pairs run through a source-grouped
    /// [`BatchSchedule`] and [`DistanceOracle::estimate_grouped`];
    /// smaller ones go straight to [`DistanceOracle::estimate_into`].
    fn estimate_many_with(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<u64>, threads: usize) {
        /// Minimum shard size worth a scoped worker.
        const MIN_PAIRS_PER_WORKER: usize = 1024;
        /// Below this, building the schedule costs more than it saves.
        const MIN_PAIRS_FOR_GROUPING: usize = 4096;
        out.clear();
        out.resize(pairs.len(), 0);
        let workers = resolve_threads(threads, pairs.len() / MIN_PAIRS_PER_WORKER);
        if pairs.len() < MIN_PAIRS_FOR_GROUPING {
            if workers <= 1 {
                self.estimate_into(pairs, out);
                return;
            }
            let chunk = pairs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (ps, os) in pairs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || self.estimate_into(ps, os));
                }
            });
            return;
        }
        let sched = BatchSchedule::build(pairs, self.len());
        let mut grouped = vec![0u64; pairs.len()];
        if workers <= 1 {
            self.estimate_grouped(pairs, sched.order(), &mut grouped);
        } else {
            let lens = sched.shard_lens(workers, MIN_PAIRS_PER_WORKER);
            std::thread::scope(|scope| {
                let mut order = sched.order();
                let mut slots = grouped.as_mut_slice();
                for &len in &lens {
                    let (os, order_rest) = order.split_at(len);
                    let (ss, slots_rest) = slots.split_at_mut(len);
                    order = order_rest;
                    slots = slots_rest;
                    scope.spawn(move || self.estimate_grouped(pairs, os, ss));
                }
            });
        }
        sched.scatter(&grouped, out);
    }

    /// The next hop from `u` towards `v`, when the backend routes
    /// (`None` for `u == v`, unknown destinations, or estimate-only
    /// backends such as [`Backend::BellmanFord`]).
    fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId>;

    /// Traces the route `u → v` into a caller-provided buffer, reusing
    /// its allocations; returns `false` (with `out` cleared) when the
    /// backend cannot route the pair.
    fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool;

    /// Traces the full route `u → v` — no caller-side `Topology` needed.
    ///
    /// `None` when the backend cannot route the pair. Allocates a fresh
    /// [`TracedRoute`]; hot loops should prefer
    /// [`DistanceOracle::route_into`].
    fn route(&self, u: NodeId, v: NodeId) -> Option<TracedRoute> {
        let mut route = TracedRoute::default();
        self.route_into(u, v, &mut route).then_some(route)
    }

    /// The advertised worst-case multiplicative stretch of estimates and
    /// routes (at the finite-ε ceilings validated by the test suite).
    fn stretch_bound(&self) -> f64;

    /// Size of the serialized artifact in bits (what [`Oracle::save`]
    /// writes) — the "compact" in compact routing, measured end to end.
    fn size_bits(&self) -> u64;

    /// Build metrics.
    fn build_metrics(&self) -> &OracleBuildMetrics;

    /// The topology the oracle was built on, when it keeps one — the
    /// [failover router](crate::failover) uses it to enumerate live
    /// neighbors when the primary next hop is dead. `None` for
    /// estimate-only backends that hold no graph state
    /// ([`Backend::BellmanFord`]), which therefore cannot detour.
    fn topology(&self) -> Option<&congest::Topology> {
        None
    }
}

/// Which scheme answers the queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Partial distance estimation towards a source set (Corollary 3.5):
    /// flat per-node tables, coverage limited by `horizon`/`sigma`.
    Pde,
    /// Deterministic `(1+ε)`-approximate APSP (Theorem 4.1): dense
    /// distance matrix plus PDE next hops.
    ApproxApsp,
    /// Routing tables with relabeling (Theorem 4.5), stretch `6k−1+o(1)`.
    Rtc,
    /// Compact Thorup–Zwick hierarchy (Theorem 4.8), stretch `4k−3+o(1)`.
    Compact,
    /// Truncated hierarchy over the skeleton graph (Theorem 4.13).
    Truncated,
    /// Centralized exact-distance Thorup–Zwick baseline.
    ExactTz,
    /// Pipelined distance-vector APSP (exact; estimate-only, no routes).
    BellmanFord,
    /// Link-state flooding + local Dijkstra (exact, full tables).
    Flooding,
}

impl Backend {
    /// Every backend, in builder-matrix order.
    pub const ALL: [Backend; 8] = [
        Backend::Pde,
        Backend::ApproxApsp,
        Backend::Rtc,
        Backend::Compact,
        Backend::Truncated,
        Backend::ExactTz,
        Backend::BellmanFord,
        Backend::Flooding,
    ];

    /// Stable lowercase name (used in tables and snapshots).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Pde => "pde",
            Backend::ApproxApsp => "approx_apsp",
            Backend::Rtc => "rtc",
            Backend::Compact => "compact",
            Backend::Truncated => "truncated",
            Backend::ExactTz => "exact_tz",
            Backend::BellmanFord => "bellman_ford",
            Backend::Flooding => "flooding",
        }
    }

    /// Stable numeric id of this backend on every wire format — the
    /// byte written into `PDOR` snapshot headers and into the `net`
    /// protocol's install/stats frames. The assignment is append-only:
    /// existing values never change, new backends take the next free
    /// tag, so artifacts and peers from different builds agree.
    pub fn wire_tag(self) -> u8 {
        self.tag()
    }

    /// The backend for a [`Backend::wire_tag`] byte (`None` for
    /// unassigned tags — a corrupt or future snapshot/frame).
    pub fn from_wire_tag(tag: u8) -> Option<Backend> {
        Backend::from_tag(tag)
    }

    pub(crate) fn tag(self) -> u8 {
        match self {
            Backend::Pde => 0,
            Backend::ApproxApsp => 1,
            Backend::Rtc => 2,
            Backend::Compact => 3,
            Backend::Truncated => 4,
            Backend::ExactTz => 5,
            Backend::BellmanFord => 6,
            Backend::Flooding => 7,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.tag() == tag)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds any [`Backend`] with one set of consistently named knobs.
///
/// Unset knobs take backend-appropriate defaults; knobs irrelevant to a
/// backend are ignored (e.g. `k` for [`Backend::BellmanFord`]).
#[derive(Clone, Debug)]
pub struct OracleBuilder {
    backend: Backend,
    seed: Seed,
    threads: usize,
    mode: BuildMode,
    eps: f64,
    k: u32,
    c: f64,
    horizon: Option<u64>,
    sigma: Option<usize>,
    l0: Option<u32>,
    sources: Option<Vec<bool>>,
}

impl OracleBuilder {
    /// A builder for `backend` with default knobs: `seed 0xC0FFEE`,
    /// automatic `threads`, **native build mode** (the serving default —
    /// use [`OracleBuilder::build_mode`] with [`BuildMode::Simulated`]
    /// for round-accurate CONGEST measurements; artifacts are identical
    /// either way), `eps 0.25`, `k 2`, `c 2.0`, and full-coverage
    /// `horizon`/`sigma`.
    pub fn new(backend: Backend) -> Self {
        OracleBuilder {
            backend,
            seed: Seed(0xC0FFEE),
            threads: 0,
            mode: BuildMode::Native,
            eps: 0.25,
            k: 2,
            c: 2.0,
            horizon: None,
            sigma: None,
            l0: None,
            sources: None,
        }
    }

    /// Build engine: [`BuildMode::Native`] (default; centralized, fast,
    /// charges no rounds) or [`BuildMode::Simulated`] (runs the CONGEST
    /// protocols and reports their rounds/messages in
    /// [`OracleBuildMetrics`]). Scheme artifacts, snapshots and query
    /// answers are **byte-identical** across modes — pinned by
    /// `tests/build_parity.rs` and the `builds --smoke` CI step.
    #[must_use]
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// RNG seed for every random choice of the build.
    #[must_use]
    pub fn seed(mut self, seed: impl Into<Seed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Worker threads for parallel ladder rungs (`0` = auto, `1` =
    /// sequential); outputs are identical for every value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Approximation parameter ε.
    #[must_use]
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Stretch/size trade-off parameter `k`.
    #[must_use]
    pub fn k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Constant `c` in horizon/list-size formulas.
    #[must_use]
    pub fn c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Detection horizon `h`: for [`Backend::Pde`] the hop horizon
    /// (default `n`, i.e. full coverage); for [`Backend::Compact`] a
    /// Theorem 4.8 `SPD` bound (default: Lemma 4.7 per-level horizons).
    #[must_use]
    pub fn horizon(mut self, h: u64) -> Self {
        self.horizon = Some(h);
        self
    }

    /// List size σ for [`Backend::Pde`] (default `n`).
    #[must_use]
    pub fn sigma(mut self, sigma: usize) -> Self {
        self.sigma = Some(sigma);
        self
    }

    /// Truncation level `l0` for [`Backend::Truncated`]
    /// (default `k − 1`).
    #[must_use]
    pub fn l0(mut self, l0: u32) -> Self {
        self.l0 = Some(l0);
        self
    }

    /// Source set for [`Backend::Pde`] (default: every node).
    #[must_use]
    pub fn sources(mut self, sources: Vec<bool>) -> Self {
        self.sources = Some(sources);
        self
    }

    /// Builds the oracle on `g`.
    ///
    /// # Panics
    ///
    /// Panics on any [`BuildError`]: invalid inputs (disconnected
    /// graphs, out-of-range ε), sampling failures that survived the
    /// builders' one-resample retry, and invalid knob combinations
    /// (e.g. `k < 2` for [`Backend::Truncated`], which stays an assert).
    /// See [`OracleBuilder::try_build`] for the typed form.
    pub fn build(&self, g: &WGraph) -> Oracle {
        self.try_build(g)
            .unwrap_or_else(|e| panic!("{} build failed after one resample: {e}", self.backend))
    }

    /// Builds the oracle, surfacing every build failure as a typed
    /// [`BuildError`].
    ///
    /// The scheme builders retry each failed w.h.p. event once on a
    /// [`Seed::derive`]d resample; if the retry also fails, the
    /// [`BuildError`] is returned here instead of panicking, so callers
    /// can re-seed or raise `c` programmatically. Invalid *inputs* — a
    /// disconnected graph ([`BuildError::Disconnected`]) or an
    /// out-of-range ε ([`BuildError::InvalidParam`]) — are rejected up
    /// front without a resample, for every backend uniformly.
    ///
    /// # Errors
    ///
    /// The input error, or the [`BuildError`] of the second failed
    /// sampling attempt.
    ///
    /// # Panics
    ///
    /// Panics on invalid knob *combinations* (e.g. `l0` outside `1..k`
    /// for [`Backend::Truncated`]) — those are caller bugs.
    pub fn try_build(&self, g: &WGraph) -> Result<Oracle, BuildError> {
        let start = Instant::now();
        let mut inner = backends::build_inner(self, g)?;
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        backends::set_build_nanos(&mut inner, nanos);
        Ok(Oracle { inner })
    }

    pub(crate) fn backend(&self) -> Backend {
        self.backend
    }
    pub(crate) fn knob_seed(&self) -> Seed {
        self.seed
    }
    pub(crate) fn knob_threads(&self) -> usize {
        self.threads
    }
    pub(crate) fn knob_mode(&self) -> BuildMode {
        self.mode
    }
    pub(crate) fn knob_eps(&self) -> f64 {
        self.eps
    }
    pub(crate) fn knob_k(&self) -> u32 {
        self.k
    }
    pub(crate) fn knob_c(&self) -> f64 {
        self.c
    }
    pub(crate) fn knob_horizon(&self) -> Option<u64> {
        self.horizon
    }
    pub(crate) fn knob_sigma(&self) -> Option<usize> {
        self.sigma
    }
    pub(crate) fn knob_l0(&self) -> Option<u32> {
        self.l0
    }
    pub(crate) fn knob_sources(&self) -> Option<&[bool]> {
        self.sources.as_deref()
    }
}

/// A built (or loaded) distance oracle: one concrete type over every
/// backend, usable directly or as `&dyn DistanceOracle`.
pub struct Oracle {
    pub(crate) inner: backends::Inner,
}

impl Oracle {
    /// The backend answering queries.
    pub fn backend(&self) -> Backend {
        self.build_metrics().backend
    }

    /// Writes the versioned binary snapshot of this oracle.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn save<W: Write>(&self, sink: &mut W) -> io::Result<()> {
        snapshot::save(self, sink)
    }

    /// Writes the **version-3** arena snapshot: one 8-byte-aligned
    /// section directory plus typed sections and a trailing checksum,
    /// with derived query state (bucket indexes, RTC long-range tables)
    /// stored instead of rebuilt on load. Loading a v3 snapshot is an
    /// order of magnitude faster than v2 (see `oracle::snapshot` module
    /// docs); [`Oracle::load`] accepts both versions.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn save_v3<W: Write>(&self, sink: &mut W) -> io::Result<()> {
        snapshot::save_v3(self, sink)
    }

    /// Writes the versioned binary snapshot to a file, **atomically**:
    /// the stream goes to a uniquely named temp file in the target
    /// directory, is flushed and fsynced, then renamed over `path` (and
    /// the directory entry fsynced, best effort). A crash mid-write
    /// leaves either the previous file or the complete new one — never
    /// a torn snapshot for [`Oracle::load_path`] to choke on. This is
    /// the counterpart of [`Oracle::load_path`] and the only way the
    /// serving stack writes snapshots to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the temp file is removed on failure.
    pub fn save_path(&self, path: &std::path::Path) -> io::Result<()> {
        snapshot::save_path_atomic(path, |sink| snapshot::save(self, sink))
    }

    /// Writes the **version-3** arena snapshot to a file with the same
    /// atomic temp + fsync + rename discipline as [`Oracle::save_path`].
    ///
    /// # Errors
    ///
    /// As [`Oracle::save_path`].
    pub fn save_path_v3(&self, path: &std::path::Path) -> io::Result<()> {
        snapshot::save_path_atomic(path, |sink| snapshot::save_v3(self, sink))
    }

    /// Loads an oracle from a snapshot written by [`Oracle::save`] or
    /// [`Oracle::save_v3`] (the version is auto-detected; version-1
    /// snapshots are rejected with a pointer to rebuild).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad magic/version/backend bytes or any
    /// malformed payload; truncated inputs wrap
    /// [`congest::wire::SnapshotError::Truncated`] (test with
    /// [`congest::wire::is_truncated`]).
    pub fn load<R: Read>(source: &mut R) -> io::Result<Oracle> {
        snapshot::load(source)
    }

    /// Loads an oracle from an in-memory snapshot buffer (any supported
    /// version). The bytes are copied once into an owned buffer so a v3
    /// oracle can keep views into them; callers already holding the
    /// snapshot as a [`congest::arena::SharedBytes`] should prefer
    /// [`Oracle::load_shared`], which skips that copy.
    ///
    /// # Errors
    ///
    /// As [`Oracle::load`].
    pub fn load_bytes(buf: &[u8]) -> io::Result<Oracle> {
        snapshot::load_bytes(buf)
    }

    /// Loads an oracle from a shared in-memory snapshot buffer (any
    /// supported version). For v3 buffers this is the **zero-copy** fast
    /// path: after one checksum pass, the oracle's large tables are views
    /// into `bytes` — cloning the handle and loading again shares the
    /// same underlying allocation.
    ///
    /// # Errors
    ///
    /// As [`Oracle::load`].
    pub fn load_shared(bytes: congest::arena::SharedBytes) -> io::Result<Oracle> {
        snapshot::load_shared(bytes)
    }

    /// Loads an oracle from a snapshot file: the file is read **once**
    /// into a [`congest::arena::SharedBytes`] buffer and decoded through
    /// [`Oracle::load_shared`], so a v3 snapshot is served as zero-copy
    /// views into that single read — the cold-start path from disk pays
    /// no second copy (unlike `fs::read` + [`Oracle::load_bytes`], which
    /// would copy the payload again). `serve::OracleServer::install_path`
    /// and the `net` protocol's `Install` op go through this.
    ///
    /// # Errors
    ///
    /// The file-read error, or any decode error as [`Oracle::load`].
    pub fn load_path(path: &std::path::Path) -> io::Result<Oracle> {
        Oracle::load_shared(congest::arena::SharedBytes::from_vec(std::fs::read(path)?))
    }

    /// The **canonical artifact bytes**: the [`Oracle::save`] stream with
    /// every volatile measurement field (CONGEST rounds, messages, build
    /// wall-clock) written as zero. This is the build-identity witness:
    /// for the same graph, seed and knobs, simulated and native builds —
    /// at any thread count — produce identical canonical bytes (asserted
    /// by `tests/build_parity.rs` and `experiments -- builds --smoke`).
    /// The returned stream is itself a loadable snapshot.
    pub fn artifact_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        snapshot::save_canonical(self, &mut bytes).expect("writing to a Vec cannot fail");
        bytes
    }

    fn as_dyn(&self) -> &dyn DistanceOracle {
        self.inner.as_dyn()
    }
}

impl fmt::Debug for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Oracle")
            .field("backend", &self.backend())
            .field("n", &self.len())
            .finish_non_exhaustive()
    }
}

impl DistanceOracle for Oracle {
    fn len(&self) -> usize {
        self.as_dyn().len()
    }
    fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
        self.as_dyn().estimate(u, v)
    }
    fn estimate_into(&self, pairs: &[(NodeId, NodeId)], out: &mut [u64]) {
        self.as_dyn().estimate_into(pairs, out);
    }
    fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        self.as_dyn().estimate_grouped(pairs, order, out);
    }
    fn estimate_many(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<u64>) {
        self.as_dyn().estimate_many(pairs, out);
    }
    fn estimate_many_with(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<u64>, threads: usize) {
        self.as_dyn().estimate_many_with(pairs, out, threads);
    }
    fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.as_dyn().next_hop(u, v)
    }
    fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool {
        self.as_dyn().route_into(u, v, out)
    }
    fn route(&self, u: NodeId, v: NodeId) -> Option<TracedRoute> {
        self.as_dyn().route(u, v)
    }
    fn stretch_bound(&self) -> f64 {
        self.as_dyn().stretch_bound()
    }
    fn size_bits(&self) -> u64 {
        self.as_dyn().size_bits()
    }
    fn build_metrics(&self) -> &OracleBuildMetrics {
        self.as_dyn().build_metrics()
    }
    fn topology(&self) -> Option<&congest::Topology> {
        self.as_dyn().topology()
    }
}

/// Convenience: an estimate is "covered" when it is not [`INF`].
pub fn is_covered(est: u64) -> bool {
    est != INF
}

/// Asserts the [`DistanceOracle::estimate_into`] shape contract
/// (`out.len() == pairs.len()`) with a diagnostic message. Every
/// `estimate_into` implementation — the trait default and each backend
/// override — calls this first, in release builds too: a mismatched batch
/// is a caller bug, and zipping to the shorter slice would silently leave
/// stale answers in the tail.
///
/// # Panics
///
/// Panics when the lengths differ.
#[inline]
pub fn check_batch_shape(pairs: &[(NodeId, NodeId)], out: &[u64]) {
    assert_eq!(
        pairs.len(),
        out.len(),
        "estimate_into: out slice must have one slot per pair",
    );
}
