//! Versioned binary snapshots: `Oracle::save` / `Oracle::load`.
//!
//! Layout (all little-endian, via [`congest::wire`]):
//!
//! ```text
//! magic  "PDOR"            4 bytes
//! version u16              currently 1
//! backend u8               Backend::tag
//! n       u64
//! rounds  u64              build metrics (summary)
//! msgs    u64
//! nanos   u64
//! payload …                backend-specific (see the Payload impls)
//! ```
//!
//! Every map written anywhere in a payload is in sorted key order, so
//! `load` → `save` reproduces the byte stream exactly, and a reloaded
//! oracle answers queries bit-identically to the one that was saved
//! (`tests/oracle_matrix.rs` pins both properties).

use crate::backends::{
    ApsOracle, BfOracle, CompactOracle, FloodOracle, Inner, PdeOracle, RtcOracle, TruncatedOracle,
    TzOracle,
};
use crate::{Backend, Oracle, OracleBuildMetrics};
use baselines::ExactTz;
use compact::{CompactScheme, TruncatedScheme};
use congest::wire::{
    clamped_capacity, invalid_data, CountingWriter, WireReader, WireWriter, MAX_SNAPSHOT_NODES,
};
use graphs::WGraph;
use pde_core::FlatTables;
use routing::RtcScheme;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PDOR";
/// Snapshot version 2: the flat-table layout (scheme payloads carry their
/// own record-version tags too). Version-1 artifacts are rejected with a
/// pointer to rebuild — snapshots are caches of a deterministic build,
/// not primary data, so there is no in-place migration.
const VERSION: u16 = 2;
/// Fixed header size: magic + version + backend + 4 × u64 metrics.
const HEADER_BYTES: u64 = 4 + 2 + 1 + 4 * 8;

/// Backend-specific payload codec (object-safe on the write side so the
/// serialized size can be measured through a counting sink).
pub(crate) trait Payload {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()>;

    /// The canonical-artifact form of the payload: identical to
    /// [`Payload::write_payload`] except that embedded *measurement*
    /// fields (round/message totals of the distributed schemes) are
    /// written as zeros. Backends whose payload carries no measurements
    /// use the default (their payloads are already canonical).
    fn write_payload_canonical(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_payload(sink)
    }
}

/// Serialized size of a backend in bits: fixed header plus payload.
pub(crate) fn size_bits_of<P: Payload>(p: &P) -> u64 {
    let mut counter = CountingWriter::new();
    p.write_payload(&mut counter)
        .expect("counting writer cannot fail");
    8 * (HEADER_BYTES + counter.bytes())
}

pub(crate) fn save(oracle: &Oracle, sink: &mut dyn Write) -> io::Result<()> {
    save_opts(oracle, sink, false)
}

/// The canonical artifact stream: [`save`] with the volatile measurement
/// fields (header rounds/messages/nanos and every scheme-embedded round
/// total) written as zeros — see [`crate::Oracle::artifact_bytes`].
pub(crate) fn save_canonical(oracle: &Oracle, sink: &mut dyn Write) -> io::Result<()> {
    save_opts(oracle, sink, true)
}

fn save_opts(oracle: &Oracle, sink: &mut dyn Write, canonical: bool) -> io::Result<()> {
    let m = *oracle.inner.as_dyn().build_metrics();
    let mut w = WireWriter::new(sink);
    w.bytes(MAGIC)?;
    w.u16(VERSION)?;
    w.u8(m.backend.tag())?;
    w.usize(m.n)?;
    let zero = |x: u64| if canonical { 0 } else { x };
    w.u64(zero(m.rounds))?;
    w.u64(zero(m.messages))?;
    w.u64(zero(m.build_nanos))?;
    let write = |p: &dyn Payload, sink: &mut dyn Write| {
        if canonical {
            p.write_payload_canonical(sink)
        } else {
            p.write_payload(sink)
        }
    };
    match &oracle.inner {
        Inner::Pde(o) => write(o, sink),
        Inner::Aps(o) => write(o, sink),
        Inner::Rtc(o) => write(o, sink),
        Inner::Compact(o) => write(o, sink),
        Inner::Truncated(o) => write(o, sink),
        Inner::Tz(o) => write(o, sink),
        Inner::Bf(o) => write(o, sink),
        Inner::Flood(o) => write(o, sink),
    }
}

pub(crate) fn load(source: &mut dyn Read) -> io::Result<Oracle> {
    let mut r = WireReader::new(source);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(invalid_data("not an oracle snapshot (bad magic)"));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(invalid_data(format!(
            "unsupported snapshot version {version} (expected {VERSION}; \
             version-1 hash-table snapshots must be rebuilt with this binary)"
        )));
    }
    let tag = r.u8()?;
    let backend =
        Backend::from_tag(tag).ok_or_else(|| invalid_data(format!("unknown backend tag {tag}")))?;
    let n = r.usize()?;
    let rounds = r.u64()?;
    let messages = r.u64()?;
    let build_nanos = r.u64()?;
    let metrics = OracleBuildMetrics {
        backend,
        n,
        rounds,
        messages,
        build_nanos,
    };
    let inner = match backend {
        Backend::Pde => Inner::Pde(PdeOracle::read_payload(source, metrics)?),
        Backend::ApproxApsp => Inner::Aps(ApsOracle::read_payload(source, metrics)?),
        Backend::Rtc => Inner::Rtc(RtcOracle::read_payload(source, metrics)?),
        Backend::Compact => Inner::Compact(CompactOracle::read_payload(source, metrics)?),
        Backend::Truncated => Inner::Truncated(TruncatedOracle::read_payload(source, metrics)?),
        Backend::ExactTz => Inner::Tz(TzOracle::read_payload(source, metrics)?),
        Backend::BellmanFord => Inner::Bf(BfOracle::read_payload(source, metrics)?),
        Backend::Flooding => Inner::Flood(FloodOracle::read_payload(source, metrics)?),
    };
    Ok(Oracle { inner })
}

// ------------------------------------------------------------ helpers --

fn write_dense_u64(sink: &mut dyn Write, xs: &[u64]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(xs.len())?;
    for &x in xs {
        w.u64(x)?;
    }
    Ok(())
}

fn read_dense_u64(source: &mut dyn Read, expect: usize) -> io::Result<Vec<u64>> {
    let mut r = WireReader::new(source);
    let n = r.len(expect)?;
    if n != expect {
        return Err(invalid_data("dense matrix size mismatch"));
    }
    let mut xs = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        xs.push(r.u64()?);
    }
    Ok(xs)
}

// ------------------------------------------------------------ payloads --

impl Payload for PdeOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut w = WireWriter::new(sink);
        w.f64(self.eps)?;
        w.u64(self.h)?;
        w.usize(self.sigma)?;
        self.g.write_into(sink)?;
        self.routes.write_into(sink)
    }
}

impl PdeOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let mut r = WireReader::new(source);
        let eps = r.f64()?;
        let h = r.u64()?;
        let sigma = r.usize()?;
        let g = WGraph::read_from(source)?;
        let routes = FlatTables::read_from(source)?;
        let topo = g.to_topology();
        routes.validate(&topo)?;
        Ok(PdeOracle {
            g,
            topo,
            routes,
            eps,
            h,
            sigma,
            metrics,
        })
    }
}

impl Payload for ApsOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).f64(self.eps)?;
        self.g.write_into(sink)?;
        write_dense_u64(sink, &self.dist)?;
        self.routes.write_into(sink)
    }
}

impl ApsOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let eps = WireReader::new(source).f64()?;
        let g = WGraph::read_from(source)?;
        let cells = g
            .len()
            .checked_mul(g.len())
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        let routes = FlatTables::read_from(source)?;
        let topo = g.to_topology();
        routes.validate(&topo)?;
        Ok(ApsOracle {
            g,
            topo,
            dist,
            routes,
            eps,
            metrics,
        })
    }
}

// The distributed schemes serialize their own topology inside
// `write_into`, so their payloads carry the edge list exactly once.
macro_rules! scheme_payload {
    ($oracle:ident, $scheme:ident) => {
        impl Payload for $oracle {
            fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
                let mut w = WireWriter::new(sink);
                w.u32(self.k)?;
                w.f64(self.eps)?;
                self.scheme.write_into(sink)
            }

            fn write_payload_canonical(&self, sink: &mut dyn Write) -> io::Result<()> {
                let mut w = WireWriter::new(sink);
                w.u32(self.k)?;
                w.f64(self.eps)?;
                self.scheme.write_canonical_into(sink)
            }
        }

        impl $oracle {
            fn read_payload(
                source: &mut dyn Read,
                metrics: OracleBuildMetrics,
            ) -> io::Result<Self> {
                let mut r = WireReader::new(source);
                let k = r.u32()?;
                let eps = r.f64()?;
                let scheme = $scheme::read_from(source)?;
                Ok($oracle {
                    scheme,
                    k,
                    eps,
                    metrics,
                })
            }
        }
    };
}

scheme_payload!(RtcOracle, RtcScheme);
scheme_payload!(CompactOracle, CompactScheme);
scheme_payload!(TruncatedOracle, TruncatedScheme);

impl Payload for TzOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).u32(self.k)?;
        // ExactTz holds no topology, so the wrapper persists the graph.
        self.g.write_into(sink)?;
        self.scheme.write_into(sink)
    }
}

impl TzOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let k = WireReader::new(source).u32()?;
        let g = WGraph::read_from(source)?;
        let scheme = ExactTz::read_from(source)?;
        let topo = g.to_topology();
        Ok(TzOracle {
            g,
            topo,
            scheme,
            k,
            metrics,
        })
    }
}

impl Payload for BfOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).usize(self.n)?;
        write_dense_u64(sink, &self.dist)
    }
}

impl BfOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let n = WireReader::new(source).usize()?;
        if n > MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("snapshot claims {n} nodes")));
        }
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        Ok(BfOracle { n, dist, metrics })
    }
}

impl Payload for FloodOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.g.write_into(sink)?;
        write_dense_u64(sink, &self.dist)?;
        let mut w = WireWriter::new(sink);
        w.len(self.next.len())?;
        for &x in &self.next {
            w.u32(x)?;
        }
        w.usize(self.lsdb_edges)?;
        Ok(())
    }
}

impl FloodOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let g = WGraph::read_from(source)?;
        let cells = g
            .len()
            .checked_mul(g.len())
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        let mut r = WireReader::new(source);
        let nn = r.len(cells)?;
        if nn != cells {
            return Err(invalid_data("first-hop matrix size mismatch"));
        }
        let mut next = Vec::with_capacity(clamped_capacity(nn));
        for _ in 0..nn {
            let raw = r.u32()?;
            if raw != u32::MAX && raw as usize >= g.len() {
                return Err(invalid_data(format!("first hop {raw} out of range")));
            }
            next.push(raw);
        }
        let lsdb_edges = r.usize()?;
        let topo = g.to_topology();
        Ok(FloodOracle {
            g,
            topo,
            dist,
            next,
            lsdb_edges,
            metrics,
        })
    }
}
