//! Versioned binary snapshots: `Oracle::save` / `Oracle::load`.
//!
//! Layout (all little-endian, via [`congest::wire`]):
//!
//! ```text
//! magic  "PDOR"            4 bytes
//! version u16              currently 1
//! backend u8               Backend::tag
//! n       u64
//! rounds  u64              build metrics (summary)
//! msgs    u64
//! nanos   u64
//! payload …                backend-specific (see the Payload impls)
//! ```
//!
//! Every map written anywhere in a payload is in sorted key order, so
//! `load` → `save` reproduces the byte stream exactly, and a reloaded
//! oracle answers queries bit-identically to the one that was saved
//! (`tests/oracle_matrix.rs` pins both properties).

use crate::backends::{
    ApsOracle, BfOracle, CompactOracle, FlatEntry, FlatRoutes, FloodOracle, Inner, PdeOracle,
    RtcOracle, TruncatedOracle, TzOracle,
};
use crate::{Backend, Oracle, OracleBuildMetrics};
use baselines::ExactTz;
use compact::{CompactScheme, TruncatedScheme};
use congest::wire::{
    clamped_capacity, invalid_data, CountingWriter, WireReader, WireWriter, MAX_SNAPSHOT_NODES,
};
use graphs::WGraph;
use routing::RtcScheme;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PDOR";
const VERSION: u16 = 1;
/// Fixed header size: magic + version + backend + 4 × u64 metrics.
const HEADER_BYTES: u64 = 4 + 2 + 1 + 4 * 8;

/// Backend-specific payload codec (object-safe on the write side so the
/// serialized size can be measured through a counting sink).
pub(crate) trait Payload {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()>;
}

/// Serialized size of a backend in bits: fixed header plus payload.
pub(crate) fn size_bits_of<P: Payload>(p: &P) -> u64 {
    let mut counter = CountingWriter::new();
    p.write_payload(&mut counter)
        .expect("counting writer cannot fail");
    8 * (HEADER_BYTES + counter.bytes())
}

pub(crate) fn save(oracle: &Oracle, sink: &mut dyn Write) -> io::Result<()> {
    let m = *oracle.inner.as_dyn().build_metrics();
    let mut w = WireWriter::new(sink);
    w.bytes(MAGIC)?;
    w.u16(VERSION)?;
    w.u8(m.backend.tag())?;
    w.usize(m.n)?;
    w.u64(m.rounds)?;
    w.u64(m.messages)?;
    w.u64(m.build_nanos)?;
    match &oracle.inner {
        Inner::Pde(o) => o.write_payload(sink),
        Inner::Aps(o) => o.write_payload(sink),
        Inner::Rtc(o) => o.write_payload(sink),
        Inner::Compact(o) => o.write_payload(sink),
        Inner::Truncated(o) => o.write_payload(sink),
        Inner::Tz(o) => o.write_payload(sink),
        Inner::Bf(o) => o.write_payload(sink),
        Inner::Flood(o) => o.write_payload(sink),
    }
}

pub(crate) fn load(source: &mut dyn Read) -> io::Result<Oracle> {
    let mut r = WireReader::new(source);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(invalid_data("not an oracle snapshot (bad magic)"));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(invalid_data(format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }
    let tag = r.u8()?;
    let backend =
        Backend::from_tag(tag).ok_or_else(|| invalid_data(format!("unknown backend tag {tag}")))?;
    let n = r.usize()?;
    let rounds = r.u64()?;
    let messages = r.u64()?;
    let build_nanos = r.u64()?;
    let metrics = OracleBuildMetrics {
        backend,
        n,
        rounds,
        messages,
        build_nanos,
    };
    let inner = match backend {
        Backend::Pde => Inner::Pde(PdeOracle::read_payload(source, metrics)?),
        Backend::ApproxApsp => Inner::Aps(ApsOracle::read_payload(source, metrics)?),
        Backend::Rtc => Inner::Rtc(RtcOracle::read_payload(source, metrics)?),
        Backend::Compact => Inner::Compact(CompactOracle::read_payload(source, metrics)?),
        Backend::Truncated => Inner::Truncated(TruncatedOracle::read_payload(source, metrics)?),
        Backend::ExactTz => Inner::Tz(TzOracle::read_payload(source, metrics)?),
        Backend::BellmanFord => Inner::Bf(BfOracle::read_payload(source, metrics)?),
        Backend::Flooding => Inner::Flood(FloodOracle::read_payload(source, metrics)?),
    };
    Ok(Oracle { inner })
}

// ------------------------------------------------------------ helpers --

fn write_flat_routes(sink: &mut dyn Write, fr: &FlatRoutes) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(fr.starts.len())?;
    for &s in &fr.starts {
        w.u32(s)?;
    }
    w.len(fr.entries.len())?;
    for e in &fr.entries {
        w.u32(e.src)?;
        w.u64(e.est)?;
        w.u32(e.port)?;
    }
    Ok(())
}

fn read_flat_routes(source: &mut dyn Read) -> io::Result<FlatRoutes> {
    let mut r = WireReader::new(source);
    let ns = r.len(1 << 32)?;
    let mut starts = Vec::with_capacity(clamped_capacity(ns));
    for _ in 0..ns {
        starts.push(r.u32()?);
    }
    let ne = r.len(1 << 32)?;
    let mut entries = Vec::with_capacity(clamped_capacity(ne));
    for _ in 0..ne {
        let src = r.u32()?;
        let est = r.u64()?;
        let port = r.u32()?;
        entries.push(FlatEntry { src, est, port });
    }
    let fr = FlatRoutes { starts, entries };
    // Full CSR validation: first offset 0, monotonically non-decreasing,
    // last offset equal to the entry count — anything else would defer a
    // slice-index panic from load time into the serving path.
    if fr.starts.first() != Some(&0)
        || fr.starts.last().map(|&s| s as usize) != Some(fr.entries.len())
        || fr.starts.windows(2).any(|w| w[0] > w[1])
    {
        return Err(invalid_data("flat route offsets inconsistent"));
    }
    Ok(fr)
}

/// Validates flat tables against the graph they will be queried on: one
/// CSR row per node, sources in range, ports within each node's degree
/// (`Topology::neighbor` only debug-asserts its port, so a corrupted
/// port would silently resolve to a wrong neighbor in release builds).
fn validate_flat_routes(fr: &FlatRoutes, g: &WGraph) -> io::Result<()> {
    if fr.len_nodes() != g.len() {
        return Err(invalid_data("route table count mismatch"));
    }
    for v in g.nodes() {
        let deg = g.degree(v) as u32;
        for e in fr.node_entries(v) {
            if e.src as usize >= g.len() {
                return Err(invalid_data(format!("route source {} out of range", e.src)));
            }
            if e.port >= deg {
                return Err(invalid_data(format!(
                    "route port {} out of range at {v} (degree {deg})",
                    e.port
                )));
            }
        }
    }
    Ok(())
}

fn write_dense_u64(sink: &mut dyn Write, xs: &[u64]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(xs.len())?;
    for &x in xs {
        w.u64(x)?;
    }
    Ok(())
}

fn read_dense_u64(source: &mut dyn Read, expect: usize) -> io::Result<Vec<u64>> {
    let mut r = WireReader::new(source);
    let n = r.len(expect)?;
    if n != expect {
        return Err(invalid_data("dense matrix size mismatch"));
    }
    let mut xs = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        xs.push(r.u64()?);
    }
    Ok(xs)
}

// ------------------------------------------------------------ payloads --

impl Payload for PdeOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut w = WireWriter::new(sink);
        w.f64(self.eps)?;
        w.u64(self.h)?;
        w.usize(self.sigma)?;
        self.g.write_into(sink)?;
        write_flat_routes(sink, &self.routes)
    }
}

impl PdeOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let mut r = WireReader::new(source);
        let eps = r.f64()?;
        let h = r.u64()?;
        let sigma = r.usize()?;
        let g = WGraph::read_from(source)?;
        let routes = read_flat_routes(source)?;
        validate_flat_routes(&routes, &g)?;
        let topo = g.to_topology();
        Ok(PdeOracle {
            g,
            topo,
            routes,
            eps,
            h,
            sigma,
            metrics,
        })
    }
}

impl Payload for ApsOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).f64(self.eps)?;
        self.g.write_into(sink)?;
        write_dense_u64(sink, &self.dist)?;
        write_flat_routes(sink, &self.routes)
    }
}

impl ApsOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let eps = WireReader::new(source).f64()?;
        let g = WGraph::read_from(source)?;
        let cells = g
            .len()
            .checked_mul(g.len())
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        let routes = read_flat_routes(source)?;
        validate_flat_routes(&routes, &g)?;
        let topo = g.to_topology();
        Ok(ApsOracle {
            g,
            topo,
            dist,
            routes,
            eps,
            metrics,
        })
    }
}

// The distributed schemes serialize their own topology inside
// `write_into`, so their payloads carry the edge list exactly once.
macro_rules! scheme_payload {
    ($oracle:ident, $scheme:ident) => {
        impl Payload for $oracle {
            fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
                let mut w = WireWriter::new(sink);
                w.u32(self.k)?;
                w.f64(self.eps)?;
                self.scheme.write_into(sink)
            }
        }

        impl $oracle {
            fn read_payload(
                source: &mut dyn Read,
                metrics: OracleBuildMetrics,
            ) -> io::Result<Self> {
                let mut r = WireReader::new(source);
                let k = r.u32()?;
                let eps = r.f64()?;
                let scheme = $scheme::read_from(source)?;
                Ok($oracle {
                    scheme,
                    k,
                    eps,
                    metrics,
                })
            }
        }
    };
}

scheme_payload!(RtcOracle, RtcScheme);
scheme_payload!(CompactOracle, CompactScheme);
scheme_payload!(TruncatedOracle, TruncatedScheme);

impl Payload for TzOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).u32(self.k)?;
        // ExactTz holds no topology, so the wrapper persists the graph.
        self.g.write_into(sink)?;
        self.scheme.write_into(sink)
    }
}

impl TzOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let k = WireReader::new(source).u32()?;
        let g = WGraph::read_from(source)?;
        let scheme = ExactTz::read_from(source)?;
        let topo = g.to_topology();
        Ok(TzOracle {
            g,
            topo,
            scheme,
            k,
            metrics,
        })
    }
}

impl Payload for BfOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).usize(self.n)?;
        write_dense_u64(sink, &self.dist)
    }
}

impl BfOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let n = WireReader::new(source).usize()?;
        if n > MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("snapshot claims {n} nodes")));
        }
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        Ok(BfOracle { n, dist, metrics })
    }
}

impl Payload for FloodOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.g.write_into(sink)?;
        write_dense_u64(sink, &self.dist)?;
        let mut w = WireWriter::new(sink);
        w.len(self.next.len())?;
        for &x in &self.next {
            w.u32(x)?;
        }
        w.usize(self.lsdb_edges)?;
        Ok(())
    }
}

impl FloodOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let g = WGraph::read_from(source)?;
        let cells = g
            .len()
            .checked_mul(g.len())
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        let mut r = WireReader::new(source);
        let nn = r.len(cells)?;
        if nn != cells {
            return Err(invalid_data("first-hop matrix size mismatch"));
        }
        let mut next = Vec::with_capacity(clamped_capacity(nn));
        for _ in 0..nn {
            let raw = r.u32()?;
            if raw != u32::MAX && raw as usize >= g.len() {
                return Err(invalid_data(format!("first hop {raw} out of range")));
            }
            next.push(raw);
        }
        let lsdb_edges = r.usize()?;
        let topo = g.to_topology();
        Ok(FloodOracle {
            g,
            topo,
            dist,
            next,
            lsdb_edges,
            metrics,
        })
    }
}
