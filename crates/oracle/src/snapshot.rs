//! Versioned binary snapshots: `Oracle::save` / `Oracle::load`.
//!
//! # Version matrix
//!
//! | version | layout | write | read |
//! |---|---|---|---|
//! | 1 | PR-3 hash-table streams | — | rejected (rebuild) |
//! | 2 | flat-table wire streams | [`Oracle::save`] | copying decode |
//! | 3 | aligned arena container | [`Oracle::save_v3`] | header-validated bulk decode, derived state stored |
//!
//! Common header (all little-endian, via [`congest::wire`]):
//!
//! ```text
//! magic  "PDOR"            4 bytes
//! version u16              2 or 3
//! backend u8               Backend::tag
//! pad     u8               v3 only (zero) — aligns the arena to 8 bytes
//! n       u64
//! rounds  u64              build metrics (summary)
//! msgs    u64
//! nanos   u64
//! payload …                backend-specific
//! ```
//!
//! A **v2** payload is a sequence of length-prefixed wire streams decoded
//! element by element through `dyn Read`; derived query state (flat-table
//! bucket indexes, RTC long-range tables) is rebuilt after decoding. A
//! **v3** payload is one [`congest::arena`] container: a section
//! directory, 8-byte-aligned typed sections, and a trailing checksum.
//! Loading a v3 snapshot validates the directory and checksum in a single
//! pass, then hands out *zero-copy views* ([`congest::arena::SharedBytes`]
//! slices) over the large typed sections — derived state (bucket indexes,
//! RTC long-range tables) is stored in those sections rather than
//! re-derived, which together is where the order of magnitude in
//! cold-start time comes from (see `README.md`, "Serving").
//! [`Oracle::load`] auto-detects the version; [`Oracle::load_shared`] is
//! the copy-free in-memory entry point the `serve` crate uses.
//!
//! Every map written anywhere in a payload is in sorted key order, so
//! `load` → `save` reproduces the byte stream exactly (within one
//! version), and a reloaded oracle answers queries bit-identically to the
//! one that was saved — from either version (`tests/oracle_matrix.rs`
//! pins both properties, v2↔v3 cross-checked).
//!
//! Truncated inputs (a partial download, a torn write) surface as
//! `InvalidData` wrapping [`congest::wire::SnapshotError::Truncated`] —
//! test with [`congest::wire::is_truncated`] — rather than a raw
//! `UnexpectedEof`.

use crate::backends::{
    ApsOracle, BfOracle, CompactOracle, FloodOracle, Inner, PdeOracle, RtcOracle, TruncatedOracle,
    TzOracle,
};
use crate::{Backend, Oracle, OracleBuildMetrics};
use baselines::ExactTz;
use compact::{CompactScheme, TruncatedScheme};
use congest::arena::{ArenaCursor, ArenaReader, ArenaWriter, SharedBytes};
use congest::wire::{
    clamped_capacity, invalid_data, CountingWriter, WireReader, WireWriter, MAX_SNAPSHOT_NODES,
};
use graphs::WGraph;
use pde_core::FlatTables;
use routing::RtcScheme;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PDOR";
/// Snapshot version 2: the flat-table layout (scheme payloads carry their
/// own record-version tags too). Version-1 artifacts are rejected with a
/// pointer to rebuild — snapshots are caches of a deterministic build,
/// not primary data, so there is no in-place migration.
const VERSION: u16 = 2;
/// Snapshot version 3: the arena container (see the module docs).
const VERSION_V3: u16 = 3;
/// Fixed header size: magic + version + backend + 4 × u64 metrics. The
/// v3 header adds one pad byte after the backend tag, so the arena that
/// follows starts on an 8-byte boundary.
const HEADER_BYTES: u64 = 4 + 2 + 1 + 4 * 8;

/// Backend-specific payload codec (object-safe on the write side so the
/// serialized size can be measured through a counting sink).
pub(crate) trait Payload {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()>;

    /// The canonical-artifact form of the payload: identical to
    /// [`Payload::write_payload`] except that embedded *measurement*
    /// fields (round/message totals of the distributed schemes) are
    /// written as zeros. Backends whose payload carries no measurements
    /// use the default (their payloads are already canonical).
    fn write_payload_canonical(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_payload(sink)
    }
}

/// Serialized size of a backend in bits: fixed header plus payload.
pub(crate) fn size_bits_of<P: Payload>(p: &P) -> u64 {
    let mut counter = CountingWriter::new();
    p.write_payload(&mut counter)
        .expect("counting writer cannot fail");
    8 * (HEADER_BYTES + counter.bytes())
}

pub(crate) fn save(oracle: &Oracle, sink: &mut dyn Write) -> io::Result<()> {
    save_opts(oracle, sink, false)
}

/// Writes a snapshot file atomically: the stream goes to a uniquely
/// named temp file in the target directory, is flushed and fsynced,
/// and only then renamed over `path`. A crash at any point leaves
/// either the old file or the new one — never a torn snapshot that
/// [`load`] would reject. The directory entry is fsynced after the
/// rename (best effort: not every filesystem supports opening
/// directories) so the rename itself survives a power cut.
pub(crate) fn save_path_atomic(
    path: &std::path::Path,
    write: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path.file_name().ok_or_else(|| {
        invalid_data(format!("snapshot path {} has no file name", path.display()))
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut sink = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut sink)?;
        let file = sink.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// The canonical artifact stream: [`save`] with the volatile measurement
/// fields (header rounds/messages/nanos and every scheme-embedded round
/// total) written as zeros — see [`crate::Oracle::artifact_bytes`].
pub(crate) fn save_canonical(oracle: &Oracle, sink: &mut dyn Write) -> io::Result<()> {
    save_opts(oracle, sink, true)
}

fn save_opts(oracle: &Oracle, sink: &mut dyn Write, canonical: bool) -> io::Result<()> {
    let m = *oracle.inner.as_dyn().build_metrics();
    let mut w = WireWriter::new(sink);
    w.bytes(MAGIC)?;
    w.u16(VERSION)?;
    w.u8(m.backend.tag())?;
    w.usize(m.n)?;
    let zero = |x: u64| if canonical { 0 } else { x };
    w.u64(zero(m.rounds))?;
    w.u64(zero(m.messages))?;
    w.u64(zero(m.build_nanos))?;
    let write = |p: &dyn Payload, sink: &mut dyn Write| {
        if canonical {
            p.write_payload_canonical(sink)
        } else {
            p.write_payload(sink)
        }
    };
    match &oracle.inner {
        Inner::Pde(o) => write(o, sink),
        Inner::Aps(o) => write(o, sink),
        Inner::Rtc(o) => write(o, sink),
        Inner::Compact(o) => write(o, sink),
        Inner::Truncated(o) => write(o, sink),
        Inner::Tz(o) => write(o, sink),
        Inner::Bf(o) => write(o, sink),
        Inner::Flood(o) => write(o, sink),
    }
}

/// Writes the version-3 arena snapshot (see the module docs).
pub(crate) fn save_v3(oracle: &Oracle, sink: &mut dyn Write) -> io::Result<()> {
    let m = *oracle.inner.as_dyn().build_metrics();
    let mut w = WireWriter::new(sink);
    w.bytes(MAGIC)?;
    w.u16(VERSION_V3)?;
    w.u8(m.backend.tag())?;
    w.u8(0)?; // pad: the arena starts 8-aligned
    w.usize(m.n)?;
    w.u64(m.rounds)?;
    w.u64(m.messages)?;
    w.u64(m.build_nanos)?;
    let mut a = ArenaWriter::new();
    write_arena_payload(&oracle.inner, &mut a)?;
    a.finish(sink)
}

fn write_arena_payload(inner: &Inner, a: &mut ArenaWriter) -> io::Result<()> {
    match inner {
        Inner::Pde(o) => {
            a.u64s(&[o.eps.to_bits(), o.h, o.sigma as u64]);
            o.g.write_arena(a);
            o.routes.write_arena(a);
            Ok(())
        }
        Inner::Aps(o) => {
            a.u64s(&[o.eps.to_bits()]);
            o.g.write_arena(a);
            a.u64s(&o.dist);
            o.routes.write_arena(a);
            Ok(())
        }
        Inner::Rtc(o) => {
            a.u64s(&[u64::from(o.k), o.eps.to_bits()]);
            o.scheme.write_arena(a, false)
        }
        Inner::Compact(o) => {
            a.u64s(&[u64::from(o.k), o.eps.to_bits()]);
            o.scheme.write_arena(a, false)
        }
        Inner::Truncated(o) => {
            a.u64s(&[u64::from(o.k), o.eps.to_bits()]);
            o.scheme.write_arena(a, false)
        }
        Inner::Tz(o) => {
            a.u64s(&[u64::from(o.k)]);
            o.g.write_arena(a);
            o.scheme.write_arena(a)
        }
        Inner::Bf(o) => {
            a.u64s(&[o.n as u64]);
            a.u64s(&o.dist);
            Ok(())
        }
        Inner::Flood(o) => {
            a.u64s(&[o.lsdb_edges as u64]);
            o.g.write_arena(a);
            a.u64s(&o.dist);
            a.u32s(&o.next);
            Ok(())
        }
    }
}

fn read_arena_payload(
    backend: Backend,
    metrics: OracleBuildMetrics,
    c: &mut ArenaCursor<'_>,
) -> io::Result<Inner> {
    Ok(match backend {
        Backend::Pde => {
            let meta = c.u64s()?;
            let [eps, h, sigma] = meta[..] else {
                return Err(invalid_data("PDE meta section misshapen"));
            };
            let eps = f64::from_bits(eps);
            let sigma = usize::try_from(sigma).map_err(|_| invalid_data("PDE sigma overflow"))?;
            let g = WGraph::read_arena(c)?;
            let routes = FlatTables::read_arena(c)?;
            let topo = g.to_topology();
            routes.validate(&topo)?;
            Inner::Pde(PdeOracle {
                g,
                topo,
                routes,
                eps,
                h,
                sigma,
                metrics,
            })
        }
        Backend::ApproxApsp => {
            let meta = c.u64s()?;
            let [eps] = meta[..] else {
                return Err(invalid_data("APSP meta section misshapen"));
            };
            let eps = f64::from_bits(eps);
            let g = WGraph::read_arena(c)?;
            let cells = congest::wire::seq_product(g.len(), g.len(), "distance matrix")?;
            let dist = c.u64s()?;
            if dist.len() != cells {
                return Err(invalid_data("dense matrix size mismatch"));
            }
            let routes = FlatTables::read_arena(c)?;
            let topo = g.to_topology();
            routes.validate(&topo)?;
            Inner::Aps(ApsOracle {
                g,
                topo,
                dist,
                routes,
                eps,
                metrics,
            })
        }
        Backend::Rtc => {
            let (k, eps) = read_scheme_meta(c)?;
            let scheme = RtcScheme::read_arena(c)?;
            Inner::Rtc(RtcOracle {
                scheme,
                k,
                eps,
                metrics,
            })
        }
        Backend::Compact => {
            let (k, eps) = read_scheme_meta(c)?;
            let scheme = CompactScheme::read_arena(c)?;
            Inner::Compact(CompactOracle {
                scheme,
                k,
                eps,
                metrics,
            })
        }
        Backend::Truncated => {
            let (k, eps) = read_scheme_meta(c)?;
            let scheme = TruncatedScheme::read_arena(c)?;
            Inner::Truncated(TruncatedOracle {
                scheme,
                k,
                eps,
                metrics,
            })
        }
        Backend::ExactTz => {
            let meta = c.u64s()?;
            let [k] = meta[..] else {
                return Err(invalid_data("TZ meta section misshapen"));
            };
            let k = u32::try_from(k).map_err(|_| invalid_data("TZ k overflow"))?;
            let g = WGraph::read_arena(c)?;
            let scheme = ExactTz::read_arena(c)?;
            let topo = g.to_topology();
            Inner::Tz(TzOracle {
                g,
                topo,
                scheme,
                k,
                metrics,
            })
        }
        Backend::BellmanFord => {
            let meta = c.u64s()?;
            let [n] = meta[..] else {
                return Err(invalid_data("BF meta section misshapen"));
            };
            let n = usize::try_from(n).map_err(|_| invalid_data("BF n overflow"))?;
            if n > MAX_SNAPSHOT_NODES {
                return Err(invalid_data(format!("snapshot claims {n} nodes")));
            }
            let cells = congest::wire::seq_product(n, n, "distance matrix")?;
            let dist = c.u64s()?;
            if dist.len() != cells {
                return Err(invalid_data("dense matrix size mismatch"));
            }
            Inner::Bf(BfOracle { n, dist, metrics })
        }
        Backend::Flooding => {
            let meta = c.u64s()?;
            let [lsdb] = meta[..] else {
                return Err(invalid_data("flooding meta section misshapen"));
            };
            let lsdb_edges =
                usize::try_from(lsdb).map_err(|_| invalid_data("LSDB size overflow"))?;
            let g = WGraph::read_arena(c)?;
            let cells = congest::wire::seq_product(g.len(), g.len(), "distance matrix")?;
            let dist = c.u64s()?;
            let next = c.u32s()?;
            if dist.len() != cells || next.len() != cells {
                return Err(invalid_data("dense matrix size mismatch"));
            }
            for &raw in &next {
                if raw != u32::MAX && raw as usize >= g.len() {
                    return Err(invalid_data(format!("first hop {raw} out of range")));
                }
            }
            let topo = g.to_topology();
            Inner::Flood(FloodOracle {
                g,
                topo,
                dist,
                next,
                lsdb_edges,
                metrics,
            })
        }
    })
}

fn read_scheme_meta(c: &mut ArenaCursor<'_>) -> io::Result<(u32, f64)> {
    let meta = c.u64s()?;
    let [k, eps] = meta[..] else {
        return Err(invalid_data("scheme meta section misshapen"));
    };
    let k = u32::try_from(k).map_err(|_| invalid_data("scheme k overflow"))?;
    Ok((k, f64::from_bits(eps)))
}

pub(crate) fn load(source: &mut dyn Read) -> io::Result<Oracle> {
    load_inner(source).map_err(congest::wire::map_truncation)
}

/// Loads an oracle from a borrowed in-memory snapshot buffer, any
/// version. The bytes are copied once into an owned buffer so a v3 load
/// can keep views into them; callers that already hold the snapshot as a
/// [`SharedBytes`] should use [`load_shared`] and skip that copy.
pub(crate) fn load_bytes(buf: &[u8]) -> io::Result<Oracle> {
    load_shared(SharedBytes::from_vec(buf.to_vec()))
}

/// Loads an oracle from a shared in-memory snapshot buffer, any version.
/// For v3 this is the zero-copy path: the header and section directory
/// are validated, and the oracle's tables are views into `bytes` — no
/// payload bytes are moved at all.
pub(crate) fn load_shared(bytes: SharedBytes) -> io::Result<Oracle> {
    load_shared_inner(bytes).map_err(congest::wire::map_truncation)
}

fn load_shared_inner(bytes: SharedBytes) -> io::Result<Oracle> {
    // Reading from a byte slice advances it, so after the header `rest`
    // is exactly the payload — for v3, the arena body, shared in place.
    let buf = bytes.as_slice();
    let mut rest = buf;
    match read_header(&mut rest)? {
        Header::V2(metrics) => finish_v2(&mut rest, metrics),
        Header::V3(metrics) => {
            let off = buf.len() - rest.len();
            finish_v3(bytes.slice(off..bytes.len()), metrics)
        }
    }
}

fn load_inner(source: &mut dyn Read) -> io::Result<Oracle> {
    match read_header(source)? {
        Header::V2(metrics) => finish_v2(source, metrics),
        Header::V3(metrics) => {
            let mut body = Vec::new();
            source.read_to_end(&mut body)?;
            finish_v3(SharedBytes::from_vec(body), metrics)
        }
    }
}

enum Header {
    V2(OracleBuildMetrics),
    V3(OracleBuildMetrics),
}

fn read_header(source: &mut dyn Read) -> io::Result<Header> {
    let mut r = WireReader::new(source);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(invalid_data("not an oracle snapshot (bad magic)"));
    }
    let version = r.u16()?;
    if version != VERSION && version != VERSION_V3 {
        return Err(invalid_data(format!(
            "unsupported snapshot version {version} (expected {VERSION} or {VERSION_V3}; \
             version-1 hash-table snapshots must be rebuilt with this binary)"
        )));
    }
    let tag = r.u8()?;
    let backend =
        Backend::from_tag(tag).ok_or_else(|| invalid_data(format!("unknown backend tag {tag}")))?;
    if version == VERSION_V3 {
        let pad = r.u8()?;
        if pad != 0 {
            return Err(invalid_data("nonzero pad byte in v3 header"));
        }
    }
    let n = r.usize()?;
    let rounds = r.u64()?;
    let messages = r.u64()?;
    let build_nanos = r.u64()?;
    let metrics = OracleBuildMetrics {
        backend,
        n,
        rounds,
        messages,
        build_nanos,
    };
    Ok(if version == VERSION_V3 {
        Header::V3(metrics)
    } else {
        Header::V2(metrics)
    })
}

fn finish_v2(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Oracle> {
    let backend = metrics.backend;
    let inner = match backend {
        Backend::Pde => Inner::Pde(PdeOracle::read_payload(source, metrics)?),
        Backend::ApproxApsp => Inner::Aps(ApsOracle::read_payload(source, metrics)?),
        Backend::Rtc => Inner::Rtc(RtcOracle::read_payload(source, metrics)?),
        Backend::Compact => Inner::Compact(CompactOracle::read_payload(source, metrics)?),
        Backend::Truncated => Inner::Truncated(TruncatedOracle::read_payload(source, metrics)?),
        Backend::ExactTz => Inner::Tz(TzOracle::read_payload(source, metrics)?),
        Backend::BellmanFord => Inner::Bf(BfOracle::read_payload(source, metrics)?),
        Backend::Flooding => Inner::Flood(FloodOracle::read_payload(source, metrics)?),
    };
    Ok(Oracle { inner })
}

fn finish_v3(body: SharedBytes, metrics: OracleBuildMetrics) -> io::Result<Oracle> {
    let reader = ArenaReader::parse(body)?;
    let mut c = reader.cursor();
    let inner = read_arena_payload(metrics.backend, metrics, &mut c)?;
    c.expect_end()?;
    Ok(Oracle { inner })
}

// ------------------------------------------------------------ helpers --

fn write_dense_u64(sink: &mut dyn Write, xs: &[u64]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(xs.len())?;
    for &x in xs {
        w.u64(x)?;
    }
    Ok(())
}

fn read_dense_u64(source: &mut dyn Read, expect: usize) -> io::Result<Vec<u64>> {
    let mut r = WireReader::new(source);
    let n = r.len(expect)?;
    if n != expect {
        return Err(invalid_data("dense matrix size mismatch"));
    }
    let mut xs = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        xs.push(r.u64()?);
    }
    Ok(xs)
}

// ------------------------------------------------------------ payloads --

impl Payload for PdeOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut w = WireWriter::new(sink);
        w.f64(self.eps)?;
        w.u64(self.h)?;
        w.usize(self.sigma)?;
        self.g.write_into(sink)?;
        self.routes.write_into(sink)
    }
}

impl PdeOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let mut r = WireReader::new(source);
        let eps = r.f64()?;
        let h = r.u64()?;
        let sigma = r.usize()?;
        let g = WGraph::read_from(source)?;
        let routes = FlatTables::read_from(source)?;
        let topo = g.to_topology();
        routes.validate(&topo)?;
        Ok(PdeOracle {
            g,
            topo,
            routes,
            eps,
            h,
            sigma,
            metrics,
        })
    }
}

impl Payload for ApsOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).f64(self.eps)?;
        self.g.write_into(sink)?;
        write_dense_u64(sink, &self.dist)?;
        self.routes.write_into(sink)
    }
}

impl ApsOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let eps = WireReader::new(source).f64()?;
        let g = WGraph::read_from(source)?;
        let cells = g
            .len()
            .checked_mul(g.len())
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        let routes = FlatTables::read_from(source)?;
        let topo = g.to_topology();
        routes.validate(&topo)?;
        Ok(ApsOracle {
            g,
            topo,
            dist,
            routes,
            eps,
            metrics,
        })
    }
}

// The distributed schemes serialize their own topology inside
// `write_into`, so their payloads carry the edge list exactly once.
macro_rules! scheme_payload {
    ($oracle:ident, $scheme:ident) => {
        impl Payload for $oracle {
            fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
                let mut w = WireWriter::new(sink);
                w.u32(self.k)?;
                w.f64(self.eps)?;
                self.scheme.write_into(sink)
            }

            fn write_payload_canonical(&self, sink: &mut dyn Write) -> io::Result<()> {
                let mut w = WireWriter::new(sink);
                w.u32(self.k)?;
                w.f64(self.eps)?;
                self.scheme.write_canonical_into(sink)
            }
        }

        impl $oracle {
            fn read_payload(
                source: &mut dyn Read,
                metrics: OracleBuildMetrics,
            ) -> io::Result<Self> {
                let mut r = WireReader::new(source);
                let k = r.u32()?;
                let eps = r.f64()?;
                let scheme = $scheme::read_from(source)?;
                Ok($oracle {
                    scheme,
                    k,
                    eps,
                    metrics,
                })
            }
        }
    };
}

scheme_payload!(RtcOracle, RtcScheme);
scheme_payload!(CompactOracle, CompactScheme);
scheme_payload!(TruncatedOracle, TruncatedScheme);

impl Payload for TzOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).u32(self.k)?;
        // ExactTz holds no topology, so the wrapper persists the graph.
        self.g.write_into(sink)?;
        self.scheme.write_into(sink)
    }
}

impl TzOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let k = WireReader::new(source).u32()?;
        let g = WGraph::read_from(source)?;
        let scheme = ExactTz::read_from(source)?;
        let topo = g.to_topology();
        Ok(TzOracle {
            g,
            topo,
            scheme,
            k,
            metrics,
        })
    }
}

impl Payload for BfOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        WireWriter::new(sink).usize(self.n)?;
        write_dense_u64(sink, &self.dist)
    }
}

impl BfOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let n = WireReader::new(source).usize()?;
        if n > MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("snapshot claims {n} nodes")));
        }
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        Ok(BfOracle { n, dist, metrics })
    }
}

impl Payload for FloodOracle {
    fn write_payload(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.g.write_into(sink)?;
        write_dense_u64(sink, &self.dist)?;
        let mut w = WireWriter::new(sink);
        w.len(self.next.len())?;
        for &x in &self.next {
            w.u32(x)?;
        }
        w.usize(self.lsdb_edges)?;
        Ok(())
    }
}

impl FloodOracle {
    fn read_payload(source: &mut dyn Read, metrics: OracleBuildMetrics) -> io::Result<Self> {
        let g = WGraph::read_from(source)?;
        let cells = g
            .len()
            .checked_mul(g.len())
            .ok_or_else(|| invalid_data("distance matrix size overflow"))?;
        let dist = read_dense_u64(source, cells)?;
        let mut r = WireReader::new(source);
        let nn = r.len(cells)?;
        if nn != cells {
            return Err(invalid_data("first-hop matrix size mismatch"));
        }
        let mut next = Vec::with_capacity(clamped_capacity(nn));
        for _ in 0..nn {
            let raw = r.u32()?;
            if raw != u32::MAX && raw as usize >= g.len() {
                return Err(invalid_data(format!("first hop {raw} out of range")));
            }
            next.push(raw);
        }
        let lsdb_edges = r.usize()?;
        let topo = g.to_topology();
        Ok(FloodOracle {
            g,
            topo,
            dist,
            next,
            lsdb_edges,
            metrics,
        })
    }
}
