//! The eight backend wrappers behind [`crate::DistanceOracle`].
//!
//! Each wrapper can trace routes without caller-side plumbing: the
//! distributed schemes expose the topology they were built on (borrowed,
//! not copied), and the flat/centralized backends keep the graph
//! themselves. The PDE-family wrappers flatten their routing archives
//! into per-node source-sorted rows ([`pde_core::FlatTables`]): point
//! queries are a binary search and batch queries stream through dense
//! memory with no per-query hashing or allocation.

use crate::{
    Backend, BuildError, BuildMode, DistanceOracle, OracleBuildMetrics, OracleBuilder, TracedRoute,
};
use baselines::{bellman_ford_apsp, flooding_apsp, ExactTz};
use compact::{
    try_build_hierarchy, try_build_truncated, CompactParams, CompactScheme, HorizonMode,
};
use compact::{TruncatedScheme, UpperMode};
use congest::{NodeId, Topology};
use graphs::{WGraph, INF};
use pde_core::schedule::group_end;
use pde_core::{try_approx_apsp_opts, try_run_pde};
use pde_core::{FlatTables, PdeParams};
use routing::{try_build_rtc, RoutingScheme, RtcParams, RtcScheme};

/// Traces a route by repeatedly applying `next` into the caller's buffer,
/// validating that every hop is a real edge; `false` (with `out` cleared)
/// on a stuck walk or when the hop cap is hit. The buffer's allocations
/// are reused across calls.
pub(crate) fn trace_next_hops_into<F>(
    topo: &Topology,
    u: NodeId,
    v: NodeId,
    next: F,
    out: &mut TracedRoute,
) -> bool
where
    F: Fn(NodeId, NodeId) -> Option<NodeId>,
{
    out.nodes.clear();
    out.ports.clear();
    out.weight = 0;
    out.nodes.push(u);
    let mut cur = u;
    let cap = 20 * topo.len() + 50;
    while cur != v {
        let hop = if out.ports.len() >= cap {
            None
        } else {
            next(cur, v).and_then(|hop| topo.port_to(cur, hop).map(|port| (hop, port)))
        };
        let Some((hop, port)) = hop else {
            out.nodes.clear();
            out.ports.clear();
            out.weight = 0;
            return false;
        };
        out.weight += topo.weight(cur, port);
        out.ports.push(port);
        out.nodes.push(hop);
        cur = hop;
    }
    true
}

/// The finite-ε stretch ceiling of the Theorem 4.5 scheme
/// (`(6k−1)·(1+ε)^4`, as validated end to end by the routing tests).
fn rtc_ceiling(k: u32, eps: f64) -> f64 {
    (6.0 * f64::from(k) - 1.0) * (1.0 + eps).powi(4)
}

/// The finite-ε stretch ceiling of the Theorem 4.8 hierarchy
/// (`(1+ε)^{4(k−1)+4}·(4(k−1)+1)` at `k ≥ 2`).
fn compact_ceiling(k: u32, eps: f64) -> f64 {
    let k = k.max(2);
    let l = f64::from(k - 1);
    (1.0 + eps).powi(4 * (k as i32 - 1) + 4) * (4.0 * l + 1.0)
}

/// The finite-ε stretch ceiling of the Theorem 4.13 truncated hierarchy
/// (with the waypoint-descent constant, as in its end-to-end tests).
fn truncated_ceiling(k: u32, eps: f64) -> f64 {
    (4.0 * f64::from(k) - 3.0) * (1.0 + eps).powi(6) * 2.0
}

// ---------------------------------------------------------------- PDE --

/// [`Backend::Pde`]: flat per-node tables from one PDE run.
pub struct PdeOracle {
    pub(crate) g: WGraph,
    pub(crate) topo: Topology,
    pub(crate) routes: FlatTables,
    pub(crate) eps: f64,
    pub(crate) h: u64,
    pub(crate) sigma: usize,
    pub(crate) metrics: OracleBuildMetrics,
}

impl DistanceOracle for PdeOracle {
    fn len(&self) -> usize {
        self.g.len()
    }

    fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
        if u == v {
            return 0;
        }
        self.routes.get(u, v).map_or(INF, |e| e.est)
    }

    fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let mut start = 0usize;
        while start < order.len() {
            let end = group_end(pairs, order, start);
            let u = pairs[order[start] as usize].0;
            let row = self.routes.cursor(u);
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                let v = pairs[i as usize].1;
                *slot = if u == v {
                    0
                } else {
                    row.get(v).map_or(INF, |e| e.est)
                };
            }
            start = end;
        }
    }

    fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        if u == v {
            return None;
        }
        self.routes.get(u, v).map(|e| self.topo.neighbor(u, e.port))
    }

    fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool {
        // Greedy forwarding: estimates strictly decrease along the chain,
        // so the cap in the generic tracer is never the limiting factor
        // for intact tables.
        trace_next_hops_into(&self.topo, u, v, |x, dest| self.next_hop(x, dest), out)
    }

    fn stretch_bound(&self) -> f64 {
        1.0 + self.eps
    }

    fn size_bits(&self) -> u64 {
        crate::snapshot::size_bits_of(self)
    }

    fn build_metrics(&self) -> &OracleBuildMetrics {
        &self.metrics
    }

    fn topology(&self) -> Option<&Topology> {
        Some(&self.topo)
    }
}

// --------------------------------------------------------- ApproxApsp --

/// [`Backend::ApproxApsp`]: dense `(1+ε)`-approximate distance matrix
/// plus PDE next hops.
pub struct ApsOracle {
    pub(crate) g: WGraph,
    pub(crate) topo: Topology,
    pub(crate) dist: Vec<u64>,
    pub(crate) routes: FlatTables,
    pub(crate) eps: f64,
    pub(crate) metrics: OracleBuildMetrics,
}

impl ApsOracle {
    #[inline]
    fn mat(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.g.len() + v.index()]
    }
}

impl DistanceOracle for ApsOracle {
    fn len(&self) -> usize {
        self.g.len()
    }

    fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
        if u == v {
            0
        } else {
            self.mat(u, v)
        }
    }

    fn estimate_into(&self, pairs: &[(NodeId, NodeId)], out: &mut [u64]) {
        crate::check_batch_shape(pairs, out);
        let n = self.g.len();
        for (slot, &(u, v)) in out.iter_mut().zip(pairs) {
            *slot = if u == v {
                0
            } else {
                self.dist[u.index() * n + v.index()]
            };
        }
    }

    fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let n = self.g.len();
        let mut start = 0usize;
        while start < order.len() {
            let end = group_end(pairs, order, start);
            let u = pairs[order[start] as usize].0;
            let row = &self.dist[u.index() * n..u.index() * n + n];
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                let v = pairs[i as usize].1;
                *slot = if u == v { 0 } else { row[v.index()] };
            }
            start = end;
        }
    }

    fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        if u == v {
            return None;
        }
        self.routes.get(u, v).map(|e| self.topo.neighbor(u, e.port))
    }

    fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool {
        trace_next_hops_into(&self.topo, u, v, |x, dest| self.next_hop(x, dest), out)
    }

    fn stretch_bound(&self) -> f64 {
        1.0 + self.eps
    }

    fn size_bits(&self) -> u64 {
        crate::snapshot::size_bits_of(self)
    }

    fn build_metrics(&self) -> &OracleBuildMetrics {
        &self.metrics
    }

    fn topology(&self) -> Option<&Topology> {
        Some(&self.topo)
    }
}

// ---------------------------------------------- RoutingScheme wrappers --

/// The distributed schemes own their topology; wrappers borrow it for
/// route tracing instead of keeping a second copy (and the snapshot
/// payload serializes the scheme's topology exactly once).
macro_rules! scheme_oracle {
    ($(#[$doc:meta])* $name:ident, $scheme:ty, $bound:expr) => {
        $(#[$doc])*
        pub struct $name {
            pub(crate) scheme: $scheme,
            pub(crate) k: u32,
            pub(crate) eps: f64,
            pub(crate) metrics: OracleBuildMetrics,
        }

        impl DistanceOracle for $name {
            fn len(&self) -> usize {
                RoutingScheme::len(&self.scheme)
            }

            fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
                RoutingScheme::estimate(&self.scheme, u, v)
            }

            fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
                // Each scheme crate owns its grouped kernel (the flat
                // tables it caches per group are crate-private); every
                // kernel computes exactly `RoutingScheme::estimate`.
                self.scheme.estimate_grouped(pairs, order, out);
            }

            fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
                RoutingScheme::next_hop(&self.scheme, u, v)
            }

            fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool {
                trace_next_hops_into(
                    self.scheme.topology(),
                    u,
                    v,
                    |x, dest| RoutingScheme::next_hop(&self.scheme, x, dest),
                    out,
                )
            }

            fn stretch_bound(&self) -> f64 {
                #[allow(clippy::redundant_closure_call)]
                ($bound)(self.k, self.eps)
            }

            fn size_bits(&self) -> u64 {
                crate::snapshot::size_bits_of(self)
            }

            fn build_metrics(&self) -> &OracleBuildMetrics {
                &self.metrics
            }

            fn topology(&self) -> Option<&Topology> {
                Some(self.scheme.topology())
            }
        }
    };
}

scheme_oracle!(
    /// [`Backend::Rtc`]: the Theorem 4.5 scheme behind the unified trait.
    RtcOracle,
    RtcScheme,
    rtc_ceiling
);
scheme_oracle!(
    /// [`Backend::Compact`]: the Theorem 4.8 hierarchy behind the trait.
    CompactOracle,
    CompactScheme,
    compact_ceiling
);
scheme_oracle!(
    /// [`Backend::Truncated`]: the Theorem 4.13 scheme behind the trait.
    TruncatedOracle,
    TruncatedScheme,
    truncated_ceiling
);

/// [`Backend::ExactTz`]: the centralized exact baseline behind the trait
/// (its `4k−3` bound needs no ε adjustment). Unlike the distributed
/// schemes, `ExactTz` holds no topology of its own, so the wrapper keeps
/// the graph for route tracing and snapshot serialization.
pub struct TzOracle {
    pub(crate) g: WGraph,
    pub(crate) topo: Topology,
    pub(crate) scheme: ExactTz,
    pub(crate) k: u32,
    pub(crate) metrics: OracleBuildMetrics,
}

impl DistanceOracle for TzOracle {
    fn len(&self) -> usize {
        self.g.len()
    }

    fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
        RoutingScheme::estimate(&self.scheme, u, v)
    }

    fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        RoutingScheme::next_hop(&self.scheme, u, v)
    }

    fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool {
        trace_next_hops_into(
            &self.topo,
            u,
            v,
            |x, dest| RoutingScheme::next_hop(&self.scheme, x, dest),
            out,
        )
    }

    fn stretch_bound(&self) -> f64 {
        f64::from(4 * self.k - 3).max(1.0)
    }

    fn size_bits(&self) -> u64 {
        crate::snapshot::size_bits_of(self)
    }

    fn build_metrics(&self) -> &OracleBuildMetrics {
        &self.metrics
    }

    fn topology(&self) -> Option<&Topology> {
        Some(&self.topo)
    }
}

// -------------------------------------------------------- BellmanFord --

/// [`Backend::BellmanFord`]: exact dense distances, estimate-only (the
/// distance-vector baseline keeps no next-hop state in this repo).
pub struct BfOracle {
    pub(crate) n: usize,
    pub(crate) dist: Vec<u64>,
    pub(crate) metrics: OracleBuildMetrics,
}

impl DistanceOracle for BfOracle {
    fn len(&self) -> usize {
        self.n
    }

    fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.n + v.index()]
    }

    fn estimate_into(&self, pairs: &[(NodeId, NodeId)], out: &mut [u64]) {
        crate::check_batch_shape(pairs, out);
        for (slot, &(u, v)) in out.iter_mut().zip(pairs) {
            *slot = self.dist[u.index() * self.n + v.index()];
        }
    }

    fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let mut start = 0usize;
        while start < order.len() {
            let end = group_end(pairs, order, start);
            let u = pairs[order[start] as usize].0;
            let row = &self.dist[u.index() * self.n..u.index() * self.n + self.n];
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                *slot = row[pairs[i as usize].1.index()];
            }
            start = end;
        }
    }

    fn next_hop(&self, _u: NodeId, _v: NodeId) -> Option<NodeId> {
        None
    }

    fn route_into(&self, _u: NodeId, _v: NodeId, out: &mut TracedRoute) -> bool {
        out.nodes.clear();
        out.ports.clear();
        out.weight = 0;
        false
    }

    fn stretch_bound(&self) -> f64 {
        1.0
    }

    fn size_bits(&self) -> u64 {
        crate::snapshot::size_bits_of(self)
    }

    fn build_metrics(&self) -> &OracleBuildMetrics {
        &self.metrics
    }
}

// ----------------------------------------------------------- Flooding --

/// [`Backend::Flooding`]: exact distances and first hops computed locally
/// from the flooded topology (the OSPF baseline: `Θ(m)` state per node,
/// stretch 1).
pub struct FloodOracle {
    pub(crate) g: WGraph,
    pub(crate) topo: Topology,
    pub(crate) dist: Vec<u64>,
    /// First-hop matrix; `u32::MAX` on the diagonal.
    pub(crate) next: Vec<u32>,
    pub(crate) lsdb_edges: usize,
    pub(crate) metrics: OracleBuildMetrics,
}

impl DistanceOracle for FloodOracle {
    fn len(&self) -> usize {
        self.g.len()
    }

    fn estimate(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.g.len() + v.index()]
    }

    fn estimate_into(&self, pairs: &[(NodeId, NodeId)], out: &mut [u64]) {
        crate::check_batch_shape(pairs, out);
        let n = self.g.len();
        for (slot, &(u, v)) in out.iter_mut().zip(pairs) {
            *slot = self.dist[u.index() * n + v.index()];
        }
    }

    fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let n = self.g.len();
        let mut start = 0usize;
        while start < order.len() {
            let end = group_end(pairs, order, start);
            let u = pairs[order[start] as usize].0;
            let row = &self.dist[u.index() * n..u.index() * n + n];
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                *slot = row[pairs[i as usize].1.index()];
            }
            start = end;
        }
    }

    fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        let raw = self.next[u.index() * self.g.len() + v.index()];
        (raw != u32::MAX).then_some(NodeId(raw))
    }

    fn route_into(&self, u: NodeId, v: NodeId, out: &mut TracedRoute) -> bool {
        trace_next_hops_into(&self.topo, u, v, |x, dest| self.next_hop(x, dest), out)
    }

    fn stretch_bound(&self) -> f64 {
        1.0
    }

    fn size_bits(&self) -> u64 {
        crate::snapshot::size_bits_of(self)
    }

    fn build_metrics(&self) -> &OracleBuildMetrics {
        &self.metrics
    }

    fn topology(&self) -> Option<&Topology> {
        Some(&self.topo)
    }
}

// ------------------------------------------------------- construction --

/// The concrete backend behind an [`crate::Oracle`].
pub(crate) enum Inner {
    Pde(PdeOracle),
    Aps(ApsOracle),
    Rtc(RtcOracle),
    Compact(CompactOracle),
    Truncated(TruncatedOracle),
    Tz(TzOracle),
    Bf(BfOracle),
    Flood(FloodOracle),
}

impl Inner {
    pub(crate) fn as_dyn(&self) -> &dyn DistanceOracle {
        match self {
            Inner::Pde(o) => o,
            Inner::Aps(o) => o,
            Inner::Rtc(o) => o,
            Inner::Compact(o) => o,
            Inner::Truncated(o) => o,
            Inner::Tz(o) => o,
            Inner::Bf(o) => o,
            Inner::Flood(o) => o,
        }
    }
}

pub(crate) fn metrics(
    backend: Backend,
    n: usize,
    rounds: u64,
    messages: u64,
) -> OracleBuildMetrics {
    OracleBuildMetrics {
        backend,
        n,
        rounds,
        messages,
        build_nanos: 0,
    }
}

pub(crate) fn set_build_nanos(inner: &mut Inner, nanos: u64) {
    let m = match inner {
        Inner::Pde(o) => &mut o.metrics,
        Inner::Aps(o) => &mut o.metrics,
        Inner::Rtc(o) => &mut o.metrics,
        Inner::Compact(o) => &mut o.metrics,
        Inner::Truncated(o) => &mut o.metrics,
        Inner::Tz(o) => &mut o.metrics,
        Inner::Bf(o) => &mut o.metrics,
        Inner::Flood(o) => &mut o.metrics,
    };
    m.build_nanos = nanos;
}

pub(crate) fn build_inner(b: &OracleBuilder, g: &WGraph) -> Result<Inner, BuildError> {
    let n = g.len();
    // Uniform input contract: every scheme in this workspace builds on a
    // connected graph, so the rejection is typed and happens before any
    // pipeline stage can panic on it.
    if !g.is_connected() {
        return Err(BuildError::Disconnected { nodes: n });
    }
    if matches!(
        b.backend(),
        Backend::Pde | Backend::ApproxApsp | Backend::Rtc | Backend::Compact | Backend::Truncated
    ) && !(b.knob_eps() > 0.0 && b.knob_eps() <= 8.0)
    {
        return Err(BuildError::InvalidParam {
            what: "eps must be in (0, 8]",
        });
    }
    let inner = match b.backend() {
        Backend::Pde => {
            let sources = match b.knob_sources() {
                Some(s) => {
                    assert_eq!(s.len(), n, "one source flag per node");
                    s.to_vec()
                }
                None => vec![true; n],
            };
            let h = b.knob_horizon().unwrap_or(n as u64);
            let sigma = b.knob_sigma().unwrap_or(n);
            let params = PdeParams::new(h, sigma, b.knob_eps())
                .with_threads(b.knob_threads())
                .with_mode(b.knob_mode());
            let out = try_run_pde(g, &sources, &vec![false; n], &params)?;
            let m = metrics(
                Backend::Pde,
                n,
                out.metrics.total.rounds,
                out.metrics.total.messages,
            );
            Inner::Pde(PdeOracle {
                g: g.clone(),
                topo: g.to_topology(),
                routes: FlatTables::from_tables(&out.routes),
                eps: b.knob_eps(),
                h,
                sigma,
                metrics: m,
            })
        }
        Backend::ApproxApsp => {
            let a = try_approx_apsp_opts(g, b.knob_eps(), b.knob_threads(), b.knob_mode())?;
            let mut dist = vec![0u64; n * n];
            for u in g.nodes() {
                for v in g.nodes() {
                    dist[u.index() * n + v.index()] = a.dist(u, v);
                }
            }
            let m = metrics(
                Backend::ApproxApsp,
                n,
                a.pde.metrics.total.rounds,
                a.pde.metrics.total.messages,
            );
            Inner::Aps(ApsOracle {
                g: g.clone(),
                topo: g.to_topology(),
                dist,
                routes: FlatTables::from_tables(&a.pde.routes),
                eps: b.knob_eps(),
                metrics: m,
            })
        }
        Backend::Rtc => {
            let params = RtcParams {
                k: b.knob_k(),
                eps: b.knob_eps(),
                c: b.knob_c(),
                seed: b.knob_seed(),
                mode: b.knob_mode(),
                threads: b.knob_threads(),
            };
            let scheme = try_build_rtc(g, &params)?;
            let m = metrics(
                Backend::Rtc,
                n,
                scheme.metrics.total_rounds,
                scheme.metrics.total.messages,
            );
            Inner::Rtc(RtcOracle {
                scheme,
                k: b.knob_k(),
                eps: b.knob_eps(),
                metrics: m,
            })
        }
        Backend::Compact => {
            let params = CompactParams {
                k: b.knob_k(),
                eps: b.knob_eps(),
                c: b.knob_c(),
                seed: b.knob_seed(),
                horizon: b
                    .knob_horizon()
                    .map_or(HorizonMode::Lemma47, HorizonMode::Spd),
                mode: b.knob_mode(),
                threads: b.knob_threads(),
            };
            let scheme = try_build_hierarchy(g, &params)?;
            let m = metrics(
                Backend::Compact,
                n,
                scheme.metrics.total_rounds,
                scheme.metrics.total.messages,
            );
            Inner::Compact(CompactOracle {
                scheme,
                k: b.knob_k(),
                eps: b.knob_eps(),
                metrics: m,
            })
        }
        Backend::Truncated => {
            let k = b.knob_k();
            assert!(k >= 2, "Backend::Truncated needs k >= 2");
            let l0 = b.knob_l0().unwrap_or(k - 1);
            assert!(
                (1..k).contains(&l0),
                "Backend::Truncated needs l0 in 1..k (got l0={l0}, k={k})"
            );
            let params = CompactParams {
                k,
                eps: b.knob_eps(),
                c: b.knob_c(),
                seed: b.knob_seed(),
                horizon: HorizonMode::Lemma47,
                mode: b.knob_mode(),
                threads: b.knob_threads(),
            };
            let scheme = try_build_truncated(g, &params, l0, UpperMode::Local)?;
            let m = metrics(
                Backend::Truncated,
                n,
                scheme.metrics.total_rounds,
                scheme.metrics.total.messages,
            );
            Inner::Truncated(TruncatedOracle {
                scheme,
                k,
                eps: b.knob_eps(),
                metrics: m,
            })
        }
        Backend::ExactTz => {
            let scheme = ExactTz::new(g, b.knob_k(), b.knob_seed());
            let m = metrics(Backend::ExactTz, n, 0, 0);
            Inner::Tz(TzOracle {
                g: g.clone(),
                topo: g.to_topology(),
                scheme,
                k: b.knob_k(),
                metrics: m,
            })
        }
        Backend::BellmanFord => {
            // Both engines produce the exact distance matrix; the
            // simulation only adds the Θ(n²)-round measurement, so the
            // native build computes the identical artifact centrally.
            let (dist, m) = match b.knob_mode() {
                BuildMode::Simulated => {
                    let bf = bellman_ford_apsp(g);
                    let mut dist = vec![0u64; n * n];
                    for u in g.nodes() {
                        for v in g.nodes() {
                            dist[u.index() * n + v.index()] = bf.dist(u, v);
                        }
                    }
                    (
                        dist,
                        metrics(
                            Backend::BellmanFord,
                            n,
                            bf.metrics.rounds,
                            bf.metrics.messages,
                        ),
                    )
                }
                BuildMode::Native => {
                    let exact = graphs::algo::apsp(g);
                    let mut dist = vec![0u64; n * n];
                    for u in g.nodes() {
                        for v in g.nodes() {
                            dist[u.index() * n + v.index()] = exact.dist(u, v);
                        }
                    }
                    (dist, metrics(Backend::BellmanFord, n, 0, 0))
                }
            };
            Inner::Bf(BfOracle {
                n,
                dist,
                metrics: m,
            })
        }
        Backend::Flooding => {
            // The flooded artifact (exact distances + first hops + LSDB
            // size) is already computed centrally after the flood; the
            // native build skips the flood and keeps the identical
            // artifact.
            let (apsp, first_hops, lsdb_edges, m) = match b.knob_mode() {
                BuildMode::Simulated => {
                    let fl = flooding_apsp(g);
                    let m = metrics(Backend::Flooding, n, fl.metrics.rounds, fl.metrics.messages);
                    (fl.apsp, fl.first_hops, fl.lsdb_edges, m)
                }
                BuildMode::Native => {
                    let (apsp, first_hops) = graphs::algo::apsp_with_first_hops(g);
                    (
                        apsp,
                        first_hops,
                        g.num_edges(),
                        metrics(Backend::Flooding, n, 0, 0),
                    )
                }
            };
            let mut dist = vec![0u64; n * n];
            for u in g.nodes() {
                for v in g.nodes() {
                    dist[u.index() * n + v.index()] = apsp.dist(u, v);
                }
            }
            Inner::Flood(FloodOracle {
                g: g.clone(),
                topo: g.to_topology(),
                dist,
                next: first_hops,
                lsdb_edges,
                metrics: m,
            })
        }
    };
    Ok(inner)
}
