//! Crash-safe persistence for dynamic serving: an atomic checkpoint
//! (graph + snapshot) plus a checksummed delta write-ahead log.
//!
//! The durability contract mirrors what [`crate::DynamicOracle`]
//! actually mutates. A *checkpoint* captures one consistent state —
//! the live graph and the served snapshot, written via temp file +
//! `fsync` + rename so a crash leaves either the old file or the new
//! one, never a torn hybrid. Every applied repair then appends its
//! [`GraphDelta`] to the *WAL* before the swapped snapshot becomes
//! visible. Recovery is checkpoint + replay: re-running
//! [`oracle::OracleBuilder::repair`] for each logged delta reproduces
//! the live artifact **byte-identically** (repairs are deterministic
//! and rebuild-equivalent), which is the property `e16_chaos` pins.
//!
//! Two corruptions a crash can leave behind are handled explicitly:
//!
//! * **Torn tail** — the process died mid-append. Each WAL record is a
//!   [`congest::wire`] frame carrying a sequence number and an FNV-1a
//!   checksum; replay stops at the first truncated, misnumbered, or
//!   checksum-failing record and truncates the file back to the last
//!   good one. A half-written repair was never installed (the append
//!   happens first), so dropping it is correct, not lossy.
//! * **Checkpoint/WAL race** — the process died between writing a new
//!   checkpoint and resetting the WAL. Both files carry an *epoch*;
//!   a WAL whose epoch differs from the checkpoint's holds deltas
//!   already folded into that checkpoint, so recovery discards it
//!   instead of replaying deltas twice (which would fail or corrupt).
//!
//! The in-memory [`oracle::LivenessMask`] is deliberately **not**
//! persisted: a mask entry is a failure *observed but not yet
//! repaired*, and after a crash the honest state is "re-report what is
//! still down", not "trust a possibly stale mask".

use crate::ServeError;
use congest::wire::{self, invalid_data, WireReader, WireWriter};
use graphs::{GraphDelta, NodeId, WGraph};
use oracle::{BuildError, Oracle, RepairError};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 4] = b"PDWL";
const CKPT_MAGIC: &[u8; 4] = b"PDCK";
const PERSIST_VERSION: u16 = 1;
/// Header layout for both files: magic, version, reserved, epoch.
const HEADER_LEN: u64 = 4 + 2 + 2 + 8;
/// A WAL record is one delta plus bookkeeping — tiny. Bounding the
/// frame keeps a corrupted length prefix from provoking a giant
/// allocation during replay.
const MAX_WAL_RECORD: usize = 1 << 16;

/// Why a persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no (or a file was corrupt beyond the
    /// tolerated torn tail).
    Io(io::Error),
    /// Building the initial oracle failed
    /// ([`crate::DynamicOracle::install_persistent`]).
    Build(BuildError),
    /// Replaying a logged delta failed — the WAL disagrees with the
    /// checkpoint it claims to extend.
    Replay(RepairError),
    /// The serving layer rejected the operation (name not served).
    Serve(ServeError),
    /// The handle was created without persistence
    /// ([`crate::DynamicOracle::install`]), so there is nothing to
    /// checkpoint.
    NotPersistent,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence i/o failed: {e}"),
            PersistError::Build(e) => write!(f, "initial build failed: {e}"),
            PersistError::Replay(e) => write!(f, "wal replay failed: {e}"),
            PersistError::Serve(e) => write!(f, "{e}"),
            PersistError::NotPersistent => {
                write!(f, "this dynamic oracle was installed without persistence")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Build(e) => Some(e),
            PersistError::Replay(e) => Some(e),
            PersistError::Serve(e) => Some(e),
            PersistError::NotPersistent => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<BuildError> for PersistError {
    fn from(e: BuildError) -> Self {
        PersistError::Build(e)
    }
}

impl From<ServeError> for PersistError {
    fn from(e: ServeError) -> Self {
        PersistError::Serve(e)
    }
}

/// What [`crate::DynamicOracle::recover`] found and did.
#[derive(Clone, Copy, Debug)]
pub struct RecoverReport {
    /// Deltas replayed from the WAL on top of the checkpoint.
    pub deltas_replayed: u64,
    /// Whether the WAL ended in a torn (half-written) record that was
    /// truncated away.
    pub torn_tail: bool,
    /// Whether the WAL was discarded for predating the checkpoint (a
    /// crash between checkpoint write and WAL reset).
    pub stale_wal_discarded: bool,
    /// Wall-clock time spent replaying deltas.
    pub replay_nanos: u64,
    /// Generation of the recovered snapshot now being served.
    pub generation: u64,
}

// ------------------------------------------------------------ codec --

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const TAG_SET_WEIGHT: u8 = 1;
const TAG_FAIL_EDGE: u8 = 2;
const TAG_FAIL_NODE: u8 = 3;

fn encode_delta(w: &mut WireWriter<'_>, delta: &GraphDelta) -> io::Result<()> {
    match *delta {
        GraphDelta::SetWeight { u, v, w: weight } => {
            w.u8(TAG_SET_WEIGHT)?;
            w.u32(u.0)?;
            w.u32(v.0)?;
            w.u64(weight)
        }
        GraphDelta::FailEdge { u, v } => {
            w.u8(TAG_FAIL_EDGE)?;
            w.u32(u.0)?;
            w.u32(v.0)
        }
        GraphDelta::FailNode { v } => {
            w.u8(TAG_FAIL_NODE)?;
            w.u32(v.0)
        }
    }
}

fn decode_delta(r: &mut WireReader<'_>) -> io::Result<GraphDelta> {
    Ok(match r.u8()? {
        TAG_SET_WEIGHT => GraphDelta::SetWeight {
            u: NodeId(r.u32()?),
            v: NodeId(r.u32()?),
            w: r.u64()?,
        },
        TAG_FAIL_EDGE => GraphDelta::FailEdge {
            u: NodeId(r.u32()?),
            v: NodeId(r.u32()?),
        },
        TAG_FAIL_NODE => GraphDelta::FailNode {
            v: NodeId(r.u32()?),
        },
        tag => return Err(invalid_data(format!("unknown wal delta tag {tag}"))),
    })
}

fn write_header(sink: &mut dyn Write, magic: &[u8; 4], epoch: u64) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.bytes(magic)?;
    w.u16(PERSIST_VERSION)?;
    w.u16(0)?; // reserved
    w.u64(epoch)
}

fn read_header(source: &mut dyn Read, magic: &[u8; 4], what: &str) -> io::Result<u64> {
    let mut r = WireReader::new(source);
    let got = r.bytes(4)?;
    if got != magic {
        return Err(invalid_data(format!("{what}: bad magic {got:?}")));
    }
    let version = r.u16()?;
    if version != PERSIST_VERSION {
        return Err(invalid_data(format!(
            "{what}: version {version}, expected {PERSIST_VERSION}"
        )));
    }
    let _reserved = r.u16()?;
    r.u64()
}

// -------------------------------------------------------------- wal --

/// An append-only, checksummed log of applied [`GraphDelta`]s.
///
/// See the [module docs](self) for the format and the crash-recovery
/// semantics. Appends are flushed and `fdatasync`ed before returning,
/// so a delta acknowledged durable survives a crash immediately after.
#[derive(Debug)]
pub struct DeltaWal {
    file: File,
    path: PathBuf,
    epoch: u64,
    next_seq: u64,
    records: u64,
}

/// What [`DeltaWal::open`] recovered from an existing log.
#[derive(Debug)]
pub struct WalReplay {
    /// The valid records, in append order.
    pub deltas: Vec<GraphDelta>,
    /// Whether a torn tail was truncated away.
    pub torn_tail: bool,
    /// The log's epoch (matched against the checkpoint's by recovery).
    pub epoch: u64,
}

impl DeltaWal {
    /// Creates (or truncates) the log at `path` under `epoch`.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write failures.
    pub fn create(path: &Path, epoch: u64) -> io::Result<DeltaWal> {
        let mut file = File::create(path)?;
        write_header(&mut file, WAL_MAGIC, epoch)?;
        file.sync_all()?;
        Ok(DeltaWal {
            file,
            path: path.to_path_buf(),
            epoch,
            next_seq: 1,
            records: 0,
        })
    }

    /// Opens an existing log, replaying its records and truncating a
    /// torn tail (see the [module docs](self)); the handle is
    /// positioned for further appends.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a bad header (a torn *tail* is tolerated, a
    /// corrupt *head* is not — there is nothing to recover from it);
    /// otherwise the underlying i/o failure.
    pub fn open(path: &Path) -> io::Result<(DeltaWal, WalReplay)> {
        let mut reader = BufReader::new(File::open(path)?);
        let epoch = read_header(&mut reader, WAL_MAGIC, "delta wal")?;
        let mut deltas = Vec::new();
        let mut valid_len = HEADER_LEN;
        let mut next_seq = 1u64;
        let mut torn_tail = false;
        loop {
            match wire::read_frame(&mut reader, MAX_WAL_RECORD) {
                Ok(None) => break,
                Ok(Some(payload)) => match decode_record(&payload, next_seq) {
                    Some(delta) => {
                        deltas.push(delta);
                        next_seq += 1;
                        valid_len += 4 + payload.len() as u64;
                    }
                    None => {
                        torn_tail = true;
                        break;
                    }
                },
                Err(e) if wire::is_truncated(&e) => {
                    torn_tail = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        drop(reader);
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if torn_tail {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let records = deltas.len() as u64;
        Ok((
            DeltaWal {
                file,
                path: path.to_path_buf(),
                epoch,
                next_seq,
                records,
            },
            WalReplay {
                deltas,
                torn_tail,
                epoch,
            },
        ))
    }

    /// Appends one delta, durably (flush + sync), returning its
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Propagates the write or sync failure; on error the record may be
    /// half-written, which the next [`DeltaWal::open`] truncates away.
    pub fn append(&mut self, delta: &GraphDelta) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(32);
        {
            let mut w = WireWriter::new(&mut payload);
            w.u64(seq)?;
            encode_delta(&mut w, delta)?;
        }
        let checksum = fnv64(&payload);
        payload.extend_from_slice(&checksum.to_le_bytes());
        wire::write_frame(&mut self.file, &payload)?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.next_seq += 1;
        self.records += 1;
        Ok(seq)
    }

    /// Truncates the log back to an empty one under a new epoch —
    /// called after a checkpoint has folded the records in.
    ///
    /// # Errors
    ///
    /// Propagates the truncate/write failure.
    pub fn reset(&mut self, epoch: u64) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        write_header(&mut self.file, WAL_MAGIC, epoch)?;
        self.file.sync_all()?;
        self.epoch = epoch;
        self.next_seq = 1;
        self.records = 0;
        Ok(())
    }

    /// Records currently in the log (since the last reset/create).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decodes and verifies one WAL record; `None` means "treat as torn
/// tail" (bad checksum, wrong sequence number, malformed body).
fn decode_record(payload: &[u8], expected_seq: u64) -> Option<GraphDelta> {
    if payload.len() < 8 {
        return None;
    }
    let (body, tail) = payload.split_at(payload.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv64(body) != stored {
        return None;
    }
    let mut cursor = body;
    let mut r = WireReader::new(&mut cursor);
    let seq = r.u64().ok()?;
    if seq != expected_seq {
        return None;
    }
    let delta = decode_delta(&mut r).ok()?;
    if !cursor.is_empty() {
        return None; // trailing garbage inside a "valid" checksum
    }
    Some(delta)
}

// ------------------------------------------------------- checkpoint --

/// One consistent persisted state: epoch, graph, snapshot.
pub struct Checkpoint {
    /// The epoch this checkpoint was written under.
    pub epoch: u64,
    /// The graph the snapshot was built on.
    pub graph: WGraph,
    /// The decoded snapshot.
    pub oracle: Oracle,
}

/// Atomically writes a checkpoint (temp file + fsync + rename): a
/// crash mid-write leaves the previous checkpoint intact.
///
/// # Errors
///
/// Propagates the i/o failure; the temp file is cleaned up.
pub fn write_checkpoint(
    path: &Path,
    epoch: u64,
    graph: &WGraph,
    oracle: &Oracle,
) -> io::Result<()> {
    let mut snap = Vec::new();
    oracle.save_v3(&mut snap)?;
    let file_name = path.file_name().ok_or_else(|| {
        invalid_data(format!(
            "checkpoint path {} has no file name",
            path.display()
        ))
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut sink = io::BufWriter::new(File::create(&tmp)?);
        write_header(&mut sink, CKPT_MAGIC, epoch)?;
        graph.write_into(&mut sink)?;
        let mut w = WireWriter::new(&mut sink);
        w.u64(snap.len() as u64)?;
        w.bytes(&snap)?;
        let file = sink.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint back.
///
/// # Errors
///
/// `InvalidData` for corruption (checkpoints are written atomically, so
/// unlike a WAL tail this is never expected), otherwise the i/o
/// failure.
pub fn read_checkpoint(path: &Path) -> io::Result<Checkpoint> {
    let mut reader = BufReader::new(File::open(path)?);
    let epoch = read_header(&mut reader, CKPT_MAGIC, "checkpoint")?;
    let graph = WGraph::read_from(&mut reader)?;
    let mut r = WireReader::new(&mut reader);
    let snap_len = usize::try_from(r.u64()?)
        .map_err(|_| invalid_data("checkpoint snapshot length overflows usize"))?;
    if snap_len > wire::MAX_FRAME_LEN {
        return Err(invalid_data(format!(
            "checkpoint snapshot claims {snap_len} bytes"
        )));
    }
    let snap = r.bytes(snap_len)?;
    let oracle = Oracle::load_bytes(&snap)?;
    Ok(Checkpoint {
        epoch,
        graph,
        oracle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pde-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn some_deltas() -> Vec<GraphDelta> {
        vec![
            GraphDelta::SetWeight {
                u: NodeId(0),
                v: NodeId(1),
                w: 7,
            },
            GraphDelta::FailEdge {
                u: NodeId(2),
                v: NodeId(3),
            },
            GraphDelta::FailNode { v: NodeId(4) },
        ]
    }

    #[test]
    fn wal_round_trips_in_order() {
        let path = temp_path("wal-rt");
        let mut wal = DeltaWal::create(&path, 1).unwrap();
        for d in &some_deltas() {
            wal.append(d).unwrap();
        }
        assert_eq!(wal.records(), 3);
        drop(wal);
        let (wal, replay) = DeltaWal::open(&path).unwrap();
        assert_eq!(replay.deltas, some_deltas());
        assert!(!replay.torn_tail);
        assert_eq!(replay.epoch, 1);
        assert_eq!(wal.records(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = temp_path("wal-torn");
        let mut wal = DeltaWal::create(&path, 1).unwrap();
        for d in &some_deltas() {
            wal.append(d).unwrap();
        }
        drop(wal);
        // Tear the last record: chop a few bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let (mut wal, replay) = DeltaWal::open(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.deltas, some_deltas()[..2]);
        // The log keeps working after truncation, seq numbers intact.
        wal.append(&some_deltas()[2]).unwrap();
        drop(wal);
        let (_, replay) = DeltaWal::open(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.deltas.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checksum_stops_replay() {
        let path = temp_path("wal-sum");
        let mut wal = DeltaWal::create(&path, 1).unwrap();
        for d in &some_deltas() {
            wal.append(d).unwrap();
        }
        drop(wal);
        // Flip one byte inside the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let header = HEADER_LEN as usize;
        // Record layout: 4-byte frame length + payload. Skip record 1.
        let rec1_len =
            4 + u32::from_le_bytes(bytes[header..header + 4].try_into().unwrap()) as usize;
        let target = header + rec1_len + 4 + 9; // inside record 2's delta body
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = DeltaWal::open(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.deltas, some_deltas()[..1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_bumps_epoch_and_empties() {
        let path = temp_path("wal-reset");
        let mut wal = DeltaWal::create(&path, 1).unwrap();
        wal.append(&some_deltas()[0]).unwrap();
        wal.reset(2).unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.epoch(), 2);
        wal.append(&some_deltas()[1]).unwrap();
        drop(wal);
        let (_, replay) = DeltaWal::open(&path).unwrap();
        assert_eq!(replay.epoch, 2);
        assert_eq!(replay.deltas, vec![some_deltas()[1]]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_wal_head_is_a_hard_error() {
        let path = temp_path("wal-head");
        std::fs::write(&path, b"NOPE").unwrap();
        let err = DeltaWal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
