//! A long-lived, in-process serving front end over [`oracle::Oracle`].
//!
//! A built oracle is a read-only artifact; serving it is a lifecycle
//! problem: several oracles live side by side (one per graph, or one per
//! backend under comparison), snapshots are replaced while queries are in
//! flight, and callers want aggregate throughput without each inventing
//! its own batching. This crate is that layer, std-only:
//!
//! * [`OracleServer`] — a named registry of served oracles. Queries take
//!   a [`Lease`] (an `Arc` clone) on the current snapshot;
//!   [`OracleServer::install`] atomically swaps the snapshot under a
//!   short write lock. An old snapshot is **retired, not dropped**: every
//!   in-flight lease keeps it alive until its last batch finishes, so a
//!   hot swap never interrupts a query — readers drain off the old
//!   generation at their own pace (pinned by the `hot_swap_*` tests).
//! * [`OracleServer::install_shared`] — the cold-start path: decode a
//!   snapshot (v2 or v3, auto-detected via [`oracle::Oracle::load_shared`]),
//!   install it, and answer one probe query, reporting the measured
//!   bytes-to-first-answer time. A v3 snapshot is served as zero-copy
//!   views into the handed-over buffer. This is the number the v3 arena
//!   layout exists to shrink (see `BENCH_oracle.json`).
//!   [`OracleServer::install_from_bytes`] is the borrowed-slice variant
//!   (one defensive copy).
//! * [`Batcher`] — admission batching for one served name: concurrent
//!   small submissions are admitted into a shared slab for a short
//!   window, executed as **one** [`DistanceOracle::estimate_many_with`]
//!   call against a single leased snapshot, and the answer slab is split
//!   back per submitter. Each admitted group therefore sees one
//!   generation, and tiny callers inherit batch-path throughput.
//!
//! ```
//! use graphs::WGraph;
//! use oracle::{Backend, OracleBuilder};
//! use serve::OracleServer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = WGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 9)])?;
//! let server = OracleServer::new();
//! server.install("demo", OracleBuilder::new(Backend::Flooding).build(&g));
//! let pairs = vec![(graphs::NodeId(0), graphs::NodeId(2))];
//! let mut out = Vec::new();
//! server.query("demo", &pairs, &mut out, 1)?;
//! assert_eq!(out, vec![5]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use graphs::NodeId;
use oracle::{Backend, DistanceOracle, Oracle};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A serving error.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No oracle is installed under the requested name.
    UnknownOracle(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownOracle(name) => {
                write!(f, "no oracle installed under {name:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One installed snapshot: the oracle plus its serving bookkeeping.
///
/// Handed out behind an `Arc` by [`OracleServer::lease`]; the snapshot
/// stays valid (and its counters keep aggregating) for as long as any
/// lease exists, even after a newer generation is installed.
pub struct ServedOracle {
    oracle: Oracle,
    generation: u64,
    queries: AtomicU64,
    batches: AtomicU64,
}

impl ServedOracle {
    /// The served oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Monotone install generation (unique per [`OracleServer`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total queries answered through this snapshot.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total batches answered through this snapshot.
    pub fn batches_served(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Answers one batch on this snapshot, updating its counters.
    pub fn query(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<u64>, threads: usize) {
        self.oracle.estimate_many_with(pairs, out, threads);
        self.queries
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }
}

/// A clone of the `Arc` behind one served name — hold it to pin a
/// snapshot across several batches (a swap retires the old snapshot only
/// after the last lease drops).
pub type Lease = Arc<ServedOracle>;

/// What [`OracleServer::install`] replaced, if anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetiredSnapshot {
    /// Generation of the replaced snapshot.
    pub generation: u64,
    /// Leases still outstanding on it at swap time; it is dropped when
    /// the last of them finishes (0 = dropped at the swap itself).
    pub leases_in_flight: usize,
}

/// Report from [`OracleServer::install_from_bytes`]: identity of the
/// installed oracle plus the measured cold-start.
#[derive(Clone, Copy, Debug)]
pub struct InstallReport {
    /// Backend of the installed oracle.
    pub backend: Backend,
    /// Nodes covered.
    pub n: usize,
    /// Install generation.
    pub generation: u64,
    /// Bytes-in-memory to first answered query, in nanoseconds
    /// (decode + install + one probe estimate).
    pub cold_start_nanos: u64,
    /// The snapshot this install replaced, if the name was live.
    pub replaced: Option<RetiredSnapshot>,
}

/// A named registry of served oracles with hot snapshot swap.
#[derive(Default)]
pub struct OracleServer {
    oracles: RwLock<HashMap<String, Lease>>,
    next_generation: AtomicU64,
}

impl OracleServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or hot-swaps) `oracle` under `name`, returning the new
    /// generation and what was replaced. The swap is a pointer replace
    /// under a short write lock: queries already running keep their lease
    /// on the old snapshot and finish undisturbed; queries arriving after
    /// the swap lease the new one.
    pub fn install(&self, name: &str, oracle: Oracle) -> (u64, Option<RetiredSnapshot>) {
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(ServedOracle {
            oracle,
            generation,
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let old = self
            .oracles
            .write()
            .expect("oracle map lock poisoned")
            .insert(name.to_string(), snap);
        let replaced = old.map(|old| RetiredSnapshot {
            generation: old.generation,
            // The map held one count; what remains are live leases.
            leases_in_flight: Arc::strong_count(&old) - 1,
        });
        (generation, replaced)
    }

    /// Decodes a snapshot buffer (v2 or v3, auto-detected), installs it
    /// under `name`, answers one probe query, and reports the measured
    /// cold-start-to-first-answer time.
    ///
    /// # Errors
    ///
    /// Returns the decode error (`InvalidData` for malformed or truncated
    /// buffers) without touching the currently served snapshot.
    pub fn install_from_bytes(&self, name: &str, bytes: &[u8]) -> io::Result<InstallReport> {
        self.install_shared(name, congest::arena::SharedBytes::from_vec(bytes.to_vec()))
    }

    /// [`OracleServer::install_from_bytes`] without the defensive copy:
    /// the caller hands over a [`congest::arena::SharedBytes`] handle, and
    /// a v3 snapshot is served as views straight into that buffer — the
    /// zero-copy cold-start path the serving benchmark measures.
    ///
    /// # Errors
    ///
    /// As [`OracleServer::install_from_bytes`].
    pub fn install_shared(
        &self,
        name: &str,
        bytes: congest::arena::SharedBytes,
    ) -> io::Result<InstallReport> {
        let t0 = Instant::now();
        let oracle = Oracle::load_shared(bytes)?;
        let backend = oracle.backend();
        let n = oracle.len();
        let (generation, replaced) = self.install(name, oracle);
        let lease = self.lease(name).expect("just installed");
        let probe = (NodeId(0), NodeId(n.saturating_sub(1) as u32));
        std::hint::black_box(lease.oracle().estimate(probe.0, probe.1));
        let cold_start_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(InstallReport {
            backend,
            n,
            generation,
            cold_start_nanos,
            replaced,
        })
    }

    /// Removes `name`, returning its retirement state.
    pub fn remove(&self, name: &str) -> Option<RetiredSnapshot> {
        let old = self
            .oracles
            .write()
            .expect("oracle map lock poisoned")
            .remove(name)?;
        Some(RetiredSnapshot {
            generation: old.generation,
            leases_in_flight: Arc::strong_count(&old) - 1,
        })
    }

    /// Leases the current snapshot of `name` (an `Arc` clone; cheap).
    pub fn lease(&self, name: &str) -> Option<Lease> {
        self.oracles
            .read()
            .expect("oracle map lock poisoned")
            .get(name)
            .cloned()
    }

    /// The served names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .oracles
            .read()
            .expect("oracle map lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Answers one batch on the current snapshot of `name` (lease, run,
    /// release).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownOracle`] when `name` is not being served.
    pub fn query(
        &self,
        name: &str,
        pairs: &[(NodeId, NodeId)],
        out: &mut Vec<u64>,
        threads: usize,
    ) -> Result<u64, ServeError> {
        let lease = self
            .lease(name)
            .ok_or_else(|| ServeError::UnknownOracle(name.to_string()))?;
        lease.query(pairs, out, threads);
        Ok(lease.generation)
    }
}

// -------------------------------------------------- admission batching --

struct Pending {
    pairs: Vec<(NodeId, NodeId)>,
    slot: Arc<Slot>,
}

struct Slot {
    result: Mutex<Option<Result<Vec<u64>, ServeError>>>,
    ready: Condvar,
}

/// Admission batching for one served name: concurrent [`Batcher::submit`]
/// calls are merged into one slab and answered by a single
/// `estimate_many_with` call on a single leased snapshot.
///
/// The first submitter of an admission group becomes its *leader*: it
/// waits out the admission window (so concurrent submitters can join),
/// drains the queue, leases the snapshot once, runs the combined batch,
/// and distributes the answer slab back. Followers block on their slot.
/// One generation per group — a hot swap lands between groups, never
/// inside one.
pub struct Batcher {
    name: String,
    window: Duration,
    threads: usize,
    queue: Mutex<Vec<Pending>>,
}

impl Batcher {
    /// A batcher for the served `name` with the given admission window
    /// and `threads` knob for the combined batches (`0` = auto).
    pub fn new(name: &str, window: Duration, threads: usize) -> Self {
        Batcher {
            name: name.to_string(),
            window,
            threads,
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Submits `pairs` and blocks until the admission group they joined
    /// has been answered; returns this submission's answers (in pair
    /// order) and the generation that served them.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownOracle`] when the batcher's name is not being
    /// served at execution time (the whole group gets the error).
    ///
    /// # Panics
    ///
    /// Panics if a leader thread panicked mid-group (poisoned locks).
    pub fn submit(
        &self,
        server: &OracleServer,
        pairs: Vec<(NodeId, NodeId)>,
    ) -> Result<(Vec<u64>, u64), ServeError> {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let leader = {
            let mut q = self.queue.lock().expect("batch queue poisoned");
            let leader = q.is_empty();
            q.push(Pending {
                pairs,
                slot: Arc::clone(&slot),
            });
            leader
        };
        if leader {
            // Admit concurrent submitters, then execute the whole group.
            std::thread::sleep(self.window);
            let group: Vec<Pending> =
                std::mem::take(&mut *self.queue.lock().expect("batch queue poisoned"));
            self.execute(server, group);
        }
        let mut result = slot.result.lock().expect("batch slot poisoned");
        while result.is_none() {
            result = slot.ready.wait(result).expect("batch slot poisoned");
        }
        let answers = result.take().expect("checked above")?;
        let generation = server
            .lease(&self.name)
            .map(|l| l.generation)
            .unwrap_or_default();
        Ok((answers, generation))
    }

    fn execute(&self, server: &OracleServer, group: Vec<Pending>) {
        let outcome = match server.lease(&self.name) {
            Some(lease) => {
                let slab: Vec<(NodeId, NodeId)> =
                    group.iter().flat_map(|p| p.pairs.iter().copied()).collect();
                let mut out = Vec::new();
                lease.query(&slab, &mut out, self.threads);
                Ok(out)
            }
            None => Err(ServeError::UnknownOracle(self.name.clone())),
        };
        let mut offset = 0;
        for pending in group {
            let answer = match &outcome {
                Ok(out) => {
                    let take = pending.pairs.len();
                    let part = out[offset..offset + take].to_vec();
                    offset += take;
                    Ok(part)
                }
                Err(e) => Err(e.clone()),
            };
            *pending.slot.result.lock().expect("batch slot poisoned") = Some(answer);
            pending.slot.ready.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::WGraph;
    use oracle::OracleBuilder;

    fn ring(n: u32, w: u64) -> WGraph {
        let edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, w)).collect();
        WGraph::from_edges(n as usize, &edges).unwrap()
    }

    fn build(g: &WGraph) -> Oracle {
        OracleBuilder::new(Backend::Flooding).build(g)
    }

    #[test]
    fn install_query_and_remove() {
        let server = OracleServer::new();
        assert!(server.lease("a").is_none());
        let (g1, replaced) = server.install("a", build(&ring(8, 2)));
        assert_eq!((g1, replaced), (1, None));
        server.install("b", build(&ring(6, 1)));
        assert_eq!(server.names(), ["a", "b"]);
        let mut out = Vec::new();
        let generation = server
            .query(
                "a",
                &[(NodeId(0), NodeId(4)), (NodeId(2), NodeId(2))],
                &mut out,
                1,
            )
            .unwrap();
        assert_eq!((generation, out.as_slice()), (1, [8u64, 0].as_slice()));
        let lease = server.lease("a").unwrap();
        assert_eq!(lease.queries_served(), 2);
        assert_eq!(lease.batches_served(), 1);
        drop(lease);
        let retired = server.remove("a").unwrap();
        assert_eq!(retired.generation, 1);
        assert_eq!(retired.leases_in_flight, 0);
        assert!(matches!(
            server.query("a", &[], &mut out, 1),
            Err(ServeError::UnknownOracle(_))
        ));
    }

    #[test]
    fn hot_swap_keeps_old_snapshot_alive_for_leases() {
        let server = OracleServer::new();
        server.install("g", build(&ring(8, 1)));
        let old = server.lease("g").unwrap();
        let (new_generation, replaced) = server.install("g", build(&ring(8, 5)));
        assert_eq!(new_generation, 2);
        let replaced = replaced.unwrap();
        assert_eq!(replaced.generation, 1);
        assert_eq!(replaced.leases_in_flight, 1);
        // The in-flight lease still answers from the old snapshot …
        assert_eq!(old.oracle().estimate(NodeId(0), NodeId(1)), 1);
        // … while new queries see the new one.
        let mut out = Vec::new();
        server
            .query("g", &[(NodeId(0), NodeId(1))], &mut out, 1)
            .unwrap();
        assert_eq!(out, vec![5]);
        // Retirement completes when the last lease drops.
        drop(out);
        drop(old);
        let lease = server.lease("g").unwrap();
        assert_eq!(lease.generation(), 2);
    }

    #[test]
    fn install_from_bytes_reports_cold_start_for_both_versions() {
        let oracle = build(&ring(10, 3));
        let mut v2 = Vec::new();
        oracle.save(&mut v2).unwrap();
        let mut v3 = Vec::new();
        oracle.save_v3(&mut v3).unwrap();
        let server = OracleServer::new();
        for (name, bytes) in [("v2", &v2), ("v3", &v3)] {
            let report = server.install_from_bytes(name, bytes).unwrap();
            assert_eq!(report.backend, Backend::Flooding);
            assert_eq!(report.n, 10);
            assert!(report.cold_start_nanos > 0);
            assert!(report.replaced.is_none());
            let mut out = Vec::new();
            server
                .query(name, &[(NodeId(0), NodeId(5))], &mut out, 1)
                .unwrap();
            assert_eq!(out, vec![15]);
        }
        let err = server
            .install_from_bytes("bad", &v3[..v3.len() - 3])
            .unwrap_err();
        assert!(congest::wire::is_truncated(&err), "{err}");
        assert!(server.lease("bad").is_none());
    }

    #[test]
    fn batcher_merges_concurrent_submissions_into_one_generation() {
        let server = OracleServer::new();
        server.install("g", build(&ring(12, 2)));
        let batcher = Batcher::new("g", Duration::from_millis(20), 1);
        let expect: Vec<u64> = (1..=4u32)
            .map(|i| {
                let lease = server.lease("g").unwrap();
                lease.oracle().estimate(NodeId(0), NodeId(i))
            })
            .collect();
        let batches_before = server.lease("g").unwrap().batches_served();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=4u32)
                .map(|i| {
                    let (batcher, server) = (&batcher, &server);
                    scope.spawn(move || batcher.submit(server, vec![(NodeId(0), NodeId(i))]))
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let (answers, generation) = handle.join().unwrap().unwrap();
                assert_eq!(answers, vec![expect[i]]);
                assert_eq!(generation, 1);
            }
        });
        // Admission merged at least some submissions: fewer executed
        // batches than submissions (the window makes all-in-one likely,
        // but any grouping proves admission worked).
        let batches_after = server.lease("g").unwrap().batches_served();
        assert!(batches_after - batches_before <= 4);
        assert!(batches_after > batches_before);
        assert_eq!(server.lease("g").unwrap().queries_served(), 4);
    }

    #[test]
    fn batcher_reports_unknown_oracle_to_every_member() {
        let server = OracleServer::new();
        let batcher = Batcher::new("missing", Duration::from_millis(1), 1);
        let err = batcher
            .submit(&server, vec![(NodeId(0), NodeId(1))])
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownOracle("missing".into()));
    }
}
