//! A long-lived, in-process serving front end over [`oracle::Oracle`].
//!
//! A built oracle is a read-only artifact; serving it is a lifecycle
//! problem: several oracles live side by side (one per graph, or one per
//! backend under comparison), snapshots are replaced while queries are in
//! flight, and callers want aggregate throughput without each inventing
//! its own batching. This crate is that layer, std-only:
//!
//! * [`OracleServer`] — a named registry of served oracles. Queries take
//!   a [`Lease`] (an `Arc` clone) on the current snapshot;
//!   [`OracleServer::install`] atomically swaps the snapshot under a
//!   short write lock. An old snapshot is **retired, not dropped**: every
//!   in-flight lease keeps it alive until its last batch finishes, so a
//!   hot swap never interrupts a query — readers drain off the old
//!   generation at their own pace (pinned by the `hot_swap_*` tests).
//! * [`OracleServer::install_shared`] — the cold-start path: decode a
//!   snapshot (v2 or v3, auto-detected via [`oracle::Oracle::load_shared`]),
//!   install it, and answer one probe query, reporting the measured
//!   bytes-to-first-answer time. A v3 snapshot is served as zero-copy
//!   views into the handed-over buffer. This is the number the v3 arena
//!   layout exists to shrink (see `BENCH_oracle.json`).
//!   [`OracleServer::install_from_bytes`] is the borrowed-slice variant
//!   (one defensive copy).
//! * [`Batcher`] — admission batching for one served name: concurrent
//!   small submissions are admitted into a shared slab for a short
//!   window, executed as **one** [`DistanceOracle::estimate_many_with`]
//!   call against a single leased snapshot, and the answer slab is split
//!   back per submitter. Each admitted group therefore sees one
//!   generation, and tiny callers inherit batch-path throughput — since
//!   PR 10 that means the source-grouped schedule kernel: a merged slab
//!   big enough to cross the grouping gate is executed source-grouped
//!   and scattered back, so admission batching compounds with batch
//!   shape (answers stay byte-identical; the scheduling contract is in
//!   the `oracle::DistanceOracle` docs). A
//!   batcher can carry a *deadline* ([`Batcher::with_deadline`]): a
//!   submission whose group leader wedges times out with
//!   [`ServeError::Deadline`] instead of blocking forever, and
//!   [`Batcher::shutdown`] retires a batcher, failing queued and future
//!   submissions with [`ServeError::Retired`]. Batchers obtained through
//!   [`OracleServer::batcher`] are retired automatically when
//!   [`OracleServer::remove`] drops their name.
//! * [`DynamicOracle`] — the failure-aware lifecycle over one served
//!   name: it owns the live graph and a [`oracle::LivenessMask`],
//!   [`DynamicOracle::route`] detours around masked failures via
//!   [`oracle::route_with_failover`], and
//!   [`DynamicOracle::repair_and_swap`] repairs the artifact off the
//!   live snapshot ([`oracle::OracleBuilder::repair`]), hot-swaps it
//!   through the generation mechanism, and reports repair latency plus
//!   the stale-answer window (failure masked → repaired snapshot
//!   installed).
//!
//! ```
//! use graphs::WGraph;
//! use oracle::{Backend, OracleBuilder};
//! use serve::OracleServer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = WGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 9)])?;
//! let server = OracleServer::new();
//! server.install("demo", OracleBuilder::new(Backend::Flooding).build(&g));
//! let pairs = vec![(graphs::NodeId(0), graphs::NodeId(2))];
//! let mut out = Vec::new();
//! server.query("demo", &pairs, &mut out, 1)?;
//! assert_eq!(out, vec![5]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;

pub use persist::{Checkpoint, DeltaWal, PersistError, RecoverReport, WalReplay};

use graphs::{NodeId, WGraph};
use oracle::{
    route_with_failover, Backend, BuildError, DistanceOracle, FailoverOutcome, GraphDelta,
    LivenessMask, Oracle, OracleBuilder, RepairError, RepairReport, TracedRoute,
};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the data if a previous holder panicked.
///
/// Every mutex in this crate guards state that stays internally valid
/// across a panic (counters, maps of `Arc`s, an already-applied mask),
/// so propagating the poison would only convert one failed request into
/// a crashed server. The serving layer runs under panic isolation (see
/// `net`'s per-connection `catch_unwind`); recovering here is what
/// makes that isolation real.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A serving error.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No oracle is installed under the requested name.
    UnknownOracle(String),
    /// A batched submission waited past the batcher's deadline without
    /// being answered (its group leader wedged); the submission was
    /// withdrawn from the queue.
    Deadline(String),
    /// The batcher was shut down while (or before) the submission was
    /// queued.
    Retired(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownOracle(name) => {
                write!(f, "no oracle installed under {name:?}")
            }
            ServeError::Deadline(name) => {
                write!(
                    f,
                    "batched submission to {name:?} timed out past its deadline"
                )
            }
            ServeError::Retired(name) => {
                write!(f, "the batcher for {name:?} has been retired")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One installed snapshot: the oracle plus its serving bookkeeping.
///
/// Handed out behind an `Arc` by [`OracleServer::lease`]; the snapshot
/// stays valid (and its counters keep aggregating) for as long as any
/// lease exists, even after a newer generation is installed.
pub struct ServedOracle {
    oracle: Oracle,
    generation: u64,
    queries: AtomicU64,
    batches: AtomicU64,
}

impl ServedOracle {
    /// The served oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Monotone install generation (unique per [`OracleServer`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total queries answered through this snapshot.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total batches answered through this snapshot.
    pub fn batches_served(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Answers one batch on this snapshot, updating its counters.
    pub fn query(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<u64>, threads: usize) {
        self.oracle.estimate_many_with(pairs, out, threads);
        self.queries
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }
}

/// A clone of the `Arc` behind one served name — hold it to pin a
/// snapshot across several batches (a swap retires the old snapshot only
/// after the last lease drops).
pub type Lease = Arc<ServedOracle>;

/// Point-in-time serving counters for one name, as reported by
/// [`OracleServer::lease_stats`] (and relayed over the wire by the `net`
/// crate's `Stats` op).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseStats {
    /// Generation of the currently served snapshot.
    pub generation: u64,
    /// Queries answered through the current snapshot.
    pub queries_served: u64,
    /// Batches answered through the current snapshot.
    pub batches_served: u64,
    /// Leases outstanding on the current snapshot (excluding the
    /// registry's own).
    pub leases_in_flight: usize,
}

/// What [`OracleServer::install`] replaced, if anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetiredSnapshot {
    /// Generation of the replaced snapshot.
    pub generation: u64,
    /// Leases still outstanding on it at swap time; it is dropped when
    /// the last of them finishes (0 = dropped at the swap itself).
    pub leases_in_flight: usize,
}

/// Report from [`OracleServer::install_from_bytes`]: identity of the
/// installed oracle plus the measured cold-start.
#[derive(Clone, Copy, Debug)]
pub struct InstallReport {
    /// Backend of the installed oracle.
    pub backend: Backend,
    /// Nodes covered.
    pub n: usize,
    /// Install generation.
    pub generation: u64,
    /// Bytes-in-memory to first answered query, in nanoseconds
    /// (decode + install + one probe estimate).
    pub cold_start_nanos: u64,
    /// The snapshot this install replaced, if the name was live.
    pub replaced: Option<RetiredSnapshot>,
}

/// A named registry of served oracles with hot snapshot swap.
#[derive(Default)]
pub struct OracleServer {
    oracles: RwLock<HashMap<String, Lease>>,
    batchers: Mutex<HashMap<String, Vec<Arc<Batcher>>>>,
    next_generation: AtomicU64,
}

impl OracleServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or hot-swaps) `oracle` under `name`, returning the new
    /// generation and what was replaced. The swap is a pointer replace
    /// under a short write lock: queries already running keep their lease
    /// on the old snapshot and finish undisturbed; queries arriving after
    /// the swap lease the new one.
    pub fn install(&self, name: &str, oracle: Oracle) -> (u64, Option<RetiredSnapshot>) {
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(ServedOracle {
            oracle,
            generation,
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let old = self
            .oracles
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), snap);
        let replaced = old.map(|old| RetiredSnapshot {
            generation: old.generation,
            // The map held one count; what remains are live leases.
            leases_in_flight: Arc::strong_count(&old) - 1,
        });
        (generation, replaced)
    }

    /// Decodes a snapshot buffer (v2 or v3, auto-detected), installs it
    /// under `name`, answers one probe query, and reports the measured
    /// cold-start-to-first-answer time.
    ///
    /// # Errors
    ///
    /// Returns the decode error (`InvalidData` for malformed or truncated
    /// buffers) without touching the currently served snapshot.
    pub fn install_from_bytes(&self, name: &str, bytes: &[u8]) -> io::Result<InstallReport> {
        self.install_shared(name, congest::arena::SharedBytes::from_vec(bytes.to_vec()))
    }

    /// [`OracleServer::install_from_bytes`] without the defensive copy:
    /// the caller hands over a [`congest::arena::SharedBytes`] handle, and
    /// a v3 snapshot is served as views straight into that buffer — the
    /// zero-copy cold-start path the serving benchmark measures.
    ///
    /// # Errors
    ///
    /// As [`OracleServer::install_from_bytes`].
    pub fn install_shared(
        &self,
        name: &str,
        bytes: congest::arena::SharedBytes,
    ) -> io::Result<InstallReport> {
        let t0 = Instant::now();
        let oracle = Oracle::load_shared(bytes)?;
        let backend = oracle.backend();
        let n = oracle.len();
        let (generation, replaced) = self.install(name, oracle);
        let lease = self.lease(name).expect("just installed");
        let probe = (NodeId(0), NodeId(n.saturating_sub(1) as u32));
        std::hint::black_box(lease.oracle().estimate(probe.0, probe.1));
        let cold_start_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(InstallReport {
            backend,
            n,
            generation,
            cold_start_nanos,
            replaced,
        })
    }

    /// Installs a snapshot **file** under `name`: the file is read once
    /// into a [`congest::arena::SharedBytes`] buffer and goes through
    /// [`OracleServer::install_shared`] — the same single-copy cold
    /// start as [`oracle::Oracle::load_path`], plus the install/probe
    /// measurement. This is what the `net` protocol's `Install` op runs.
    ///
    /// # Errors
    ///
    /// The file-read error, or the decode error as
    /// [`OracleServer::install_from_bytes`]; the currently served
    /// snapshot is untouched either way.
    pub fn install_path(&self, name: &str, path: &std::path::Path) -> io::Result<InstallReport> {
        let bytes = congest::arena::SharedBytes::from_vec(std::fs::read(path)?);
        self.install_shared(name, bytes)
    }

    /// The serving counters of `name`'s current snapshot, or `None` when
    /// the name is not served. A cheap read (one lease clone) — safe to
    /// poll from a stats endpoint.
    pub fn lease_stats(&self, name: &str) -> Option<LeaseStats> {
        let lease = self.lease(name)?;
        Some(LeaseStats {
            generation: lease.generation,
            queries_served: lease.queries_served(),
            batches_served: lease.batches_served(),
            // One count for the registry map, one for `lease` itself.
            leases_in_flight: Arc::strong_count(&lease).saturating_sub(2),
        })
    }

    /// Removes `name`, returning its retirement state. Batchers obtained
    /// through [`OracleServer::batcher`] for this name are shut down:
    /// queued and future submissions on them fail with
    /// [`ServeError::Retired`] instead of hanging on a name that will
    /// never answer again.
    pub fn remove(&self, name: &str) -> Option<RetiredSnapshot> {
        let old = self
            .oracles
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)?;
        let batchers = self
            .batchers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .unwrap_or_default();
        for batcher in batchers {
            batcher.shutdown();
        }
        Some(RetiredSnapshot {
            generation: old.generation,
            leases_in_flight: Arc::strong_count(&old) - 1,
        })
    }

    /// A [`Batcher`] for `name`, registered with this server: when
    /// [`OracleServer::remove`] drops the name, the batcher is retired
    /// cleanly. The batcher itself works against whatever server is
    /// passed to [`Batcher::submit`]; registration only ties its
    /// lifecycle to this one. `deadline` bounds how long a submission
    /// waits for its group (see [`Batcher::with_deadline`]).
    pub fn batcher(
        &self,
        name: &str,
        window: Duration,
        threads: usize,
        deadline: Option<Duration>,
    ) -> Arc<Batcher> {
        let mut batcher = Batcher::new(name, window, threads);
        if let Some(deadline) = deadline {
            batcher = batcher.with_deadline(deadline);
        }
        let batcher = Arc::new(batcher);
        self.batchers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .push(Arc::clone(&batcher));
        batcher
    }

    /// Leases the current snapshot of `name` (an `Arc` clone; cheap).
    pub fn lease(&self, name: &str) -> Option<Lease> {
        self.oracles
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// The served names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .oracles
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Answers one batch on the current snapshot of `name` (lease, run,
    /// release).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownOracle`] when `name` is not being served.
    pub fn query(
        &self,
        name: &str,
        pairs: &[(NodeId, NodeId)],
        out: &mut Vec<u64>,
        threads: usize,
    ) -> Result<u64, ServeError> {
        let lease = self
            .lease(name)
            .ok_or_else(|| ServeError::UnknownOracle(name.to_string()))?;
        lease.query(pairs, out, threads);
        Ok(lease.generation)
    }
}

// -------------------------------------------------- admission batching --

struct Pending {
    pairs: Vec<(NodeId, NodeId)>,
    slot: Arc<Slot>,
}

struct Slot {
    result: Mutex<Option<Result<Vec<u64>, ServeError>>>,
    ready: Condvar,
}

struct BatchState {
    queue: Vec<Pending>,
    retired: bool,
}

/// Admission batching for one served name: concurrent [`Batcher::submit`]
/// calls are merged into one slab and answered by a single
/// `estimate_many_with` call on a single leased snapshot.
///
/// The first submitter of an admission group becomes its *leader*: it
/// waits out the admission window (so concurrent submitters can join),
/// drains the queue, leases the snapshot once, runs the combined batch,
/// and distributes the answer slab back. Followers block on their slot.
/// One generation per group — a hot swap lands between groups, never
/// inside one.
///
/// Two escape hatches keep a submission from blocking forever:
/// [`Batcher::with_deadline`] bounds the wait for a wedged leader with
/// [`ServeError::Deadline`], and [`Batcher::shutdown`] retires the
/// batcher, failing queued and future submissions with
/// [`ServeError::Retired`].
pub struct Batcher {
    name: String,
    window: Duration,
    threads: usize,
    deadline: Option<Duration>,
    state: Mutex<BatchState>,
    submissions: AtomicU64,
    groups: AtomicU64,
    grouped_pairs: AtomicU64,
    largest_group: AtomicU64,
}

/// Admission-occupancy counters for one [`Batcher`] — how well the
/// window is merging concurrent submissions. `submissions / groups` is
/// the mean occupancy; the `net` crate's `Stats` op relays these so
/// batch efficiency is observable on a live server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Submissions accepted (each [`Batcher::submit`] that queued).
    pub submissions: u64,
    /// Admission groups executed (one `estimate_many_with` call each).
    pub groups: u64,
    /// Total pairs across all executed groups.
    pub grouped_pairs: u64,
    /// Largest group executed, in submissions.
    pub largest_group: u64,
}

impl Batcher {
    /// A batcher for the served `name` with the given admission window
    /// and `threads` knob for the combined batches (`0` = auto).
    pub fn new(name: &str, window: Duration, threads: usize) -> Self {
        Batcher {
            name: name.to_string(),
            window,
            threads,
            deadline: None,
            state: Mutex::new(BatchState {
                queue: Vec::new(),
                retired: false,
            }),
            submissions: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            grouped_pairs: AtomicU64::new(0),
            largest_group: AtomicU64::new(0),
        }
    }

    /// Point-in-time admission-occupancy counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            submissions: self.submissions.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            grouped_pairs: self.grouped_pairs.load(Ordering::Relaxed),
            largest_group: self.largest_group.load(Ordering::Relaxed),
        }
    }

    /// The served name this batcher admits for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bounds how long [`Batcher::submit`] waits for its group's answer
    /// once queued. If the group leader wedges (never executes), the
    /// submission withdraws itself from the queue after `deadline` and
    /// returns [`ServeError::Deadline`] instead of blocking forever. The
    /// deadline should comfortably exceed the admission window plus the
    /// expected batch execution time; it exists for liveness, not pacing.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Retires the batcher: every queued submission is failed with
    /// [`ServeError::Retired`] (waiters wake immediately) and future
    /// submissions are rejected up front. Idempotent. Called
    /// automatically by [`OracleServer::remove`] for batchers obtained
    /// through [`OracleServer::batcher`].
    pub fn shutdown(&self) {
        let abandoned = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.retired = true;
            std::mem::take(&mut state.queue)
        };
        for pending in abandoned {
            *pending
                .slot
                .result
                .lock()
                .unwrap_or_else(PoisonError::into_inner) =
                Some(Err(ServeError::Retired(self.name.clone())));
            pending.slot.ready.notify_one();
        }
    }

    /// Submits `pairs` and blocks until the admission group they joined
    /// has been answered; returns this submission's answers (in pair
    /// order) and the generation that served them.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownOracle`] when the batcher's name is not being
    /// served at execution time (the whole group gets the error);
    /// [`ServeError::Retired`] when the batcher has been shut down;
    /// [`ServeError::Deadline`] when a deadline is configured and the
    /// group's answer did not arrive in time.
    ///
    /// # Panics
    ///
    /// Panics if a leader thread panicked mid-group (poisoned locks).
    pub fn submit(
        &self,
        server: &OracleServer,
        pairs: Vec<(NodeId, NodeId)>,
    ) -> Result<(Vec<u64>, u64), ServeError> {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let leader = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if state.retired {
                return Err(ServeError::Retired(self.name.clone()));
            }
            let leader = state.queue.is_empty();
            state.queue.push(Pending {
                pairs,
                slot: Arc::clone(&slot),
            });
            self.submissions.fetch_add(1, Ordering::Relaxed);
            leader
        };
        if leader {
            // Admit concurrent submitters, then execute the whole group.
            std::thread::sleep(self.window);
            let group: Vec<Pending> = std::mem::take(
                &mut self
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .queue,
            );
            self.execute(server, group);
        }
        let mut result = slot.result.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(deadline) = self.deadline {
            let give_up = Instant::now() + deadline;
            while result.is_none() {
                let now = Instant::now();
                if now >= give_up {
                    // Unanswered past the deadline: withdraw from the
                    // queue (the slot lock is released first — shutdown
                    // takes the locks in the opposite order).
                    drop(result);
                    self.state
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .queue
                        .retain(|p| !Arc::ptr_eq(&p.slot, &slot));
                    return Err(ServeError::Deadline(self.name.clone()));
                }
                let (guard, _) = slot
                    .ready
                    .wait_timeout(result, give_up - now)
                    .unwrap_or_else(PoisonError::into_inner);
                result = guard;
            }
        } else {
            while result.is_none() {
                result = slot
                    .ready
                    .wait(result)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let answers = result.take().expect("checked above")?;
        let generation = server
            .lease(&self.name)
            .map(|l| l.generation)
            .unwrap_or_default();
        Ok((answers, generation))
    }

    fn execute(&self, server: &OracleServer, group: Vec<Pending>) {
        if group.is_empty() {
            // A shutdown raced the leader's admission window and already
            // failed the whole group (including the leader's own slot).
            return;
        }
        self.groups.fetch_add(1, Ordering::Relaxed);
        self.largest_group
            .fetch_max(group.len() as u64, Ordering::Relaxed);
        let outcome = match server.lease(&self.name) {
            Some(lease) => {
                let slab: Vec<(NodeId, NodeId)> =
                    group.iter().flat_map(|p| p.pairs.iter().copied()).collect();
                self.grouped_pairs
                    .fetch_add(slab.len() as u64, Ordering::Relaxed);
                let mut out = Vec::new();
                lease.query(&slab, &mut out, self.threads);
                Ok(out)
            }
            None => Err(ServeError::UnknownOracle(self.name.clone())),
        };
        let mut offset = 0;
        for pending in group {
            let answer = match &outcome {
                Ok(out) => {
                    let take = pending.pairs.len();
                    let part = out[offset..offset + take].to_vec();
                    offset += take;
                    Ok(part)
                }
                Err(e) => Err(e.clone()),
            };
            *pending
                .slot
                .result
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(answer);
            pending.slot.ready.notify_one();
        }
    }
}

// ---------------------------------------------------- dynamic serving --

/// Why [`DynamicOracle::repair_and_swap`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairSwapError {
    /// The serving layer rejected the operation (name not served).
    Serve(ServeError),
    /// The repair itself failed (bad delta, rebuild error).
    Repair(RepairError),
    /// The repair succeeded but its delta could not be made durable
    /// (WAL append failed), so the swap was **not** installed: serving
    /// an artifact whose repair would vanish on restart would break the
    /// crash-recovery guarantee. The served snapshot, graph, and mask
    /// are unchanged; the failure stays masked and routed around.
    Persist(String),
}

impl fmt::Display for RepairSwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairSwapError::Serve(e) => write!(f, "{e}"),
            RepairSwapError::Repair(e) => write!(f, "{e}"),
            RepairSwapError::Persist(msg) => {
                write!(f, "repair not installed, wal append failed: {msg}")
            }
        }
    }
}

impl std::error::Error for RepairSwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepairSwapError::Serve(e) => Some(e),
            RepairSwapError::Repair(e) => Some(e),
            RepairSwapError::Persist(_) => None,
        }
    }
}

impl From<ServeError> for RepairSwapError {
    fn from(e: ServeError) -> Self {
        RepairSwapError::Serve(e)
    }
}

impl From<RepairError> for RepairSwapError {
    fn from(e: RepairError) -> Self {
        RepairSwapError::Repair(e)
    }
}

/// What [`DynamicOracle::repair_and_swap`] did.
#[derive(Clone, Copy, Debug)]
pub struct RepairSwapReport {
    /// Generation of the repaired snapshot that is now being served.
    pub generation: u64,
    /// The snapshot the swap replaced.
    pub replaced: Option<RetiredSnapshot>,
    /// What the repair itself did and cost ([`oracle::RepairKind`],
    /// repair nanos).
    pub repair: RepairReport,
    /// Stale-answer window in nanoseconds: from the moment the failure
    /// was masked (or the repair started, for a weight change) until the
    /// repaired snapshot was installed. Estimates served inside this
    /// window came from the pre-delta artifact; routes were already
    /// detouring via the mask.
    pub stale_window_nanos: u64,
}

struct DynState {
    graph: WGraph,
    mask: LivenessMask,
    masked_at: Option<Instant>,
    /// Present on persistent handles: every applied repair is appended
    /// here *before* the swapped snapshot becomes visible.
    wal: Option<DeltaWal>,
}

/// The failure-aware lifecycle over one served name.
///
/// A [`DynamicOracle`] owns the graph its snapshot was built on and a
/// [`LivenessMask`] of failures reported but not yet repaired into the
/// artifact. The intended cycle:
///
/// 1. a failure is reported → [`DynamicOracle::fail_edge`] /
///    [`DynamicOracle::fail_node`] mask it *immediately* (cheap, no
///    rebuild). From this instant [`DynamicOracle::route`] detours
///    around it; estimates still come from the pre-failure artifact —
///    the *stale-answer window* has opened.
/// 2. [`DynamicOracle::repair_and_swap`] repairs the artifact off the
///    live snapshot ([`OracleBuilder::repair`] — incremental where the
///    backend allows, an honest rebuild where it doesn't), hot-swaps it
///    under the same name, unmasks what the artifact now reflects, and
///    reports the measured window.
///
/// Installs under the managed name must go through this type (the
/// constructor and `repair_and_swap`); a bare [`OracleServer::install`]
/// under the same name would desynchronize graph, mask, and artifact.
pub struct DynamicOracle {
    name: String,
    builder: OracleBuilder,
    /// Present on persistent handles: where checkpoints are written.
    ckpt_path: Option<std::path::PathBuf>,
    state: Mutex<DynState>,
}

impl DynamicOracle {
    /// Builds `builder`'s oracle on `g` (typed errors, no panic on bad
    /// input), installs it on `server` under `name`, and returns the
    /// dynamic lifecycle handle with an all-alive mask.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from [`OracleBuilder::try_build`].
    pub fn install(
        server: &OracleServer,
        name: &str,
        builder: OracleBuilder,
        g: &WGraph,
    ) -> Result<Self, BuildError> {
        let oracle = builder.try_build(g)?;
        server.install(name, oracle);
        Ok(DynamicOracle {
            name: name.to_string(),
            builder,
            ckpt_path: None,
            state: Mutex::new(DynState {
                graph: g.clone(),
                mask: LivenessMask::new(g.len()),
                masked_at: None,
                wal: None,
            }),
        })
    }

    /// [`DynamicOracle::install`] with crash-safe persistence: writes a
    /// checkpoint (`<dir>/<name>.ckpt`, graph + snapshot, atomically)
    /// and opens a fresh delta WAL (`<dir>/<name>.wal`). Every
    /// subsequent [`DynamicOracle::repair_and_swap`] logs its delta
    /// durably before installing, so [`DynamicOracle::recover`] can
    /// reproduce the served artifact byte-identically after a crash.
    ///
    /// # Errors
    ///
    /// [`PersistError::Build`] when the oracle cannot be built,
    /// [`PersistError::Io`] when the checkpoint or WAL cannot be
    /// written (nothing is installed on the server in either case).
    pub fn install_persistent(
        server: &OracleServer,
        name: &str,
        builder: OracleBuilder,
        g: &WGraph,
        dir: &std::path::Path,
    ) -> Result<Self, PersistError> {
        let oracle = builder.try_build(g)?;
        let ckpt_path = dir.join(format!("{name}.ckpt"));
        let wal_path = dir.join(format!("{name}.wal"));
        persist::write_checkpoint(&ckpt_path, 1, g, &oracle)?;
        let wal = DeltaWal::create(&wal_path, 1)?;
        server.install(name, oracle);
        Ok(DynamicOracle {
            name: name.to_string(),
            builder,
            ckpt_path: Some(ckpt_path),
            state: Mutex::new(DynState {
                graph: g.clone(),
                mask: LivenessMask::new(g.len()),
                masked_at: None,
                wal: Some(wal),
            }),
        })
    }

    /// Rebuilds the persisted state from `dir` after a crash or
    /// restart: loads `<name>.ckpt`, replays `<name>.wal` by re-running
    /// [`OracleBuilder::repair`] for each logged delta (repairs are
    /// deterministic, so the result is **byte-identical** to the
    /// artifact that was live when the last repair was acknowledged),
    /// installs it on `server`, and returns a persistent handle plus a
    /// [`RecoverReport`].
    ///
    /// A torn WAL tail (crash mid-append) is truncated away — that
    /// repair was never installed, so dropping it is correct. A WAL
    /// whose epoch predates the checkpoint (crash between checkpoint
    /// write and WAL reset) is discarded: its deltas are already folded
    /// into the checkpoint. The liveness mask starts clear — a mask
    /// entry is an *unrepaired* observation, and after a restart the
    /// honest state is "re-report what is still down".
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] for missing/corrupt files,
    /// [`PersistError::Replay`] when a logged delta no longer applies —
    /// the files disagree and serving from them would be a lie.
    pub fn recover(
        server: &OracleServer,
        name: &str,
        builder: OracleBuilder,
        dir: &std::path::Path,
    ) -> Result<(Self, RecoverReport), PersistError> {
        let ckpt_path = dir.join(format!("{name}.ckpt"));
        let wal_path = dir.join(format!("{name}.wal"));
        let ckpt = persist::read_checkpoint(&ckpt_path)?;
        let (mut wal, replay) = DeltaWal::open(&wal_path)?;
        let t0 = Instant::now();
        let mut graph = ckpt.graph;
        let mut oracle = ckpt.oracle;
        let mut deltas_replayed = 0u64;
        let stale_wal_discarded = replay.epoch != ckpt.epoch;
        if stale_wal_discarded {
            wal.reset(ckpt.epoch)?;
        } else {
            for delta in &replay.deltas {
                let repaired = builder
                    .repair(&graph, &oracle, delta)
                    .map_err(PersistError::Replay)?;
                graph = repaired.graph;
                oracle = repaired.oracle;
                deltas_replayed += 1;
            }
        }
        let replay_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (generation, _) = server.install(name, oracle);
        let handle = DynamicOracle {
            name: name.to_string(),
            builder,
            ckpt_path: Some(ckpt_path),
            state: Mutex::new(DynState {
                mask: LivenessMask::new(graph.len()),
                graph,
                masked_at: None,
                wal: Some(wal),
            }),
        };
        Ok((
            handle,
            RecoverReport {
                deltas_replayed,
                torn_tail: replay.torn_tail,
                stale_wal_discarded,
                replay_nanos,
                generation,
            },
        ))
    }

    /// Folds the WAL into a fresh checkpoint: writes the current graph
    /// and served snapshot atomically under a bumped epoch, then resets
    /// the WAL to that epoch. Bounds recovery replay time after long
    /// repair histories. A crash between the two steps is benign:
    /// [`DynamicOracle::recover`] sees the epoch mismatch and discards
    /// the stale WAL.
    ///
    /// Returns the number of WAL records folded in.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotPersistent`] on a handle from
    /// [`DynamicOracle::install`]; [`PersistError::Serve`] when the
    /// name is no longer served; [`PersistError::Io`] when a file
    /// operation fails.
    pub fn checkpoint(&self, server: &OracleServer) -> Result<u64, PersistError> {
        let mut state = lock_recover(&self.state);
        let ckpt_path = self.ckpt_path.as_ref().ok_or(PersistError::NotPersistent)?;
        let lease = server
            .lease(&self.name)
            .ok_or_else(|| ServeError::UnknownOracle(self.name.clone()))?;
        let wal = state.wal.as_ref().ok_or(PersistError::NotPersistent)?;
        let folded = wal.records();
        let epoch = wal.epoch() + 1;
        persist::write_checkpoint(ckpt_path, epoch, &state.graph, lease.oracle())?;
        state.wal.as_mut().expect("checked above").reset(epoch)?;
        Ok(folded)
    }

    /// Deltas currently in the WAL (0 for a non-persistent handle).
    pub fn wal_records(&self) -> u64 {
        lock_recover(&self.state)
            .wal
            .as_ref()
            .map_or(0, DeltaWal::records)
    }

    /// The served name this lifecycle manages.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph the currently served snapshot was built on.
    pub fn graph(&self) -> WGraph {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .clone()
    }

    /// A snapshot of the current liveness mask.
    pub fn mask(&self) -> LivenessMask {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .mask
            .clone()
    }

    /// Masks edge `{u, v}` as failed, effective immediately for
    /// [`DynamicOracle::route`]. Opens the stale-answer window if it is
    /// not already open. Call [`DynamicOracle::repair_and_swap`] with
    /// [`GraphDelta::FailEdge`] to fold the failure into the artifact.
    pub fn fail_edge(&self, u: NodeId, v: NodeId) {
        let mut state = lock_recover(&self.state);
        state.mask.fail_edge(u, v);
        state.masked_at.get_or_insert_with(Instant::now);
    }

    /// Masks node `v` as failed (and with it every incident edge),
    /// effective immediately for [`DynamicOracle::route`].
    pub fn fail_node(&self, v: NodeId) {
        let mut state = lock_recover(&self.state);
        state.mask.fail_node(v);
        state.masked_at.get_or_insert_with(Instant::now);
    }

    /// Routes `u → v` on the current snapshot, detouring around masked
    /// failures via [`route_with_failover`]. With a clear mask this is
    /// the oracle's own route; with failures it degrades to a detour (or
    /// an honest [`FailoverOutcome::Unroutable`]) instead of returning a
    /// path through dead links.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownOracle`] when the name is no longer served.
    pub fn route(
        &self,
        server: &OracleServer,
        u: NodeId,
        v: NodeId,
        out: &mut TracedRoute,
    ) -> Result<FailoverOutcome, ServeError> {
        let state = lock_recover(&self.state);
        let lease = server
            .lease(&self.name)
            .ok_or_else(|| ServeError::UnknownOracle(self.name.clone()))?;
        Ok(route_with_failover(lease.oracle(), &state.mask, u, v, out))
    }

    /// Repairs the served artifact for `delta` off the live snapshot and
    /// hot-swaps the result in.
    ///
    /// Failure deltas are masked first (idempotent if the caller already
    /// did), so routing detours even while the repair runs. The repair
    /// itself works on a lease — in-flight queries drain off the old
    /// generation undisturbed — and the swap goes through
    /// [`OracleServer::install`]. Afterwards the mask entry the artifact
    /// now covers is lifted (a node failure resets the mask: the id
    /// space was renumbered), and the report carries the repair cost
    /// plus the measured stale-answer window.
    ///
    /// # Errors
    ///
    /// [`RepairSwapError::Serve`] when the name is not served;
    /// [`RepairSwapError::Repair`] when the delta does not apply (the
    /// mask keeps the failure: a delta that would disconnect the graph
    /// stays masked, routed around, and unrepaired).
    pub fn repair_and_swap(
        &self,
        server: &OracleServer,
        delta: &GraphDelta,
    ) -> Result<RepairSwapReport, RepairSwapError> {
        let t0 = Instant::now();
        let mut state = lock_recover(&self.state);
        match *delta {
            GraphDelta::FailEdge { u, v } => {
                state.mask.fail_edge(u, v);
                state.masked_at.get_or_insert(t0);
            }
            GraphDelta::FailNode { v } => {
                state.mask.fail_node(v);
                state.masked_at.get_or_insert(t0);
            }
            GraphDelta::SetWeight { .. } => {}
        }
        let lease = server
            .lease(&self.name)
            .ok_or_else(|| ServeError::UnknownOracle(self.name.clone()))?;
        let repaired = self.builder.repair(&state.graph, lease.oracle(), delta)?;
        drop(lease);
        // Durability before visibility: on a persistent handle the
        // delta must hit the WAL before the repaired snapshot is
        // installed, or a crash right after the swap would serve
        // answers that recovery cannot reproduce.
        if let Some(wal) = state.wal.as_mut() {
            wal.append(delta)
                .map_err(|e| RepairSwapError::Persist(e.to_string()))?;
        }
        let (generation, replaced) = server.install(&self.name, repaired.oracle);
        let window = state.masked_at.unwrap_or(t0).elapsed();
        let stale_window_nanos = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        state.graph = repaired.graph;
        match *delta {
            GraphDelta::FailEdge { u, v } => state.mask.revive_edge(u, v),
            // Node failure renumbered the id space; stale masked ids
            // would point at the wrong nodes.
            GraphDelta::FailNode { .. } => state.mask = LivenessMask::new(state.graph.len()),
            GraphDelta::SetWeight { .. } => {}
        }
        if state.mask.is_clear() {
            state.masked_at = None;
        }
        Ok(RepairSwapReport {
            generation,
            replaced,
            repair: repaired.report,
            stale_window_nanos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::WGraph;
    use oracle::OracleBuilder;

    fn ring(n: u32, w: u64) -> WGraph {
        let edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, w)).collect();
        WGraph::from_edges(n as usize, &edges).unwrap()
    }

    fn build(g: &WGraph) -> Oracle {
        OracleBuilder::new(Backend::Flooding).build(g)
    }

    #[test]
    fn install_query_and_remove() {
        let server = OracleServer::new();
        assert!(server.lease("a").is_none());
        let (g1, replaced) = server.install("a", build(&ring(8, 2)));
        assert_eq!((g1, replaced), (1, None));
        server.install("b", build(&ring(6, 1)));
        assert_eq!(server.names(), ["a", "b"]);
        let mut out = Vec::new();
        let generation = server
            .query(
                "a",
                &[(NodeId(0), NodeId(4)), (NodeId(2), NodeId(2))],
                &mut out,
                1,
            )
            .unwrap();
        assert_eq!((generation, out.as_slice()), (1, [8u64, 0].as_slice()));
        let lease = server.lease("a").unwrap();
        assert_eq!(lease.queries_served(), 2);
        assert_eq!(lease.batches_served(), 1);
        drop(lease);
        let retired = server.remove("a").unwrap();
        assert_eq!(retired.generation, 1);
        assert_eq!(retired.leases_in_flight, 0);
        assert!(matches!(
            server.query("a", &[], &mut out, 1),
            Err(ServeError::UnknownOracle(_))
        ));
    }

    #[test]
    fn hot_swap_keeps_old_snapshot_alive_for_leases() {
        let server = OracleServer::new();
        server.install("g", build(&ring(8, 1)));
        let old = server.lease("g").unwrap();
        let (new_generation, replaced) = server.install("g", build(&ring(8, 5)));
        assert_eq!(new_generation, 2);
        let replaced = replaced.unwrap();
        assert_eq!(replaced.generation, 1);
        assert_eq!(replaced.leases_in_flight, 1);
        // The in-flight lease still answers from the old snapshot …
        assert_eq!(old.oracle().estimate(NodeId(0), NodeId(1)), 1);
        // … while new queries see the new one.
        let mut out = Vec::new();
        server
            .query("g", &[(NodeId(0), NodeId(1))], &mut out, 1)
            .unwrap();
        assert_eq!(out, vec![5]);
        // Retirement completes when the last lease drops.
        drop(out);
        drop(old);
        let lease = server.lease("g").unwrap();
        assert_eq!(lease.generation(), 2);
    }

    #[test]
    fn install_from_bytes_reports_cold_start_for_both_versions() {
        let oracle = build(&ring(10, 3));
        let mut v2 = Vec::new();
        oracle.save(&mut v2).unwrap();
        let mut v3 = Vec::new();
        oracle.save_v3(&mut v3).unwrap();
        let server = OracleServer::new();
        for (name, bytes) in [("v2", &v2), ("v3", &v3)] {
            let report = server.install_from_bytes(name, bytes).unwrap();
            assert_eq!(report.backend, Backend::Flooding);
            assert_eq!(report.n, 10);
            assert!(report.cold_start_nanos > 0);
            assert!(report.replaced.is_none());
            let mut out = Vec::new();
            server
                .query(name, &[(NodeId(0), NodeId(5))], &mut out, 1)
                .unwrap();
            assert_eq!(out, vec![15]);
        }
        let err = server
            .install_from_bytes("bad", &v3[..v3.len() - 3])
            .unwrap_err();
        assert!(congest::wire::is_truncated(&err), "{err}");
        assert!(server.lease("bad").is_none());
    }

    #[test]
    fn batcher_merges_concurrent_submissions_into_one_generation() {
        let server = OracleServer::new();
        server.install("g", build(&ring(12, 2)));
        let batcher = Batcher::new("g", Duration::from_millis(20), 1);
        let expect: Vec<u64> = (1..=4u32)
            .map(|i| {
                let lease = server.lease("g").unwrap();
                lease.oracle().estimate(NodeId(0), NodeId(i))
            })
            .collect();
        let batches_before = server.lease("g").unwrap().batches_served();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=4u32)
                .map(|i| {
                    let (batcher, server) = (&batcher, &server);
                    scope.spawn(move || batcher.submit(server, vec![(NodeId(0), NodeId(i))]))
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let (answers, generation) = handle.join().unwrap().unwrap();
                assert_eq!(answers, vec![expect[i]]);
                assert_eq!(generation, 1);
            }
        });
        // Admission merged at least some submissions: fewer executed
        // batches than submissions (the window makes all-in-one likely,
        // but any grouping proves admission worked).
        let batches_after = server.lease("g").unwrap().batches_served();
        assert!(batches_after - batches_before <= 4);
        assert!(batches_after > batches_before);
        assert_eq!(server.lease("g").unwrap().queries_served(), 4);
    }

    #[test]
    fn batcher_reports_unknown_oracle_to_every_member() {
        let server = OracleServer::new();
        let batcher = Batcher::new("missing", Duration::from_millis(1), 1);
        let err = batcher
            .submit(&server, vec![(NodeId(0), NodeId(1))])
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownOracle("missing".into()));
    }

    /// Plants a fake queued submission, as if its leader were wedged
    /// mid-window and had never drained the group.
    fn wedge(batcher: &Batcher) -> Arc<Slot> {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        batcher.state.lock().unwrap().queue.push(Pending {
            pairs: vec![(NodeId(0), NodeId(1))],
            slot: Arc::clone(&slot),
        });
        slot
    }

    #[test]
    fn batcher_deadline_withdraws_submission_from_wedged_group() {
        let server = OracleServer::new();
        server.install("g", build(&ring(8, 1)));
        let batcher =
            Batcher::new("g", Duration::from_secs(600), 1).with_deadline(Duration::from_millis(20));
        wedge(&batcher);
        // The queue is non-empty, so this submission is a follower; the
        // wedged "leader" never executes, and the deadline fires.
        let err = batcher
            .submit(&server, vec![(NodeId(0), NodeId(2))])
            .unwrap_err();
        assert_eq!(err, ServeError::Deadline("g".into()));
        // The timed-out submission withdrew itself; the wedged pending
        // is still there.
        assert_eq!(batcher.state.lock().unwrap().queue.len(), 1);
    }

    #[test]
    fn batcher_shutdown_fails_queued_and_future_submissions() {
        let server = OracleServer::new();
        server.install("g", build(&ring(8, 1)));
        let batcher = Batcher::new("g", Duration::from_secs(600), 1);
        let queued = wedge(&batcher);
        batcher.shutdown();
        assert_eq!(
            *queued.result.lock().unwrap(),
            Some(Err(ServeError::Retired("g".into())))
        );
        let err = batcher
            .submit(&server, vec![(NodeId(0), NodeId(1))])
            .unwrap_err();
        assert_eq!(err, ServeError::Retired("g".into()));
        assert!(batcher.state.lock().unwrap().queue.is_empty());
    }

    #[test]
    fn server_remove_retires_registered_batchers() {
        let server = OracleServer::new();
        server.install("g", build(&ring(8, 1)));
        let batcher = server.batcher("g", Duration::from_millis(1), 1, None);
        let (answers, _) = batcher
            .submit(&server, vec![(NodeId(0), NodeId(4))])
            .unwrap();
        assert_eq!(answers, vec![4]);
        server.remove("g");
        let err = batcher
            .submit(&server, vec![(NodeId(0), NodeId(4))])
            .unwrap_err();
        assert_eq!(err, ServeError::Retired("g".into()));
    }

    #[test]
    fn dynamic_edge_failure_detours_then_repair_swaps_cleanly() {
        let g = ring(8, 1);
        let server = OracleServer::new();
        let builder = OracleBuilder::new(Backend::Flooding);
        let dyn_oracle =
            DynamicOracle::install(&server, "g", OracleBuilder::new(Backend::Flooding), &g)
                .unwrap();
        let mut route = TracedRoute::default();

        // Healthy: the oracle's own route, flagged as such.
        let outcome = dyn_oracle
            .route(&server, NodeId(0), NodeId(2), &mut route)
            .unwrap();
        assert_eq!(outcome, FailoverOutcome::Primary);
        assert_eq!(route.weight, 2);

        // Failure reported: routes detour immediately, estimates are
        // still the pre-failure artifact's (the stale window is open).
        dyn_oracle.fail_edge(NodeId(1), NodeId(2));
        let outcome = dyn_oracle
            .route(&server, NodeId(0), NodeId(2), &mut route)
            .unwrap();
        assert!(
            matches!(outcome, FailoverOutcome::Detoured { .. }),
            "{outcome:?}"
        );
        assert_eq!(route.weight, 6);
        for hop in route.nodes.windows(2) {
            assert!(
                !(hop[0].min(hop[1]) == NodeId(1) && hop[0].max(hop[1]) == NodeId(2)),
                "detour used the failed edge"
            );
        }
        let mut out = Vec::new();
        server
            .query("g", &[(NodeId(0), NodeId(2))], &mut out, 1)
            .unwrap();
        assert_eq!(out, vec![2], "stale estimate before the swap");

        // Repair + swap: estimates catch up, the mask entry lifts, and
        // the route is primary again.
        let delta = GraphDelta::FailEdge {
            u: NodeId(1),
            v: NodeId(2),
        };
        let report = dyn_oracle.repair_and_swap(&server, &delta).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.repair.kind.tag(), "incremental");
        assert!(report.stale_window_nanos > 0);
        server
            .query("g", &[(NodeId(0), NodeId(2))], &mut out, 1)
            .unwrap();
        assert_eq!(out, vec![6]);
        assert!(dyn_oracle.mask().is_clear());
        let outcome = dyn_oracle
            .route(&server, NodeId(0), NodeId(2), &mut route)
            .unwrap();
        assert_eq!(outcome, FailoverOutcome::Primary);
        assert_eq!(route.weight, 6);

        // The swapped-in artifact is byte-identical to a from-scratch
        // build on the mutated graph.
        let fresh = builder.build(&g.apply_delta(&delta).unwrap());
        let lease = server.lease("g").unwrap();
        assert_eq!(lease.oracle().artifact_bytes(), fresh.artifact_bytes());
    }

    #[test]
    fn dynamic_node_failure_rebuilds_and_resets_the_mask() {
        let server = OracleServer::new();
        let dyn_oracle = DynamicOracle::install(
            &server,
            "g",
            OracleBuilder::new(Backend::Flooding),
            &ring(6, 2),
        )
        .unwrap();
        dyn_oracle.fail_node(NodeId(3));
        let mut route = TracedRoute::default();
        let outcome = dyn_oracle
            .route(&server, NodeId(2), NodeId(4), &mut route)
            .unwrap();
        assert!(
            matches!(outcome, FailoverOutcome::Detoured { .. }),
            "{outcome:?}"
        );
        assert!(route.nodes.iter().all(|&x| x != NodeId(3)));

        let report = dyn_oracle
            .repair_and_swap(&server, &GraphDelta::FailNode { v: NodeId(3) })
            .unwrap();
        assert_eq!(report.repair.kind.tag(), "rebuilt");
        // The ring lost a node: ids above 3 shifted down, the mask was
        // reset at the new size, and the path around is served.
        assert_eq!(dyn_oracle.graph().len(), 5);
        let mask = dyn_oracle.mask();
        assert_eq!(mask.len(), 5);
        assert!(mask.is_clear());
        let outcome = dyn_oracle
            .route(&server, NodeId(2), NodeId(3), &mut route)
            .unwrap();
        assert_eq!(outcome, FailoverOutcome::Primary);
        assert_eq!(route.weight, 8, "old 2→4 now 2→3, forced the long way");
    }

    #[test]
    fn dynamic_repair_errors_are_typed_and_keep_the_mask() {
        let path = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let server = OracleServer::new();
        let dyn_oracle =
            DynamicOracle::install(&server, "g", OracleBuilder::new(Backend::Flooding), &path)
                .unwrap();
        // Cutting the middle edge would disconnect the path: the repair
        // is refused, but the failure stays masked — routing degrades to
        // an honest Unroutable rather than a dead path.
        let delta = GraphDelta::FailEdge {
            u: NodeId(0),
            v: NodeId(1),
        };
        let err = dyn_oracle.repair_and_swap(&server, &delta).unwrap_err();
        assert_eq!(
            err,
            RepairSwapError::Repair(RepairError::Delta(graphs::DeltaError::Disconnects))
        );
        let mut route = TracedRoute::default();
        let outcome = dyn_oracle
            .route(&server, NodeId(0), NodeId(2), &mut route)
            .unwrap();
        assert_eq!(outcome, FailoverOutcome::Unroutable);

        server.remove("g");
        let err = dyn_oracle.repair_and_swap(&server, &delta).unwrap_err();
        assert_eq!(
            err,
            RepairSwapError::Serve(ServeError::UnknownOracle("g".into()))
        );
    }
}
