//! End-to-end validation of the Theorem 4.5 scheme: every pair routes,
//! no forwarding failures, stretch within the ε-adjusted `6k−1` ceiling,
//! labels logarithmic.

use graphs::algo::apsp;
use graphs::gen::{self, Weights};
use graphs::Seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use routing::{build_rtc, evaluate, PairSelection, RoutingScheme, RtcParams};

/// The `6k−1+o(1)` ceiling evaluated at finite ε: the Lemma 4.3 chain
/// accumulates a handful of `(1+ε)` factors on each leg, so we allow
/// `(6k−1)·(1+ε)^4` (the exponent matching the worst chain in the proof).
fn ceiling(k: u32, eps: f64) -> f64 {
    (6.0 * f64::from(k) - 1.0) * (1.0 + eps).powi(4)
}

fn check(g: &graphs::WGraph, k: u32, seed: u64) {
    let mut params = RtcParams::new(k);
    params.seed = Seed(seed);
    let scheme = build_rtc(g, &params);
    let exact = apsp(g);
    let report = evaluate(g, &scheme, &exact, PairSelection::All);
    assert!(
        report.failures.is_empty(),
        "routing failures (k={k}, seed={seed}): {:?}",
        &report.failures[..report.failures.len().min(5)]
    );
    let ceil = ceiling(k, params.eps);
    assert!(
        report.max_stretch <= ceil,
        "stretch {} exceeds ceiling {ceil} (k={k}, seed={seed})",
        report.max_stretch
    );
    assert!(
        report.max_estimate_stretch <= ceil,
        "estimate stretch {} exceeds ceiling {ceil} (k={k}, seed={seed})",
        report.max_estimate_stretch
    );
    assert!(report.max_label_bits <= 200, "labels too large");
}

#[test]
fn random_graphs_k1() {
    for seed in 0..3 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnp_connected(26, 0.15, Weights::Uniform { lo: 1, hi: 40 }, &mut rng);
        check(&g, 1, seed);
    }
}

#[test]
fn random_graphs_k2() {
    for seed in 0..3 {
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let g = gen::gnp_connected(30, 0.15, Weights::Uniform { lo: 1, hi: 40 }, &mut rng);
        check(&g, 2, seed);
    }
}

#[test]
fn random_graphs_k3() {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = gen::gnp_connected(32, 0.2, Weights::Uniform { lo: 1, hi: 25 }, &mut rng);
    check(&g, 3, 7);
}

#[test]
fn structured_graphs() {
    let mut rng = SmallRng::seed_from_u64(11);
    let grid = gen::grid(5, 6, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
    check(&grid, 2, 1);
    let ring = gen::cycle(24, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
    check(&ring, 2, 2);
    let clique = gen::weighted_clique_multihop(14);
    check(&clique, 2, 3);
}

#[test]
fn dumbbell_large_diameter() {
    let mut rng = SmallRng::seed_from_u64(13);
    let g = gen::dumbbell(8, 10, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
    check(&g, 2, 5);
}

#[test]
fn short_range_pairs_are_near_exact() {
    // Pairs whose destination sits in the source's short-range table must
    // route with stretch ≤ (1+ε)·(1 + slack): they never take the detour
    // through the skeleton.
    let mut rng = SmallRng::seed_from_u64(17);
    let g = gen::gnp_connected(28, 0.2, Weights::Uniform { lo: 1, hi: 15 }, &mut rng);
    let scheme = build_rtc(&g, &RtcParams::new(2));
    let exact = apsp(&g);
    for v in g.nodes() {
        for e in scheme.short_lists.iter_row(v) {
            if e.src == v {
                continue;
            }
            let est = scheme.estimate(v, e.src);
            let wd = exact.dist(v, e.src);
            assert!(
                est as f64 <= 1.25 * wd as f64 + 1e-9,
                "short-range estimate {est} vs wd {wd}"
            );
        }
    }
}

#[test]
fn build_metrics_are_populated() {
    let mut rng = SmallRng::seed_from_u64(19);
    let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
    let scheme = build_rtc(&g, &RtcParams::new(2));
    let m = &scheme.metrics;
    assert!(m.skeleton_size >= 1);
    assert!(m.pde_a_rounds > 0 && m.pde_s_rounds > 0);
    assert!(m.spanner_broadcast_rounds > 0);
    assert_eq!(
        m.total_rounds, m.total.rounds,
        "breakdown must sum to total"
    );
    assert!(m.total_rounds >= m.pde_a_rounds + m.pde_s_rounds);
}
