//! Skeleton sampling (now shared pipeline machinery).
//!
//! The sampler itself lives in the shared build pipeline
//! ([`pde_core::pipeline::sample_skeleton`]) so every scheme draws its
//! skeleton the same way; this module keeps the Theorem 4.5 probability
//! and re-exports the sampler under its historical path.

pub use pde_core::pipeline::sample_skeleton;

/// The sampling probability of Theorem 4.5: `p = n^{−1/2−1/(4k)}`.
pub fn theorem45_probability(n: usize, k: u32) -> f64 {
    assert!(k >= 1, "k must be ≥ 1");
    (n as f64).powf(-0.5 - 1.0 / (4.0 * f64::from(k)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_shrinks_with_k_and_n() {
        assert!(theorem45_probability(100, 1) < theorem45_probability(100, 3));
        assert!(theorem45_probability(1000, 2) < theorem45_probability(100, 2));
        let p = theorem45_probability(64, 2);
        assert!((p - 64f64.powf(-0.625)).abs() < 1e-12);
    }
}
