//! Skeleton sampling.

use graphs::Seed;
use rand::Rng;

/// Samples each node into the skeleton independently with probability `p`,
/// retrying (fresh coins) until the skeleton is nonempty. The coins come
/// from `seed`'s own stream (see [`graphs::Seed`]), so the sample is a
/// pure function of `(n, p, seed)`.
///
/// The paper conditions on `S ≠ ∅` ("for convenience, we assume that
/// always `S ≠ ∅`, which holds w.h.p."); at simulation scale an empty
/// sample can actually happen, so we retry and report the attempt count.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]` or after 1000 failed attempts
/// (p astronomically small for the given n — a caller bug).
pub fn sample_skeleton(n: usize, p: f64, seed: Seed) -> (Vec<bool>, u32) {
    assert!(p > 0.0 && p <= 1.0, "sampling probability out of range");
    let mut rng = seed.rng();
    for attempt in 1..=1000 {
        let flags: Vec<bool> = (0..n).map(|_| rng.random_bool(p)).collect();
        if flags.iter().any(|&f| f) {
            return (flags, attempt);
        }
    }
    panic!("skeleton sampling failed 1000 times (n={n}, p={p})");
}

/// The sampling probability of Theorem 4.5: `p = n^{−1/2−1/(4k)}`.
pub fn theorem45_probability(n: usize, k: u32) -> f64 {
    assert!(k >= 1, "k must be ≥ 1");
    (n as f64).powf(-0.5 - 1.0 / (4.0 * f64::from(k)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_nonempty_and_deterministic() {
        for s in 0..50u64 {
            let (flags, _) = sample_skeleton(30, 0.05, Seed(s));
            assert!(flags.iter().any(|&f| f));
            assert_eq!(flags.len(), 30);
            assert_eq!(flags, sample_skeleton(30, 0.05, Seed(s)).0);
        }
    }

    #[test]
    fn probability_shrinks_with_k_and_n() {
        assert!(theorem45_probability(100, 1) < theorem45_probability(100, 3));
        assert!(theorem45_probability(1000, 2) < theorem45_probability(100, 2));
        let p = theorem45_probability(64, 2);
        assert!((p - 64f64.powf(-0.625)).abs() < 1e-12);
    }

    #[test]
    fn sample_rate_tracks_p() {
        let (flags, _) = sample_skeleton(20_000, 0.1, Seed(2));
        let count = flags.iter().filter(|&&f| f).count();
        assert!(
            (1600..=2400).contains(&count),
            "count {count} far from 2000"
        );
    }
}
