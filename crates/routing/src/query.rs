//! Stateless routing and distance queries for the Theorem 4.5 scheme.
//!
//! Every decision here uses only (a) the queried node's own tables and
//! (b) the destination's label — the stateless model of Section 2.3. The
//! forwarding function is *total* and *loop-free* by a potential argument:
//! outside the destination's tree, the next hop strictly decreases
//!
//! ```text
//! Φ(x) = min( wd'(x, w),                                   — short range
//!             min_t [ wd'_S(x, t) + d_spanner(t, s'_w) ]
//!               + wd'(w, s'_w) )                            — long range
//! ```
//!
//! by at least the traversed edge weight (each term rides a PDE next-hop
//! chain whose estimates shrink by ≥ the edge weight per hop; spanner
//! edges decompose into such chains). Once the walk enters `T_{s'_w}` at a
//! node whose subtree contains `w`, DFS-interval descent finishes the job.

use crate::eval::RoutingScheme;
use crate::scheme::{RtcLabel, RtcScheme};
use congest::NodeId;
use graphs::INF;

impl RtcScheme {
    /// The label of `v` (what the paper publishes as `λ(v)`).
    pub fn label(&self, v: NodeId) -> &RtcLabel {
        &self.labels[v.index()]
    }

    /// The long-range option at `x` for destination label `label`:
    /// `(total_estimate, next_hop)` via the best skeleton entry point.
    ///
    /// One load from the precomputed `n × |S|` reduction (see
    /// `scheme::build_long_range`) plus the label's `dist_home` — the
    /// per-entry loop ran at build time, with ties broken on the smaller
    /// next-hop id, so answers are bit-identical to recomputing it here
    /// (and independent of routing-table iteration order, which keeps
    /// queries bit-identical across snapshot save/load).
    fn skeleton_option(&self, x: NodeId, label: &RtcLabel) -> Option<(u64, NodeId)> {
        let m = self.skel_ids.len();
        let home = self.skel_index.get(label.home)?;
        let d = self.long_dist.get(x.index() * m + home);
        if d == INF {
            return None;
        }
        let hop = NodeId(self.long_hop.get(x.index() * m + home));
        Some((d.saturating_add(label.dist_home), hop))
    }

    /// The source-grouped batch kernel behind
    /// `oracle::DistanceOracle::estimate_grouped`: answers
    /// `pairs[order[i]]` into `out[i]`, resolving the queried node's
    /// short-range row cursor and long-range matrix row once per
    /// equal-source group. Computes exactly
    /// [`RoutingScheme::estimate`] per pair.
    pub fn estimate_grouped(&self, pairs: &[(NodeId, NodeId)], order: &[u32], out: &mut [u64]) {
        assert_eq!(order.len(), out.len(), "one answer slot per query");
        let m = self.skel_ids.len();
        let mut start = 0usize;
        while start < order.len() {
            let end = pde_core::schedule::group_end(pairs, order, start);
            let x = pairs[order[start] as usize].0;
            let short_row = self.short.cursor(x);
            let long_row = x.index() * m;
            for (slot, &i) in out[start..end].iter_mut().zip(&order[start..end]) {
                let dest = pairs[i as usize].1;
                if x == dest {
                    *slot = 0;
                    continue;
                }
                let label = &self.labels[dest.index()];
                let direct = short_row.get(dest).map_or(INF, |e| e.est);
                let long = self.skel_index.get(label.home).map_or(INF, |home| {
                    let d = self.long_dist.get(long_row + home);
                    if d == INF {
                        INF
                    } else {
                        d.saturating_add(label.dist_home)
                    }
                });
                *slot = direct.min(long);
            }
            start = end;
        }
    }
}

impl RoutingScheme for RtcScheme {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
        let label = &self.labels[dest.index()];
        if x == dest {
            return None;
        }
        // Tree mode: inside T_{s'_w} with w in our subtree → descend.
        if let Some(tree) = self.trees.trees.get(&label.home) {
            if tree.in_subtree(x, label.tree_dfs) {
                return tree.next_hop_down(x, label.tree_dfs);
            }
        }
        // Short range beats long range when available; pick min potential.
        let direct = self
            .short
            .get(x, dest)
            .map(|e| (e.est, self.topo.neighbor(x, e.port)));
        let long = self.skeleton_option(x, label);
        match (direct, long) {
            (Some((de, dh)), Some((le, lh))) => Some(if de <= le { dh } else { lh }),
            (Some((_, dh)), None) => Some(dh),
            (None, Some((_, lh))) => Some(lh),
            (None, None) => None,
        }
    }

    fn estimate(&self, x: NodeId, dest: NodeId) -> u64 {
        if x == dest {
            return 0;
        }
        let label = &self.labels[dest.index()];
        let direct = self.short.get(x, dest).map_or(INF, |e| e.est);
        let long = self.skeleton_option(x, label).map_or(INF, |(e, _)| e);
        direct.min(long)
    }

    fn label_bits(&self, v: NodeId) -> usize {
        self.labels[v.index()].bits(self.labels.len())
    }

    fn table_entries(&self, v: NodeId) -> usize {
        // Paper-sized tables: the top-σ short-range list, the skeleton
        // table, the (globally known) spanner, and per-tree interval rows.
        let tree_rows: usize = self
            .trees
            .trees
            .values()
            .filter_map(|t| t.children.get(&v).map(|ch| 1 + ch.len()))
            .sum();
        self.short_lists.row_len(v) + self.skel_routes.row_len(v) + tree_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{build_rtc, RtcParams};
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn self_route_is_empty_and_estimate_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::gnp_connected(20, 0.2, Weights::Uniform { lo: 1, hi: 10 }, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        for v in g.nodes() {
            assert_eq!(scheme.next_hop(v, v), None);
            assert_eq!(scheme.estimate(v, v), 0);
        }
    }

    #[test]
    fn labels_are_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::gnp_connected(30, 0.15, Weights::Uniform { lo: 1, hi: 100 }, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        for v in g.nodes() {
            // 2 ids + distance + dfs: comfortably within a few dozen bits.
            assert!(scheme.label_bits(v) <= 4 * 64);
            assert!(scheme.label_bits(v) >= 2);
        }
    }
}
