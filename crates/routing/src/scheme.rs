//! Construction of the Theorem 4.5 routing scheme.
//!
//! [`build_rtc`] is a *declarative stage list* over the shared build
//! pipeline (`pde_core::pipeline`) and the PDE ladder kernel
//! (`pde_core::ladder`): sample → short-range ladder → homes → skeleton
//! ladder → virtual graph → spanner (+ broadcast) → spanner APSP → trees.
//! Every stage is a pure function of the canonical ladder artifacts and
//! the seed, so [`BuildMode::Simulated`] and [`BuildMode::Native`] builds
//! produce byte-identical schemes; the simulated build additionally
//! charges the paper's rounds (recorded per stage in
//! [`RtcBuildMetrics::stages`]).

use congest::arena::{U32View, U64View};
use congest::bfs::build_bfs;
use congest::pipeline::broadcast_all;
use congest::{bits_for, label_record_bits, Message, Metrics, NodeId, Topology};
use graphs::{DenseIndex, Seed, WGraph, INF};
use pde_core::pipeline::{
    self, closest_tagged, mutual_edges, parallel_map, virtual_graph, with_resample, BuildError,
    StageLog,
};
use pde_core::snapshot::FlatLists;
use pde_core::{run_pde, BuildMode, FlatTables, PdeParams};
use spanner::baswana_sen;
use treeroute::TreeSet;

use crate::skeleton::{sample_skeleton, theorem45_probability};

/// Parameters for [`build_rtc`].
#[derive(Clone, Debug)]
pub struct RtcParams {
    /// The trade-off parameter `k` (stretch `6k−1+o(1)`).
    pub k: u32,
    /// PDE approximation parameter ε (the paper uses `1/log n`; moderate
    /// values are the practical default, see DESIGN.md).
    pub eps: f64,
    /// Constant `c` in the horizon/list size `h = σ = c·ln n / p`.
    pub c: f64,
    /// RNG seed; skeleton sampling and spanner coins use independent
    /// streams derived from it (see [`graphs::Seed::derive`]).
    pub seed: Seed,
    /// Build engine (see [`BuildMode`]); artifacts are identical across
    /// modes.
    pub mode: BuildMode,
    /// Worker threads for ladder rungs and native stages (`0` = auto,
    /// `1` = sequential); outputs are identical for every value.
    pub threads: usize,
}

impl RtcParams {
    /// Sensible defaults for a given `k` (simulated build, auto threads).
    pub fn new(k: u32) -> Self {
        RtcParams {
            k,
            eps: 0.25,
            c: 2.0,
            seed: Seed(0xC0FFEE),
            mode: BuildMode::Simulated,
            threads: 0,
        }
    }

    /// Sets the build engine.
    #[must_use]
    pub fn with_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The label of a node (`O(log n)` bits total, as in Theorem 4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtcLabel {
    /// The node's own identifier.
    pub id: NodeId,
    /// `s'_w`: the node's (approximately) closest skeleton node.
    pub home: NodeId,
    /// `wd'(w, s'_w)`.
    pub dist_home: u64,
    /// DFS label of `w` in the detection tree `T_{s'_w}`.
    pub tree_dfs: u64,
}

impl RtcLabel {
    /// Semantic size of this label in bits (measured in Experiment E4):
    /// two node ids plus the home distance and DFS index, via the shared
    /// [`congest::label_record_bits`] formula.
    pub fn bits(&self, n: usize) -> usize {
        label_record_bits(n as u64, 2, &[self.dist_home, self.tree_dfs])
    }
}

/// Build-time metrics, broken down by pipeline stage.
#[derive(Clone, Debug)]
pub struct RtcBuildMetrics {
    /// Total rounds across all stages (the quantity Theorem 4.5 bounds by
    /// `Õ(n^{1/2+1/(4k)} + D)`; 0 for native builds).
    pub total_rounds: u64,
    /// Rounds of the `(V, h, σ)`-estimation (short range).
    pub pde_a_rounds: u64,
    /// Rounds of the `(S, h, |S|)`-estimation (skeleton distances).
    pub pde_s_rounds: u64,
    /// Rounds of the pipelined spanner dissemination.
    pub spanner_broadcast_rounds: u64,
    /// Rounds of the distributed tree labeling.
    pub tree_label_rounds: u64,
    /// Aggregate simulator metrics.
    pub total: Metrics,
    /// `|S|`.
    pub skeleton_size: usize,
    /// Number of spanner edges (`Õ(|S|^{1+1/k})` expected).
    pub spanner_edge_count: usize,
    /// Skeleton re-sampling attempts (1 = first try).
    pub sample_attempts: u32,
    /// The horizon/list size `h = σ` used.
    pub h: u64,
    /// The declarative stage list this build executed, with per-stage
    /// rounds (measurement metadata; not serialized — reloaded schemes
    /// carry an empty log).
    pub stages: StageLog,
}

/// Item shipped through the pipelined broadcast: a spanner edge or a
/// per-phase Baswana–Sen cluster membership.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum BsItem {
    Edge(u32, u32, u64),
    Member(u32, u32, u32),
}

impl Message for BsItem {
    fn bit_size(&self) -> usize {
        match self {
            BsItem::Edge(a, b, w) => {
                bits_for(u64::from(*a) + 1) + bits_for(u64::from(*b) + 1) + bits_for(w + 1) + 1
            }
            BsItem::Member(_, v, c) => {
                8 + bits_for(u64::from(*v) + 1) + bits_for(u64::from(*c) + 1) + 1
            }
        }
    }
}

/// The constructed scheme: everything queries and experiments need.
///
/// All query-side state is flat structure-of-arrays: routing archives are
/// source-sorted CSR rows ([`FlatTables`]), the skeleton index is a dense
/// per-node array ([`DenseIndex`]), and spanner distances/next-hops are
/// `|S| × |S|` matrices — a query never hashes.
#[derive(Debug)]
pub struct RtcScheme {
    pub(crate) topo: Topology,
    /// Per-node labels.
    pub labels: Vec<RtcLabel>,
    /// Short-range routing state from the `(V, h, σ)` pass (archive),
    /// flattened into source-sorted rows.
    pub short: FlatTables,
    /// Paper-sized short-range tables (the top-σ lists), for size metrics.
    pub short_lists: FlatLists,
    /// Skeleton-distance routing state from the `(S, h, |S|)` pass.
    pub skel_routes: FlatTables,
    /// Skeleton membership.
    pub skeleton: Vec<bool>,
    /// Sorted skeleton node ids.
    pub skel_ids: Vec<NodeId>,
    /// Spanner edges in original node ids (globally known).
    pub spanner_edges: Vec<(u32, u32, u64)>,
    /// Detection trees `T_s` with DFS labels.
    pub trees: TreeSet,
    /// Build metrics.
    pub metrics: RtcBuildMetrics,
    pub(crate) skel_index: DenseIndex,
    /// `|S| × |S|` spanner distance matrix.
    pub(crate) span_dist: U64View,
    /// `span_next[i·|S|+j]`: skeleton index of the first hop from `i`
    /// towards `j` in the spanner (`u64::MAX` when there is none).
    pub(crate) span_next: U64View,
    /// `long_dist[x·|S|+j]`: the precomputed long-range reduction
    /// `min_t (wd'_S(x, t) + d_spanner(t, s_j))` — everything of the
    /// skeleton option except the destination's `dist_home`, which is a
    /// per-destination constant and therefore cannot change the argmin.
    /// Stored in v3 snapshots, recomputed on v2 loads; [`graphs::INF`]
    /// when no entry point reaches `s_j`.
    pub(crate) long_dist: U64View,
    /// `long_hop[x·|S|+j]`: the next-hop node realizing `long_dist`,
    /// under the same `(total, hop)` tie-break the per-query loop used
    /// (`u32::MAX` when `long_dist` is [`graphs::INF`]).
    pub(crate) long_hop: U32View,
}

/// Derives the dense long-range tables: for every node `x` and skeleton
/// index `j`, the minimum of `wd'_S(x, t_i) + span_dist[i][j]` over `x`'s
/// skeleton routing row — plus, when `x` is itself a skeleton node, the
/// direct `span_dist[x][j]` option whose hop is the first hop towards the
/// next spanner waypoint. Ties break on the smaller hop id, exactly as
/// the former per-query loop did, so queries answered from these tables
/// are bit-identical to recomputing the reduction per query.
pub(crate) fn build_long_range(
    topo: &Topology,
    skel_routes: &FlatTables,
    skel_index: &DenseIndex,
    skel_ids: &[NodeId],
    span_dist: &U64View,
    span_next: &U64View,
) -> (Vec<u64>, Vec<u32>) {
    let n = topo.len();
    let m = skel_ids.len();
    let row_idx = pde_core::resolve_entry_indices(skel_routes, skel_index);
    let mut long_dist = vec![INF; n * m];
    let mut long_hop = vec![u32::MAX; n * m];
    for x in topo.nodes() {
        let range = skel_routes.row_range(x);
        let idx = &row_idx[range.clone()];
        let own = skel_index.get(x);
        for j in 0..m {
            let mut best: Option<(u64, NodeId)> = None;
            let mut consider = |total: u64, hop: NodeId| {
                if best.is_none_or(|b| (total, hop) < b) {
                    best = Some((total, hop));
                }
            };
            for (e, &i) in skel_routes.entries_in(range.clone()).zip(idx) {
                if i == DenseIndex::NONE {
                    continue;
                }
                let sd = span_dist.get(i as usize * m + j);
                if sd == INF {
                    continue;
                }
                consider(e.est.saturating_add(sd), topo.neighbor(x, e.port));
            }
            if let Some(i) = own {
                let sd = span_dist.get(i * m + j);
                if sd != INF && i != j {
                    // Valid schemes always have a waypoint here and its
                    // endpoints always route to each other; tolerate a
                    // missing waypoint (the span_next sentinel) or route
                    // entry so corrupted-but-shape-valid snapshots degrade
                    // instead of panicking at load time.
                    let z_idx = usize::try_from(span_next.get(i * m + j)).unwrap_or(usize::MAX);
                    if let Some(&z) = skel_ids.get(z_idx) {
                        if let Some(e) = skel_routes.get(x, z) {
                            consider(sd, topo.neighbor(x, e.port));
                        }
                    }
                }
            }
            if let Some((d, hop)) = best {
                long_dist[x.index() * m + j] = d;
                long_hop[x.index() * m + j] = hop.0;
            }
        }
    }
    (long_dist, long_hop)
}

impl RtcScheme {
    /// The topology the scheme was built on (shared with route tracing
    /// and snapshot serialization, so callers need no separate copy).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

// Next-hop chain tracing is shared pipeline machinery now; keep the
// crate-local name the query/tree code uses.
pub(crate) use pde_core::pipeline::trace_chain;

/// Builds the Theorem 4.5 scheme on `g`, panicking on unrecoverable
/// sampling failures (see [`try_build_rtc`] for the fallible form).
///
/// # Panics
///
/// Panics on disconnected inputs, and — loudly, with advice — if a
/// w.h.p. event (a node seeing no skeleton node, a disconnected skeleton
/// graph) fails on both the primary sample and the one derived resample.
pub fn build_rtc(g: &WGraph, params: &RtcParams) -> RtcScheme {
    try_build_rtc(g, params)
        .unwrap_or_else(|e| panic!("RTC build failed after one resample: {e} (RtcParams::c)"))
}

/// Builds the Theorem 4.5 scheme, retrying once on a
/// [`Seed::derive`]d resample when a w.h.p. event fails.
///
/// # Errors
///
/// Returns the second attempt's [`BuildError`] when both samples fail.
///
/// # Panics
///
/// Panics on structurally invalid inputs (fewer than two nodes, a
/// disconnected graph).
pub fn try_build_rtc(g: &WGraph, params: &RtcParams) -> Result<RtcScheme, BuildError> {
    assert!(g.len() >= 2, "need at least two nodes");
    with_resample(params.seed, |seed, _attempt| {
        let p = RtcParams {
            seed,
            ..params.clone()
        };
        build_attempt(g, &p)
    })
}

/// One build attempt at a fixed seed: the declarative stage list.
fn build_attempt(g: &WGraph, params: &RtcParams) -> Result<RtcScheme, BuildError> {
    let n = g.len();
    let mode = params.mode;
    let topo = g.to_topology();
    let mut total = Metrics::new(n);
    let mut stages = StageLog::default();

    // Stage 1: skeleton sampling (node-local coins; no rounds). The
    // sample uses the seed's primary stream; the spanner below gets an
    // independent derived stream.
    let p = theorem45_probability(n, params.k);
    let (skeleton, sample_attempts) = sample_skeleton(n, p, params.seed);
    let skel_ids: Vec<NodeId> = g.nodes().filter(|v| skeleton[v.index()]).collect();
    stages.push("skeleton-sample", 0);

    // Stage 2: (V, h, σ)-estimation with skeleton tags.
    let h = ((params.c * (n as f64).ln() / p).ceil() as u64).clamp(1, 4 * n as u64);
    let sigma = (h as usize).min(n);
    let pde_a = run_pde(
        g,
        &vec![true; n],
        &skeleton,
        &PdeParams::new(h, sigma, params.eps)
            .with_threads(params.threads)
            .with_mode(mode),
    );
    let pde_a_rounds = pde_a.metrics.total.rounds;
    total.absorb(&pde_a.metrics.total);
    stages.push("pde-short-range", pde_a_rounds);

    // Pivots s'_v: closest tagged source (v itself if sampled).
    let mut labels_home = Vec::with_capacity(n);
    for v in g.nodes() {
        if skeleton[v.index()] {
            labels_home.push((v, 0));
            continue;
        }
        match closest_tagged(&pde_a.routes[v.index()], &skeleton) {
            Some(home) => labels_home.push(home),
            None => return Err(BuildError::NoSkeletonSeen { node: v, h }),
        }
    }
    stages.push("home-selection", 0);

    // Stage 3: (S, h, |S|)-estimation.
    let pde_s = run_pde(
        g,
        &skeleton,
        &vec![false; n],
        &PdeParams::new(h, skel_ids.len().max(1), params.eps)
            .with_threads(params.threads)
            .with_mode(mode),
    );
    let pde_s_rounds = pde_s.metrics.total.rounds;
    total.absorb(&pde_s.metrics.total);
    stages.push("pde-skeleton", pde_s_rounds);

    // Virtual skeleton graph: edge {s,t} iff both endpoints estimated each
    // other; weight = max of the two estimates (both are routable upper
    // bounds; see DESIGN.md).
    let skel_index = DenseIndex::new(n, &skel_ids);
    let sedges = mutual_edges(&pde_s.routes, &skel_ids, &skel_index);
    let skel_graph = virtual_graph(skel_ids.len(), &sedges, "skeleton graph")?;
    stages.push("virtual-graph", 0);

    // Stage 4: Baswana–Sen spanner; in simulated builds its edges and
    // cluster memberships are disseminated over a BFS tree (the measured
    // `Õ(|S|^{1+1/k} + D)` term), in native builds the globally known
    // spanner needs no broadcast.
    let mut spanner_rng = params.seed.derive(1).rng();
    let sp = baswana_sen(&skel_graph, params.k, &mut spanner_rng);
    let spanner_broadcast_rounds = match mode {
        BuildMode::Simulated => {
            let (bfs, bfs_metrics) = build_bfs(&topo, NodeId(0));
            total.absorb(&bfs_metrics);
            let mut items: Vec<Vec<BsItem>> = vec![Vec::new(); n];
            for &(a, b, w) in &sp.edges {
                let origin = skel_ids[a as usize];
                items[origin.index()].push(BsItem::Edge(a, b, w));
            }
            for &(phase, v, c) in &sp.memberships {
                let origin = skel_ids[v as usize];
                items[origin.index()].push(BsItem::Member(phase, v, c));
            }
            let (_, bc_metrics) = broadcast_all(&topo, &bfs, items);
            total.absorb(&bc_metrics);
            bc_metrics.rounds
        }
        BuildMode::Native => 0,
    };
    stages.push("spanner-broadcast", spanner_broadcast_rounds);

    // Spanner APSP + next-hop matrix (computable locally by every node
    // since the spanner is globally known — no rounds in either mode).
    // One Dijkstra per skeleton node, sharded over the worker threads;
    // rows land in index order, so outputs are thread-count invariant.
    let span_graph = skel_graph_from(&skel_ids, &sp.edges);
    let m = skel_ids.len();
    let rows = parallel_map(params.threads, m, |i| {
        let sp_row = graphs::algo::dijkstra(&span_graph, NodeId(i as u32));
        let mut next = vec![usize::MAX; m];
        for (j, nx) in next.iter_mut().enumerate() {
            if i != j && sp_row.dist[j] != INF {
                // First hop from i towards j: walk parents back from j.
                let mut cur = NodeId(j as u32);
                while let Some(par) = sp_row.parent[cur.index()] {
                    if par == NodeId(i as u32) {
                        break;
                    }
                    cur = par;
                }
                *nx = cur.index();
            }
        }
        (sp_row.dist, next)
    });
    let mut span_dist = Vec::with_capacity(m * m);
    let mut span_next = Vec::with_capacity(m * m);
    for (dist_row, next_row) in rows {
        span_dist.extend(dist_row);
        span_next.extend(next_row);
    }
    stages.push("spanner-apsp", 0);

    // Stage 5: detection trees T_s from pivot chains; labels are the
    // central DFS labels of the TreeSet, validated by (and charged as)
    // the distributed labeling protocol in simulated builds.
    let mut trees = TreeSet::new();
    for v in g.nodes() {
        let (home, _) = labels_home[v.index()];
        let chain = trace_chain(&pde_a.routes, &topo, v, home);
        trees.add_chain(&chain);
    }
    trees.build();
    let label_metrics = pipeline::label_trees(&topo, &trees, mode);
    let tree_label_rounds = label_metrics.rounds;
    total.absorb(&label_metrics);
    stages.push("tree-labels", tree_label_rounds);

    let labels: Vec<RtcLabel> = g
        .nodes()
        .map(|v| {
            let (home, dist_home) = labels_home[v.index()];
            let tree_dfs = trees.trees[&home]
                .label(v)
                .expect("every node is labeled in its home tree");
            RtcLabel {
                id: v,
                home,
                dist_home,
                tree_dfs,
            }
        })
        .collect();

    let spanner_edges: Vec<(u32, u32, u64)> = sp
        .edges
        .iter()
        .map(|&(a, b, w)| (skel_ids[a as usize].0, skel_ids[b as usize].0, w))
        .collect();

    let metrics = RtcBuildMetrics {
        total_rounds: total.rounds,
        pde_a_rounds,
        pde_s_rounds,
        spanner_broadcast_rounds,
        tree_label_rounds,
        total,
        skeleton_size: skel_ids.len(),
        spanner_edge_count: spanner_edges.len(),
        sample_attempts,
        h,
        stages,
    };

    let skel_routes = FlatTables::from_tables(&pde_s.routes);
    let span_dist = U64View::from_vals(&span_dist);
    let span_next = U64View::from_vals(
        &span_next
            .iter()
            .map(|&x| if x == usize::MAX { u64::MAX } else { x as u64 })
            .collect::<Vec<u64>>(),
    );
    let (long_dist, long_hop) = build_long_range(
        &topo,
        &skel_routes,
        &skel_index,
        &skel_ids,
        &span_dist,
        &span_next,
    );
    let (long_dist, long_hop) = (
        U64View::from_vals(&long_dist),
        U32View::from_vals(&long_hop),
    );
    Ok(RtcScheme {
        topo,
        labels,
        short: FlatTables::from_tables(&pde_a.routes),
        short_lists: FlatLists::from_lists(&pde_a.lists),
        skel_routes,
        skeleton,
        skel_ids,
        spanner_edges,
        trees,
        metrics,
        skel_index,
        span_dist,
        span_next,
        long_dist,
        long_hop,
    })
}

fn skel_graph_from(skel_ids: &[NodeId], edges: &[(u32, u32, u64)]) -> WGraph {
    WGraph::from_edges(skel_ids.len().max(1), edges).expect("valid spanner edges")
}
