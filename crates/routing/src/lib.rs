//! Routing table construction with node relabeling — Theorem 4.5 of the
//! PODC 2015 paper: for any `k ∈ ℕ`, a randomized scheme with stretch
//! `6k−1+o(1)` and labels of `O(log n)` bits, built in
//! `Õ(n^{1/2+1/(4k)} + D)` rounds.
//!
//! # Construction pipeline (Section 4.2)
//!
//! 1. Sample a skeleton `S` with per-node probability `p = n^{−1/2−1/(4k)}`.
//! 2. Solve `(1+ε)`-approximate `(V, h, σ)`-estimation with
//!    `h = σ = Θ(log n / p)`; this yields every node's *short-range* table
//!    and its approximately-closest skeleton node `s'_v` (Lemma 4.2).
//! 3. Solve `(1+ε)`-approximate `(S, h, |S|)`-estimation, yielding
//!    skeleton-distance tables and the virtual *skeleton graph*.
//! 4. Build a Baswana–Sen `(2k−1)`-spanner of the skeleton graph and make
//!    it known to all nodes via the pipelined BFS broadcast (its measured
//!    rounds are the `Õ(|S|^{1+1/k} + D)` term).
//! 5. Label every node `w` with `(w, s'_w, wd'(w, s'_w), tree-label of w
//!    in T_{s'_w})`, where `T_s` is the detection tree of `s` (labels via
//!    the distributed forest labeling of the `treeroute` crate).
//!
//! Routing `v → w` uses the short-range table when `w` is in it; otherwise
//! it forwards along a monotonically decreasing potential
//! `min_t [wd'_S(x, t) + d_spanner(t, s'_w)] + wd'(w, s'_w)` to reach
//! `s'_w`, then descends `T_{s'_w}` by tree label (Lemma 4.3 bounds the
//! resulting stretch by `(2+O(ε)) + (2k−1)(3+O(ε)) = 6k−1+O(ε)`).
//!
//! The [`eval`] module provides the scheme-agnostic route tracer and
//! stretch/size report used by experiments E4, E5 and E9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod query;
pub mod scheme;
pub mod skeleton;
pub mod snapshot;

pub use eval::{evaluate, EvalReport, PairSelection, RoutingScheme};
pub use pde_core::pipeline::BuildError;
pub use pde_core::BuildMode;
pub use scheme::{build_rtc, try_build_rtc, RtcBuildMetrics, RtcLabel, RtcParams, RtcScheme};
