//! Binary snapshot codec for the Theorem 4.5 scheme.
//!
//! A built [`RtcScheme`] is a pure query artifact: everything
//! [`crate::eval::RoutingScheme`] needs is serialized here with the
//! handwritten little-endian framing of [`congest::wire`], so an oracle
//! can be constructed once (the expensive distributed build) and then
//! served from disk. Query answers of a reloaded scheme are bit-identical
//! to the original, and reload → re-save reproduces the byte stream: the
//! flat tables are serialized *as stored* (their rows are sorted by
//! construction), so no canonicalization pass is needed on either side.
//!
//! **Record version 2** (the flat-table layout): routing archives are
//! written as [`FlatTables`] CSR rows instead of per-node hash maps.
//! Version 1 streams (PR 3's hash-table layout, which carried no version
//! tag) are rejected with `InvalidData` — rebuild the scheme and re-save;
//! there is no in-place migration path, by design (snapshots are caches
//! of a deterministic build, not primary data).
//!
//! Build *metrics* are persisted in summary form (round/message totals and
//! the per-stage breakdown); the bounded per-round histories are not.

use crate::scheme::{RtcBuildMetrics, RtcLabel, RtcScheme};
use congest::wire::{check_record_version, clamped_capacity, invalid_data, WireReader, WireWriter};
use congest::{Metrics, NodeId, Topology};
use graphs::DenseIndex;
use pde_core::snapshot::{read_lists, write_lists};
use pde_core::FlatTables;
use std::io::{self, Read, Write};
use treeroute::TreeSet;

/// Version of the scheme record this codec writes (see module docs).
pub const RTC_RECORD_VERSION: u16 = 2;

impl RtcScheme {
    /// Serializes the scheme's full query state (record version 2).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, false)
    }

    /// [`RtcScheme::write_into`] with the volatile *measurement* fields
    /// (round and message totals) written as zeros. This is the
    /// **canonical artifact form**: simulated and native builds of the
    /// same graph and seed serialize to identical bytes through it (the
    /// query state is identical by the determinism contract; only the
    /// measured rounds differ, and those are metadata, not artifact).
    /// The stream stays loadable by [`RtcScheme::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_canonical_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, true)
    }

    fn write_into_opts(&self, sink: &mut dyn Write, canonical: bool) -> io::Result<()> {
        WireWriter::new(sink).u16(RTC_RECORD_VERSION)?;
        self.topo.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        for l in &self.labels {
            w.u32(l.id.0)?;
            w.u32(l.home.0)?;
            w.u64(l.dist_home)?;
            w.u64(l.tree_dfs)?;
        }
        for &f in &self.skeleton {
            w.bool(f)?;
        }
        self.short.write_into(sink)?;
        write_lists(sink, &self.short_lists)?;
        self.skel_routes.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.len(self.spanner_edges.len())?;
        for &(a, b, wt) in &self.spanner_edges {
            w.u32(a)?;
            w.u32(b)?;
            w.u64(wt)?;
        }
        let m = self.skel_ids.len();
        w.usize(m)?;
        for &d in &self.span_dist {
            w.u64(d)?;
        }
        for &nx in &self.span_next {
            w.u64(if nx == usize::MAX {
                u64::MAX
            } else {
                nx as u64
            })?;
        }
        self.trees.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        let mt = &self.metrics;
        let zero = |x: u64| if canonical { 0 } else { x };
        w.u64(zero(mt.total_rounds))?;
        w.u64(zero(mt.pde_a_rounds))?;
        w.u64(zero(mt.pde_s_rounds))?;
        w.u64(zero(mt.spanner_broadcast_rounds))?;
        w.u64(zero(mt.tree_label_rounds))?;
        w.u64(zero(mt.total.rounds))?;
        w.u64(zero(mt.total.messages))?;
        w.u32(mt.sample_attempts)?;
        w.u64(mt.h)?;
        Ok(())
    }

    /// Deserializes a scheme written by [`RtcScheme::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes or an unsupported record
    /// version.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        check_record_version(source, RTC_RECORD_VERSION, "rtc scheme")?;
        let topo = Topology::read_from(source)?;
        let n = topo.len();
        let mut r = WireReader::new(source);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(RtcLabel {
                id: NodeId(r.u32()?),
                home: NodeId(r.u32()?),
                dist_home: r.u64()?,
                tree_dfs: r.u64()?,
            });
        }
        let mut skeleton = Vec::with_capacity(n);
        for _ in 0..n {
            skeleton.push(r.bool()?);
        }
        let short = FlatTables::read_from(source)?;
        let short_lists = read_lists(source)?;
        let skel_routes = FlatTables::read_from(source)?;
        if short_lists.len() != n {
            return Err(invalid_data("table count mismatch"));
        }
        short.validate(&topo)?;
        skel_routes.validate(&topo)?;
        let mut r = WireReader::new(source);
        let num_sedges = r.len(n.saturating_mul(n))?;
        let mut spanner_edges = Vec::with_capacity(clamped_capacity(num_sedges));
        for _ in 0..num_sedges {
            let a = r.u32()?;
            let b = r.u32()?;
            let wt = r.u64()?;
            spanner_edges.push((a, b, wt));
        }
        let m = r.usize()?;
        let skel_ids: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| skeleton[v.index()])
            .collect();
        if skel_ids.len() != m {
            return Err(invalid_data("skeleton size mismatch"));
        }
        let mut span_dist = Vec::with_capacity(clamped_capacity(m * m));
        for _ in 0..m * m {
            span_dist.push(r.u64()?);
        }
        let mut span_next = Vec::with_capacity(clamped_capacity(m * m));
        for _ in 0..m * m {
            let x = r.u64()?;
            span_next.push(if x == u64::MAX {
                usize::MAX
            } else {
                let nx = usize::try_from(x).map_err(|_| invalid_data("span_next overflow"))?;
                if nx >= m {
                    return Err(invalid_data("span_next index out of range"));
                }
                nx
            });
        }
        let trees = TreeSet::read_from(source)?;
        let mut r = WireReader::new(source);
        let total_rounds = r.u64()?;
        let pde_a_rounds = r.u64()?;
        let pde_s_rounds = r.u64()?;
        let spanner_broadcast_rounds = r.u64()?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let sample_attempts = r.u32()?;
        let h = r.u64()?;

        let skel_index = DenseIndex::new(n, &skel_ids);
        let (long_dist, long_hop) = crate::scheme::build_long_range(
            &topo,
            &skel_routes,
            &skel_index,
            &skel_ids,
            &span_dist,
            &span_next,
        );
        let metrics = RtcBuildMetrics {
            total_rounds,
            pde_a_rounds,
            pde_s_rounds,
            spanner_broadcast_rounds,
            tree_label_rounds,
            total,
            skeleton_size: m,
            spanner_edge_count: spanner_edges.len(),
            sample_attempts,
            h,
            stages: Default::default(),
        };
        Ok(RtcScheme {
            topo,
            labels,
            short,
            short_lists,
            skel_routes,
            skeleton,
            skel_ids,
            spanner_edges,
            trees,
            metrics,
            skel_index,
            span_dist,
            span_next,
            long_dist,
            long_hop,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::RoutingScheme;
    use crate::scheme::{build_rtc, RtcParams};
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_round_trip_is_query_identical() {
        let mut rng = SmallRng::seed_from_u64(33);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        let back = super::RtcScheme::read_from(&mut &buf[..]).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(scheme.estimate(u, v), back.estimate(u, v), "({u},{v})");
                assert_eq!(scheme.next_hop(u, v), back.next_hop(u, v), "({u},{v})");
            }
            assert_eq!(scheme.label_bits(u), back.label_bits(u));
            assert_eq!(scheme.table_entries(u), back.table_entries(u));
        }
        // Re-serialization is byte-identical (rows stored sorted).
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn record_version_gate_rejects_other_versions() {
        let mut rng = SmallRng::seed_from_u64(34);
        let g = gen::gnp_connected(16, 0.25, Weights::Unit, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        assert_eq!(
            u16::from_le_bytes([buf[0], buf[1]]),
            super::RTC_RECORD_VERSION
        );
        buf[0] = 1; // masquerade as the v1 hash-table layout
        buf[1] = 0;
        let err = super::RtcScheme::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("record version"), "{err}");
    }
}
