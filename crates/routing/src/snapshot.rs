//! Binary snapshot codec for the Theorem 4.5 scheme.
//!
//! A built [`RtcScheme`] is a pure query artifact: everything
//! [`crate::eval::RoutingScheme`] needs is serialized here with the
//! handwritten little-endian framing of [`congest::wire`], so an oracle
//! can be constructed once (the expensive distributed build) and then
//! served from disk. Query answers of a reloaded scheme are bit-identical
//! to the original, and reload → re-save reproduces the byte stream: the
//! flat tables are serialized *as stored* (their rows are sorted by
//! construction), so no canonicalization pass is needed on either side.
//!
//! **Record version 2** (the flat-table layout): routing archives are
//! written as [`FlatTables`] CSR rows instead of per-node hash maps.
//! Version 1 streams (PR 3's hash-table layout, which carried no version
//! tag) are rejected with `InvalidData` — rebuild the scheme and re-save;
//! there is no in-place migration path, by design (snapshots are caches
//! of a deterministic build, not primary data).
//!
//! Build *metrics* are persisted in summary form (round/message totals and
//! the per-stage breakdown); the bounded per-round histories are not.

use crate::scheme::{RtcBuildMetrics, RtcLabel, RtcScheme};
use congest::arena::{U32View, U64View};
use congest::wire::{check_record_version, clamped_capacity, invalid_data, WireReader, WireWriter};
use congest::{Metrics, NodeId, Topology};
use graphs::DenseIndex;
use pde_core::snapshot::FlatLists;
use pde_core::FlatTables;
use std::io::{self, Read, Write};
use treeroute::TreeSet;

/// Version of the scheme record this codec writes (see module docs).
pub const RTC_RECORD_VERSION: u16 = 2;

impl RtcScheme {
    /// Serializes the scheme's full query state (record version 2).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, false)
    }

    /// [`RtcScheme::write_into`] with the volatile *measurement* fields
    /// (round and message totals) written as zeros. This is the
    /// **canonical artifact form**: simulated and native builds of the
    /// same graph and seed serialize to identical bytes through it (the
    /// query state is identical by the determinism contract; only the
    /// measured rounds differ, and those are metadata, not artifact).
    /// The stream stays loadable by [`RtcScheme::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_canonical_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        self.write_into_opts(sink, true)
    }

    fn write_into_opts(&self, sink: &mut dyn Write, canonical: bool) -> io::Result<()> {
        WireWriter::new(sink).u16(RTC_RECORD_VERSION)?;
        self.topo.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        for l in &self.labels {
            w.u32(l.id.0)?;
            w.u32(l.home.0)?;
            w.u64(l.dist_home)?;
            w.u64(l.tree_dfs)?;
        }
        for &f in &self.skeleton {
            w.bool(f)?;
        }
        self.short.write_into(sink)?;
        self.short_lists.write_into(sink)?;
        self.skel_routes.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.len(self.spanner_edges.len())?;
        for &(a, b, wt) in &self.spanner_edges {
            w.u32(a)?;
            w.u32(b)?;
            w.u64(wt)?;
        }
        let m = self.skel_ids.len();
        w.usize(m)?;
        for d in self.span_dist.iter() {
            w.u64(d)?;
        }
        // span_next is stored sentinel-encoded (u64::MAX = none) already.
        for nx in self.span_next.iter() {
            w.u64(nx)?;
        }
        self.trees.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        let mt = &self.metrics;
        let zero = |x: u64| if canonical { 0 } else { x };
        w.u64(zero(mt.total_rounds))?;
        w.u64(zero(mt.pde_a_rounds))?;
        w.u64(zero(mt.pde_s_rounds))?;
        w.u64(zero(mt.spanner_broadcast_rounds))?;
        w.u64(zero(mt.tree_label_rounds))?;
        w.u64(zero(mt.total.rounds))?;
        w.u64(zero(mt.total.messages))?;
        w.u32(mt.sample_attempts)?;
        w.u64(mt.h)?;
        Ok(())
    }

    /// Deserializes a scheme written by [`RtcScheme::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes or an unsupported record
    /// version.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        check_record_version(source, RTC_RECORD_VERSION, "rtc scheme")?;
        let topo = Topology::read_from(source)?;
        let n = topo.len();
        let mut r = WireReader::new(source);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(RtcLabel {
                id: NodeId(r.u32()?),
                home: NodeId(r.u32()?),
                dist_home: r.u64()?,
                tree_dfs: r.u64()?,
            });
        }
        let mut skeleton = Vec::with_capacity(n);
        for _ in 0..n {
            skeleton.push(r.bool()?);
        }
        let short = FlatTables::read_from(source)?;
        let short_lists = FlatLists::read_from(source)?;
        let skel_routes = FlatTables::read_from(source)?;
        if short_lists.len() != n {
            return Err(invalid_data("table count mismatch"));
        }
        short.validate(&topo)?;
        skel_routes.validate(&topo)?;
        let mut r = WireReader::new(source);
        let num_sedges = r.len(n.saturating_mul(n))?;
        let mut spanner_edges = Vec::with_capacity(clamped_capacity(num_sedges));
        for _ in 0..num_sedges {
            let a = r.u32()?;
            let b = r.u32()?;
            let wt = r.u64()?;
            spanner_edges.push((a, b, wt));
        }
        let m = r.usize()?;
        let skel_ids: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| skeleton[v.index()])
            .collect();
        if skel_ids.len() != m {
            return Err(invalid_data("skeleton size mismatch"));
        }
        let cells = congest::wire::seq_product(m, m, "spanner matrix")?;
        let mut span_dist = Vec::with_capacity(clamped_capacity(cells));
        for _ in 0..cells {
            span_dist.push(r.u64()?);
        }
        // Kept sentinel-encoded (u64::MAX = none), validated up front.
        let mut span_next = Vec::with_capacity(clamped_capacity(cells));
        for _ in 0..cells {
            let x = r.u64()?;
            if x != u64::MAX && x >= m as u64 {
                return Err(invalid_data("span_next index out of range"));
            }
            span_next.push(x);
        }
        let trees = TreeSet::read_from(source)?;
        let mut r = WireReader::new(source);
        let total_rounds = r.u64()?;
        let pde_a_rounds = r.u64()?;
        let pde_s_rounds = r.u64()?;
        let spanner_broadcast_rounds = r.u64()?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let sample_attempts = r.u32()?;
        let h = r.u64()?;

        let skel_index = DenseIndex::new(n, &skel_ids);
        let span_dist = U64View::from_vals(&span_dist);
        let span_next = U64View::from_vals(&span_next);
        let (long_dist, long_hop) = crate::scheme::build_long_range(
            &topo,
            &skel_routes,
            &skel_index,
            &skel_ids,
            &span_dist,
            &span_next,
        );
        let (long_dist, long_hop) = (
            U64View::from_vals(&long_dist),
            U32View::from_vals(&long_hop),
        );
        let metrics = RtcBuildMetrics {
            total_rounds,
            pde_a_rounds,
            pde_s_rounds,
            spanner_broadcast_rounds,
            tree_label_rounds,
            total,
            skeleton_size: m,
            spanner_edge_count: spanner_edges.len(),
            sample_attempts,
            h,
            stages: Default::default(),
        };
        Ok(RtcScheme {
            topo,
            labels,
            short,
            short_lists,
            skel_routes,
            skeleton,
            skel_ids,
            spanner_edges,
            trees,
            metrics,
            skel_index,
            span_dist,
            span_next,
            long_dist,
            long_hop,
        })
    }

    /// Emits the scheme into a v3 arena. Every table queries touch is a
    /// typed section — **including the derived long-range reduction**
    /// (`long_dist`/`long_hop`), which the v2 path recomputes with
    /// [`crate::scheme::build_long_range`] on every load; a v3 load only
    /// bulk-decodes and shape-checks. The detection trees and the small
    /// metrics block ride along as embedded v2 streams.
    pub fn write_arena(
        &self,
        a: &mut congest::arena::ArenaWriter,
        canonical: bool,
    ) -> io::Result<()> {
        self.topo.write_arena(a);
        let ids: Vec<u32> = self.labels.iter().map(|l| l.id.0).collect();
        let homes: Vec<u32> = self.labels.iter().map(|l| l.home.0).collect();
        let dist_homes: Vec<u64> = self.labels.iter().map(|l| l.dist_home).collect();
        let tree_dfs: Vec<u64> = self.labels.iter().map(|l| l.tree_dfs).collect();
        a.u32s(&ids);
        a.u32s(&homes);
        a.u64s(&dist_homes);
        a.u64s(&tree_dfs);
        let skeleton: Vec<u8> = self.skeleton.iter().map(|&f| u8::from(f)).collect();
        a.u8s(&skeleton);
        self.short.write_arena(a);
        self.short_lists.write_arena(a);
        self.skel_routes.write_arena(a);
        let endpoints: Vec<u32> = self
            .spanner_edges
            .iter()
            .flat_map(|&(x, y, _)| [x, y])
            .collect();
        let weights: Vec<u64> = self.spanner_edges.iter().map(|&(_, _, w)| w).collect();
        a.u32s(&endpoints);
        a.u64s(&weights);
        // The matrices are stored in their in-memory wire form (span_next
        // sentinel-encoded as u64::MAX), so emitting them is a passthrough.
        a.section(self.span_dist.as_bytes());
        a.section(self.span_next.as_bytes());
        a.section(self.long_dist.as_bytes());
        a.section(self.long_hop.as_bytes());
        a.stream(|sink| self.trees.write_into(sink))?;
        a.stream(|sink| {
            let mut w = WireWriter::new(sink);
            let mt = &self.metrics;
            let zero = |x: u64| if canonical { 0 } else { x };
            w.u64(zero(mt.total_rounds))?;
            w.u64(zero(mt.pde_a_rounds))?;
            w.u64(zero(mt.pde_s_rounds))?;
            w.u64(zero(mt.spanner_broadcast_rounds))?;
            w.u64(zero(mt.tree_label_rounds))?;
            w.u64(zero(mt.total.rounds))?;
            w.u64(zero(mt.total.messages))?;
            w.u32(mt.sample_attempts)?;
            w.u64(mt.h)
        })
    }

    /// Reads what [`RtcScheme::write_arena`] wrote: bulk section decodes
    /// and linear shape checks; no per-element parsing and no
    /// long-range recomputation.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Self> {
        let topo = Topology::read_arena(c)?;
        let n = topo.len();
        let ids = c.u32s()?;
        let homes = c.u32s()?;
        let dist_homes = c.u64s()?;
        let tree_dfs = c.u64s()?;
        if ids.len() != n || homes.len() != n || dist_homes.len() != n || tree_dfs.len() != n {
            return Err(invalid_data("rtc label sections disagree on length"));
        }
        let labels: Vec<RtcLabel> = (0..n)
            .map(|i| RtcLabel {
                id: NodeId(ids[i]),
                home: NodeId(homes[i]),
                dist_home: dist_homes[i],
                tree_dfs: tree_dfs[i],
            })
            .collect();
        let skeleton = {
            let raw = c.bools()?;
            if raw.len() != n {
                return Err(invalid_data("rtc skeleton section misshapen"));
            }
            raw
        };
        let short = FlatTables::read_arena(c)?;
        let short_lists = FlatLists::read_arena(c)?;
        let skel_routes = FlatTables::read_arena(c)?;
        if short_lists.len() != n {
            return Err(invalid_data("table count mismatch"));
        }
        short.validate(&topo)?;
        skel_routes.validate(&topo)?;
        let endpoints = c.u32s()?;
        let weights = c.u64s()?;
        if endpoints.len() != weights.len() * 2 {
            return Err(invalid_data("spanner SoA sections disagree on length"));
        }
        let spanner_edges: Vec<(u32, u32, u64)> = endpoints
            .chunks_exact(2)
            .zip(&weights)
            .map(|(xy, &w)| (xy[0], xy[1], w))
            .collect();
        let skel_ids: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| skeleton[v.index()])
            .collect();
        let m = skel_ids.len();
        let span_cells = congest::wire::seq_product(m, m, "spanner matrix")?;
        let span_dist = c.u64v()?;
        if span_dist.len() != span_cells {
            return Err(invalid_data("span_dist cell count mismatch"));
        }
        let span_next = c.u64v()?;
        if span_next.len() != span_cells {
            return Err(invalid_data("span_next cell count mismatch"));
        }
        if span_next.iter().any(|x| x != u64::MAX && x >= m as u64) {
            return Err(invalid_data("span_next index out of range"));
        }
        let long_cells = congest::wire::seq_product(n, m, "long-range matrix")?;
        let long_dist = c.u64v()?;
        let long_hop = c.u32v()?;
        if long_dist.len() != long_cells || long_hop.len() != long_cells {
            return Err(invalid_data("long-range cell count mismatch"));
        }
        // A stored hop must be a node id or the sentinel: the route path
        // feeds it straight into `NodeId` without further checks.
        if long_hop.iter().any(|h| h != u32::MAX && h as usize >= n) {
            return Err(invalid_data("long-range hop out of range"));
        }
        let trees = TreeSet::read_from(&mut c.bytes()?)?;
        let mut meta = c.bytes()?;
        let mut r = WireReader::new(&mut meta);
        let total_rounds = r.u64()?;
        let pde_a_rounds = r.u64()?;
        let pde_s_rounds = r.u64()?;
        let spanner_broadcast_rounds = r.u64()?;
        let tree_label_rounds = r.u64()?;
        let mut total = Metrics::new(n);
        total.rounds = r.u64()?;
        total.messages = r.u64()?;
        let sample_attempts = r.u32()?;
        let h = r.u64()?;
        let skel_index = DenseIndex::new(n, &skel_ids);
        let metrics = RtcBuildMetrics {
            total_rounds,
            pde_a_rounds,
            pde_s_rounds,
            spanner_broadcast_rounds,
            tree_label_rounds,
            total,
            skeleton_size: m,
            spanner_edge_count: spanner_edges.len(),
            sample_attempts,
            h,
            stages: Default::default(),
        };
        Ok(RtcScheme {
            topo,
            labels,
            short,
            short_lists,
            skel_routes,
            skeleton,
            skel_ids,
            spanner_edges,
            trees,
            metrics,
            skel_index,
            span_dist,
            span_next,
            long_dist,
            long_hop,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::RoutingScheme;
    use crate::scheme::{build_rtc, RtcParams};
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_round_trip_is_query_identical() {
        let mut rng = SmallRng::seed_from_u64(33);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        let back = super::RtcScheme::read_from(&mut &buf[..]).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(scheme.estimate(u, v), back.estimate(u, v), "({u},{v})");
                assert_eq!(scheme.next_hop(u, v), back.next_hop(u, v), "({u},{v})");
            }
            assert_eq!(scheme.label_bits(u), back.label_bits(u));
            assert_eq!(scheme.table_entries(u), back.table_entries(u));
        }
        // Re-serialization is byte-identical (rows stored sorted).
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn arena_round_trip_is_query_and_byte_identical() {
        let mut rng = SmallRng::seed_from_u64(35);
        let g = gen::gnp_connected(24, 0.2, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        let mut a = congest::arena::ArenaWriter::new();
        scheme.write_arena(&mut a, false).unwrap();
        let mut buf = Vec::new();
        a.finish(&mut buf).unwrap();
        let r =
            congest::arena::ArenaReader::parse(congest::arena::SharedBytes::from_vec(buf.clone()))
                .unwrap();
        let mut c = r.cursor();
        let back = super::RtcScheme::read_arena(&mut c).unwrap();
        c.expect_end().unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(scheme.estimate(u, v), back.estimate(u, v), "({u},{v})");
                assert_eq!(scheme.next_hop(u, v), back.next_hop(u, v), "({u},{v})");
            }
        }
        // Re-emitting the arena is byte-identical (all sections stored).
        let mut a2 = congest::arena::ArenaWriter::new();
        back.write_arena(&mut a2, false).unwrap();
        let mut buf2 = Vec::new();
        a2.finish(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn record_version_gate_rejects_other_versions() {
        let mut rng = SmallRng::seed_from_u64(34);
        let g = gen::gnp_connected(16, 0.25, Weights::Unit, &mut rng);
        let scheme = build_rtc(&g, &RtcParams::new(2));
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        assert_eq!(
            u16::from_le_bytes([buf[0], buf[1]]),
            super::RTC_RECORD_VERSION
        );
        buf[0] = 1; // masquerade as the v1 hash-table layout
        buf[1] = 0;
        let err = super::RtcScheme::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("record version"), "{err}");
    }
}
