//! Scheme-agnostic routing evaluation: route tracing, stretch statistics,
//! label/table sizes. Shared by Theorems 4.5 (this crate), 4.8/4.13
//! (`compact`) and the baselines.

use congest::NodeId;
use graphs::algo::Apsp;
use graphs::{WGraph, INF};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A stateless routing + distance-estimation scheme (Sections 2.3/2.4 of
/// the paper): next hops and estimates are functions of the current node's
/// tables and the destination's label only.
pub trait RoutingScheme {
    /// Number of nodes.
    fn len(&self) -> usize;
    /// `true` if the scheme covers no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The next hop from `x` towards `dest` (`None` when `x == dest` or —
    /// a scheme failure — no hop is known).
    fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId>;
    /// The distance estimate from `x` to `dest` (must be `≥ wd(x, dest)`).
    fn estimate(&self, x: NodeId, dest: NodeId) -> u64;
    /// Size of `v`'s label in bits.
    fn label_bits(&self, v: NodeId) -> usize;
    /// Number of routing-table entries stored at `v`.
    fn table_entries(&self, v: NodeId) -> usize;
}

/// Which source/destination pairs to evaluate.
#[derive(Clone, Copy, Debug)]
pub enum PairSelection {
    /// Every ordered pair (`n(n−1)` routes).
    All,
    /// A reproducible uniform sample of ordered pairs.
    Sample {
        /// Number of pairs.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Evaluation report for one scheme on one graph.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Pairs evaluated.
    pub pairs: usize,
    /// Worst route stretch (route weight / wd).
    pub max_stretch: f64,
    /// Mean route stretch.
    pub avg_stretch: f64,
    /// Worst distance-estimate stretch (estimate / wd).
    pub max_estimate_stretch: f64,
    /// Worst route hop count observed.
    pub max_route_hops: usize,
    /// Largest label, in bits.
    pub max_label_bits: usize,
    /// Largest routing table, in entries.
    pub max_table_entries: usize,
    /// Routing failures (should be empty; kept for loud reporting).
    pub failures: Vec<String>,
}

/// Routes every selected pair and collects stretch statistics.
///
/// Routes are traced by repeatedly applying [`RoutingScheme::next_hop`]
/// with a generous hop cap; a stuck walk, a hop that is not a graph edge,
/// or an estimate below the true distance is recorded in
/// [`EvalReport::failures`] (tests assert the list is empty).
pub fn evaluate<S: RoutingScheme>(
    g: &WGraph,
    scheme: &S,
    exact: &Apsp,
    pairs: PairSelection,
) -> EvalReport {
    let n = g.len();
    let mut failures = Vec::new();
    let mut max_stretch = 1.0f64;
    let mut sum_stretch = 0.0f64;
    let mut max_est = 1.0f64;
    let mut max_hops = 0usize;
    let mut count = 0usize;

    let pair_list: Vec<(NodeId, NodeId)> = match pairs {
        PairSelection::All => (0..n as u32)
            .flat_map(|u| (0..n as u32).map(move |v| (NodeId(u), NodeId(v))))
            .filter(|(u, v)| u != v)
            .collect(),
        PairSelection::Sample { count, seed } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..count)
                .map(|_| {
                    let u = rng.random_range(0..n as u32);
                    let mut v = rng.random_range(0..n as u32);
                    while v == u {
                        v = rng.random_range(0..n as u32);
                    }
                    (NodeId(u), NodeId(v))
                })
                .collect()
        }
    };

    let hop_cap = 20 * n + 50;
    for (u, v) in pair_list {
        let wd = exact.dist(u, v);
        debug_assert_ne!(wd, INF, "evaluation requires a connected graph");
        // Distance estimate.
        let est = scheme.estimate(u, v);
        if est == INF {
            failures.push(format!("no estimate for ({u}, {v})"));
            continue;
        }
        if est < wd {
            failures.push(format!("estimate {est} below wd {wd} for ({u}, {v})"));
            continue;
        }
        max_est = max_est.max(est as f64 / wd as f64);

        // Route.
        let mut cur = u;
        let mut weight = 0u64;
        let mut hops = 0usize;
        let ok = loop {
            if cur == v {
                break true;
            }
            if hops >= hop_cap {
                failures.push(format!("hop cap hit routing ({u}, {v}) at {cur}"));
                break false;
            }
            match scheme.next_hop(cur, v) {
                None => {
                    failures.push(format!("stuck routing ({u}, {v}) at {cur}"));
                    break false;
                }
                Some(next) => match g.edge_weight(cur, next) {
                    None => {
                        failures.push(format!("next hop {cur}→{next} is not an edge (dest {v})"));
                        break false;
                    }
                    Some(w) => {
                        weight += w;
                        cur = next;
                        hops += 1;
                    }
                },
            }
        };
        if !ok {
            continue;
        }
        let stretch = weight as f64 / wd as f64;
        max_stretch = max_stretch.max(stretch);
        sum_stretch += stretch;
        max_hops = max_hops.max(hops);
        count += 1;
    }

    let (mut max_label_bits, mut max_table_entries) = (0, 0);
    for v in g.nodes() {
        max_label_bits = max_label_bits.max(scheme.label_bits(v));
        max_table_entries = max_table_entries.max(scheme.table_entries(v));
    }

    EvalReport {
        pairs: count,
        max_stretch,
        avg_stretch: if count > 0 {
            sum_stretch / count as f64
        } else {
            f64::NAN
        },
        max_estimate_stretch: max_est,
        max_route_hops: max_hops,
        max_label_bits,
        max_table_entries,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo::apsp;

    /// A trivial exact scheme for testing the evaluator: full shortest-path
    /// next-hop tables.
    struct ExactScheme {
        n: usize,
        next: Vec<Option<NodeId>>,
        dist: Vec<u64>,
    }

    impl ExactScheme {
        fn new(g: &WGraph) -> Self {
            let n = g.len();
            let mut next = vec![None; n * n];
            let mut dist = vec![0; n * n];
            for u in g.nodes() {
                let sp = graphs::algo::dijkstra(g, u);
                for v in g.nodes() {
                    dist[u.index() * n + v.index()] = sp.dist[v.index()];
                    if u != v {
                        // First hop: walk back from v.
                        let mut cur = v;
                        while let Some(p) = sp.parent[cur.index()] {
                            if p == u {
                                break;
                            }
                            cur = p;
                        }
                        next[u.index() * n + v.index()] = Some(cur);
                    }
                }
            }
            ExactScheme { n, next, dist }
        }
    }

    impl RoutingScheme for ExactScheme {
        fn len(&self) -> usize {
            self.n
        }
        fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
            self.next[x.index() * self.n + dest.index()]
        }
        fn estimate(&self, x: NodeId, dest: NodeId) -> u64 {
            self.dist[x.index() * self.n + dest.index()]
        }
        fn label_bits(&self, _: NodeId) -> usize {
            32
        }
        fn table_entries(&self, _: NodeId) -> usize {
            self.n
        }
    }

    #[test]
    fn exact_scheme_has_stretch_one() {
        let g = WGraph::from_edges(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 4, 4), (0, 4, 20)])
            .unwrap();
        let exact = apsp(&g);
        let scheme = ExactScheme::new(&g);
        let r = evaluate(&g, &scheme, &exact, PairSelection::All);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.pairs, 20);
        assert!((r.max_stretch - 1.0).abs() < 1e-12);
        assert!((r.avg_stretch - 1.0).abs() < 1e-12);
        assert!((r.max_estimate_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_reproducible() {
        let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let exact = apsp(&g);
        let scheme = ExactScheme::new(&g);
        let sel = PairSelection::Sample { count: 6, seed: 9 };
        let a = evaluate(&g, &scheme, &exact, sel);
        let b = evaluate(&g, &scheme, &exact, sel);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.max_route_hops, b.max_route_hops);
    }
}
