//! Criterion wrapper for experiment E6 (Theorem 4.13 truncated build).

use bench::workloads;
use compact::{build_truncated, CompactParams, UpperMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_truncated");
    group.sample_size(10);
    let g = workloads::gnp(24, 1);
    for mode in [UpperMode::Simulated, UpperMode::Local] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| {
                black_box(
                    build_truncated(&g, &CompactParams::new(2), 1, mode)
                        .metrics
                        .total_rounds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
