//! Criterion wrapper for experiment E5 (Theorem 4.8 hierarchy build).

use bench::workloads;
use compact::{build_hierarchy, CompactParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_compact");
    group.sample_size(10);
    let g = workloads::gnp(32, 1);
    for k in [2u32, 3] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                black_box(
                    build_hierarchy(&g, &CompactParams::new(k))
                        .metrics
                        .total_rounds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
