//! Criterion wrapper for experiment E8 (Baswana–Sen spanner).

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::gen::{self, Weights};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner::baswana_sen;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_spanner");
    group.sample_size(20);
    let mut rng = SmallRng::seed_from_u64(1);
    let g = gen::gnp_connected(40, 0.5, Weights::Uniform { lo: 1, hi: 64 }, &mut rng);
    for k in [2u32, 3] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                let mut r = SmallRng::seed_from_u64(2);
                black_box(baswana_sen(&g, k, &mut r).edges.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
