//! Criterion wrapper for experiment E4 (Theorem 4.5 RTC build).

use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use routing::{build_rtc, RtcParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_rtc");
    group.sample_size(10);
    let g = workloads::gnp(32, 1);
    for k in [1u32, 2] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(build_rtc(&g, &RtcParams::new(k)).metrics.total_rounds))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
