//! Criterion wrapper for experiment E10 (simulator throughput).

use bench::{e10_run, E10_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_simulator");
    group.sample_size(10);
    for n in [256usize, 1024] {
        group.bench_function(format!("run_pde_n{n}"), |b| {
            b.iter(|| black_box(e10_run(n, 1, E10_SEED).messages))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
