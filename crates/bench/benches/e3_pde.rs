//! Criterion wrapper for experiment E3 (Corollary 3.5 PDE budgets).

use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use pde_core::{run_pde, PdeParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_pde");
    group.sample_size(10);
    let g = workloads::gnp(64, 1);
    let sources: Vec<bool> = (0..64).map(|i| i % 4 == 0).collect();
    let tags = vec![false; 64];
    for (h, sigma) in [(8u64, 4usize), (16, 8)] {
        group.bench_function(format!("h{h}_s{sigma}"), |b| {
            b.iter(|| {
                black_box(
                    run_pde(&g, &sources, &tags, &PdeParams::new(h, sigma, 0.5))
                        .metrics
                        .total
                        .rounds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
