//! Criterion wrapper for experiment E11 (oracle query throughput).

use bench::{e11_build, e11_pairs, E11_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use oracle::{Backend, DistanceOracle};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_queries");
    group.sample_size(10);
    let n = 256usize;
    let pairs = e11_pairs(n, 20_000, E11_SEED);
    for backend in [
        Backend::Pde,
        Backend::Rtc,
        Backend::Compact,
        Backend::Truncated,
    ] {
        let (o, _) = e11_build(backend, n, E11_SEED);
        let mut out = Vec::new();
        group.bench_function(format!("{}_batch_n{n}", backend.name()), |b| {
            b.iter(|| {
                o.estimate_many_with(&pairs, &mut out, 1);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
