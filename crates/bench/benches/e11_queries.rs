//! Criterion wrapper for experiment E11 (oracle query throughput).

use bench::{e11_build, e11_pairs, E11_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use oracle::{Backend, DistanceOracle};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_queries");
    group.sample_size(10);
    let n = 256usize;
    let pairs = e11_pairs(n, 20_000, E11_SEED);
    // The sorted-vs-shuffled axis: the same pairs pre-grouped by
    // (source, dest) — the grouped kernel's best case vs having to build
    // the schedule itself.
    let mut sorted = pairs.clone();
    sorted.sort_unstable_by_key(|&(u, v)| (u.0, v.0));
    for backend in [
        Backend::Pde,
        Backend::Rtc,
        Backend::Compact,
        Backend::Truncated,
    ] {
        let (o, _) = e11_build(backend, n, E11_SEED);
        let mut out = Vec::new();
        for (axis, list) in [("shuffled", &pairs), ("sorted", &sorted)] {
            group.bench_function(format!("{}_batch_{axis}_n{n}", backend.name()), |b| {
                b.iter(|| {
                    o.estimate_many_with(list, &mut out, 1);
                    black_box(out.last().copied())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
