//! Criterion wrapper for experiment E12 (build engine: simulated vs
//! native oracle builds).

use bench::{workloads, E12_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use oracle::{Backend, BuildMode, DistanceOracle, OracleBuilder};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_builds");
    group.sample_size(10);
    let n = 192usize;
    let g = workloads::gnp_unit(n, E12_SEED);
    for backend in [Backend::Rtc, Backend::Compact, Backend::Truncated] {
        for mode in [BuildMode::Simulated, BuildMode::Native] {
            group.bench_function(format!("{}_{}_n{n}", backend.name(), mode.name()), |b| {
                b.iter(|| {
                    let o = OracleBuilder::new(backend)
                        .seed(E12_SEED)
                        .k(2)
                        .build_mode(mode)
                        .build(&g);
                    black_box(o.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
