//! Criterion wrapper for experiment E7 (Lemma 4.4 tree statistics).

use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use routing::{build_rtc, RtcParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_trees");
    group.sample_size(10);
    let g = workloads::gnp(32, 1);
    group.bench_function("rtc_trees_n32", |b| {
        b.iter(|| {
            let scheme = build_rtc(&g, &RtcParams::new(2));
            black_box(scheme.trees.max_membership(32))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
