//! Criterion wrapper for experiment E9 (algorithm-family comparison).

use baselines::{bellman_ford_apsp, flooding_apsp};
use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use pde_core::approx_apsp;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_comparison");
    group.sample_size(10);
    let g = workloads::gnp(24, 1);
    group.bench_function("bellman_ford", |b| {
        b.iter(|| black_box(bellman_ford_apsp(&g).metrics.rounds))
    });
    group.bench_function("flooding", |b| {
        b.iter(|| black_box(flooding_apsp(&g).metrics.rounds))
    });
    group.bench_function("pde_apsp", |b| {
        b.iter(|| black_box(approx_apsp(&g, 0.5).rounds()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
