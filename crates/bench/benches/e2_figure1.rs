//! Criterion wrapper for experiment E2 (Figure 1 lower-bound family).

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::gen::figure1;
use pde_core::{run_pde, PdeParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_figure1");
    group.sample_size(10);
    for (h, sigma) in [(4usize, 4usize), (6, 6)] {
        let fig = figure1(h, sigma);
        let sources = fig.source_flags();
        let tags = vec![false; fig.graph.len()];
        group.bench_function(format!("h{h}_s{sigma}"), |b| {
            b.iter(|| {
                let out = run_pde(
                    &fig.graph,
                    &sources,
                    &tags,
                    &PdeParams::new(fig.horizon(), sigma, 0.5),
                );
                black_box(out.metrics.total.rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
