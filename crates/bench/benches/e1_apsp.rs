//! Criterion wrapper for experiment E1 (Theorem 4.1 APSP).

use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use pde_core::approx_apsp;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_apsp");
    group.sample_size(10);
    for n in [24usize, 32] {
        let g = workloads::gnp(n, 1);
        group.bench_function(format!("n{n}_eps0.5"), |b| {
            b.iter(|| black_box(approx_apsp(&g, 0.5).rounds()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
