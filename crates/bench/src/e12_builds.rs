//! E12 — the build engine: wall-clock build time of every backend under
//! `BuildMode::Simulated` vs `BuildMode::Native`, with the byte-identity
//! check over canonical artifacts.
//!
//! This is the workload recorded in `BENCH_builds.json`: connected
//! *unit-weight* G(n, p) with average degree ≈ 6 (the E11 graph family,
//! seed `0xE12`), `OracleBuilder` defaults at `k = 2`, median of
//! [`E12_RUNS`] builds per engine so warmup noise does not land in the
//! recorded numbers. Reproduce with
//! `cargo run --release -p bench --bin experiments -- builds`
//! (or `-- builds --smoke` for the tiny CI variant, which additionally
//! asserts Native == Simulated canonical artifact bytes and query
//! digests for all 8 backends at threads ∈ {1, 4}).

use crate::table::{f, Fnv1a, Table};
use crate::workloads;
use graphs::NodeId;
use oracle::{Backend, BuildMode, DistanceOracle, Oracle, OracleBuilder};
use std::time::Instant;

/// The seed of the recorded benchmark workload.
pub const E12_SEED: u64 = 0xE12;

/// Timed builds per engine; the median is recorded.
pub const E12_RUNS: usize = 3;

/// One measured backend at one size.
#[derive(Clone, Debug)]
pub struct BuildRun {
    /// The backend built.
    pub backend: Backend,
    /// Number of nodes.
    pub n: usize,
    /// Median simulated build milliseconds (threads = auto).
    pub sim_ms: f64,
    /// Median native build milliseconds at `threads = 1`.
    pub native_t1_ms: f64,
    /// Median native build milliseconds at `threads = 0` (auto).
    pub native_auto_ms: f64,
    /// `sim_ms / native_auto_ms`.
    pub speedup: f64,
    /// FNV-1a digest over the canonical artifact bytes (identical for
    /// every engine and thread count, by the parity contract).
    pub artifact_digest: u64,
}

fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Fnv1a::new();
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        d.mix(u64::from_le_bytes(w));
    }
    d.finish()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn build(
    backend: Backend,
    g: &graphs::WGraph,
    seed: u64,
    mode: BuildMode,
    threads: usize,
) -> Oracle {
    OracleBuilder::new(backend)
        .seed(seed)
        .k(2)
        .build_mode(mode)
        .threads(threads)
        .build(g)
}

/// Builds `backend` [`E12_RUNS`] times per engine on the canonical E12
/// workload and returns the medians plus the shared artifact digest.
///
/// # Panics
///
/// Panics if the engines' canonical artifacts ever differ — the parity
/// contract is asserted on every run, not only in the smoke.
pub fn e12_run(backend: Backend, n: usize, seed: u64) -> BuildRun {
    let g = workloads::gnp_unit(n, seed);
    let timed = |mode: BuildMode, threads: usize| -> (f64, Oracle) {
        let mut times = Vec::with_capacity(E12_RUNS);
        let mut last = None;
        for _ in 0..E12_RUNS {
            let t0 = Instant::now();
            let o = build(backend, &g, seed, mode, threads);
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            last = Some(o);
        }
        (median(times), last.expect("E12_RUNS >= 1"))
    };
    let (sim_ms, sim) = timed(BuildMode::Simulated, 0);
    let (native_t1_ms, nat1) = timed(BuildMode::Native, 1);
    let (native_auto_ms, nat) = timed(BuildMode::Native, 0);

    let sim_bytes = sim.artifact_bytes();
    let artifact_digest = digest_bytes(&sim_bytes);
    for (label, o) in [("native t1", &nat1), ("native auto", &nat)] {
        assert_eq!(
            o.artifact_bytes(),
            sim_bytes,
            "{backend} n={n}: {label} artifact diverged from simulated"
        );
    }
    BuildRun {
        backend,
        n,
        sim_ms,
        native_t1_ms,
        native_auto_ms,
        speedup: sim_ms / native_auto_ms.max(1e-9),
        artifact_digest,
    }
}

fn push_row(t: &mut Table, r: &BuildRun) {
    t.row(vec![
        r.backend.name().to_string(),
        r.n.to_string(),
        f(r.sim_ms),
        f(r.native_t1_ms),
        f(r.native_auto_ms),
        f(r.speedup),
        format!("{:016x}", r.artifact_digest),
    ]);
}

/// The E12 table: every backend at the given sizes; when `headline` is
/// set, adds the `BENCH_builds.json` rows (n = 4096 for rtc, compact and
/// truncated — the distributed schemes the acceptance bar tracks — plus
/// pde for context).
pub fn e12_builds(sizes: &[usize], headline: bool, seed: u64) -> Table {
    let mut t = Table::new(
        "E12 (build engine): simulated vs native build_ms on unit-weight G(n, ~6/n), k=2, median of 3",
        &[
            "backend", "n", "sim_ms", "native_t1_ms", "native_ms", "speedup", "artifact",
        ],
    );
    for &n in sizes {
        for backend in Backend::ALL {
            let r = e12_run(backend, n, seed);
            push_row(&mut t, &r);
        }
    }
    if headline {
        for backend in [
            Backend::Pde,
            Backend::Rtc,
            Backend::Compact,
            Backend::Truncated,
        ] {
            let r = e12_run(backend, 4096, seed);
            push_row(&mut t, &r);
        }
    }
    t
}

/// CI smoke: builds every backend at a tiny size under both engines and
/// threads ∈ {1, 4}, asserting canonical-artifact byte identity and
/// identical batch answers — the cheap always-on version of
/// `tests/build_parity.rs`.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn e12_smoke(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E12 smoke: native == simulated canonical artifacts, threads ∈ {1, 4}",
        &["backend", "bytes", "artifact", "checks"],
    );
    let g = workloads::gnp_unit(n, seed);
    let pairs: Vec<(NodeId, NodeId)> = (0..n as u32)
        .flat_map(|u| (0..n as u32).map(move |v| (NodeId(u), NodeId(v))))
        .collect();
    for backend in Backend::ALL {
        let reference = build(backend, &g, seed, BuildMode::Simulated, 1);
        let bytes = reference.artifact_bytes();
        let mut want = Vec::new();
        reference.estimate_many(&pairs, &mut want);
        for (mode, threads) in [
            (BuildMode::Simulated, 4),
            (BuildMode::Native, 1),
            (BuildMode::Native, 4),
        ] {
            let o = build(backend, &g, seed, mode, threads);
            assert_eq!(
                o.artifact_bytes(),
                bytes,
                "{backend}: {mode:?} threads={threads} artifact diverged"
            );
            let mut got = Vec::new();
            o.estimate_many(&pairs, &mut got);
            assert_eq!(
                got, want,
                "{backend}: {mode:?} threads={threads} answers diverged"
            );
        }
        t.row(vec![
            backend.name().to_string(),
            bytes.len().to_string(),
            format!("{:016x}", digest_bytes(&bytes)),
            "sim==native, t∈{1,4} identical".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_run_reports_parity_and_speedup_fields() {
        let r = e12_run(Backend::Rtc, 48, E12_SEED);
        assert!(r.sim_ms > 0.0 && r.native_t1_ms > 0.0 && r.native_auto_ms > 0.0);
        assert!(r.speedup > 0.0);
        assert_ne!(r.artifact_digest, 0);
    }

    #[test]
    fn e12_smoke_passes_at_tiny_size() {
        let t = e12_smoke(20, E12_SEED);
        assert_eq!(t.rows.len(), Backend::ALL.len());
    }
}
