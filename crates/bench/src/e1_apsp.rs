//! E1 — Theorem 4.1: deterministic `(1+ε)`-APSP in `O(n/ε²·log n)` rounds.

use crate::table::{f, Table};
use crate::workloads;
use graphs::algo::{apsp, hop_diameter};
use pde_core::approx_apsp;

/// Sweeps `n` and `ε` on G(n,p); reports measured rounds, the ratio to the
/// `n·ln n/ε²` bound (should stay flat/bounded as `n` grows — the paper's
/// claim is the growth *shape*), and the observed max stretch (must be
/// `≤ 1+ε`).
pub fn e1_apsp(sizes: &[usize], epsilons: &[f64], seed: u64) -> Table {
    let mut t = Table::new(
        "E1 (Theorem 4.1): (1+eps)-approximate APSP — rounds vs n*ln(n)/eps^2, stretch <= 1+eps",
        &[
            "n",
            "eps",
            "D",
            "rounds",
            "bound",
            "rounds/bound",
            "max_stretch",
            "ok",
        ],
    );
    for &n in sizes {
        let g = workloads::gnp(n, seed);
        let exact = apsp(&g);
        let d = hop_diameter(&g);
        for &eps in epsilons {
            let a = approx_apsp(&g, eps);
            let stretch = a.max_stretch(&exact);
            let bound = n as f64 * (n as f64).ln() / (eps * eps);
            let ok = stretch <= 1.0 + eps + 1e-9;
            t.row(vec![
                n.to_string(),
                f(eps),
                d.to_string(),
                a.rounds().to_string(),
                f(bound),
                f(a.rounds() as f64 / bound),
                f(stretch),
                ok.to_string(),
            ]);
        }
    }
    t
}
