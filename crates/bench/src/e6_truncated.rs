//! E6 — Theorem 4.13 / Corollary 4.14: the truncated hierarchy and its
//! `l0`/mode trade-off as the hop diameter varies.

use crate::table::{f, Table};
use crate::workloads;
use compact::{build_driver, build_truncated, CompactParams, UpperMode};
use graphs::algo::{apsp, hop_diameter};
use graphs::Seed;
use routing::{evaluate, PairSelection};

/// On a small-diameter G(n,p) and a large-diameter dumbbell, builds the
/// truncated scheme for each `(l0, mode)` and the Corollary 4.14 driver's
/// choice; reports the round decomposition (lower PDE / base PDE / charged
/// upper cost) and the stretch. The paper's claim to validate: the
/// simulated mode's upper cost scales with `Σ M_i + rounds·D`, so it wins
/// on small `D` and loses to broadcast-local on large `D`.
pub fn e6_truncated(n: usize, k: u32, seed: u64) -> Table {
    let mut t = Table::new(
        "E6 (Thm 4.13 / Cor 4.14): truncated hierarchy — rounds decomposition vs diameter",
        &[
            "graph", "D", "l0", "mode", "|S_l0|", "lower", "base", "upper", "total", "stretch",
            "fails",
        ],
    );
    let graphs_list = [
        ("gnp", workloads::gnp(n, seed)),
        ("dumbbell", workloads::dumbbell(n, seed)),
    ];
    for (name, g) in &graphs_list {
        let exact = apsp(g);
        let d = hop_diameter(g);
        let pairs = if g.len() <= 40 {
            PairSelection::All
        } else {
            PairSelection::Sample {
                count: 400,
                seed: 9,
            }
        };
        let mut params = CompactParams::new(k);
        params.seed = Seed(seed);
        for l0 in 1..k {
            for mode in [UpperMode::Simulated, UpperMode::Local] {
                let scheme = build_truncated(g, &params, l0, mode);
                let report = evaluate(g, &scheme, &exact, pairs);
                let m = &scheme.metrics;
                t.row(vec![
                    name.to_string(),
                    d.to_string(),
                    l0.to_string(),
                    format!("{mode:?}"),
                    m.skeleton_size.to_string(),
                    m.lower_rounds.to_string(),
                    m.base_rounds.to_string(),
                    m.upper_rounds.to_string(),
                    m.total_rounds.to_string(),
                    f(report.max_stretch),
                    report.failures.len().to_string(),
                ]);
            }
        }
        // The driver's own pick.
        let (scheme, choice) = build_driver(g, &params, d);
        let report = evaluate(g, &scheme, &exact, pairs);
        let m = &scheme.metrics;
        t.row(vec![
            format!("{name}*"),
            d.to_string(),
            choice.l0.to_string(),
            format!("driver:{:?}", choice.mode),
            m.skeleton_size.to_string(),
            m.lower_rounds.to_string(),
            m.base_rounds.to_string(),
            m.upper_rounds.to_string(),
            m.total_rounds.to_string(),
            f(report.max_stretch),
            report.failures.len().to_string(),
        ]);
    }
    t
}
