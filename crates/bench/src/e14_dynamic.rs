//! E14 — dynamic graphs: repair-vs-rebuild speedup and failover stretch.
//!
//! The protocol, per backend × delta kind on the E11 workload graph:
//! build once, apply one [`GraphDelta`] through
//! [`oracle::OracleBuilder::repair`] [`E14_RUNS`] times (median repair
//! wall-clock), rebuild from scratch on the mutated graph the same
//! number of times (median native rebuild), and **assert** the repaired
//! and rebuilt artifacts are byte-identical — the speedup column is only
//! meaningful because the two outputs are provably the same bytes.
//! Matrix backends (`flooding`, `bellman_ford`) repair edge deltas
//! incrementally (affected rows only); sampling-coupled schemes rebuild
//! honestly through the same entry point, so their ~1× rows quantify
//! what id/seed-keyed sampling costs under churn. For failure deltas the
//! table also measures **failover stretch**: with the failure masked but
//! not yet repaired, [`oracle::route_with_failover`] detours on the
//! *old* artifact, and the stretch is the worst routed weight over the
//! mutated graph's true distance across the E11 pair sample (`-` for
//! `bellman_ford`, which carries no topology and honestly refuses).
//! Reproduce with
//! `cargo run --release -p bench --bin experiments -- dynamic`
//! (`-- dynamic headline` for the `BENCH_dynamic.json` rows at
//! n = 4096, `-- dynamic --smoke` for the CI variant).

use crate::table::{f, Table};
use crate::{e11_graph, e11_pairs};
use graphs::algo::dijkstra;
use graphs::{GraphDelta, NodeId, WGraph};
use oracle::{
    route_with_failover, Backend, DistanceOracle, LivenessMask, OracleBuilder, RepairKind,
    TracedRoute,
};
use std::time::Instant;

/// Workload seed for the dynamic experiment.
pub const E14_SEED: u64 = 0xE14;

/// Timed repair/rebuild repetitions per row; the median is recorded.
pub const E14_RUNS: usize = 3;

/// Query pairs sampled for the failover-stretch measurement.
const E14_PAIRS: usize = 64;

/// One measured repair scenario on one backend.
#[derive(Clone, Debug)]
pub struct DynRun {
    /// The backend measured.
    pub backend: Backend,
    /// Number of nodes (before the delta).
    pub n: usize,
    /// Delta kind tag (`set_weight` / `fail_edge` / `fail_node`).
    pub delta: &'static str,
    /// `incremental` or `rebuilt` (from [`RepairKind::tag`]).
    pub repair_kind: &'static str,
    /// Rows recomputed / rows total (1.0 for a rebuild).
    pub rows_fraction: f64,
    /// Median wall-clock of `OracleBuilder::repair`, ms.
    pub repair_ms: f64,
    /// Median wall-clock of a full native rebuild on the mutated graph, ms.
    pub rebuild_ms: f64,
    /// `rebuild_ms / repair_ms`.
    pub speedup: f64,
    /// Worst failover-detour stretch on the masked pre-repair artifact
    /// over the E11 pair sample; 0.0 when not applicable (weight deltas,
    /// topology-free backends).
    pub failover_stretch: f64,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// The canonical delta of each kind on the E14 graph: a weight bump on
/// the seed-picked edge, or the first edge/node (seed-rotated) whose
/// failure keeps the graph connected.
pub fn e14_delta(g: &WGraph, kind: &str, seed: u64) -> GraphDelta {
    let edges = g.edges();
    match kind {
        "set_weight" => {
            let (u, v, w) = edges[(seed as usize) % edges.len()];
            GraphDelta::SetWeight {
                u: NodeId(u),
                v: NodeId(v),
                w: w + 1 + seed % 9,
            }
        }
        "fail_edge" => {
            for off in 0..edges.len() {
                let (u, v, _) = edges[(seed as usize + off) % edges.len()];
                let delta = GraphDelta::FailEdge {
                    u: NodeId(u),
                    v: NodeId(v),
                };
                if g.apply_delta(&delta).is_ok() {
                    return delta;
                }
            }
            panic!("no survivable edge failure in the E14 graph");
        }
        _ => {
            for off in 0..g.len() {
                let v = NodeId(((seed as usize + off) % g.len()) as u32);
                let delta = GraphDelta::FailNode { v };
                if g.apply_delta(&delta).is_ok() {
                    return delta;
                }
            }
            panic!("no survivable node failure in the E14 graph");
        }
    }
}

/// Maps a pre-delta node id into the mutated graph's id space
/// (`None` for the failed node itself).
fn map_id(delta: &GraphDelta, x: NodeId) -> Option<NodeId> {
    match *delta {
        GraphDelta::FailNode { v } if x == v => None,
        GraphDelta::FailNode { v } if x > v => Some(NodeId(x.0 - 1)),
        _ => Some(x),
    }
}

/// Worst failover stretch on `prev` with `delta`'s failure masked:
/// routed weight over the mutated graph's true distance, maximized over
/// the E11 pair sample. Returns 0.0 when the backend has no topology or
/// the delta is not a failure.
fn failover_stretch(
    prev: &oracle::Oracle,
    g_after: &WGraph,
    delta: &GraphDelta,
    n: usize,
    seed: u64,
) -> f64 {
    let mut mask = LivenessMask::new(n);
    match *delta {
        GraphDelta::FailEdge { u, v } => mask.fail_edge(u, v),
        GraphDelta::FailNode { v } => mask.fail_node(v),
        GraphDelta::SetWeight { .. } => return 0.0,
    }
    if prev.topology().is_none() {
        return 0.0;
    }
    let mut route = TracedRoute::default();
    let mut worst = 0.0f64;
    let mut truth: Option<(NodeId, Vec<u64>)> = None;
    for (u, v) in e11_pairs(n, E14_PAIRS, seed) {
        let (Some(mu), Some(mv)) = (map_id(delta, u), map_id(delta, v)) else {
            continue; // the failed node itself is fair game to refuse
        };
        let outcome = route_with_failover(prev, &mask, u, v, &mut route);
        assert!(
            outcome.routed(),
            "{}: failover refused {u} → {v} though the mutated graph is connected",
            prev.backend()
        );
        if truth.as_ref().map(|(s, _)| *s) != Some(mu) {
            truth = Some((mu, dijkstra(g_after, mu).dist));
        }
        let exact = truth.as_ref().expect("just computed").1[mv.index()];
        worst = worst.max(route.weight as f64 / exact.max(1) as f64);
    }
    worst
}

/// Runs the canonical E14 measurement for one backend × delta kind at
/// size `n`.
///
/// # Panics
///
/// Panics if any repaired artifact is not byte-identical to the
/// from-scratch rebuild on the mutated graph, or if a failover route is
/// refused for a connected pair — the table only exists on top of those
/// guarantees.
pub fn e14_run(backend: Backend, n: usize, kind: &'static str, seed: u64) -> DynRun {
    let g = e11_graph(n, seed);
    let delta = e14_delta(&g, kind, seed);
    let builder = OracleBuilder::new(backend).seed(seed).k(2);
    let prev = builder.build(&g);
    let g_after = g.apply_delta(&delta).expect("E14 deltas apply");

    let stretch = failover_stretch(&prev, &g_after, &delta, n, seed);

    let mut repair_ms = Vec::with_capacity(E14_RUNS);
    let mut repaired = None;
    for _ in 0..E14_RUNS {
        let t0 = Instant::now();
        let r = builder.repair(&g, &prev, &delta).expect("repair succeeds");
        repair_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        repaired = Some(r);
    }
    let repaired = repaired.expect("E14_RUNS >= 1");

    let mut rebuild_ms = Vec::with_capacity(E14_RUNS);
    let mut rebuilt = None;
    for _ in 0..E14_RUNS {
        let t0 = Instant::now();
        rebuilt = Some(builder.build(&g_after));
        rebuild_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(
        repaired.oracle.artifact_bytes(),
        rebuilt.expect("E14_RUNS >= 1").artifact_bytes(),
        "{backend}: repair diverged from rebuild on {delta}"
    );

    let (repair_ms, rebuild_ms) = (median(&mut repair_ms), median(&mut rebuild_ms));
    let rows_fraction = match repaired.report.kind {
        RepairKind::Incremental {
            rows_recomputed,
            rows_total,
        } => rows_recomputed as f64 / rows_total.max(1) as f64,
        RepairKind::Rebuilt { .. } => 1.0,
    };
    DynRun {
        backend,
        n,
        delta: delta.kind(),
        repair_kind: repaired.report.kind.tag(),
        rows_fraction,
        repair_ms,
        rebuild_ms,
        speedup: rebuild_ms / repair_ms.max(1e-9),
        failover_stretch: stretch,
    }
}

fn push_row(t: &mut Table, r: &DynRun) {
    t.row(vec![
        r.backend.name().to_string(),
        r.n.to_string(),
        r.delta.to_string(),
        r.repair_kind.to_string(),
        f(r.rows_fraction),
        f(r.repair_ms),
        f(r.rebuild_ms),
        f(r.speedup),
        if r.failover_stretch > 0.0 {
            f(r.failover_stretch)
        } else {
            "-".into()
        },
    ]);
}

const E14_KINDS: [&str; 3] = ["set_weight", "fail_edge", "fail_node"];

/// The E14 table: every backend × delta kind at the given sizes, plus —
/// when `headline` is set — the `BENCH_dynamic.json` rows: single-edge
/// failure at n = 4096 on the two incremental matrix backends (the ≥5×
/// acceptance bar) with `rtc`'s honest-rebuild row alongside for scale.
pub fn e14_dynamic(sizes: &[usize], headline: bool, seed: u64) -> Table {
    let mut t = Table::new(
        "E14 (dynamic): repair vs rebuild (byte-identity asserted) and failover stretch on unit-weight G(n, ~6/n), k=2",
        &[
            "backend",
            "n",
            "delta",
            "repair",
            "rows",
            "repair_ms",
            "rebuild_ms",
            "speedup",
            "failover_stretch",
        ],
    );
    for &n in sizes {
        for backend in Backend::ALL {
            for kind in E14_KINDS {
                push_row(&mut t, &e14_run(backend, n, kind, seed));
            }
        }
    }
    if headline {
        for backend in [Backend::Flooding, Backend::BellmanFord, Backend::Rtc] {
            push_row(&mut t, &e14_run(backend, 4096, "fail_edge", seed));
        }
    }
    t
}

/// CI smoke: every backend × delta kind at a tiny size goes through
/// repair (byte-identity vs rebuild asserted inside [`e14_run`]) and the
/// failure rows exercise a masked failover route.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn e14_smoke(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E14 smoke: repair ≡ rebuild byte-identity and failover detours",
        &[
            "backend",
            "n",
            "delta",
            "repair",
            "rows",
            "repair_ms",
            "rebuild_ms",
            "speedup",
            "failover_stretch",
        ],
    );
    for backend in Backend::ALL {
        for kind in E14_KINDS {
            push_row(&mut t, &e14_run(backend, n, kind, seed));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_measures_repair_and_failover() {
        let r = e14_run(Backend::Flooding, 32, "fail_edge", E14_SEED);
        assert_eq!(r.repair_kind, "incremental");
        assert!(r.rows_fraction > 0.0 && r.rows_fraction <= 1.0);
        assert!(r.repair_ms > 0.0 && r.rebuild_ms > 0.0);
        assert!(r.failover_stretch >= 1.0, "{}", r.failover_stretch);
    }

    #[test]
    fn e14_schemes_report_honest_rebuilds() {
        let r = e14_run(Backend::Rtc, 24, "set_weight", E14_SEED);
        assert_eq!(r.repair_kind, "rebuilt");
        assert_eq!(r.rows_fraction, 1.0);
        assert_eq!(r.failover_stretch, 0.0, "weight deltas mask nothing");
    }

    #[test]
    fn e14_smoke_passes_at_tiny_size() {
        let t = e14_smoke(20, E14_SEED);
        assert_eq!(t.rows.len(), Backend::ALL.len() * E14_KINDS.len());
    }
}
