//! Shared workload generators for the experiments.

use graphs::gen::{self, Weights};
use graphs::WGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The default weight range (polynomial in n, several ladder rungs).
pub const W: Weights = Weights::Uniform { lo: 1, hi: 32 };

/// Connected G(n, p) with average degree ≈ 6 and the default weights.
pub fn gnp(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p = (6.0 / n as f64).min(0.9);
    gen::gnp_connected(n, p, W, &mut rng)
}

/// Connected *unit-weight* G(n, p) with average degree ≈ 6 — the E11
/// query-throughput workload (one PDE ladder rung, so the distributed
/// builds stay tractable at n = 4096 while the query-side structures are
/// the same shape as the weighted case).
pub fn gnp_unit(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p = (6.0 / n as f64).min(0.9);
    gen::gnp_connected(n, p, Weights::Unit, &mut rng)
}

/// Dumbbell with long path (large hop diameter).
pub fn dumbbell(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let clique = (n / 4).max(2);
    let path = n - 2 * clique;
    gen::dumbbell(clique, path, W, &mut rng)
}

/// Weighted grid (moderate diameter, planar-ish).
pub fn grid(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = (n as f64).sqrt().round() as usize;
    gen::grid(side.max(2), side.max(2), W, &mut rng)
}

/// Barabási–Albert scale-free graph with 2 attachments per node and the
/// default weights (internet-like hubs; stresses skew in the detection
/// load).
pub fn power_law(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::power_law(n.max(4), 2, W, &mut rng)
}

/// Ring of `⌈n/8⌉` cliques of 8 nodes (clustered, long cycle of
/// bottlenecks).
pub fn ring_of_cliques(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cliques = n.div_ceil(8).max(3);
    gen::ring_of_cliques(cliques, 8, W, &mut rng)
}

/// The hypercube of dimension `⌈log₂ n⌉` with the default weights
/// (low diameter, vertex-transitive).
pub fn hypercube(n: usize, seed: u64) -> WGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dim = (usize::BITS - n.max(2).next_power_of_two().leading_zeros() - 1).max(1);
    gen::hypercube(dim, W, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_connected_and_sized() {
        assert!(gnp(40, 1).is_connected());
        assert_eq!(gnp(40, 1).len(), 40);
        assert!(dumbbell(40, 1).is_connected());
        assert!(grid(36, 1).is_connected());
        assert_eq!(grid(36, 1).len(), 36);
    }

    #[test]
    fn family_workloads_are_connected_and_sized() {
        assert!(power_law(100, 1).is_connected());
        assert_eq!(power_law(100, 1).len(), 100);
        assert!(ring_of_cliques(64, 1).is_connected());
        assert_eq!(ring_of_cliques(64, 1).len(), 64);
        assert!(hypercube(64, 1).is_connected());
        assert_eq!(hypercube(64, 1).len(), 64);
        // Non-power-of-two sizes round up to the next hypercube.
        assert_eq!(hypercube(48, 1).len(), 64);
    }
}
