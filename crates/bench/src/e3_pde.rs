//! E3 — Corollary 3.5 + Lemma 3.4: PDE round and message budgets.

use crate::table::{f, Table};
use crate::workloads;
use pde_core::{run_pde, PdeParams};

/// Sweeps `(h, σ, ε)` on a fixed G(n,p); reports measured rounds against
/// the `(h+σ)/ε²·log n + D` bound and the largest per-node broadcast
/// count in any single level against the `O(σ²)` bound of Lemma 3.4
/// (ratios should stay bounded as parameters grow).
pub fn e3_pde(n: usize, cases: &[(u64, usize, f64)], seed: u64) -> Table {
    let mut t = Table::new(
        "E3 (Cor 3.5 + Lemma 3.4): PDE rounds vs (h+sigma)/eps^2*ln(n); per-node msgs vs sigma^2",
        &[
            "h",
            "sigma",
            "eps",
            "rounds",
            "round_bound",
            "r/bound",
            "max_msgs_lvl",
            "sigma^2",
            "m/s^2",
        ],
    );
    let g = workloads::gnp(n, seed);
    // A spread-out source set: every fourth node.
    let sources: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let tags = vec![false; n];
    for &(h, sigma, eps) in cases {
        let out = run_pde(&g, &sources, &tags, &PdeParams::new(h, sigma, eps));
        let rounds = out.metrics.total.rounds;
        let bound = (h as f64 + sigma as f64) / (eps * eps) * (n as f64).ln();
        let msgs = out.metrics.max_broadcasts_single_level;
        let s2 = (sigma * sigma) as f64;
        t.row(vec![
            h.to_string(),
            sigma.to_string(),
            f(eps),
            rounds.to_string(),
            f(bound),
            f(rounds as f64 / bound),
            msgs.to_string(),
            f(s2),
            f(msgs as f64 / s2),
        ]);
    }
    t
}
