//! E13 — the serving front end: cold-start-to-first-answer for v2 vs v3
//! snapshots, and sustained query throughput through
//! [`serve::OracleServer`].
//!
//! Cold start is the number the v3 arena layout exists to shrink: a v2
//! load re-derives the query-side tables (per-row bucket indexes, the RTC
//! long-range reduction), while a v3 load validates one checksum and
//! serves zero-copy views into stored sections. The protocol: build once
//! on the E11 workload, serialize both versions, `install_shared` each
//! version [`E13_LOADS`] times into an [`OracleServer`] (decode, install,
//! one probe query) and record the median. Sustained throughput replays the
//! E11 batch through [`OracleServer::query`] — lease + counters on top of
//! the oracle's own batch path — so the serving overhead is visible next
//! to `BENCH_oracle.json`'s raw numbers. Answer digests are checked
//! across the v2 → v3 hot swap: the swap must not change a single bit.
//! Reproduce with
//! `cargo run --release -p bench --bin experiments -- serve`
//! (`-- serve headline` for the `BENCH_oracle.json` rows at n = 4096,
//! `-- serve --smoke` for the CI variant, which additionally pins
//! admission-batcher answers against direct queries).

use crate::table::{f, Table};
use crate::{e11_build, e11_pairs, E11_BATCH};
use oracle::{Backend, Oracle};
use serve::{Batcher, OracleServer};
use std::time::{Duration, Instant};

/// Cold-start installs per snapshot version; the median is recorded.
pub const E13_LOADS: usize = 5;

/// Timed serving sweeps (per run) behind the sustained q/s median.
const E13_SWEEPS: usize = 5;

/// One measured serve workload on one backend.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// The backend measured.
    pub backend: Backend,
    /// Number of nodes.
    pub n: usize,
    /// v2 snapshot size in bytes.
    pub v2_bytes: usize,
    /// v3 snapshot size in bytes.
    pub v3_bytes: usize,
    /// Median v2 cold-start (bytes in memory → first answer), ms.
    pub v2_cold_ms: f64,
    /// Median v3 cold-start, ms.
    pub v3_cold_ms: f64,
    /// `v2_cold_ms / v3_cold_ms`.
    pub speedup: f64,
    /// Median sustained throughput through `OracleServer::query`, q/s.
    pub qps_served: f64,
    /// FNV-1a digest over the served batch answers — must match across
    /// the v2 → v3 hot swap (asserted) and `BENCH_oracle.json`'s E11
    /// digests (same workload).
    pub digest: u64,
}

fn fnv1a(values: &[u64]) -> u64 {
    let mut digest = crate::table::Fnv1a::new();
    for &x in values {
        digest.mix(x);
    }
    digest.finish()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Runs the canonical E13 measurement for one backend at size `n`:
/// build once, then serve.
pub fn e13_run(backend: Backend, n: usize, seed: u64) -> ServeRun {
    let (oracle, _) = e11_build(backend, n, seed);
    e13_measure(&oracle, backend, n, seed)
}

/// Measures cold start and served throughput for an already-built oracle.
///
/// # Panics
///
/// Panics if the v2-served and v3-served answers diverge (the hot swap
/// must be invisible to queries) or an install fails.
pub fn e13_measure(oracle: &Oracle, backend: Backend, n: usize, seed: u64) -> ServeRun {
    let mut v2 = Vec::new();
    oracle.save(&mut v2).expect("serialize v2");
    let mut v3 = Vec::new();
    oracle.save_v3(&mut v3).expect("serialize v3");

    let (v2_len, v3_len) = (v2.len(), v3.len());
    let v2 = congest::arena::SharedBytes::from_vec(v2);
    let v3 = congest::arena::SharedBytes::from_vec(v3);

    let server = OracleServer::new();
    let cold = |bytes: &congest::arena::SharedBytes| {
        let mut ms = Vec::with_capacity(E13_LOADS);
        for _ in 0..E13_LOADS {
            let report = server
                .install_shared("cold", bytes.clone())
                .expect("install snapshot");
            ms.push(report.cold_start_nanos as f64 / 1e6);
        }
        median(&mut ms)
    };
    let v2_cold_ms = cold(&v2);
    let v3_cold_ms = cold(&v3);
    server.remove("cold");

    // Sustained throughput through the server, with the v2 → v3 hot swap
    // inside the measured path: the digest must not move.
    let name = backend.name();
    let pairs = e11_pairs(n, E11_BATCH, seed);
    let mut out = Vec::new();
    server.install_shared(name, v2.clone()).expect("install v2");
    server.query(name, &pairs, &mut out, 1).expect("serve v2");
    let digest = fnv1a(&out);
    server.install_shared(name, v3.clone()).expect("swap to v3");
    let mut qps = Vec::with_capacity(E13_SWEEPS);
    for _ in 0..E13_SWEEPS {
        let t = Instant::now();
        server.query(name, &pairs, &mut out, 1).expect("serve v3");
        qps.push(pairs.len() as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    assert_eq!(
        fnv1a(&out),
        digest,
        "{backend}: v2 → v3 hot swap changed served answers"
    );
    ServeRun {
        backend,
        n,
        v2_bytes: v2_len,
        v3_bytes: v3_len,
        v2_cold_ms,
        v3_cold_ms,
        speedup: v2_cold_ms / v3_cold_ms.max(1e-9),
        qps_served: median(&mut qps),
        digest,
    }
}

fn push_row(t: &mut Table, r: &ServeRun) {
    t.row(vec![
        r.backend.name().to_string(),
        r.n.to_string(),
        r.v2_bytes.to_string(),
        r.v3_bytes.to_string(),
        f(r.v2_cold_ms),
        f(r.v3_cold_ms),
        f(r.speedup),
        f(r.qps_served),
        format!("{:016x}", r.digest),
    ]);
}

/// The E13 table: every backend at the given sizes, plus — when
/// `headline` is set — the `BENCH_oracle.json` cold-start rows: `n =
/// 4096` for pde and rtc (the two backends the v3 acceptance bar names),
/// truncated alongside, and compact at `n = 1024`.
pub fn e13_serve(sizes: &[usize], headline: bool, seed: u64) -> Table {
    let mut t = Table::new(
        "E13 (serving): v2 vs v3 cold-start and served q/s on unit-weight G(n, ~6/n), k=2",
        &[
            "backend",
            "n",
            "v2_B",
            "v3_B",
            "v2_cold_ms",
            "v3_cold_ms",
            "speedup",
            "served_q/s",
            "digest",
        ],
    );
    for &n in sizes {
        for backend in Backend::ALL {
            push_row(&mut t, &e13_run(backend, n, seed));
        }
    }
    if headline {
        for backend in [Backend::Pde, Backend::Rtc, Backend::Truncated] {
            push_row(&mut t, &e13_run(backend, 4096, seed));
        }
        push_row(&mut t, &e13_run(Backend::Compact, 1024, seed));
    }
    t
}

/// CI smoke: every backend at a tiny size goes through the full serving
/// lifecycle — install from v2 bytes, query, hot-swap to v3 bytes, query
/// again, batch through the admission [`Batcher`] — and every answer path
/// must agree bit-for-bit.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn e13_smoke(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E13 smoke: install/query/hot-swap/batch identity through OracleServer",
        &[
            "backend", "n", "v2_B", "v3_B", "speedup", "digest", "checks",
        ],
    );
    let server = OracleServer::new();
    let pairs = e11_pairs(n, 512, seed);
    for backend in Backend::ALL {
        let (oracle, _) = e11_build(backend, n, seed);
        let mut v2 = Vec::new();
        oracle.save(&mut v2).unwrap();
        let mut v3 = Vec::new();
        oracle.save_v3(&mut v3).unwrap();

        let name = backend.name();
        let r2 = server.install_from_bytes(name, &v2).unwrap();
        assert_eq!((r2.backend, r2.n), (backend, n), "{backend}: v2 identity");
        let mut from_v2 = Vec::new();
        server.query(name, &pairs, &mut from_v2, 1).unwrap();

        let r3 = server.install_from_bytes(name, &v3).unwrap();
        let replaced = r3.replaced.expect("hot swap must report the retiree");
        assert_eq!(
            replaced.generation, r2.generation,
            "{backend}: wrong snapshot retired"
        );
        let mut from_v3 = Vec::new();
        let generation = server.query(name, &pairs, &mut from_v3, 1).unwrap();
        assert_eq!(generation, r3.generation, "{backend}: stale lease");
        assert_eq!(from_v2, from_v3, "{backend}: hot swap changed answers");

        let batcher = Batcher::new(name, Duration::from_millis(1), 1);
        let (batched, _) = batcher.submit(&server, pairs.clone()).unwrap();
        assert_eq!(batched, from_v3, "{backend}: batcher changed answers");

        let speedup = (r2.cold_start_nanos as f64) / (r3.cold_start_nanos.max(1) as f64);
        t.row(vec![
            backend.name().to_string(),
            n.to_string(),
            v2.len().to_string(),
            v3.len().to_string(),
            f(speedup),
            format!("{:016x}", fnv1a(&from_v3)),
            "v2=v3=batched through hot swap".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::E11_SEED;

    #[test]
    fn e13_measures_cold_start_and_served_throughput() {
        let r = e13_run(Backend::Flooding, 48, E11_SEED);
        assert!(r.v2_cold_ms > 0.0 && r.v3_cold_ms > 0.0);
        assert!(r.qps_served > 0.0);
        assert!(r.v3_bytes > 0 && r.v2_bytes > 0);
    }

    #[test]
    fn e13_smoke_passes_at_tiny_size() {
        let t = e13_smoke(20, E11_SEED);
        assert_eq!(t.rows.len(), Backend::ALL.len());
    }
}
