//! E8 — Baswana–Sen on skeleton graphs: size `O(k·|S|^{1+1/k})`, stretch
//! `≤ 2k−1`, dissemination `Õ(|S|^{1+1/k} + D)` rounds.

use crate::table::{f, Table};
use crate::workloads;
use graphs::gen::{self, Weights};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner::{baswana_sen, verify_stretch};

/// Runs Baswana–Sen on dense weighted graphs (stand-ins for the virtual
/// skeleton graphs of Theorem 4.5, which are near-cliques) across `k`;
/// reports spanner size against `k·m^{1+1/k}`, exact stretch against
/// `2k−1`, and the broadcast item count driving the dissemination rounds.
pub fn e8_spanner(sizes: &[usize], ks: &[u32], seed: u64) -> Table {
    let mut t = Table::new(
        "E8 (Baswana-Sen): spanner size O(k*m^{1+1/k}), stretch <= 2k-1",
        &[
            "m",
            "k",
            "edges_in",
            "edges_out",
            "k*m^{1+1/k}",
            "e/bound",
            "stretch",
            "2k-1",
            "bc_items",
        ],
    );
    for &m in sizes {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnp_connected(m, 0.5, Weights::Uniform { lo: 1, hi: 64 }, &mut rng);
        for &k in ks {
            let sp = baswana_sen(&g, k, &mut rng);
            let stretch = verify_stretch(&g, &sp.edges);
            let bound = f64::from(k) * (m as f64).powf(1.0 + 1.0 / f64::from(k));
            t.row(vec![
                m.to_string(),
                k.to_string(),
                g.num_edges().to_string(),
                sp.edges.len().to_string(),
                f(bound),
                f(sp.edges.len() as f64 / bound),
                f(stretch),
                (2 * k - 1).to_string(),
                sp.broadcast_items.to_string(),
            ]);
        }
    }
    let _ = workloads::W; // shared weight convention documented here
    t
}
