//! E2 — Figure 1: the `Ω(hσ)` lower bound for exact detection, and how
//! PDE sidesteps it.

use crate::table::{f, Table};
use graphs::gen::figure1;
use pde_core::{run_pde, PdeParams};

/// For each `(h, σ)`, builds the Figure 1 graph and reports:
///
/// * the information lower bound `h·σ` — every exact solution must move
///   `hσ` distinct `(source, distance)` values across the bridge edge, one
///   `O(log n)`-bit value per round;
/// * the measured rounds of `(1+ε)`-approximate PDE, which beat `h·σ` as
///   soon as `hσ ≫ (h+σ)/ε²·log n` — the crossover the paper's technical
///   discussion describes;
/// * verification that PDE's output at the `u_i` nodes meets the
///   Definition 2.2 guarantee: sound estimates (`≥ wd`), and the `i`-th
///   listed estimate at most `(1+ε)` times the `i`-th smallest in-horizon
///   distance. (Note: PDE may legitimately list sources *beyond* the hop
///   horizon when they are nearer in weight — on this instance `u_2` sees
///   `s_{1,·}` at weight ≪ its own sources' weight. That relaxation is
///   precisely what makes PDE cheaper than exact hop-limited detection.)
pub fn e2_figure1(cases: &[(usize, usize)], eps: f64) -> Table {
    let mut t = Table::new(
        "E2 (Figure 1): exact detection needs h*sigma rounds over the bridge; PDE avoids it",
        &[
            "h",
            "sigma",
            "n",
            "exact_lb",
            "pde_rounds",
            "pde/lb",
            "u_lists_ok",
        ],
    );
    for &(h, sigma) in cases {
        let fig = figure1(h, sigma);
        let sources = fig.source_flags();
        let tags = vec![false; fig.graph.len()];
        let out = run_pde(
            &fig.graph,
            &sources,
            &tags,
            &PdeParams::new(fig.horizon(), sigma, eps),
        );
        // Verify the Definition 2.2 guarantee at every u_i.
        let exact = graphs::algo::apsp(&fig.graph);
        let mut ok = true;
        for &ui in &fig.u_chain {
            let list = &out.lists[ui.index()];
            if list.len() < sigma {
                ok = false;
                continue;
            }
            // In-horizon reference distances (h_{u_i,s} ≤ h+1), sorted.
            let mut in_range: Vec<u64> = fig
                .graph
                .nodes()
                .filter(|s| sources[s.index()])
                .filter(|&s| u64::from(exact.hops(ui, s)) <= fig.horizon())
                .map(|s| exact.dist(ui, s))
                .collect();
            in_range.sort_unstable();
            for (i, e) in list.iter().take(sigma).enumerate() {
                let wd = exact.dist(ui, e.src);
                if e.est < wd {
                    ok = false; // unsound estimate
                }
                if i < in_range.len() && e.est as f64 > (1.0 + eps) * in_range[i] as f64 {
                    ok = false; // prefix guarantee violated
                }
            }
        }
        let lb = (h * sigma) as u64;
        t.row(vec![
            h.to_string(),
            sigma.to_string(),
            fig.graph.len().to_string(),
            lb.to_string(),
            out.metrics.total.rounds.to_string(),
            f(out.metrics.total.rounds as f64 / lb as f64),
            ok.to_string(),
        ]);
    }
    t
}
