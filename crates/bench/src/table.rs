//! Minimal fixed-width table printing for experiment output.

use std::fmt;

/// A printable experiment table: a title, column headers and rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id + claim, e.g. "E1 (Theorem 4.1): …".
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

/// Formats a float compactly for table cells.
pub fn f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(out, "## {}", self.title)?;
        let line = |out: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(out, "|")?;
            for (w, c) in widths.iter().zip(cells) {
                write!(out, " {c:>w$} |")?;
            }
            writeln!(out)
        };
        line(out, &self.header)?;
        write!(out, "|")?;
        for w in &widths {
            write!(out, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(out)?;
        for row in &self.rows {
            line(out, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_table() {
        let mut t = Table::new("demo", &["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| 1 |"), "got: {s}");
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}

/// Incremental FNV-1a over `u64` words — the digest both tracked
/// benchmark files (`BENCH_simulator.json`, `BENCH_oracle.json`) use for
/// output-identity checks, kept in one place so they stay comparable.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    /// Mixes one word.
    pub fn mix(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}
