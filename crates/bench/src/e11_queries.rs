//! E11 — oracle query throughput: single-query latency percentiles and
//! batch `estimate_many_with` queries/second for every backend.
//!
//! This is the workload recorded in `BENCH_oracle.json` (the before/after
//! evidence for the flat-SoA query-path refactor): connected *unit-weight*
//! G(n, p) with average degree ≈ 6, seed `0xE11`, `OracleBuilder`
//! defaults at `k = 2`. Unit weights keep the PDE weight ladder at one
//! rung so the expensive distributed builds stay tractable at `n = 4096`;
//! the query-side data structures (and therefore the measured hot path)
//! are identical to the weighted case. Reproduce with
//! `cargo run --release -p bench --bin experiments -- queries`
//! (or `-- queries --smoke` for the tiny CI variant, which also asserts
//! that every backend's batch path agrees with its scalar `estimate` and
//! is identical across thread counts).

use crate::table::{f, Table};
use crate::workloads;
use graphs::NodeId;
use oracle::{Backend, DistanceOracle, Oracle, OracleBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The seed used for the recorded benchmark workload.
pub const E11_SEED: u64 = 0xE11;

/// Pairs per batch sweep (the unit behind the recorded q/s numbers).
pub const E11_BATCH: usize = 200_000;

/// Pairs timed for the latency percentiles.
const E11_SINGLES: usize = 50_000;

/// Queries per timed group in the percentile protocol: one `Instant`
/// pair per group of this many calls, divided by the group size — so
/// the timer read amortizes to ~1/64 of a query instead of dominating
/// the p50 (the pre-PR-10 protocol timed each call individually).
const E11_LATENCY_GROUP: usize = 64;

/// Timed sweeps per measurement; the median is recorded.
const E11_SWEEPS: usize = 5;

/// One measured query workload on one backend.
#[derive(Clone, Debug)]
pub struct QueryRun {
    /// The backend measured.
    pub backend: Backend,
    /// Number of nodes.
    pub n: usize,
    /// Wall-clock build milliseconds (one-time cost, for context).
    pub build_ms: f64,
    /// Median single-query latency in nanoseconds, batch-timed: groups
    /// of [`E11_LATENCY_GROUP`] `estimate` calls share one `Instant`
    /// pair and the group time is divided per query (quantiles are over
    /// per-group means — a protocol change from the individually-timed
    /// pre-PR-10 numbers, which folded a full timer read into every
    /// sample).
    pub p50_ns: u64,
    /// 99th-percentile single-query latency in nanoseconds (same
    /// batch-timed protocol).
    pub p99_ns: u64,
    /// Median batch throughput at `threads = 1` on the shuffled
    /// (submission-order) pair list, queries/second.
    pub qps_seq: f64,
    /// Median batch throughput at `threads = 0` (auto), queries/second.
    pub qps_auto: f64,
    /// Median batch throughput at `threads = 1` on a `(u, v)`-sorted
    /// copy of the same pairs — the grouped kernel's best case; the gap
    /// to [`QueryRun::qps_seq`] is what the schedule build costs.
    pub qps_sorted: f64,
    /// FNV-1a digest over the batch answers (identity checks across
    /// thread counts and code versions).
    pub digest: u64,
}

/// The canonical E11 graph: connected unit-weight G(n, ~6/n).
pub fn e11_graph(n: usize, seed: u64) -> graphs::WGraph {
    workloads::gnp_unit(n, seed)
}

/// The canonical E11 query pairs: `count` uniform ordered pairs with
/// `u != v`, seeded from the workload seed.
pub fn e11_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD00D);
    (0..count)
        .map(|_| {
            let u = rng.random_range(0..n as u32);
            let mut v = rng.random_range(0..n as u32);
            while v == u {
                v = rng.random_range(0..n as u32);
            }
            (NodeId(u), NodeId(v))
        })
        .collect()
}

fn fnv1a(values: &[u64]) -> u64 {
    let mut digest = crate::table::Fnv1a::new();
    for &x in values {
        digest.mix(x);
    }
    digest.finish()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Builds one backend on the canonical E11 workload.
pub fn e11_build(backend: Backend, n: usize, seed: u64) -> (Oracle, f64) {
    let g = e11_graph(n, seed);
    let t0 = Instant::now();
    let o = OracleBuilder::new(backend).seed(seed).k(2).build(&g);
    (o, t0.elapsed().as_secs_f64() * 1e3)
}

/// Runs the canonical E11 measurement for one backend at size `n`.
pub fn e11_run(backend: Backend, n: usize, seed: u64) -> QueryRun {
    let (o, build_ms) = e11_build(backend, n, seed);
    e11_measure(&o, backend, n, seed, build_ms)
}

/// Measures an already-built oracle with the canonical protocol.
pub fn e11_measure(
    oracle: &Oracle,
    backend: Backend,
    n: usize,
    seed: u64,
    build_ms: f64,
) -> QueryRun {
    let pairs = e11_pairs(n, E11_BATCH, seed);
    let mut sorted_pairs = pairs.clone();
    sorted_pairs.sort_unstable_by_key(|&(u, v)| (u.0, v.0));
    let mut out = Vec::new();

    // Batch throughput: warmup sweep, then the median of timed sweeps —
    // shuffled at threads = 1 and auto, plus the (u, v)-sorted copy.
    oracle.estimate_many_with(&pairs, &mut out, 1);
    let digest = fnv1a(&out);
    let mut sweep = |list: &[(NodeId, NodeId)], threads: usize| {
        let mut qps = Vec::with_capacity(E11_SWEEPS);
        for _ in 0..E11_SWEEPS {
            let t = Instant::now();
            oracle.estimate_many_with(list, &mut out, threads);
            qps.push(list.len() as f64 / t.elapsed().as_secs_f64().max(1e-9));
        }
        median(&mut qps)
    };
    let qps_seq = sweep(&pairs, 1);
    let qps_auto = sweep(&pairs, 0);
    let qps_sorted = sweep(&sorted_pairs, 1);

    // Single-query latency percentiles over a prefix of the pair list,
    // batch-timed: one timer pair per group, group time divided per
    // query (see the `QueryRun::p50_ns` docs for the protocol change).
    let singles = &pairs[..E11_SINGLES.min(pairs.len())];
    let mut lat: Vec<u64> = Vec::with_capacity(singles.len() / E11_LATENCY_GROUP + 1);
    let mut acc = 0u64;
    for group in singles.chunks(E11_LATENCY_GROUP) {
        let t = Instant::now();
        for &(u, v) in group {
            acc = acc.wrapping_add(oracle.estimate(u, v));
        }
        lat.push(t.elapsed().as_nanos() as u64 / group.len() as u64);
    }
    std::hint::black_box(acc);
    lat.sort_unstable();
    QueryRun {
        backend,
        n,
        build_ms,
        p50_ns: lat[lat.len() / 2],
        p99_ns: lat[lat.len() * 99 / 100],
        qps_seq,
        qps_auto,
        qps_sorted,
        digest,
    }
}

fn push_row(t: &mut Table, r: &QueryRun) {
    t.row(vec![
        r.backend.name().to_string(),
        r.n.to_string(),
        f(r.build_ms),
        r.p50_ns.to_string(),
        r.p99_ns.to_string(),
        f(r.qps_seq),
        f(r.qps_auto),
        f(r.qps_sorted),
        format!("{:016x}", r.digest),
    ]);
}

/// The E11 table: every backend at the given sizes, plus — when
/// `headline` is set — the `BENCH_oracle.json` rows: `n = 4096` for the
/// backends whose distributed builds are tractable there (pde, rtc,
/// truncated) and compact at `n = 1024`.
pub fn e11_queries(sizes: &[usize], headline: bool, seed: u64) -> Table {
    let mut t = Table::new(
        "E11 (oracle throughput): estimate/estimate_many on unit-weight G(n, ~6/n), k=2",
        &[
            "backend",
            "n",
            "build_ms",
            "p50_ns",
            "p99_ns",
            "q/s_t1",
            "q/s_auto",
            "q/s_sorted",
            "digest",
        ],
    );
    for &n in sizes {
        for backend in Backend::ALL {
            let r = e11_run(backend, n, seed);
            push_row(&mut t, &r);
        }
    }
    if headline {
        for backend in [Backend::Pde, Backend::Rtc, Backend::Truncated] {
            let r = e11_run(backend, 4096, seed);
            push_row(&mut t, &r);
        }
        let r = e11_run(Backend::Compact, 1024, seed);
        push_row(&mut t, &r);
    }
    t
}

/// CI smoke: builds every backend at a tiny size and asserts that
/// (a) the batch path agrees entry-for-entry with scalar `estimate`,
/// (b) batch answers are identical for threads ∈ {1, 4, auto}, and
/// (c) the grouped kernel's per-pair answers are digest-identical no
/// matter how the batch is ordered (shuffled as submitted, `(u, v)`-
/// sorted, reversed) — each permuted run is unpermuted back to
/// submission order before hashing.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn e11_smoke(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E11 smoke: batch vs scalar, thread-count and batch-order identity",
        &["backend", "pairs", "q/s_t1", "digest", "checks"],
    );
    let pairs = {
        // Include the diagonal in the smoke: u == v must answer 0 through
        // the batch path too. Large enough that threads=4 clears the
        // per-worker shard floor (and the grouping gate) and genuinely
        // runs the grouped parallel path.
        let mut p = e11_pairs(n, 6_000, seed);
        p.extend((0..n as u32).map(|u| (NodeId(u), NodeId(u))));
        p
    };
    // Batch orders beyond the submitted (shuffled) one: each is a
    // permutation of the same pairs; answers must be digest-identical
    // once unpermuted back to submission order.
    let mut sorted_perm: Vec<u32> = (0..pairs.len() as u32).collect();
    sorted_perm.sort_by_key(|&i| {
        let (u, v) = pairs[i as usize];
        (u.0, v.0)
    });
    let reversed_perm: Vec<u32> = (0..pairs.len() as u32).rev().collect();
    for backend in Backend::ALL {
        let (o, _) = e11_build(backend, n, seed);
        let mut seq = Vec::new();
        let t0 = Instant::now();
        o.estimate_many_with(&pairs, &mut seq, 1);
        let qps = pairs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        for (&(u, v), &got) in pairs.iter().zip(&seq) {
            assert_eq!(
                got,
                o.estimate(u, v),
                "{backend}: batch diverges from scalar estimate at ({u}, {v})"
            );
        }
        let digest = fnv1a(&seq);
        for threads in [4usize, 0] {
            let mut par = Vec::new();
            o.estimate_many_with(&pairs, &mut par, threads);
            assert_eq!(seq, par, "{backend}: threads={threads} changed answers");
        }
        for (name, perm) in [("sorted", &sorted_perm), ("reversed", &reversed_perm)] {
            let permuted: Vec<(NodeId, NodeId)> = perm.iter().map(|&i| pairs[i as usize]).collect();
            for threads in [1usize, 4] {
                let mut got = Vec::new();
                o.estimate_many_with(&permuted, &mut got, threads);
                let mut unpermuted = vec![0u64; pairs.len()];
                for (&i, &ans) in perm.iter().zip(&got) {
                    unpermuted[i as usize] = ans;
                }
                assert_eq!(
                    fnv1a(&unpermuted),
                    digest,
                    "{backend}: {name} batch order (threads={threads}) changed answers"
                );
            }
        }
        t.row(vec![
            backend.name().to_string(),
            pairs.len().to_string(),
            f(qps),
            format!("{:016x}", digest),
            "scalar=batch, t∈{1,4,auto}, order∈{shuffled,sorted,reversed} identical".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_runs_and_digest_is_thread_independent() {
        let r = e11_run(Backend::Flooding, 48, E11_SEED);
        assert!(r.qps_seq > 0.0 && r.qps_auto > 0.0);
        assert!(r.p50_ns <= r.p99_ns);
        let (o, _) = e11_build(Backend::Flooding, 48, E11_SEED);
        let pairs = e11_pairs(48, E11_BATCH, E11_SEED);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        o.estimate_many_with(&pairs, &mut a, 1);
        o.estimate_many_with(&pairs, &mut b, 3);
        assert_eq!(a, b);
        assert_eq!(fnv1a(&a), r.digest);
    }

    #[test]
    fn e11_smoke_passes_at_tiny_size() {
        let t = e11_smoke(20, E11_SEED);
        assert_eq!(t.rows.len(), Backend::ALL.len());
    }
}
