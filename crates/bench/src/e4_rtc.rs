//! E4 — Theorem 4.5: routing tables with relabeling, stretch `6k−1+o(1)`,
//! `O(log n)`-bit labels, `Õ(n^{1/2+1/(4k)} + D)` rounds.

use crate::table::{f, Table};
use crate::workloads;
use graphs::algo::{apsp, hop_diameter};
use graphs::Seed;
use routing::{build_rtc, evaluate, PairSelection, RtcParams};

/// Sweeps `k` and `n` on G(n,p); reports build rounds against the
/// `n^{1/2+1/(4k)}·ln n + D` bound, the measured max stretch against the
/// `6k−1` target, and label sizes in bits against `O(log n)`.
pub fn e4_rtc(sizes: &[usize], ks: &[u32], seed: u64) -> Table {
    let mut t = Table::new(
        "E4 (Theorem 4.5): RTC with relabeling — stretch <= ~(6k-1), labels O(log n) bits",
        &[
            "n",
            "k",
            "D",
            "|S|",
            "rounds",
            "bound",
            "r/bound",
            "max_stretch",
            "6k-1",
            "label_bits",
            "fails",
        ],
    );
    for &n in sizes {
        let g = workloads::gnp(n, seed);
        let exact = apsp(&g);
        let d = hop_diameter(&g);
        for &k in ks {
            let mut params = RtcParams::new(k);
            params.seed = Seed(seed ^ u64::from(k));
            let scheme = build_rtc(&g, &params);
            let pairs = if n <= 40 {
                PairSelection::All
            } else {
                PairSelection::Sample {
                    count: 600,
                    seed: 7,
                }
            };
            let report = evaluate(&g, &scheme, &exact, pairs);
            let bound =
                (n as f64).powf(0.5 + 1.0 / (4.0 * f64::from(k))) * (n as f64).ln() + f64::from(d);
            t.row(vec![
                n.to_string(),
                k.to_string(),
                d.to_string(),
                scheme.metrics.skeleton_size.to_string(),
                scheme.metrics.total_rounds.to_string(),
                f(bound),
                f(scheme.metrics.total_rounds as f64 / bound),
                f(report.max_stretch),
                (6 * k - 1).to_string(),
                report.max_label_bits.to_string(),
                report.failures.len().to_string(),
            ]);
        }
    }
    t
}
