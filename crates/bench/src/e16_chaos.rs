//! E16 — chaos-hardened serving: answer identity and recovery cost
//! under injected transport faults, overload, and crash/restart.
//!
//! The serving stack's robustness claims are behavioral, so this
//! experiment *injects the failures* and measures what they cost:
//!
//! * **Fault recovery** — a [`net::ChaosProxy`] between client and
//!   server tears reply frames, cuts connections mid-stream, and stalls
//!   reads on a deterministic schedule; a [`net::RetryClient`]
//!   reconnects and replays. Every answer that survives is asserted
//!   byte-identical to the in-process one, and the latency of the
//!   operations that *needed* recovery is reported as p50/p99.
//! * **Overload shedding** — a server capped at a handful of
//!   connections and a small batch budget is flooded; the shed rate and
//!   the typed [`net::WireError::Overloaded`] refusals are counted
//!   (healthy work keeps completing).
//! * **Crash-safe persistence** — a [`serve::DynamicOracle`] installed
//!   with a checkpoint + delta WAL takes live repairs, "crashes", and
//!   [`serve::DynamicOracle::recover`]s; the recovered artifact must be
//!   byte-identical to the live one, and the WAL replay time is the
//!   recovery-cost headline.
//!
//! Reproduce with `cargo run --release -p bench --bin experiments --
//! chaos` (`-- chaos headline` for the `BENCH_chaos.json` rows,
//! `-- chaos --smoke` for the CI variant: every backend through the
//! proxy with digest-pinned answers, an overload matrix check, a
//! kill-mid-traffic replica failover, and WAL recovery identity for
//! every backend).

use crate::table::{f, Table};
use crate::{e11_build, e11_graph, e11_pairs, e14_delta};
use net::{
    ChaosPlan, ChaosProxy, Client, NetServer, ReplicaSet, RetryClient, RetryPolicy, ServerConfig,
    WireError,
};
use oracle::{Backend, DistanceOracle, OracleBuilder};
use serve::{DynamicOracle, OracleServer};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed for the E16 workload (graph, pairs, fault schedule).
pub const E16_SEED: u64 = 0xC4A0_5EED;

/// Single estimates driven through the chaos proxy per run.
const E16_SINGLES: usize = 600;

/// Connection attempts thrown at the capped server.
const E16_FLOOD: usize = 16;

/// Repairs logged to the WAL before the simulated crash.
const E16_REPAIRS: usize = 3;

/// One measured chaos workload on one backend.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// The backend measured.
    pub backend: Backend,
    /// Number of nodes.
    pub n: usize,
    /// Transport faults the proxy injected during the run.
    pub faults: u64,
    /// Operations that needed at least one retry.
    pub retried_ops: u64,
    /// Reconnects (incl. failovers) the retry client performed.
    pub reconnects: u64,
    /// Median latency of operations that needed recovery, µs.
    pub recovery_p50_us: f64,
    /// 99th-percentile latency of operations that needed recovery, µs.
    pub recovery_p99_us: f64,
    /// Fraction of flood connections shed with a typed `Overloaded`
    /// refusal at the door of the capped server.
    pub shed_rate: f64,
    /// WAL replay time during recovery, µs ([`E16_REPAIRS`] deltas).
    pub wal_replay_us: f64,
    /// FNV-1a digest over the through-proxy batch answers — asserted
    /// equal to the in-process digest.
    pub digest: u64,
}

fn fnv1a(values: &[u64]) -> u64 {
    let mut digest = crate::table::Fnv1a::new();
    for &x in values {
        digest.mix(x);
    }
    digest.finish()
}

fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn retry_client(addrs: &[SocketAddr], seed: u64) -> RetryClient {
    let replicas = ReplicaSet::new(addrs)
        .expect("replica set")
        .with_reprobe(Duration::from_millis(20));
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        jitter_seed: seed,
    };
    let mut client = RetryClient::connect(replicas, policy).expect("connect through proxy");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    client
}

/// Runs the canonical E16 measurement for one backend at size `n`.
///
/// # Panics
///
/// Panics if any answer that survives the chaos diverges from the
/// fault-free one, if recovery is not byte-identical, or on setup
/// failure — divergence under faults is exactly the bug this
/// experiment exists to catch.
pub fn e16_run(backend: Backend, n: usize, seed: u64) -> ChaosRun {
    let (oracle, _) = e11_build(backend, n, seed);
    let pairs = e11_pairs(n, 512, seed);
    let mut expected = Vec::new();
    oracle.estimate_many(&pairs, &mut expected);
    let digest = fnv1a(&expected);

    let registry = Arc::new(OracleServer::new());
    let name = backend.name().to_string();
    registry.install(&name, oracle);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let proxy = ChaosProxy::spawn(
        server.local_addr(),
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        },
    )
    .expect("spawn chaos proxy");

    // (a) Single estimates through the proxy: every answer identical to
    // the fault-free one; ops that needed recovery are timed.
    let mut client = retry_client(&[proxy.local_addr()], seed);
    let mut recovery_us: Vec<f64> = Vec::new();
    for (i, &(u, v)) in pairs.iter().cycle().take(E16_SINGLES).enumerate() {
        let retries_before = client.retries();
        let t = Instant::now();
        let est = client.estimate(&name, u, v).expect("estimate under chaos");
        let elapsed_us = t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(
            est,
            expected[i % pairs.len()],
            "{backend}: answer diverged under chaos"
        );
        if client.retries() > retries_before {
            recovery_us.push(elapsed_us);
        }
    }
    // (b) The whole batch through the proxy (replayed whole on a torn
    // reply): digest-identical to in-process.
    let (ests, _) = client
        .estimate_many(&name, &pairs, false)
        .expect("batch under chaos");
    assert_eq!(
        fnv1a(&ests),
        digest,
        "{backend}: batch diverged under chaos"
    );
    let retried_ops = client.retries();
    let reconnects = client.reconnects();
    recovery_us.sort_unstable_by(f64::total_cmp);
    let recovery_p50_us = quantile(&recovery_us, 0.50);
    let recovery_p99_us = quantile(&recovery_us, 0.99);
    let faults = proxy.faults_injected();
    proxy.shutdown();
    server.shutdown();

    // (c) Overload: a server capped at 2 connections, flooded. Held
    // connections stay healthy; the rest are refused with a typed
    // error frame at the door.
    let registry2 = Arc::new(OracleServer::new());
    let (oracle2, _) = e11_build(backend, n, seed);
    registry2.install(&name, oracle2);
    let capped = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry2),
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind capped server");
    let mut held: Vec<Client> = (0..2)
        .map(|_| {
            let mut c = Client::connect(capped.local_addr()).expect("held connect");
            c.estimate(&name, pairs[0].0, pairs[0].1).expect("held op");
            c
        })
        .collect();
    let mut refused = 0usize;
    for _ in 0..E16_FLOOD {
        let mut c = Client::connect(capped.local_addr()).expect("flood connect");
        match c.estimate(&name, pairs[0].0, pairs[0].1) {
            Err(WireError::Overloaded { .. }) => refused += 1,
            Err(e) => panic!("{backend}: flood got {e:?}, wanted Overloaded"),
            Ok(_) => panic!("{backend}: flood admitted past the cap"),
        }
    }
    let shed_rate = refused as f64 / E16_FLOOD as f64;
    // The held connections survived the flood.
    for c in &mut held {
        c.estimate(&name, pairs[1].0, pairs[1].1)
            .expect("held connection survived the flood");
    }
    drop(held);
    capped.shutdown();

    // (d) Crash-safe persistence: install with WAL, repair live, crash,
    // recover — byte-identical artifact, replay time measured.
    let g = e11_graph(n, seed);
    let dir = std::env::temp_dir().join(format!(
        "e16-wal-{}-{}-{n}",
        std::process::id(),
        backend.name()
    ));
    std::fs::create_dir_all(&dir).expect("wal dir");
    let live_registry = OracleServer::new();
    let dynamic = DynamicOracle::install_persistent(
        &live_registry,
        &name,
        OracleBuilder::new(backend),
        &g,
        &dir,
    )
    .expect("install persistent");
    let mut graph = g.clone();
    for i in 0..E16_REPAIRS {
        let delta = e14_delta(&graph, "fail_edge", seed.wrapping_add(i as u64));
        dynamic
            .repair_and_swap(&live_registry, &delta)
            .expect("live repair");
        graph = graph.apply_delta(&delta).expect("mirror delta");
    }
    assert_eq!(dynamic.wal_records(), E16_REPAIRS as u64);
    let live_bytes = live_registry
        .lease(&name)
        .expect("live lease")
        .oracle()
        .artifact_bytes();
    drop(dynamic); // the "crash": only the files survive
    let cold_registry = OracleServer::new();
    let (_, report) =
        DynamicOracle::recover(&cold_registry, &name, OracleBuilder::new(backend), &dir)
            .expect("recover");
    assert_eq!(report.deltas_replayed, E16_REPAIRS as u64);
    let recovered_bytes = cold_registry
        .lease(&name)
        .expect("recovered lease")
        .oracle()
        .artifact_bytes();
    assert_eq!(
        live_bytes, recovered_bytes,
        "{backend}: recovery is not byte-identical to the live artifact"
    );
    let wal_replay_us = report.replay_nanos as f64 / 1e3;
    std::fs::remove_dir_all(&dir).ok();

    ChaosRun {
        backend,
        n,
        faults,
        retried_ops,
        reconnects,
        recovery_p50_us,
        recovery_p99_us,
        shed_rate,
        wal_replay_us,
        digest,
    }
}

fn push_row(t: &mut Table, r: &ChaosRun) {
    t.row(vec![
        r.backend.name().to_string(),
        r.n.to_string(),
        r.faults.to_string(),
        r.retried_ops.to_string(),
        r.reconnects.to_string(),
        f(r.recovery_p50_us),
        f(r.recovery_p99_us),
        f(r.shed_rate),
        f(r.wal_replay_us),
        format!("{:016x}", r.digest),
    ]);
}

/// The E16 table: every backend at the given sizes, plus — when
/// `headline` is set — the `BENCH_chaos.json` rows at `n = 1024`
/// (compact at its tractable 1024 too): recovery latency, shed rate,
/// and WAL replay time under one deterministic fault schedule.
pub fn e16_chaos(sizes: &[usize], headline: bool, seed: u64) -> Table {
    let mut t = Table::new(
        "E16 (chaos): identity and recovery cost under faults, overload, and crash/restart",
        &[
            "backend",
            "n",
            "faults",
            "retried",
            "reconn",
            "rec_p50_us",
            "rec_p99_us",
            "shed",
            "wal_replay_us",
            "digest",
        ],
    );
    for &n in sizes {
        for backend in Backend::ALL {
            push_row(&mut t, &e16_run(backend, n, seed));
        }
    }
    if headline {
        for backend in Backend::ALL {
            push_row(&mut t, &e16_run(backend, 1024, seed));
        }
    }
    t
}

/// CI smoke: the full chaos matrix at a tiny size.
///
/// 1. Every backend served through a fault-injecting proxy: the retry
///    client's answers are digest-identical to in-process, with faults
///    actually injected and zero panics on either side.
/// 2. Overload: door refusals are typed `Overloaded` and a two-replica
///    retry client fails over from the saturated server to a healthy
///    one with identical answers; an oversized batch is shed while its
///    connection survives.
/// 3. Kill mid-traffic: live connections through the proxy are cut,
///    and the retry client fails over to a second server, digests
///    pinned.
/// 4. Crash-safe persistence for every backend: checkpoint + WAL
///    replay reproduces the live artifact byte-identically, including
///    through a torn WAL tail.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn e16_smoke(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E16 smoke: digest-pinned answers under chaos, typed shedding, WAL recovery identity",
        &["scenario", "backend", "detail", "digest", "ok"],
    );
    let pairs = e11_pairs(n, 256, seed);

    // --- 1. every backend through the chaos proxy -------------------
    for backend in Backend::ALL {
        let (oracle, _) = e11_build(backend, n, seed);
        let mut expected = Vec::new();
        oracle.estimate_many(&pairs, &mut expected);
        let digest = fnv1a(&expected);
        let registry = Arc::new(OracleServer::new());
        let name = backend.name().to_string();
        registry.install(&name, oracle);
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let proxy = ChaosProxy::spawn(
            server.local_addr(),
            ChaosPlan {
                seed: seed ^ backend as u64,
                min_prefix: 32,
                max_prefix: 512,
                ..ChaosPlan::default()
            },
        )
        .expect("proxy");
        let mut client = retry_client(&[proxy.local_addr()], seed);
        for (i, &(u, v)) in pairs.iter().take(64).enumerate() {
            let est = client.estimate(&name, u, v).expect("estimate under chaos");
            assert_eq!(est, expected[i], "{backend}: single diverged under chaos");
        }
        let (ests, _) = client
            .estimate_many(&name, &pairs, false)
            .expect("batch under chaos");
        assert_eq!(
            fnv1a(&ests),
            digest,
            "{backend}: batch diverged under chaos"
        );
        let faults = proxy.faults_injected();
        assert!(faults > 0, "{backend}: the chaos proxy injected nothing");
        proxy.shutdown();
        server.shutdown();
        t.row(vec![
            "proxy-faults".into(),
            backend.name().into(),
            format!("{faults} faults, {} retries", client.retries()),
            format!("{:016x}", digest),
            "yes".into(),
        ]);
    }

    // Shared fixture for the remaining scenarios.
    let backend = Backend::Flooding;
    let name = backend.name().to_string();
    let (oracle, _) = e11_build(backend, n, seed);
    let mut expected = Vec::new();
    oracle.estimate_many(&pairs, &mut expected);
    let digest = fnv1a(&expected);

    // --- 2. overload: typed refusal, replica failover, batch shed ---
    let capped_registry = Arc::new(OracleServer::new());
    let (o1, _) = e11_build(backend, n, seed);
    capped_registry.install(&name, o1);
    let capped = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&capped_registry),
        ServerConfig {
            max_connections: 1,
            max_batch_pairs: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind capped");
    let healthy_registry = Arc::new(OracleServer::new());
    let (o2, _) = e11_build(backend, n, seed);
    healthy_registry.install(&name, o2);
    let healthy = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&healthy_registry),
        ServerConfig::default(),
    )
    .expect("bind healthy");
    // Saturate the capped server with its one allowed connection.
    let mut holder = Client::connect(capped.local_addr()).expect("holder");
    holder
        .estimate(&name, pairs[0].0, pairs[0].1)
        .expect("holder op");
    // A direct client is refused with the typed error...
    let mut direct = Client::connect(capped.local_addr()).expect("direct");
    let err = direct
        .estimate(&name, pairs[0].0, pairs[0].1)
        .expect_err("past the cap");
    assert!(
        matches!(err, WireError::Overloaded { .. }),
        "wanted Overloaded at the door, got {err:?}"
    );
    // ...while a retry client with a second replica fails over and
    // answers identically.
    let mut failover = retry_client(&[capped.local_addr(), healthy.local_addr()], seed);
    let (ests, _) = failover
        .estimate_many(&name, &pairs, false)
        .expect("failover batch");
    assert_eq!(fnv1a(&ests), digest, "failover answers diverged");
    // The oversized-batch budget sheds without killing the connection.
    let healthy_capped = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&healthy_registry),
        ServerConfig {
            max_batch_pairs: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind batch-capped");
    let mut batcher_client = Client::connect(healthy_capped.local_addr()).expect("connect");
    let err = batcher_client
        .estimate_many(&name, &pairs, false)
        .expect_err("oversized batch");
    assert!(
        matches!(err, WireError::Overloaded { .. }),
        "wanted Overloaded for the oversized batch, got {err:?}"
    );
    let (small, _) = batcher_client
        .estimate_many(&name, &pairs[..4], false)
        .expect("small batch after shed");
    assert_eq!(small, expected[..4], "post-shed answers diverged");
    let refused = capped.metrics().connections_refused;
    assert!(refused >= 1, "refusals not counted");
    assert_eq!(
        healthy_capped.metrics().requests_shed,
        1,
        "shed not counted"
    );
    drop(holder);
    healthy_capped.shutdown();
    t.row(vec![
        "overload".into(),
        backend.name().into(),
        format!("{refused} refused at door, 1 batch shed, failover ok"),
        format!("{:016x}", digest),
        "yes".into(),
    ]);

    // --- 3. kill mid-traffic, fail over to the second replica -------
    let proxy = ChaosProxy::spawn(
        capped.local_addr(),
        ChaosPlan {
            clean_every: 1, // the proxy itself stays clean; the kill is the fault
            ..ChaosPlan::default()
        },
    )
    .expect("proxy");
    let mut client = retry_client(&[proxy.local_addr(), healthy.local_addr()], seed);
    for &(u, v) in pairs.iter().take(8) {
        client.estimate(&name, u, v).expect("pre-kill estimate");
    }
    proxy.kill_live_connections();
    proxy.shutdown(); // the first replica is gone for good
    let (ests, _) = client
        .estimate_many(&name, &pairs, false)
        .expect("post-kill batch");
    assert_eq!(fnv1a(&ests), digest, "post-kill answers diverged");
    assert!(
        client.reconnects() >= 1,
        "the kill must have forced a reconnect"
    );
    capped.shutdown();
    healthy.shutdown();
    t.row(vec![
        "kill-failover".into(),
        backend.name().into(),
        format!("{} reconnects after kill", client.reconnects()),
        format!("{:016x}", digest),
        "yes".into(),
    ]);

    // --- 4. WAL recovery identity for every backend -----------------
    for backend in Backend::ALL {
        let g = e11_graph(n, seed);
        let name = backend.name().to_string();
        let dir = std::env::temp_dir().join(format!(
            "e16-smoke-wal-{}-{}",
            std::process::id(),
            backend.name()
        ));
        std::fs::create_dir_all(&dir).expect("wal dir");
        let live = OracleServer::new();
        let dynamic =
            DynamicOracle::install_persistent(&live, &name, OracleBuilder::new(backend), &g, &dir)
                .expect("install persistent");
        let mut graph = g.clone();
        for i in 0..2u64 {
            let delta = e14_delta(&graph, "fail_edge", seed.wrapping_add(i));
            dynamic.repair_and_swap(&live, &delta).expect("live repair");
            graph = graph.apply_delta(&delta).expect("mirror delta");
        }
        let live_bytes = live
            .lease(&name)
            .expect("live lease")
            .oracle()
            .artifact_bytes();
        drop(dynamic);
        // Tear the WAL tail the way a crash mid-append would.
        let wal_path = dir.join(format!("{name}.wal"));
        let mut wal_bytes = std::fs::read(&wal_path).expect("read wal");
        wal_bytes.extend_from_slice(&[0x17, 0x00, 0x00]); // half a length prefix
        std::fs::write(&wal_path, &wal_bytes).expect("tear wal");
        let cold = OracleServer::new();
        let (_, report) = DynamicOracle::recover(&cold, &name, OracleBuilder::new(backend), &dir)
            .expect("recover");
        assert!(report.torn_tail, "{backend}: the torn tail went unnoticed");
        assert_eq!(report.deltas_replayed, 2, "{backend}: wrong replay count");
        let recovered = cold
            .lease(&name)
            .expect("recovered lease")
            .oracle()
            .artifact_bytes();
        assert_eq!(
            live_bytes, recovered,
            "{backend}: recovery not byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
        let mut d = crate::table::Fnv1a::new();
        for &b in recovered.iter().take(1 << 16) {
            d.mix(u64::from(b));
        }
        t.row(vec![
            "wal-recovery".into(),
            backend.name().into(),
            format!("{} deltas replayed, torn tail cut", report.deltas_replayed),
            format!("{:016x}", d.finish()),
            "yes".into(),
        ]);
    }
    t
}
