//! Oracles — the unified `DistanceOracle` comparison: build time,
//! serialized artifact size, stretch percentiles and batch query
//! throughput for every backend on one graph.

use crate::table::{f, Table};
use crate::workloads;
use graphs::algo::apsp;
use oracle::{evaluate, Backend, BuildMode, DistanceOracle, Oracle, OracleBuilder, PairSelection};
use std::time::Instant;

/// Builds every backend on G(n, p) and reports the unified-API metrics:
/// wall-clock build time (median of [`BUILD_RUNS`] builds, so warmup
/// noise stays out of the recorded numbers), CONGEST rounds charged,
/// `save` artifact size, estimate-stretch percentiles from the
/// oracle-generic evaluator, routed coverage, and measured
/// `estimate_many` throughput.
pub fn oracles(n: usize, seed: u64) -> Table {
    oracles_table(n, seed, false)
}

/// Builds per backend for the reported `build_ms` median (the smoke
/// variant builds once — CI wants cheap, not denoised).
pub const BUILD_RUNS: usize = 3;

/// CI smoke: the [`oracles`] table plus, for each freshly built backend,
/// a `save`/`load` round trip asserting identical batch answers —
/// every backend is built exactly once.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn oracles_roundtrip_check(n: usize, seed: u64) -> Table {
    oracles_table(n, seed, true)
}

fn oracles_table(n: usize, seed: u64, roundtrip: bool) -> Table {
    use rand::Rng;
    let g = workloads::gnp(n, seed);
    let exact = apsp(&g);
    let mut rng = graphs::Seed(seed).rng();
    let queries: Vec<(graphs::NodeId, graphs::NodeId)> = (0..512)
        .map(|_| {
            (
                graphs::NodeId(rng.random_range(0..n as u32)),
                graphs::NodeId(rng.random_range(0..n as u32)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Oracles: one DistanceOracle API across every backend (k=2, eps=0.25)",
        &[
            "backend",
            "build_ms",
            "rounds",
            "size_KiB",
            "p50_stretch",
            "p99_stretch",
            "max_stretch",
            "routed",
            "batch_q/s",
            "sorted_q/s",
            "fails",
        ],
    );
    let pairs = if n <= 40 {
        PairSelection::All
    } else {
        PairSelection::Sample {
            count: 800,
            seed: 5,
        }
    };
    for backend in Backend::ALL {
        // Median-of-3 build time (like E11/E12 do): a single cold run
        // recorded warmup noise into the BENCH files.
        let runs = if roundtrip { 1 } else { BUILD_RUNS };
        let mut times = Vec::with_capacity(runs);
        let mut built = None;
        for _ in 0..runs {
            let t0 = Instant::now();
            // This table is the paper-faithful measurement view, so it
            // pins `Simulated` mode (rounds stay meaningful); the E12
            // `builds` table compares it against the native engine.
            built = Some(
                OracleBuilder::new(backend)
                    .seed(seed)
                    .k(2)
                    .build_mode(BuildMode::Simulated)
                    .build(&g),
            );
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let o = built.expect("at least one build");
        times.sort_unstable_by(f64::total_cmp);
        let build_ms = times[times.len() / 2];
        if roundtrip {
            let mut bytes = Vec::new();
            o.save(&mut bytes).expect("save");
            let loaded = Oracle::load(&mut &bytes[..]).expect("load");
            let (mut a, mut b) = (Vec::new(), Vec::new());
            o.estimate_many(&queries, &mut a);
            loaded.estimate_many(&queries, &mut b);
            assert_eq!(a, b, "{backend}: answers diverged after save/load");
            assert_eq!(
                8 * bytes.len() as u64,
                o.size_bits(),
                "{backend}: size_bits out of sync with the artifact"
            );
        }
        let r = evaluate(&o, &g, &exact, pairs);
        t.row(vec![
            backend.name().to_string(),
            f(build_ms),
            o.build_metrics().rounds.to_string(),
            f(r.size_bits as f64 / 8.0 / 1024.0),
            f(r.p50_stretch),
            f(r.p99_stretch),
            f(r.max_estimate_stretch),
            format!("{}/{}", r.routed, r.pairs),
            f(r.queries_per_sec),
            f(r.queries_per_sec_sorted),
            r.failures.len().to_string(),
        ]);
    }
    t
}
