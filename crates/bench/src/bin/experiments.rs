//! Regenerates every experiment table recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments                    # all
//! cargo run --release -p bench --bin experiments -- e1 e4           # selected
//! cargo run --release -p bench --bin experiments -- quick           # reduced sizes
//! cargo run --release -p bench --bin experiments -- --smoke         # CI bench smoke
//! cargo run --release -p bench --bin experiments -- oracles         # DistanceOracle table
//! cargo run --release -p bench --bin experiments -- oracles --smoke # CI oracle smoke
//! cargo run --release -p bench --bin experiments -- queries         # E11 throughput table
//! cargo run --release -p bench --bin experiments -- queries --smoke # CI query smoke
//! cargo run --release -p bench --bin experiments -- builds          # E12 build-engine table
//! cargo run --release -p bench --bin experiments -- builds headline # BENCH_builds.json rows (n=4096)
//! cargo run --release -p bench --bin experiments -- builds --smoke  # CI build-parity smoke
//! cargo run --release -p bench --bin experiments -- serve           # E13 serving table
//! cargo run --release -p bench --bin experiments -- serve headline  # BENCH_oracle.json cold-start rows (n=4096)
//! cargo run --release -p bench --bin experiments -- serve --smoke   # CI serve smoke
//! cargo run --release -p bench --bin experiments -- dynamic          # E14 repair/failover table
//! cargo run --release -p bench --bin experiments -- dynamic headline # BENCH_dynamic.json rows (n=4096)
//! cargo run --release -p bench --bin experiments -- dynamic --smoke  # CI dynamic smoke
//! cargo run --release -p bench --bin experiments -- net              # E15 socket-serving table
//! cargo run --release -p bench --bin experiments -- net headline     # BENCH_net.json rows (n=4096)
//! cargo run --release -p bench --bin experiments -- net --smoke      # CI net smoke
//! cargo run --release -p bench --bin experiments -- chaos            # E16 chaos/robustness table
//! cargo run --release -p bench --bin experiments -- chaos headline   # BENCH_chaos.json rows (n=1024)
//! cargo run --release -p bench --bin experiments -- chaos --smoke    # CI chaos smoke
//! ```

use bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Oracle smoke for CI: build every backend at a tiny size, print the
    // unified table, and fail loudly if any backend's save/load snapshot
    // stops answering bit-identically.
    if smoke && args.iter().any(|a| a == "oracles") {
        println!("{}", oracles_roundtrip_check(24, 0x5EED));
        println!("smoke ok: all backends round-trip through save/load");
        return;
    }
    // Query smoke for CI: every backend's batch path must agree with its
    // scalar `estimate` and be identical across thread counts.
    if smoke && args.iter().any(|a| a == "queries") {
        println!("{}", e11_smoke(24, E11_SEED));
        println!(
            "smoke ok: grouped/shuffled/sorted/scalar answers digest-identical \
             across thread counts for all backends"
        );
        return;
    }
    // Build smoke for CI: native and simulated builds of every backend
    // must produce byte-identical canonical artifacts and answers, at
    // threads 1 and 4.
    if smoke && args.iter().any(|a| a == "builds") {
        println!("{}", e12_smoke(24, E12_SEED));
        println!("smoke ok: native builds byte-identical to simulated across thread counts");
        return;
    }
    // Serve smoke for CI: every backend through the full serving
    // lifecycle (install v2 → query → hot-swap to v3 → query → admission
    // batch) with bit-identical answers on every path.
    if smoke && args.iter().any(|a| a == "serve") {
        println!("{}", e13_smoke(24, E11_SEED));
        println!("smoke ok: v2/v3/batched answers identical through hot swaps");
        return;
    }
    // Dynamic smoke for CI: every backend × delta kind through repair
    // (byte-identity vs a from-scratch rebuild asserted) plus a masked
    // failover detour on the failure rows.
    if smoke && args.iter().any(|a| a == "dynamic") {
        println!("{}", e14_smoke(24, E14_SEED));
        println!("smoke ok: repairs byte-identical to rebuilds, failover detours live");
        return;
    }
    // Net smoke for CI: every backend served over a loopback socket —
    // swap, install-from-file, direct/batched queries, routes — with
    // socket answers asserted byte-identical to in-process, plus one
    // fail → detour → repair cycle driven entirely over the wire.
    if smoke && args.iter().any(|a| a == "net") {
        println!("{}", e15_smoke(24, E11_SEED));
        println!("smoke ok: socket answers byte-identical to in-process through hot swaps");
        return;
    }
    // Chaos smoke for CI: every backend queried through a fault-
    // injecting proxy with digest-pinned answers and zero panics,
    // typed overload shedding (door refusal, replica failover, batch
    // budget), a kill-mid-traffic failover, and checkpoint + WAL
    // recovery asserted byte-identical for every backend.
    if smoke && args.iter().any(|a| a == "chaos") {
        println!("{}", e16_smoke(24, E16_SEED));
        println!("smoke ok: answers digest-identical under faults, recovery byte-identical");
        return;
    }
    // Bench smoke for CI: run the E10 throughput table at tiny sizes so
    // the perf harness itself is exercised on every push, and fail loudly
    // if the sequential/parallel outputs ever diverge.
    if smoke {
        let table = e10_simulator(&[64, 128], 1, E10_SEED);
        println!("{table}");
        let seq = e10_run(128, 1, E10_SEED);
        let par = e10_run(128, 4, E10_SEED);
        assert_eq!(seq.digest, par.digest, "thread count changed outputs");
        println!("smoke ok: digests match across thread counts");
        return;
    }
    let quick = args.iter().any(|a| a == "quick");
    let want = |name: &str| {
        args.is_empty() || args.iter().all(|a| a == "quick") || args.iter().any(|a| a == name)
    };
    let seed = 0x5EED;

    if want("e1") {
        let sizes: &[usize] = if quick { &[24, 32] } else { &[32, 48, 64, 96] };
        println!("{}", e1_apsp(sizes, &[0.5, 0.25], seed));
    }
    if want("e2") {
        let cases: &[(usize, usize)] = if quick {
            &[(4, 4), (6, 6)]
        } else {
            &[(4, 4), (6, 6), (8, 8), (6, 12), (10, 10)]
        };
        println!("{}", e2_figure1(cases, 0.5));
    }
    if want("e3") {
        let cases: &[(u64, usize, f64)] = if quick {
            &[(8, 4, 0.5), (16, 8, 0.5)]
        } else {
            &[
                (8, 4, 0.5),
                (16, 4, 0.5),
                (32, 4, 0.5),
                (16, 8, 0.5),
                (16, 16, 0.5),
                (16, 8, 0.25),
            ]
        };
        println!("{}", e3_pde(if quick { 64 } else { 128 }, cases, seed));
    }
    if want("e4") {
        let sizes: &[usize] = if quick { &[32] } else { &[32, 48, 64] };
        println!("{}", e4_rtc(sizes, &[1, 2, 3], seed));
    }
    if want("e5") {
        println!(
            "{}",
            e5_compact(if quick { 32 } else { 64 }, &[2, 3, 4], seed)
        );
    }
    if want("e6") {
        println!("{}", e6_truncated(if quick { 24 } else { 40 }, 3, seed));
    }
    if want("e7") {
        let sizes: &[usize] = if quick { &[32] } else { &[32, 48, 64] };
        println!("{}", e7_trees(sizes, 2, seed));
    }
    if want("e8") {
        let sizes: &[usize] = if quick { &[20] } else { &[20, 30, 40] };
        println!("{}", e8_spanner(sizes, &[2, 3], seed));
    }
    if want("e9") {
        let sizes: &[usize] = if quick { &[24] } else { &[24, 32, 48] };
        println!("{}", e9_comparison(sizes, seed));
    }
    if want("e10") {
        let sizes: &[usize] = if quick {
            &[256, 1024]
        } else {
            &[1024, 4096, 16384]
        };
        println!("{}", e10_simulator(sizes, 0, E10_SEED));
    }
    if want("oracles") {
        println!("{}", oracles(if quick { 24 } else { 48 }, seed));
    }
    if want("queries") {
        // Headline rows at n = 4096 (BENCH_oracle.json workload) only in
        // the full run: the distributed builds take minutes. `queries
        // headline` runs just those rows (the tracked regression check).
        if args.iter().any(|a| a == "headline") {
            println!("{}", e11_queries(&[], true, E11_SEED));
        } else if quick {
            println!("{}", e11_queries(&[64], false, E11_SEED));
        } else {
            println!("{}", e11_queries(&[256, 1024], true, E11_SEED));
        }
    }
    if want("builds") {
        // Headline rows at n = 4096 (BENCH_builds.json workload) only on
        // request: three simulated builds per scheme take minutes.
        // `builds headline` runs just those rows.
        if args.iter().any(|a| a == "headline") {
            println!("{}", e12_builds(&[], true, E12_SEED));
        } else if quick {
            println!("{}", e12_builds(&[64], false, E12_SEED));
        } else {
            println!("{}", e12_builds(&[256, 1024], false, E12_SEED));
        }
    }
    if want("serve") {
        // Headline rows at n = 4096 (the BENCH_oracle.json cold-start
        // evidence for the v3 arena layout) only on request: the
        // distributed builds take minutes. `serve headline` runs just
        // those rows.
        if args.iter().any(|a| a == "headline") {
            println!("{}", e13_serve(&[], true, E11_SEED));
        } else if quick {
            println!("{}", e13_serve(&[64], false, E11_SEED));
        } else {
            println!("{}", e13_serve(&[256, 1024], false, E11_SEED));
        }
    }
    if want("dynamic") {
        // Headline rows at n = 4096 (the BENCH_dynamic.json repair-vs-
        // rebuild evidence) only on request: repeated full rebuilds of
        // the matrix backends at that size take a while. `dynamic
        // headline` runs just those rows.
        if args.iter().any(|a| a == "headline") {
            println!("{}", e14_dynamic(&[], true, E14_SEED));
        } else if quick {
            println!("{}", e14_dynamic(&[64], false, E14_SEED));
        } else {
            println!("{}", e14_dynamic(&[128, 512], false, E14_SEED));
        }
    }
    if want("net") {
        // Headline rows at n = 4096 (the BENCH_net.json wire-cost
        // evidence next to BENCH_oracle.json) only on request: the
        // distributed builds take minutes. `net headline` runs just
        // those rows.
        if args.iter().any(|a| a == "headline") {
            println!("{}", e15_net(&[], true, E11_SEED));
        } else if quick {
            println!("{}", e15_net(&[64], false, E11_SEED));
        } else {
            println!("{}", e15_net(&[256, 1024], false, E11_SEED));
        }
    }
    if want("chaos") {
        // Headline rows at n = 1024 (the BENCH_chaos.json recovery/
        // shedding evidence) only on request: eight backends × chaos +
        // overload + recovery takes a while at size. `chaos headline`
        // runs just those rows.
        if args.iter().any(|a| a == "headline") {
            println!("{}", e16_chaos(&[], true, E16_SEED));
        } else if quick {
            println!("{}", e16_chaos(&[48], false, E16_SEED));
        } else {
            println!("{}", e16_chaos(&[128, 512], false, E16_SEED));
        }
    }
}
