//! E15 — serving over a socket: loopback latency and throughput of the
//! `net` front end next to the in-process paths it wraps.
//!
//! The `net` crate's contract is that a socket answer is byte-identical
//! to the in-process one, so the only honest question left is *what the
//! wire costs*. The protocol: build once on the E11 workload, serve it
//! over loopback, then measure (a) single-estimate round-trip p50/p99 —
//! individually timed request/response cycles on one reused connection,
//! every syscall included; (b) pipelined throughput — the E11 batch cut
//! into shards streamed with a bounded in-flight window, deep enough
//! that the server never idles, shallow enough that neither direction
//! overruns the socket buffers; (c) admission-batched throughput — concurrent
//! client threads submitting through the server's shared
//! [`serve::Batcher`]; and (d) the same workload through the in-process
//! batcher and a direct [`serve::OracleServer::query`], the two numbers
//! the socket paths are allowed to lose to. Digest equality between the
//! socket answers and the in-process answers is asserted on every run.
//! Reproduce with `cargo run --release -p bench --bin experiments -- net`
//! (`-- net headline` for the `BENCH_net.json` rows at n = 4096,
//! `-- net --smoke` for the CI variant, which additionally drives every
//! admin op — install-from-file, inline swap, fail/repair — over the
//! wire).

use crate::table::{f, Table};
use crate::{e11_build, e11_graph, e11_pairs, E11_BATCH};
use congest::NodeId;
use graphs::GraphDelta;
use net::{Client, NetServer, RouteOutcome, ServerConfig};
use oracle::{Backend, DistanceOracle, OracleBuilder};
use serve::{Batcher, DynamicOracle, OracleServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pairs per pipelined `EstimateMany` frame.
pub const E15_SHARD: usize = 32768;

/// Shards kept in flight on the pipelined connection.
const E15_WINDOW: usize = 4;

/// Individually timed single-estimate round trips behind p50/p99.
const E15_SINGLES: usize = 1000;

/// Timed sweeps per throughput number; the median is recorded.
const E15_SWEEPS: usize = 3;

/// Concurrent client threads for the admission-batched measurement.
const E15_CLIENTS: usize = 4;

/// One measured socket-serving workload on one backend.
#[derive(Clone, Debug)]
pub struct NetRun {
    /// The backend measured.
    pub backend: Backend,
    /// Number of nodes.
    pub n: usize,
    /// Median single-estimate round trip over loopback, µs.
    pub p50_us: f64,
    /// 99th-percentile single-estimate round trip, µs.
    pub p99_us: f64,
    /// Pipelined socket throughput (one connection, sharded batch), q/s.
    pub qps_pipelined: f64,
    /// Admission-batched socket throughput ([`E15_CLIENTS`] concurrent
    /// connections through the shared batcher), q/s.
    pub qps_batched: f64,
    /// The same batch through an in-process [`Batcher`], q/s — the
    /// acceptance bar (pipelined must stay within 2× of it).
    pub qps_inproc_batcher: f64,
    /// The same batch through a direct in-process
    /// [`OracleServer::query`], q/s.
    pub qps_inproc: f64,
    /// FNV-1a digest over the socket-served batch answers — asserted
    /// equal to the in-process digest (the E11 digest at the same
    /// workload).
    pub digest: u64,
}

fn fnv1a(values: &[u64]) -> u64 {
    let mut digest = crate::table::Fnv1a::new();
    for &x in values {
        digest.mix(x);
    }
    digest.finish()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn serve_one(backend: Backend, n: usize, seed: u64) -> (NetServer, Arc<OracleServer>, String) {
    let (oracle, _) = e11_build(backend, n, seed);
    let registry = Arc::new(OracleServer::new());
    let name = backend.name().to_string();
    registry.install(&name, oracle);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    (server, registry, name)
}

/// Runs the canonical E15 measurement for one backend at size `n`.
///
/// # Panics
///
/// Panics if any socket-served answer diverges from the in-process
/// answer (the determinism contract), or on connection failure.
pub fn e15_run(backend: Backend, n: usize, seed: u64) -> NetRun {
    let (server, registry, name) = serve_one(backend, n, seed);
    let addr = server.local_addr();
    let pairs = e11_pairs(n, E11_BATCH, seed);

    // In-process references: direct serve and admission batcher.
    let mut expected = Vec::new();
    registry
        .query(&name, &pairs, &mut expected, 1)
        .expect("in-process serve");
    let digest = fnv1a(&expected);
    let mut qps = Vec::with_capacity(E15_SWEEPS);
    for _ in 0..E15_SWEEPS {
        let t = Instant::now();
        registry
            .query(&name, &pairs, &mut Vec::new(), 1)
            .expect("in-process serve");
        qps.push(pairs.len() as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    let qps_inproc = median(&mut qps);
    let batcher = Batcher::new(&name, Duration::from_micros(250), 1);
    let mut qps = Vec::with_capacity(E15_SWEEPS);
    for _ in 0..E15_SWEEPS {
        let t = Instant::now();
        let (answers, _) = batcher
            .submit(&registry, pairs.clone())
            .expect("in-process batcher");
        qps.push(answers.len() as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    let qps_inproc_batcher = median(&mut qps);

    // (a) Individually timed single-estimate round trips.
    let mut client = Client::connect(addr).expect("connect");
    let mut lat_us: Vec<f64> = Vec::with_capacity(E15_SINGLES);
    for &(u, v) in pairs.iter().cycle().take(E15_SINGLES) {
        let t = Instant::now();
        let est = client.estimate(&name, u, v).expect("single estimate");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        let expected_idx = lat_us.len() - 1;
        assert_eq!(
            est,
            expected[expected_idx % pairs.len()],
            "{backend}: socket single estimate diverged"
        );
    }
    lat_us.sort_unstable_by(f64::total_cmp);
    let p50_us = lat_us[lat_us.len() / 2];
    let p99_us = lat_us[(lat_us.len() * 99) / 100 - 1];

    // (b) Pipelined: a bounded window of shards in flight. Queuing the
    // whole batch before reading anything parks megabytes unread in the
    // kernel and stalls both directions on TCP flow control; the window
    // keeps the server saturated without ever overrunning the buffers.
    let shards: Vec<&[(NodeId, NodeId)]> = pairs.chunks(E15_SHARD).collect();
    let mut qps = Vec::with_capacity(E15_SWEEPS);
    let mut socket_answers = Vec::with_capacity(pairs.len());
    for sweep in 0..E15_SWEEPS {
        let keep = sweep == 0;
        let t = Instant::now();
        for shard in &shards {
            client
                .queue_estimate_many(&name, shard, false)
                .expect("queue shard");
            if client.pending() > E15_WINDOW {
                let (ests, _) = client.recv_estimate_many().expect("recv shard");
                if keep {
                    socket_answers.extend_from_slice(&ests);
                }
            }
        }
        while client.pending() > 0 {
            let (ests, _) = client.recv_estimate_many().expect("recv shard");
            if keep {
                socket_answers.extend_from_slice(&ests);
            }
        }
        qps.push(pairs.len() as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    let qps_pipelined = median(&mut qps);
    assert_eq!(
        fnv1a(&socket_answers),
        digest,
        "{backend}: pipelined socket answers diverged from in-process"
    );

    // (c) Concurrent connections through the shared admission batcher.
    let chunk = pairs.len().div_ceil(E15_CLIENTS);
    let mut qps = Vec::with_capacity(E15_SWEEPS);
    for _ in 0..E15_SWEEPS {
        let t = Instant::now();
        std::thread::scope(|scope| {
            for piece in pairs.chunks(chunk) {
                let name = &name;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect worker");
                    for shard in piece.chunks(E15_SHARD) {
                        c.estimate_many(name, shard, true).expect("batched shard");
                    }
                });
            }
        });
        qps.push(pairs.len() as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    let qps_batched = median(&mut qps);

    server.shutdown();
    NetRun {
        backend,
        n,
        p50_us,
        p99_us,
        qps_pipelined,
        qps_batched,
        qps_inproc_batcher,
        qps_inproc,
        digest,
    }
}

fn push_row(t: &mut Table, r: &NetRun) {
    t.row(vec![
        r.backend.name().to_string(),
        r.n.to_string(),
        f(r.p50_us),
        f(r.p99_us),
        f(r.qps_pipelined),
        f(r.qps_batched),
        f(r.qps_inproc_batcher),
        f(r.qps_inproc),
        f(r.qps_pipelined / r.qps_inproc_batcher.max(1e-9)),
        format!("{:016x}", r.digest),
    ]);
}

/// The E15 table: every backend at the given sizes, plus — when
/// `headline` is set — the `BENCH_net.json` rows: all eight backends at
/// `n = 4096` (compact at 1024, its tractable size), the wire cost next
/// to `BENCH_oracle.json`'s in-process numbers.
pub fn e15_net(sizes: &[usize], headline: bool, seed: u64) -> Table {
    let mut t = Table::new(
        "E15 (net): loopback socket serving vs in-process on unit-weight G(n, ~6/n), k=2",
        &[
            "backend",
            "n",
            "p50_us",
            "p99_us",
            "pipe_q/s",
            "batched_q/s",
            "inproc_batch_q/s",
            "inproc_q/s",
            "pipe/inproc",
            "digest",
        ],
    );
    for &n in sizes {
        for backend in Backend::ALL {
            push_row(&mut t, &e15_run(backend, n, seed));
        }
    }
    if headline {
        for backend in Backend::ALL {
            let n = if backend == Backend::Compact {
                1024
            } else {
                4096
            };
            push_row(&mut t, &e15_run(backend, n, seed));
        }
    }
    t
}

/// CI smoke: every backend served over a real loopback socket through
/// the full lifecycle — inline `Swap` of v2 bytes, query, `Install` of a
/// v3 file from the server's disk (hot swap), query again, an admission-
/// batched query, a shuffled-vs-sorted `EstimateMany` pair (same batch,
/// both orders, answers pinned pair-for-pair through the permutation and
/// the repeated frame byte-identical — the grouped server path),
/// `NextHop`/`Route`, and `Stats` — with every socket answer asserted
/// byte-identical to the in-process answer. One dynamic scenario then
/// drives `FailEdge` → detoured `Route` → `RepairAndSwap` over the wire
/// and pins the repaired answers against a fresh build.
///
/// # Panics
///
/// Panics loudly on any divergence (that is the point of the smoke).
pub fn e15_smoke(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E15 smoke: socket answers byte-identical to in-process through swap/install/batch",
        &["backend", "n", "gen", "digest", "checks"],
    );
    let registry = Arc::new(OracleServer::new());
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let pairs = e11_pairs(n, 512, seed);
    // A batch big enough to cross the grouped-kernel gate server-side,
    // plus its (u, v)-sorted permutation — the shuffled-vs-sorted wire
    // case below pins the grouped server path.
    let big = e11_pairs(n, 6_000, seed ^ 1);
    let mut big_perm: Vec<u32> = (0..big.len() as u32).collect();
    big_perm.sort_by_key(|&i| {
        let (u, v) = big[i as usize];
        (u.0, v.0)
    });
    let big_sorted: Vec<(NodeId, NodeId)> = big_perm.iter().map(|&i| big[i as usize]).collect();
    for backend in Backend::ALL {
        let (oracle, _) = e11_build(backend, n, seed);
        let mut expected = Vec::new();
        oracle.estimate_many(&pairs, &mut expected);
        let digest = fnv1a(&expected);
        let name = backend.name();

        // Inline swap of the v2 stream, then query over the socket.
        let mut v2 = Vec::new();
        oracle.save(&mut v2).expect("serialize v2");
        let installed = client.swap(name, &v2).expect("wire swap");
        assert_eq!(
            (installed.backend, installed.n as usize),
            (backend, n),
            "{backend}: wire swap identity"
        );
        let (ests, g2) = client
            .estimate_many(name, &pairs, false)
            .expect("wire query");
        assert_eq!(fnv1a(&ests), digest, "{backend}: v2-over-wire diverged");
        assert_eq!(g2, installed.generation, "{backend}: stale generation");

        // Install a v3 file from the server's disk: the load_path cold
        // start, arriving as a hot swap. Written atomically — the
        // server must never observe a half-written snapshot.
        let path =
            std::env::temp_dir().join(format!("e15-smoke-{}-{}.snap", std::process::id(), name));
        oracle.save_path_v3(&path).expect("write v3 temp file");
        let swapped = client
            .install(name, path.to_str().expect("utf-8 temp path"))
            .expect("wire install");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            swapped.replaced.map(|(generation, _)| generation),
            Some(installed.generation),
            "{backend}: install must retire the v2 snapshot"
        );
        let (ests, g3) = client
            .estimate_many(name, &pairs, false)
            .expect("wire query");
        assert_eq!(fnv1a(&ests), digest, "{backend}: v3-over-wire diverged");
        assert_eq!(g3, swapped.generation, "{backend}: stale generation");

        // The admission-batched path answers identically.
        let (batched, _) = client.estimate_many(name, &pairs, true).expect("batched");
        assert_eq!(batched, ests, "{backend}: batched-over-wire diverged");

        // Grouped server path: the same EstimateMany batch sent shuffled
        // and (u, v)-sorted. Positional pipelining means each response
        // lists answers in its request's order, so the sorted response is
        // compared pair-for-pair through the permutation; re-sending the
        // identical shuffled frame must produce a byte-identical response.
        let (shuffled_ans, _) = client
            .estimate_many(name, &big, false)
            .expect("shuffled big batch");
        let (again, _) = client
            .estimate_many(name, &big, false)
            .expect("repeat big batch");
        assert_eq!(
            shuffled_ans, again,
            "{backend}: identical EstimateMany frames answered differently"
        );
        let (sorted_ans, _) = client
            .estimate_many(name, &big_sorted, false)
            .expect("sorted big batch");
        for (&i, &ans) in big_perm.iter().zip(&sorted_ans) {
            assert_eq!(
                ans, shuffled_ans[i as usize],
                "{backend}: sorted batch order changed an answer over the wire"
            );
        }

        // Topology ops match the in-process oracle.
        let (u, v) = pairs[0];
        assert_eq!(
            client.next_hop(name, u, v).expect("wire next_hop"),
            oracle.next_hop(u, v),
            "{backend}: next_hop diverged"
        );
        let (outcome, route) = client.route(name, u, v).expect("wire route");
        match oracle.route(u, v) {
            Some(expected_route) => {
                assert_eq!(outcome, RouteOutcome::Primary, "{backend}: route outcome");
                assert_eq!(route, Some(expected_route), "{backend}: route diverged");
            }
            None => {
                assert_eq!(
                    outcome,
                    RouteOutcome::Unroutable,
                    "{backend}: route outcome"
                );
                assert_eq!(route, None, "{backend}: phantom route");
            }
        }

        t.row(vec![
            name.to_string(),
            n.to_string(),
            g3.to_string(),
            format!("{:016x}", digest),
            "swap=install=batch, shuffled=sorted over wire".into(),
        ]);
    }

    // Stats reflect the serving that just happened.
    let stats = client.stats().expect("wire stats");
    assert_eq!(stats.oracles.len(), Backend::ALL.len(), "every name served");
    assert!(stats.requests > 0 && stats.bytes_in > 0 && stats.bytes_out > 0);

    // The dynamic lifecycle over the wire: mask, detour, repair, verify.
    let g = e11_graph(n, seed);
    let dynamic = DynamicOracle::install(
        &registry,
        "dyn",
        OracleBuilder::new(Backend::Flooding).seed(seed).k(2),
        &g,
    )
    .expect("dynamic install");
    server.register_dynamic(dynamic);
    let (u, v) = pairs
        .iter()
        .copied()
        .find(|&(u, v)| g.neighbors(u).any(|(x, _)| x == v))
        .expect("an adjacent pair in the workload");
    client.fail_edge("dyn", u, v).expect("wire fail_edge");
    let (outcome, route) = client.route("dyn", u, v).expect("wire route");
    if let Some(route) = &route {
        for hop in route.nodes.windows(2) {
            let crosses = (hop[0], hop[1]) == (u, v) || (hop[0], hop[1]) == (v, u);
            assert!(!crosses, "route crossed the masked edge");
        }
    }
    assert_ne!(outcome, RouteOutcome::Primary, "mask must divert the route");
    let summary = client
        .repair_and_swap("dyn", &GraphDelta::FailEdge { u, v })
        .expect("wire repair");
    let (repaired, generation) = client
        .estimate_many("dyn", &pairs, false)
        .expect("post-repair query");
    assert_eq!(generation, summary.generation, "repair generation served");
    let g2 = g
        .apply_delta(&GraphDelta::FailEdge { u, v })
        .expect("apply delta");
    let fresh = OracleBuilder::new(Backend::Flooding)
        .seed(seed)
        .k(2)
        .build(&g2);
    let mut expected = Vec::new();
    fresh.estimate_many(&pairs, &mut expected);
    assert_eq!(
        repaired, expected,
        "repaired-over-wire diverged from a fresh build"
    );
    t.row(vec![
        "dyn(flooding)".into(),
        n.to_string(),
        summary.generation.to_string(),
        format!("{:016x}", fnv1a(&repaired)),
        "fail→detour→repair over wire".into(),
    ]);
    server.shutdown();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::E11_SEED;

    #[test]
    fn e15_measures_socket_serving() {
        let r = e15_run(Backend::Flooding, 48, E11_SEED);
        assert!(r.p50_us > 0.0 && r.p99_us >= r.p50_us);
        assert!(r.qps_pipelined > 0.0 && r.qps_batched > 0.0);
        assert!(r.qps_inproc >= r.qps_pipelined / 1e3, "sanity");
    }

    #[test]
    fn e15_smoke_passes_at_tiny_size() {
        let t = e15_smoke(20, E11_SEED);
        assert_eq!(t.rows.len(), Backend::ALL.len() + 1);
    }
}
