//! E7 — Lemma 4.4: detection-tree depth `O(h·log n/ε)` and per-node tree
//! membership `O(log n)`.

use crate::table::{f, Table};
use crate::workloads;
use graphs::Seed;
use routing::{build_rtc, RtcParams};

/// Builds the Theorem 4.5 scheme across sizes and measures the detection
/// trees `T_s`: the maximum depth against the `h·ln n/ε` bound, and the
/// maximum number of trees any node belongs to against `ln n`.
pub fn e7_trees(sizes: &[usize], k: u32, seed: u64) -> Table {
    let mut t = Table::new(
        "E7 (Lemma 4.4): detection-tree depth O(h ln n / eps); node membership O(ln n)",
        &[
            "n",
            "h",
            "trees",
            "max_depth",
            "h*ln(n)/eps",
            "d/bound",
            "max_member",
            "ln(n)",
            "m/ln(n)",
        ],
    );
    for &n in sizes {
        let g = workloads::gnp(n, seed);
        let mut params = RtcParams::new(k);
        params.seed = Seed(seed);
        let scheme = build_rtc(&g, &params);
        let max_depth = scheme
            .trees
            .trees
            .values()
            .map(|t| t.height())
            .max()
            .unwrap_or(0);
        let max_member = scheme.trees.max_membership(n);
        let h = scheme.metrics.h;
        let depth_bound = h as f64 * (n as f64).ln() / params.eps;
        let ln_n = (n as f64).ln();
        t.row(vec![
            n.to_string(),
            h.to_string(),
            scheme.trees.trees.len().to_string(),
            max_depth.to_string(),
            f(depth_bound),
            f(f64::from(max_depth) / depth_bound),
            max_member.to_string(),
            f(ln_n),
            f(max_member as f64 / ln_n),
        ]);
    }
    t
}
