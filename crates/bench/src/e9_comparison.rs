//! E9 — the paper's positioning table: rounds and stretch of every
//! algorithm family on the same graphs.

use crate::table::{f, Table};
use crate::workloads;
use baselines::{bellman_ford_apsp, flooding_apsp};
use compact::{build_hierarchy, CompactParams};
use graphs::algo::{apsp, hop_diameter};
use graphs::Seed;
use pde_core::approx_apsp;
use routing::{build_rtc, evaluate, PairSelection, RtcParams};

/// For each `n`: distance-vector Bellman–Ford (exact, `Θ(n²)`), link-state
/// flooding (exact, `Θ(m+D)`), Theorem 4.1 `(1+ε)`-APSP (`Õ(n)`),
/// Theorem 4.5 RTC (`Õ(√n·n^{1/(4k)}+D)`), and the Theorem 4.8 compact
/// hierarchy — the stretch-vs-rounds trade-off of the paper's
/// introduction.
pub fn e9_comparison(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "E9 (intro comparison): rounds and stretch across algorithm families (k=2, eps=0.5)",
        &[
            "graph",
            "n",
            "m",
            "D",
            "algorithm",
            "rounds",
            "max_stretch",
            "table",
        ],
    );
    let mut cases: Vec<(String, graphs::WGraph)> = sizes
        .iter()
        .map(|&n| (format!("gnp{n}"), workloads::gnp(n, seed)))
        .collect();
    // The paper's "Congested Clique" extreme: D = 1, SPD = Θ(n), m = Θ(n²)
    // — where the flooding and distance-vector baselines hurt most.
    let wc = sizes.iter().max().copied().unwrap_or(24).min(32);
    cases.push((
        format!("clique{wc}"),
        graphs::gen::weighted_clique_multihop(wc),
    ));
    for (gname, g) in &cases {
        let n = g.len();
        let exact = apsp(g);
        let d = hop_diameter(g);
        let m = g.num_edges();
        let pairs = if n <= 32 {
            PairSelection::All
        } else {
            PairSelection::Sample {
                count: 400,
                seed: 5,
            }
        };
        let mut push = |alg: &str, rounds: u64, stretch: f64, table: String| {
            t.row(vec![
                gname.clone(),
                n.to_string(),
                m.to_string(),
                d.to_string(),
                alg.to_string(),
                rounds.to_string(),
                f(stretch),
                table,
            ]);
        };

        let bf = bellman_ford_apsp(g);
        push(
            "bellman-ford (RIP)",
            bf.metrics.rounds,
            1.0,
            format!("{n} dists"),
        );

        let fl = flooding_apsp(g);
        push(
            "flooding (OSPF)",
            fl.metrics.rounds,
            1.0,
            format!("{} edges", fl.lsdb_edges),
        );

        let a = approx_apsp(g, 0.5);
        push(
            "PDE APSP (Thm 4.1)",
            a.rounds(),
            a.max_stretch(&exact),
            format!("{n} ests"),
        );

        let mut rp = RtcParams::new(2);
        rp.seed = Seed(seed);
        let rtc = build_rtc(g, &rp);
        let rr = evaluate(g, &rtc, &exact, pairs);
        push(
            "RTC k=2 (Thm 4.5)",
            rtc.metrics.total_rounds,
            rr.max_stretch,
            format!("{} entries", rr.max_table_entries),
        );

        let mut cp = CompactParams::new(2);
        cp.seed = Seed(seed);
        cp.c = 1.5;
        let comp = build_hierarchy(g, &cp);
        let cr = evaluate(g, &comp, &exact, pairs);
        push(
            "compact k=2 (Thm 4.8)",
            comp.metrics.total_rounds,
            cr.max_stretch,
            format!("{} entries", cr.max_table_entries),
        );
    }
    t
}
