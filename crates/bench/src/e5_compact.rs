//! E5 — Lemma 4.7 / Theorem 4.8: compact tables `Õ(n^{1/k})`, labels
//! `O(k log n)`, stretch `4k−3+o(1)`; compared against exact Thorup–Zwick.

use crate::table::{f, Table};
use crate::workloads;
use baselines::ExactTz;
use compact::{build_hierarchy, CompactParams};
use graphs::algo::apsp;
use graphs::Seed;
use routing::{evaluate, PairSelection};

/// Sweeps `k` on a fixed G(n,p); reports table entries against
/// `n^{1/k}·ln n`, label bits against `k·log₂ n`, the measured stretch of
/// the distributed approximate hierarchy, and the exact-distance TZ
/// baseline's stretch on the same level samples (the gap is the price of
/// `(1+ε)`-approximation — expected small).
pub fn e5_compact(n: usize, ks: &[u32], seed: u64) -> Table {
    let mut t = Table::new(
        "E5 (Thm 4.8): compact hierarchy — tables ~n^{1/k}, labels O(k log n), stretch <= ~(4k-3)",
        &[
            "k",
            "tables",
            "n^{1/k}ln",
            "t/bound",
            "label_bits",
            "k*log2n",
            "stretch",
            "4k-3",
            "tz_exact",
            "fails",
        ],
    );
    let g = workloads::gnp(n, seed);
    let exact = apsp(&g);
    let pairs = if n <= 40 {
        PairSelection::All
    } else {
        PairSelection::Sample {
            count: 600,
            seed: 7,
        }
    };
    for &k in ks {
        let mut params = CompactParams::new(k);
        params.seed = Seed(seed ^ u64::from(k));
        params.c = 1.5;
        let scheme = build_hierarchy(&g, &params);
        let report = evaluate(&g, &scheme, &exact, pairs);
        let tz = ExactTz::new(&g, k, seed ^ u64::from(k));
        let tz_report = evaluate(&g, &tz, &exact, pairs);
        let table_bound = (n as f64).powf(1.0 / f64::from(k)) * (n as f64).ln();
        let label_bound = f64::from(k) * (n as f64).log2();
        t.row(vec![
            k.to_string(),
            report.max_table_entries.to_string(),
            f(table_bound),
            f(report.max_table_entries as f64 / table_bound),
            report.max_label_bits.to_string(),
            f(label_bound),
            f(report.max_stretch),
            (4 * k - 3).to_string(),
            f(tz_report.max_stretch),
            (report.failures.len() + tz_report.failures.len()).to_string(),
        ]);
    }
    t
}
