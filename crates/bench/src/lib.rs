//! Experiment harness: one function per experiment of `EXPERIMENTS.md`.
//!
//! The paper is a theory paper — its "evaluation" is its theorems plus the
//! Figure 1 lower-bound construction. Each `eN_*` function here runs the
//! corresponding empirical validation and returns a printable [`Table`];
//! the `experiments` binary prints them all (that output is what
//! `EXPERIMENTS.md` records), and each `benches/eN_*.rs` Criterion bench
//! wraps the same code path at a reduced size for wall-clock tracking.

#![forbid(unsafe_code)]

pub mod table;
pub mod workloads;

mod e10_simulator;
mod e11_queries;
mod e12_builds;
mod e13_serve;
mod e14_dynamic;
mod e15_net;
mod e16_chaos;
mod e1_apsp;
mod e2_figure1;
mod e3_pde;
mod e4_rtc;
mod e5_compact;
mod e6_truncated;
mod e7_trees;
mod e8_spanner;
mod e9_comparison;
mod oracles;

pub use e10_simulator::{e10_run, e10_simulator, SimRun, E10_SEED};
pub use e11_queries::{
    e11_build, e11_graph, e11_measure, e11_pairs, e11_queries, e11_run, e11_smoke, QueryRun,
    E11_BATCH, E11_SEED,
};
pub use e12_builds::{e12_builds, e12_run, e12_smoke, BuildRun, E12_RUNS, E12_SEED};
pub use e13_serve::{e13_measure, e13_run, e13_serve, e13_smoke, ServeRun, E13_LOADS};
pub use e14_dynamic::{e14_delta, e14_dynamic, e14_run, e14_smoke, DynRun, E14_RUNS, E14_SEED};
pub use e15_net::{e15_net, e15_run, e15_smoke, NetRun, E15_SHARD};
pub use e16_chaos::{e16_chaos, e16_run, e16_smoke, ChaosRun, E16_SEED};
pub use e1_apsp::e1_apsp;
pub use e2_figure1::e2_figure1;
pub use e3_pde::e3_pde;
pub use e4_rtc::e4_rtc;
pub use e5_compact::e5_compact;
pub use e6_truncated::e6_truncated;
pub use e7_trees::e7_trees;
pub use e8_spanner::e8_spanner;
pub use e9_comparison::e9_comparison;
pub use oracles::{oracles, oracles_roundtrip_check, BUILD_RUNS};
pub use table::Table;
