//! E10 — CONGEST simulator throughput: `run_pde` wall-clock, rounds/sec
//! and messages/sec on seeded random graphs.
//!
//! This is the workload recorded in `BENCH_simulator.json` (the
//! before/after evidence for the zero-alloc round-loop refactor): connected
//! G(n, p) with average degree ≈ 6, weights 1..=32, one source per 64
//! nodes, `h = 8`, `σ = 4`, `ε = 0.25`. Reproduce with
//! `cargo run --release -p bench --bin experiments -- e10`
//! (or `-- --smoke` for the tiny CI variant).

use crate::table::{f, Table};
use crate::workloads;
use pde_core::{run_pde, PdeParams};
use std::time::Instant;

/// The seed used for the recorded benchmark workload.
pub const E10_SEED: u64 = 0xE10;

/// One measured `run_pde` execution.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// Number of nodes.
    pub n: usize,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Total simulated rounds (all rungs + coordination).
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// FNV-1a digest over lists and routes (output-identity checks).
    pub digest: u64,
}

impl SimRun {
    /// Simulated rounds per wall-clock second.
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / (self.wall_ms / 1e3)
    }

    /// Delivered messages per wall-clock second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / (self.wall_ms / 1e3)
    }
}

/// Runs the canonical E10 workload once at size `n` with the given
/// thread knob (`0` = auto).
pub fn e10_run(n: usize, threads: usize, seed: u64) -> SimRun {
    let g = workloads::gnp(n, seed);
    let sources: Vec<bool> = (0..n).map(|i| i % 64 == 0).collect();
    let tags = vec![false; n];
    let params = PdeParams::new(8, 4, 0.25).with_threads(threads);
    let t0 = Instant::now();
    let out = run_pde(&g, &sources, &tags, &params);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // FNV-1a digest over lists and routes (sorted), so runs can assert
    // output identity across thread counts and code versions.
    let mut digest = crate::table::Fnv1a::new();
    for l in &out.lists {
        for e in l {
            digest.mix(e.est);
            digest.mix(u64::from(e.src.0));
            digest.mix(u64::from(e.tag));
        }
    }
    for r in &out.routes {
        let mut entries: Vec<_> = r.iter().collect();
        entries.sort_by_key(|(s, _)| **s);
        for (s, info) in entries {
            digest.mix(u64::from(s.0));
            digest.mix(info.est);
            digest.mix(u64::from(info.port));
            digest.mix(u64::from(info.level));
        }
    }
    SimRun {
        n,
        wall_ms,
        rounds: out.metrics.total.rounds,
        messages: out.metrics.total.messages,
        digest: digest.finish(),
    }
}

/// Sweeps the throughput workload over `sizes`; one row per size.
pub fn e10_simulator(sizes: &[usize], threads: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E10 (simulator throughput): run_pde wall clock on G(n, ~6/n), h=8 sigma=4 eps=0.25",
        &[
            "n", "threads", "wall_ms", "rounds", "messages", "rounds/s", "msgs/s", "digest",
        ],
    );
    for &n in sizes {
        let r = e10_run(n, threads, seed);
        t.row(vec![
            n.to_string(),
            if threads == 0 {
                "auto".into()
            } else {
                threads.to_string()
            },
            f(r.wall_ms),
            r.rounds.to_string(),
            r.messages.to_string(),
            f(r.rounds_per_sec()),
            f(r.msgs_per_sec()),
            format!("{:016x}", r.digest),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_runs_and_is_deterministic() {
        let a = e10_run(96, 1, E10_SEED);
        let b = e10_run(96, 4, E10_SEED);
        assert!(a.wall_ms >= 0.0);
        assert!(a.rounds > 0 && a.messages > 0);
        assert_eq!(a.digest, b.digest, "outputs must not depend on threads");
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn table_has_one_row_per_size() {
        let t = e10_simulator(&[48, 64], 1, E10_SEED);
        assert_eq!(t.rows.len(), 2);
    }
}
