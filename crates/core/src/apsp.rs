//! Deterministic `(1+ε)`-approximate APSP (Theorem 4.1).

use crate::pde::{run_pde, validate_pde_input, PdeOutput, PdeParams};
use crate::pipeline::BuildError;
use congest::NodeId;
use graphs::algo::Apsp;
use graphs::{WGraph, INF};

/// Result of the `(1+ε)`-approximate APSP computation.
///
/// Produced by instantiating partial distance estimation with `S = V` and
/// `h = σ = n`: since `h_{v,w} < n` for every pair, every node's combined
/// list covers all `n` nodes with `(1+ε)`-approximate distances
/// (Theorem 4.1), deterministically, in `O(n/ε² · log n)` rounds.
#[derive(Debug)]
pub struct ApspApprox {
    n: usize,
    dist: Vec<u64>,
    /// The underlying PDE output (routing tables, metrics, ladder).
    pub pde: PdeOutput,
}

impl ApspApprox {
    /// The distance estimate `wd'(u, v)` (0 on the diagonal).
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if empty (never for valid runs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total rounds consumed (levels + `O(D)` coordination).
    pub fn rounds(&self) -> u64 {
        self.pde.metrics.total.rounds
    }

    /// The maximum multiplicative error versus exact APSP
    /// (`max wd'/wd` over all pairs; 1.0 means exact).
    ///
    /// # Panics
    ///
    /// Panics if any estimate is missing or underestimates — both would
    /// falsify Theorem 4.1.
    pub fn max_stretch(&self, exact: &Apsp) -> f64 {
        let mut worst = 1.0f64;
        for u in 0..self.n as u32 {
            for v in 0..self.n as u32 {
                let (u, v) = (NodeId(u), NodeId(v));
                if u == v {
                    continue;
                }
                let wd = exact.dist(u, v);
                let est = self.dist(u, v);
                assert_ne!(est, INF, "missing estimate for ({u}, {v})");
                assert!(est >= wd, "underestimate for ({u}, {v}): {est} < {wd}");
                worst = worst.max(est as f64 / wd as f64);
            }
        }
        worst
    }
}

/// Runs deterministic `(1+ε)`-approximate APSP (Theorem 4.1).
///
/// # Panics
///
/// Panics if the graph is disconnected or some pair ends up without an
/// estimate (impossible for connected inputs; treated as a hard failure).
pub fn approx_apsp(g: &WGraph, eps: f64) -> ApspApprox {
    approx_apsp_with(g, eps, 0)
}

/// [`approx_apsp`] with an explicit worker-thread count for the ladder
/// rungs (see [`PdeParams::threads`]); outputs are identical for every
/// thread count.
///
/// # Panics
///
/// As [`approx_apsp`].
pub fn approx_apsp_with(g: &WGraph, eps: f64, threads: usize) -> ApspApprox {
    approx_apsp_opts(g, eps, threads, crate::BuildMode::Simulated)
}

/// [`approx_apsp_with`] with an explicit build engine (see
/// [`crate::BuildMode`]); distances and routing tables are identical
/// across modes, only the charged rounds differ.
///
/// # Panics
///
/// As [`approx_apsp`].
pub fn approx_apsp_opts(
    g: &WGraph,
    eps: f64,
    threads: usize,
    mode: crate::BuildMode,
) -> ApspApprox {
    try_approx_apsp_opts(g, eps, threads, mode).expect("approximate APSP build failed")
}

/// [`approx_apsp_opts`] with typed input validation: a disconnected
/// graph or an out-of-range ε comes back as a [`BuildError`] instead of
/// a panic.
///
/// # Errors
///
/// [`BuildError::Disconnected`] / [`BuildError::InvalidParam`], as
/// [`crate::try_run_pde`].
pub fn try_approx_apsp_opts(
    g: &WGraph,
    eps: f64,
    threads: usize,
    mode: crate::BuildMode,
) -> Result<ApspApprox, BuildError> {
    validate_pde_input(g, eps)?;
    let n = g.len();
    let params = PdeParams::new(n as u64, n, eps)
        .with_threads(threads)
        .with_mode(mode);
    let sources = vec![true; n];
    let tags = vec![false; n];
    let pde = run_pde(g, &sources, &tags, &params);

    let mut dist = vec![INF; n * n];
    for v in g.nodes() {
        dist[v.index() * n + v.index()] = 0;
        for e in &pde.lists[v.index()] {
            dist[v.index() * n + e.src.index()] = e.est;
        }
    }
    // Symmetrize conservatively: both directions are (1+ε)-approximations
    // of the same wd, keep the smaller (still an overestimate of wd).
    for u in 0..n {
        for v in (u + 1)..n {
            let a = dist[u * n + v];
            let b = dist[v * n + u];
            let m = a.min(b);
            assert_ne!(m, INF, "node pair ({u}, {v}) missing from APSP lists");
            dist[u * n + v] = m;
            dist[v * n + u] = m;
        }
    }
    Ok(ApspApprox { n, dist, pde })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn stretch_within_eps_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::gnp_connected(24, 0.12, Weights::Uniform { lo: 1, hi: 64 }, &mut rng);
        let exact = algo::apsp(&g);
        for eps in [0.5, 0.25] {
            let approx = approx_apsp(&g, eps);
            let s = approx.max_stretch(&exact);
            assert!(s <= 1.0 + eps + 1e-9, "stretch {s} > 1+{eps}");
        }
    }

    #[test]
    fn stretch_on_structured_graphs() {
        let mut rng = SmallRng::seed_from_u64(9);
        let grid = gen::grid(4, 5, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
        let exact = algo::apsp(&grid);
        let approx = approx_apsp(&grid, 0.25);
        assert!(approx.max_stretch(&exact) <= 1.25 + 1e-9);

        let clique = gen::weighted_clique_multihop(12);
        let exact = algo::apsp(&clique);
        let approx = approx_apsp(&clique, 0.5);
        assert!(approx.max_stretch(&exact) <= 1.5 + 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gen::gnp_connected(16, 0.2, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
        let a = approx_apsp(&g, 0.5);
        let b = approx_apsp(&g, 0.5);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.dist(u, v), b.dist(u, v), "APSP must be deterministic");
            }
        }
        assert_eq!(a.rounds(), b.rounds());
    }

    #[test]
    fn rounds_scale_linearly_in_n() {
        // Theorem 4.1: O(n/ε²·log n). Check the ratio rounds/n stays
        // within a small factor when n doubles (same family, same ε).
        let mut rng = SmallRng::seed_from_u64(6);
        let g1 = gen::cycle(12, Weights::Uniform { lo: 1, hi: 16 }, &mut rng);
        let g2 = gen::cycle(24, Weights::Uniform { lo: 1, hi: 16 }, &mut rng);
        let r1 = approx_apsp(&g1, 0.5).rounds() as f64 / 12.0;
        let r2 = approx_apsp(&g2, 0.5).rounds() as f64 / 24.0;
        assert!(
            r2 / r1 < 3.0,
            "rounds-per-n grew superlinearly: {r1} vs {r2}"
        );
    }
}
