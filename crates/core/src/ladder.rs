//! The reusable PDE **ladder kernel**: one description of the
//! rung-ladder semantics (Theorem 3.3), executable by two engines.
//!
//! [`run_pde`](crate::run_pde) used to be welded to the CONGEST round
//! loop. This module splits the *what* from the *how*:
//!
//! * [`LadderSpec`] describes a `(1+ε)`-approximate `(S, h, σ)`-estimation
//!   run — the integer rung ladder, the per-rung hop horizon `h'`, the
//!   list size σ and the optional message cap — as pure data.
//! * [`run_rung`] executes one rung in a [`BuildMode`]:
//!   [`BuildMode::Simulated`] runs the Lenzen–Peleg CONGEST program on
//!   the subdivided topology through `congest::Runtime` (the
//!   paper-faithful round/message measurement);
//!   [`BuildMode::Native`] runs the centralized bucketed multi-source
//!   Dijkstra of [`sourcedetect::native_detection`] and charges no rounds.
//!
//! # The determinism contract
//!
//! Both engines produce **byte-identical artifacts** (lists and routing
//! archives, and therefore identical scheme snapshots and query answers):
//! the artifact is defined as the *canonical instant-pipelining fixpoint*
//! of the detection algorithm (see `sourcedetect::native` for the
//! semantics and the argument). In `Simulated` mode the rung still runs
//! the full CONGEST simulation and its rounds/messages/broadcast counts
//! are what the metrics report, but the artifact is assembled from the
//! canonical kernel; a `debug_assert` cross-checks that the simulated
//! lists match the canonical ones on every rung (they provably do — both
//! equal the exact top-σ lists).

use crate::rounding::subdivision_len;
use congest::Topology;
use sourcedetect::{native_detection, run_detection, DetectParams, DetectionOutput};

/// How a build executes: round-accurate CONGEST simulation, or the
/// centralized native engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BuildMode {
    /// Execute every distributed phase on `congest::Runtime` and charge
    /// paper-faithful rounds and messages. The measurement path.
    #[default]
    Simulated,
    /// Execute the same staged pipeline centrally (bounded multi-source
    /// Dijkstra rungs, locally computed coordination/labeling); charges
    /// zero rounds and is the fast path for serving. Artifacts are
    /// byte-identical to `Simulated` builds.
    Native,
}

impl BuildMode {
    /// Stable lowercase name (used in tables).
    pub fn name(self) -> &'static str {
        match self {
            BuildMode::Simulated => "simulated",
            BuildMode::Native => "native",
        }
    }
}

/// A fully resolved ladder run description: which rungs to execute and
/// the per-rung detection parameters.
#[derive(Clone, Debug)]
pub struct LadderSpec {
    /// The integer rung values `b` (see [`crate::rounding::level_ladder`]).
    pub levels: Vec<u64>,
    /// The per-rung hop horizon `h'` (delay hops).
    pub horizon: u64,
    /// List size σ.
    pub sigma: usize,
    /// Optional per-node broadcast cap (Lemma 3.4 experiments).
    pub msg_cap: Option<u64>,
    /// Run rungs for their exact theoretical round budget (metrics only;
    /// never changes artifacts).
    pub exact_rounds: bool,
}

impl LadderSpec {
    /// The per-rung detection parameters.
    pub fn detect_params(&self) -> DetectParams {
        DetectParams {
            h: self.horizon,
            sigma: self.sigma,
            msg_cap: self.msg_cap,
            exact_rounds: self.exact_rounds,
        }
    }
}

/// Executes one ladder rung (rung value `b`) on the base topology in the
/// given mode; returns the detection output whose `lists`/`routes` are
/// the canonical artifacts and whose `msgs_per_node`/`metrics` reflect
/// the engine (simulated counts, or idealized-schedule announcement
/// counts with zeroed metrics).
pub fn run_rung(
    topo: &Topology,
    b: u64,
    sources: &[bool],
    tags: &[bool],
    detect: &DetectParams,
    mode: BuildMode,
) -> DetectionOutput {
    let level_topo = topo.with_delays(|w| subdivision_len(w, b));
    match mode {
        BuildMode::Native => native_detection(&level_topo, sources, tags, detect),
        BuildMode::Simulated => {
            let sim = run_detection(&level_topo, sources, tags, detect);
            let nat = native_detection(&level_topo, sources, tags, detect);
            debug_assert_eq!(
                sim.lists, nat.lists,
                "simulated lists diverged from the canonical fixpoint (rung b={b})"
            );
            DetectionOutput {
                lists: nat.lists,
                routes: nat.routes,
                msgs_per_node: sim.msgs_per_node,
                metrics: sim.metrics,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_produce_identical_artifacts_per_rung() {
        let topo = Topology::from_edges(
            7,
            &[
                (0, 1, 3),
                (1, 2, 5),
                (2, 3, 2),
                (3, 4, 7),
                (4, 5, 1),
                (5, 6, 4),
                (0, 6, 9),
            ],
        )
        .unwrap();
        let sources = [true, false, true, false, true, false, false];
        let tags = [false, false, true, false, false, false, false];
        let detect = DetectParams {
            h: 9,
            sigma: 2,
            msg_cap: None,
            exact_rounds: false,
        };
        for b in [1u64, 2, 4] {
            let sim = run_rung(&topo, b, &sources, &tags, &detect, BuildMode::Simulated);
            let nat = run_rung(&topo, b, &sources, &tags, &detect, BuildMode::Native);
            assert_eq!(sim.lists, nat.lists, "b={b}");
            assert_eq!(sim.routes, nat.routes, "b={b}");
            assert!(sim.metrics.rounds > 0, "simulated mode must charge rounds");
            assert_eq!(nat.metrics.rounds, 0, "native mode charges no rounds");
        }
    }
}
