//! Flat structure-of-arrays query tables.
//!
//! The PDE builders produce hash-keyed state ([`RouteTable`] per node,
//! `(row, col)`-keyed pair maps for skeleton-graph levels) because hashing
//! is the right shape *during* a merge. Serving millions of queries is a
//! different regime: every probe should be a short, predictable chain of
//! loads from dense, contiguous memory — no hashing, no per-query
//! allocation. This module holds the two shared layouts every scheme's
//! query side now uses:
//!
//! * [`FlatTables`] — per-node route rows in one CSR arena, each row
//!   sorted by source id. Point lookups are a bucket probe over the
//!   near-uniform node-id keys (see [`FlatTables::get`]); "iterate
//!   everything `v` knows" is a contiguous walk. The arrays live behind
//!   zero-copy [`congest::arena`] views (entries as packed 16-byte
//!   little-endian records), so a v3 snapshot load *is* the in-memory
//!   form: no decode pass, no copy.
//! * [`PairTable`] — a `k × k` partial map in either dense
//!   (`row * k + col` indexed, [`ABSENT`] sentinel) or row-sorted CSR
//!   form; [`PairTable::auto`] picks dense unless the table is large and
//!   sparse. Lookups agree exactly with the `HashMap` model they replace
//!   (pinned by proptests in `tests/flat_tables.rs`).
//!
//! Both layouts serialize *directly* (their snapshot bytes are the
//! in-memory layout, already canonical because rows are sorted), so
//! reload → re-save stays byte-identical without any sort-on-write step.

use crate::pde::{RouteInfo, RouteTable};
use congest::arena::{SharedBytes, U32View};
use congest::wire::{clamped_capacity, invalid_data, WireReader, WireWriter};
use congest::{NodeId, Port, Topology};
use std::io::{self, Read, Write};

/// Sentinel for "no entry" in dense [`PairTable`] storage (never a valid
/// stored value: estimates in pair maps are finite and next-hop indices
/// fit `u32`).
pub const ABSENT: u64 = u64::MAX;

/// One flattened routing entry: the destination source, the estimate and
/// the out-port — the fields query loops actually read, packed into 16
/// bytes. The [`RouteInfo::level`] payload is kept in a parallel cold
/// array ([`FlatTables::levels`]): no query path touches it, so it would
/// only inflate the hot arena's cache traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlatEntry {
    /// Source node id (the row's sort key).
    pub src: u32,
    /// Port towards the neighbor that announced the estimate.
    pub port: Port,
    /// Distance estimate for this source.
    pub est: u64,
}

/// Zero-copy view of packed 16-byte [`FlatEntry`] records
/// (`src: u32 | port: u32 | est: u64`, all little-endian).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EntryView(SharedBytes);

/// Bytes per packed [`FlatEntry`] record.
const ENTRY_BYTES: usize = 16;

impl EntryView {
    /// Wraps `bytes` as packed entry records.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the byte length is not a multiple of 16.
    pub fn new(bytes: SharedBytes) -> io::Result<Self> {
        if !bytes.len().is_multiple_of(ENTRY_BYTES) {
            return Err(invalid_data("entry section length not a multiple of 16"));
        }
        Ok(EntryView(bytes))
    }

    /// Encodes `xs` into a fresh owned view (the build-side constructor).
    pub fn from_entries(xs: &[FlatEntry]) -> Self {
        let mut buf = Vec::with_capacity(xs.len() * ENTRY_BYTES);
        for e in xs {
            buf.extend_from_slice(&e.src.to_le_bytes());
            buf.extend_from_slice(&e.port.to_le_bytes());
            buf.extend_from_slice(&e.est.to_le_bytes());
        }
        EntryView(SharedBytes::from_vec(buf))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.0.len() / ENTRY_BYTES
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Decodes record `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds, exactly like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> FlatEntry {
        let b = &self.0.as_slice()[i * ENTRY_BYTES..(i + 1) * ENTRY_BYTES];
        FlatEntry {
            src: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            port: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            est: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Iterates the records of `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds, exactly like slice indexing.
    pub fn iter_range(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = FlatEntry> + '_ {
        self.0.as_slice()[range.start * ENTRY_BYTES..range.end * ENTRY_BYTES]
            .chunks_exact(ENTRY_BYTES)
            .map(|b| FlatEntry {
                src: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
                port: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
                est: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            })
    }

    /// Iterates all records in order.
    pub fn iter(&self) -> impl Iterator<Item = FlatEntry> + '_ {
        self.iter_range(0..self.len())
    }

    /// The backing bytes (for re-serialization).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
}

/// Per-node routing tables flattened into one source-sorted entry arena
/// with CSR row offsets — the cache-friendly replacement for
/// `Vec<RouteTable>` on every query path. Every array is a zero-copy
/// view: a table decoded from a v3 snapshot keeps pointing into the
/// snapshot buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlatTables {
    /// `starts[v]..starts[v + 1]` delimits node `v`'s row (`n + 1` offsets).
    starts: U32View,
    /// All rows back to back, each sorted by `src`, as packed records.
    entries: EntryView,
    /// Ladder level of each entry, arena-aligned (cold: codec-only).
    levels: U32View,
    /// Concatenated per-row bucket offset tables: row `v` owns
    /// `bucket_starts[v]..bucket_starts[v+1]` slots, one per high-bits
    /// bucket plus a terminator, each holding the row-relative index of
    /// the bucket's first entry.
    buckets: U32View,
    /// `bucket_starts[v]..bucket_starts[v+1]` delimits `v`'s slice of
    /// [`FlatTables::buckets`] (`n + 1` offsets).
    bucket_starts: U32View,
    /// Per-row right-shift mapping a source id to its bucket.
    shifts: SharedBytes,
}

impl FlatTables {
    /// Flattens per-node hash tables into sorted CSR rows.
    ///
    /// # Panics
    ///
    /// Panics if the total entry count exceeds `u32::MAX` (no realistic
    /// scheme gets close; offsets stay 4 bytes on purpose).
    pub fn from_tables(tables: &[RouteTable]) -> Self {
        let mut starts = Vec::with_capacity(tables.len() + 1);
        starts.push(0u32);
        let total = tables.iter().map(|t| t.len()).sum();
        let mut entries: Vec<FlatEntry> = Vec::with_capacity(total);
        let mut levels: Vec<u32> = Vec::with_capacity(total);
        let mut scratch: Vec<(FlatEntry, u32)> = Vec::new();
        for table in tables {
            scratch.clear();
            scratch.extend(table.iter().map(|(&s, r)| {
                (
                    FlatEntry {
                        src: s.0,
                        port: r.port,
                        est: r.est,
                    },
                    r.level,
                )
            }));
            scratch.sort_unstable_by_key(|(e, _)| e.src);
            entries.extend(scratch.iter().map(|&(e, _)| e));
            levels.extend(scratch.iter().map(|&(_, l)| l));
            starts.push(u32::try_from(entries.len()).expect("flat table fits u32 offsets"));
        }
        FlatTables::from_parts(starts, entries, levels)
    }

    /// Assembles a table from validated offsets + sorted rows, computing
    /// the derived per-row bucket index (see [`FlatTables::get`]).
    fn from_parts(starts: Vec<u32>, entries: Vec<FlatEntry>, levels: Vec<u32>) -> Self {
        let n = starts.len().saturating_sub(1);
        let mut buckets: Vec<u32> = Vec::with_capacity(2 * entries.len() + n + 1);
        let mut bucket_starts = Vec::with_capacity(n + 1);
        let mut shifts = Vec::with_capacity(n);
        bucket_starts.push(0u32);
        for w in starts.windows(2) {
            let row = &entries[w[0] as usize..w[1] as usize];
            // One bucket per entry (rounded up to a power of two): with
            // near-uniform node-id keys the expected occupancy is ≤ 1.
            let count = row.len().next_power_of_two().max(1);
            let max_src = row.iter().map(|e| e.src).max().unwrap_or(0);
            let key_bits = 32 - max_src.leading_zeros();
            let shift = key_bits.saturating_sub(count.trailing_zeros());
            shifts.push(shift as u8);
            let base = buckets.len();
            buckets.resize(base + count + 1, 0);
            let mut cur = 0usize;
            for (i, e) in row.iter().enumerate() {
                let b = e.src.checked_shr(shift).unwrap_or(0) as usize;
                while cur <= b {
                    buckets[base + cur] = i as u32;
                    cur += 1;
                }
            }
            while cur <= count {
                buckets[base + cur] = row.len() as u32;
                cur += 1;
            }
            bucket_starts
                .push(u32::try_from(buckets.len()).expect("bucket index fits u32 offsets"));
        }
        FlatTables {
            starts: U32View::from_vals(&starts),
            entries: EntryView::from_entries(&entries),
            levels: U32View::from_vals(&levels),
            buckets: U32View::from_vals(&buckets),
            bucket_starts: U32View::from_vals(&bucket_starts),
            shifts: SharedBytes::from_vec(shifts),
        }
    }

    /// Number of nodes covered (rows).
    #[inline]
    pub fn len_nodes(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Total entries across all rows.
    #[inline]
    pub fn len_entries(&self) -> usize {
        self.entries.len()
    }

    /// Length of node `v`'s row.
    #[inline]
    pub fn row_len(&self, v: NodeId) -> usize {
        self.row_range(v).len()
    }

    /// Iterates node `v`'s row: every `(src, est, port)` it knows, sorted
    /// by source id.
    #[inline]
    pub fn row_iter(&self, v: NodeId) -> impl Iterator<Item = FlatEntry> + '_ {
        self.entries.iter_range(self.row_range(v))
    }

    /// Node `v`'s row decoded into a `Vec` (tests and cold paths).
    pub fn row_vec(&self, v: NodeId) -> Vec<FlatEntry> {
        self.row_iter(v).collect()
    }

    /// Point lookup: `v`'s entry for source `s`, if present.
    ///
    /// Resolves the row's metadata and delegates to one
    /// [`RowCursor::get`] probe — batch kernels that issue many lookups
    /// against the same row should hold a [`FlatTables::cursor`] instead,
    /// which resolves that metadata once per row group.
    #[inline]
    pub fn get(&self, v: NodeId, s: NodeId) -> Option<FlatEntry> {
        self.cursor(v).get(s)
    }

    /// Resolves node `v`'s row metadata (CSR start, bucket index base,
    /// shift) once, returning a cursor for repeated key probes against
    /// that row. This is the schedule-aware half of the batch kernel:
    /// a source-grouped batch resolves one cursor per group instead of
    /// re-deriving the metadata per query.
    #[inline]
    pub fn cursor(&self, v: NodeId) -> RowCursor<'_> {
        let range = self.row_range(v);
        let base = self.bucket_starts.get(v.index()) as usize;
        let slots = (self.bucket_starts.get(v.index() + 1) as usize).saturating_sub(base);
        RowCursor {
            tab: self,
            row_start: range.start,
            row_len: range.end.saturating_sub(range.start),
            bucket_base: base,
            slots,
            shift: u32::from(self.shifts.as_slice()[v.index()]),
        }
    }

    /// Branchless key scan over the packed records
    /// `[start, start + len)`: compares the low-`u32` source key of each
    /// 16-byte chunk and keeps the last hit — row keys are unique
    /// (strictly sorted), so "last" and "first" coincide on valid data.
    /// The loop carries no early exit and no data-dependent branch, so
    /// LLVM unrolls and vectorizes it over the AoS layout (the workspace
    /// forbids `unsafe`, so this shape — not intrinsics — is the whole
    /// trick).
    #[inline]
    fn scan_keys(&self, start: usize, len: usize, key: u32) -> Option<FlatEntry> {
        let bytes = &self.entries.as_bytes()[start * ENTRY_BYTES..(start + len) * ENTRY_BYTES];
        let mut hit = usize::MAX;
        for (i, rec) in bytes.chunks_exact(ENTRY_BYTES).enumerate() {
            let word = u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes"));
            hit = if word as u32 == key { i } else { hit };
        }
        (hit != usize::MAX).then(|| self.entries.get(start + hit))
    }

    /// The index range of node `v`'s row within the entry arena (for
    /// callers that keep per-entry side tables aligned with the arena,
    /// e.g. pre-resolved skeleton indices; see
    /// [`FlatTables::entries_in`]).
    #[inline]
    pub fn row_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.starts.get(v.index()) as usize..self.starts.get(v.index() + 1) as usize
    }

    /// Decodes arena entry `i` (rows back to back; see
    /// [`FlatTables::row_range`]).
    #[inline]
    pub fn entry(&self, i: usize) -> FlatEntry {
        self.entries.get(i)
    }

    /// Iterates the arena entries of `range` (see
    /// [`FlatTables::row_range`]).
    #[inline]
    pub fn entries_in(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = FlatEntry> + '_ {
        self.entries.iter_range(range)
    }

    /// Ladder level of each arena entry (cold data, kept out of the hot
    /// entry records; arena-aligned).
    #[inline]
    pub fn levels(&self) -> &U32View {
        &self.levels
    }

    /// Serializes rows + offsets (already canonical: rows are sorted).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut w = WireWriter::new(sink);
        w.len(self.len_nodes())?;
        for v in 0..self.len_nodes() {
            w.len((self.starts.get(v + 1) - self.starts.get(v)) as usize)?;
        }
        for (e, level) in self.entries.iter().zip(self.levels.iter()) {
            w.u32(e.src)?;
            w.u64(e.est)?;
            w.u32(e.port)?;
            w.u32(level)?;
        }
        Ok(())
    }

    /// Deserializes what [`FlatTables::write_into`] wrote, validating the
    /// CSR shape and per-row sort order (strictly increasing sources —
    /// anything else would corrupt binary search and canonical re-save).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        let mut r = WireReader::new(source);
        let n = r.len64(congest::wire::MAX_SEQ_LEN)?;
        let mut starts = Vec::with_capacity(clamped_capacity(n + 1));
        starts.push(0u32);
        for _ in 0..n {
            let row_len = r.len64(congest::wire::MAX_SEQ_LEN)? as u64;
            let prev = u64::from(*starts.last().expect("starts is never empty"));
            let next = prev + row_len;
            starts.push(
                u32::try_from(next).map_err(|_| invalid_data("flat table offsets overflow"))?,
            );
        }
        let total = *starts.last().expect("starts is never empty") as usize;
        let mut entries = Vec::with_capacity(clamped_capacity(total));
        let mut levels = Vec::with_capacity(clamped_capacity(total));
        for _ in 0..total {
            let src = r.u32()?;
            let est = r.u64()?;
            let port = r.u32()?;
            levels.push(r.u32()?);
            entries.push(FlatEntry { src, port, est });
        }
        // Sortedness must hold before the bucket index is derived from
        // the rows (and binary invariants like canonical re-save rely on
        // it), so check it on the raw data first.
        for w in starts.windows(2) {
            let row = &entries[w[0] as usize..w[1] as usize];
            if row.windows(2).any(|p| p[0].src >= p[1].src) {
                return Err(invalid_data("flat table row not sorted by source"));
            }
        }
        Ok(FlatTables::from_parts(starts, entries, levels))
    }

    /// Emits the table into a v3 arena: one typed section per array,
    /// entries as packed 16-byte records, **including the derived bucket
    /// index** — a v3 load rebuilds nothing. The sections are the views'
    /// backing bytes verbatim, so load → re-save is a passthrough.
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) {
        a.section(self.starts.as_bytes());
        a.section(self.entries.as_bytes());
        a.section(self.levels.as_bytes());
        a.section(self.buckets.as_bytes());
        a.section(self.bucket_starts.as_bytes());
        a.section(self.shifts.as_slice());
    }

    /// Reads what [`FlatTables::write_arena`] wrote: six zero-copy views
    /// over the container plus O(n) shape checks on the offset arrays
    /// (CSR offsets and bucket offsets monotone and bounded). Per-entry
    /// sweeps — row sort order, per-bucket bounds — are *not* re-run
    /// here: the arena checksum owns integrity, and [`FlatTables::get`]
    /// re-checks its probe bounds so even a hostile bucket index answers
    /// with a miss rather than a panic.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any malformed section or inconsistent
    /// shape.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Self> {
        let starts = c.u32v()?;
        let entries = EntryView::new(c.shared()?)?;
        let levels = c.u32v()?;
        let buckets = c.u32v()?;
        let bucket_starts = c.u32v()?;
        let shifts = c.shared()?;
        if levels.len() != entries.len() {
            return Err(invalid_data("flat table sections disagree on length"));
        }
        let n = starts
            .len()
            .checked_sub(1)
            .ok_or_else(|| invalid_data("flat table starts section empty"))?;
        if starts.get(0) != 0
            || (0..n).any(|v| starts.get(v) > starts.get(v + 1))
            || starts.get(n) as usize != entries.len()
        {
            return Err(invalid_data("flat table offsets inconsistent"));
        }
        if bucket_starts.len() != n + 1 || shifts.len() != n {
            return Err(invalid_data("flat table bucket sections misshapen"));
        }
        if bucket_starts.get(0) != 0
            || (0..n).any(|v| bucket_starts.get(v) > bucket_starts.get(v + 1))
            || bucket_starts.get(n) as usize != buckets.len()
        {
            return Err(invalid_data("flat table bucket offsets inconsistent"));
        }
        Ok(FlatTables {
            starts,
            entries,
            levels,
            buckets,
            bucket_starts,
            shifts,
        })
    }

    /// Validates rows against the topology they will be queried on: one
    /// row per node, sources in range, ports within each node's degree
    /// ([`Topology::neighbor`] only debug-asserts its port, so a corrupted
    /// port would silently resolve to a wrong neighbor in release builds).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any out-of-range source or port.
    pub fn validate(&self, topo: &Topology) -> io::Result<()> {
        if self.len_nodes() != topo.len() {
            return Err(invalid_data("flat table row count mismatch"));
        }
        for v in topo.nodes() {
            let deg = topo.degree(v) as u32;
            for e in self.row_iter(v) {
                if e.src as usize >= topo.len() {
                    return Err(invalid_data(format!(
                        "flat route source {} out of range",
                        e.src
                    )));
                }
                if e.port >= deg {
                    return Err(invalid_data(format!(
                        "flat route port {} out of range at {v} (degree {deg})",
                        e.port
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Rows at or below this many entries skip the bucket index entirely:
/// the whole row fits in a couple of cache lines, and one branchless
/// [`FlatTables::scan_keys`] sweep is cheaper than the bucket probe's
/// chain of dependent loads (bucket offsets → shift → bucket pair →
/// entries). Measured on the E11 compact@1024 workload, whose tiny rows
/// made the bucket index *overhead* dominate PR 4's gains.
const SMALL_ROW_SCAN: usize = 16;

/// Resolved per-row lookup state for [`FlatTables`]: the CSR start, row
/// length, bucket index base and shift of one node's row, captured once
/// by [`FlatTables::cursor`] so a source-grouped batch re-reads none of
/// it per query.
#[derive(Clone, Copy, Debug)]
pub struct RowCursor<'a> {
    tab: &'a FlatTables,
    row_start: usize,
    row_len: usize,
    bucket_base: usize,
    slots: usize,
    shift: u32,
}

impl RowCursor<'_> {
    /// Length of the cursor's row.
    #[inline]
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Point lookup within the cursor's row (same answers as
    /// [`FlatTables::get`] on the same row, by construction).
    ///
    /// Small rows take one branchless sweep of the whole row; larger
    /// rows take the bucket probe — one bucket-offset pair load plus a
    /// branchless sweep of the (expected ≤ 1-entry) bucket slice. Probe
    /// bounds are re-checked as in [`FlatTables::get`]: the arena
    /// checksum owns integrity, and a bucket that still points outside
    /// its row answers with a miss, never a panic.
    #[inline]
    pub fn get(&self, s: NodeId) -> Option<FlatEntry> {
        let key = s.0;
        if self.row_len <= SMALL_ROW_SCAN {
            if self.row_len == 0 {
                return None;
            }
            return self.tab.scan_keys(self.row_start, self.row_len, key);
        }
        let b = key.checked_shr(self.shift).unwrap_or(0) as usize;
        if b + 1 >= self.slots {
            return None; // key above every bucket
        }
        let lo = self.tab.buckets.get(self.bucket_base + b) as usize;
        let hi = self.tab.buckets.get(self.bucket_base + b + 1) as usize;
        if lo > hi || hi > self.row_len {
            return None;
        }
        self.tab.scan_keys(self.row_start + lo, hi - lo, key)
    }
}

/// Convenience: flatten each run of a multi-level route archive.
pub fn flatten_runs(runs: &[Vec<RouteTable>]) -> Vec<FlatTables> {
    runs.iter()
        .map(|run| FlatTables::from_tables(run))
        .collect()
}

/// Pre-resolves each arena entry's source through a
/// [`graphs::DenseIndex`] (sentinel [`graphs::DenseIndex::NONE`] for
/// non-members) so query loops read an arena-aligned side table instead
/// of probing the index per entry.
pub fn resolve_entry_indices(tables: &FlatTables, index: &graphs::DenseIndex) -> Vec<u32> {
    tables
        .entries_in(0..tables.len_entries())
        .map(|e| {
            index
                .get(NodeId(e.src))
                .map_or(graphs::DenseIndex::NONE, |i| i as u32)
        })
        .collect()
}

/// Rebuilds the hash-table form of one flat row set (used by builders
/// that still merge through [`RouteTable`], and by tests).
pub fn unflatten(ft: &FlatTables) -> Vec<RouteTable> {
    (0..ft.len_nodes())
        .map(|v| {
            let v = NodeId::from_index(v);
            let mut t = RouteTable::default();
            let range = ft.row_range(v);
            for (e, level) in ft
                .entries_in(range.clone())
                .zip(ft.levels().iter_range(range))
            {
                t.insert(
                    NodeId(e.src),
                    RouteInfo {
                        est: e.est,
                        port: e.port,
                        level,
                    },
                );
            }
            t
        })
        .collect()
}

/// A partial `k × k` map keyed by `(row, col)` pairs — the flat
/// replacement for `HashMap<(usize, usize), u64>` in the truncated
/// hierarchy's upper levels.
///
/// Dense form is one `k²` value array with [`ABSENT`] sentinels (a lookup
/// is a single indexed load); CSR form stores row-sorted `(col, value)`
/// pairs (a lookup is a binary search within the row). Representation is
/// part of the value: snapshots record it, so reload → re-save is
/// byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairTable {
    /// `values[row * k + col]`, [`ABSENT`] where no entry exists.
    Dense {
        /// Side length `k`.
        k: usize,
        /// `k²` values.
        values: Vec<u64>,
    },
    /// Row-sorted compressed sparse rows.
    Csr {
        /// Side length `k`.
        k: usize,
        /// `k + 1` row offsets.
        starts: Vec<u32>,
        /// Column ids, sorted within each row.
        cols: Vec<u32>,
        /// Values, parallel to `cols`.
        vals: Vec<u64>,
    },
}

/// Above this many cells, [`PairTable::auto`] considers CSR.
const DENSE_CELL_FLOOR: usize = 1 << 12;
/// `auto` stays dense while entries fill at least 1/8 of the cells.
const DENSE_FILL_SHIFT: u32 = 3;

impl PairTable {
    /// Builds the representation [`PairTable::auto`] deems best: dense for
    /// small or well-filled tables, CSR for large sparse ones. The rule is
    /// deterministic (a pure function of `k` and the entry count), so
    /// identical builds pick identical layouts.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range keys, duplicate keys, or [`ABSENT`] values
    /// (builder bugs, not data).
    pub fn auto(k: usize, entries: &[(u32, u32, u64)]) -> Self {
        let cells = k.saturating_mul(k);
        if cells <= DENSE_CELL_FLOOR || entries.len() >= cells >> DENSE_FILL_SHIFT {
            Self::dense(k, entries)
        } else {
            Self::csr(k, entries)
        }
    }

    /// Builds the dense representation.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range keys, duplicates, or [`ABSENT`] values.
    pub fn dense(k: usize, entries: &[(u32, u32, u64)]) -> Self {
        let mut values = vec![ABSENT; k * k];
        for &(r, c, v) in entries {
            assert!(
                (r as usize) < k && (c as usize) < k,
                "pair key out of range"
            );
            assert_ne!(v, ABSENT, "ABSENT is reserved");
            let cell = &mut values[r as usize * k + c as usize];
            assert_eq!(*cell, ABSENT, "duplicate pair key ({r}, {c})");
            *cell = v;
        }
        PairTable::Dense { k, values }
    }

    /// Builds the CSR representation.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range keys, duplicates, or [`ABSENT`] values.
    pub fn csr(k: usize, entries: &[(u32, u32, u64)]) -> Self {
        let mut sorted: Vec<(u32, u32, u64)> = entries.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut starts = Vec::with_capacity(k + 1);
        let mut cols = Vec::with_capacity(sorted.len());
        let mut vals = Vec::with_capacity(sorted.len());
        starts.push(0u32);
        let mut row = 0u32;
        for (i, &(r, c, v)) in sorted.iter().enumerate() {
            assert!(
                (r as usize) < k && (c as usize) < k,
                "pair key out of range"
            );
            assert_ne!(v, ABSENT, "ABSENT is reserved");
            if i > 0 {
                assert_ne!(
                    (r, c),
                    (sorted[i - 1].0, sorted[i - 1].1),
                    "duplicate pair key"
                );
            }
            while row < r {
                starts.push(cols.len() as u32);
                row += 1;
            }
            cols.push(c);
            vals.push(v);
        }
        while starts.len() < k + 1 {
            starts.push(cols.len() as u32);
        }
        PairTable::Csr {
            k,
            starts,
            cols,
            vals,
        }
    }

    /// Side length `k`.
    pub fn k(&self) -> usize {
        match self {
            PairTable::Dense { k, .. } | PairTable::Csr { k, .. } => *k,
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        match self {
            PairTable::Dense { values, .. } => values.iter().filter(|&&v| v != ABSENT).count(),
            PairTable::Csr { cols, .. } => cols.len(),
        }
    }

    /// `true` if no entries are present.
    pub fn is_empty(&self) -> bool {
        match self {
            PairTable::Dense { values, .. } => values.iter().all(|&v| v == ABSENT),
            PairTable::Csr { cols, .. } => cols.is_empty(),
        }
    }

    /// The value at `(row, col)`, if present. Out-of-range keys are
    /// misses, matching the `HashMap` model.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<u64> {
        match self {
            PairTable::Dense { k, values } => {
                if row >= *k || col >= *k {
                    return None;
                }
                let v = values[row * k + col];
                (v != ABSENT).then_some(v)
            }
            PairTable::Csr {
                k,
                starts,
                cols,
                vals,
            } => {
                if row >= *k || col >= *k {
                    return None;
                }
                let lo = starts[row] as usize;
                let hi = starts[row + 1] as usize;
                cols[lo..hi]
                    .binary_search(&(col as u32))
                    .ok()
                    .map(|i| vals[lo + i])
            }
        }
    }

    /// Iterates present entries as `(row, col, value)`, row-major and
    /// column-sorted within each row.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u32, u32, u64)> + '_> {
        match self {
            PairTable::Dense { k, values } => {
                let k = *k;
                Box::new(
                    values
                        .iter()
                        .enumerate()
                        .filter(|&(_, &v)| v != ABSENT)
                        .map(move |(i, &v)| ((i / k) as u32, (i % k) as u32, v)),
                )
            }
            PairTable::Csr {
                starts, cols, vals, ..
            } => Box::new((0..starts.len().saturating_sub(1)).flat_map(move |row| {
                (starts[row] as usize..starts[row + 1] as usize)
                    .map(move |i| (row as u32, cols[i], vals[i]))
            })),
        }
    }

    /// Serializes the table, representation tag included.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut w = WireWriter::new(sink);
        match self {
            PairTable::Dense { k, values } => {
                w.u8(0)?;
                w.usize(*k)?;
                for &v in values {
                    w.u64(v)?;
                }
            }
            PairTable::Csr {
                k,
                starts,
                cols,
                vals,
            } => {
                w.u8(1)?;
                w.usize(*k)?;
                w.len(cols.len())?;
                for &s in &starts[1..] {
                    w.u32(s)?;
                }
                for (&c, &v) in cols.iter().zip(vals) {
                    w.u32(c)?;
                    w.u64(v)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes what [`PairTable::write_into`] wrote, validating
    /// shape (offsets monotone and bounded, columns sorted and in range).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        let mut r = WireReader::new(source);
        let tag = r.u8()?;
        let k = r.usize()?;
        if k > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("pair table claims k = {k}")));
        }
        match tag {
            0 => {
                let cells = k
                    .checked_mul(k)
                    .ok_or_else(|| invalid_data("pair table size overflow"))?;
                let mut values = Vec::with_capacity(clamped_capacity(cells));
                for _ in 0..cells {
                    values.push(r.u64()?);
                }
                Ok(PairTable::Dense { k, values })
            }
            1 => {
                let m = r.len(k.saturating_mul(k))?;
                let mut starts = Vec::with_capacity(clamped_capacity(k + 1));
                starts.push(0u32);
                for _ in 0..k {
                    let s = r.u32()?;
                    if (s as usize) > m || s < *starts.last().expect("nonempty") {
                        return Err(invalid_data("pair table offsets inconsistent"));
                    }
                    starts.push(s);
                }
                if *starts.last().expect("nonempty") as usize != m {
                    return Err(invalid_data("pair table offsets inconsistent"));
                }
                let mut cols = Vec::with_capacity(clamped_capacity(m));
                let mut vals = Vec::with_capacity(clamped_capacity(m));
                for _ in 0..m {
                    let c = r.u32()?;
                    if c as usize >= k {
                        return Err(invalid_data("pair table column out of range"));
                    }
                    cols.push(c);
                    vals.push(r.u64()?);
                }
                for row in 0..k {
                    let lo = starts[row] as usize;
                    let hi = starts[row + 1] as usize;
                    if cols[lo..hi].windows(2).any(|w| w[0] >= w[1]) {
                        return Err(invalid_data("pair table row not sorted"));
                    }
                }
                Ok(PairTable::Csr {
                    k,
                    starts,
                    cols,
                    vals,
                })
            }
            t => Err(invalid_data(format!("unknown pair table tag {t}"))),
        }
    }

    /// Emits the table into a v3 arena: a `[tag, k]` meta section, then
    /// the representation's arrays as typed sections.
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) {
        match self {
            PairTable::Dense { k, values } => {
                a.u64s(&[0, *k as u64]);
                a.u64s(values);
            }
            PairTable::Csr {
                k,
                starts,
                cols,
                vals,
            } => {
                a.u64s(&[1, *k as u64]);
                a.u32s(starts);
                a.u32s(cols);
                a.u64s(vals);
            }
        }
    }

    /// Reads what [`PairTable::write_arena`] wrote, running the same
    /// shape validation as [`PairTable::read_from`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Self> {
        let meta = c.u64s()?;
        let [tag, k] = meta[..] else {
            return Err(invalid_data("pair table meta section misshapen"));
        };
        let k = usize::try_from(k).map_err(|_| invalid_data("pair table k overflow"))?;
        if k > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("pair table claims k = {k}")));
        }
        match tag {
            0 => {
                let values = c.u64s()?;
                let cells = congest::wire::seq_product(k, k, "pair table")?;
                if values.len() != cells {
                    return Err(invalid_data("pair table cell count mismatch"));
                }
                Ok(PairTable::Dense { k, values })
            }
            1 => {
                let starts = c.u32s()?;
                let cols = c.u32s()?;
                let vals = c.u64s()?;
                if starts.len() != k + 1 || cols.len() != vals.len() {
                    return Err(invalid_data("pair table sections disagree on length"));
                }
                let m = cols.len();
                if starts[0] != 0
                    || starts.windows(2).any(|w| w[0] > w[1])
                    || *starts.last().expect("nonempty") as usize != m
                {
                    return Err(invalid_data("pair table offsets inconsistent"));
                }
                for row in 0..k {
                    let lo = starts[row] as usize;
                    let hi = starts[row + 1] as usize;
                    let r = &cols[lo..hi];
                    if r.windows(2).any(|w| w[0] >= w[1]) || r.iter().any(|&cv| cv as usize >= k) {
                        return Err(invalid_data("pair table row malformed"));
                    }
                }
                Ok(PairTable::Csr {
                    k,
                    starts,
                    cols,
                    vals,
                })
            }
            t => Err(invalid_data(format!("unknown pair table tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tables() -> Vec<RouteTable> {
        let mut t0 = RouteTable::default();
        t0.insert(
            NodeId(3),
            RouteInfo {
                est: 10,
                port: 1,
                level: 0,
            },
        );
        t0.insert(
            NodeId(1),
            RouteInfo {
                est: 7,
                port: 0,
                level: 2,
            },
        );
        vec![t0, RouteTable::default()]
    }

    #[test]
    fn flat_tables_sort_rows_and_look_up() {
        let ft = FlatTables::from_tables(&sample_tables());
        assert_eq!(ft.len_nodes(), 2);
        assert_eq!(ft.len_entries(), 2);
        let row = ft.row_vec(NodeId(0));
        assert_eq!(row[0].src, 1);
        assert_eq!(row[1].src, 3);
        assert_eq!(ft.get(NodeId(0), NodeId(3)).unwrap().est, 10);
        assert!(ft.get(NodeId(0), NodeId(2)).is_none());
        assert_eq!(ft.row_len(NodeId(1)), 0);
        assert_eq!(ft.entry(0), row[0]);
    }

    #[test]
    fn flat_tables_round_trip_byte_identically() {
        let ft = FlatTables::from_tables(&sample_tables());
        let mut buf = Vec::new();
        ft.write_into(&mut buf).unwrap();
        let back = FlatTables::read_from(&mut &buf[..]).unwrap();
        assert_eq!(ft, back);
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
        assert_eq!(unflatten(&back), sample_tables());
    }

    #[test]
    fn flat_tables_reject_unsorted_rows() {
        let ft = FlatTables::from_tables(&sample_tables());
        let mut buf = Vec::new();
        ft.write_into(&mut buf).unwrap();
        let e3 = FlatEntry {
            src: 3,
            port: 1,
            est: 10,
        };
        let e1 = FlatEntry {
            src: 1,
            port: 0,
            est: 7,
        };
        let tampered = FlatTables::from_parts(vec![0, 2, 2], vec![e3, e1], vec![0, 2]);
        let mut bad = Vec::new();
        tampered.write_into(&mut bad).unwrap();
        assert!(FlatTables::read_from(&mut &bad[..]).is_err());
        let sorted = FlatTables::from_parts(vec![0, 2, 2], vec![e1, e3], vec![2, 0]);
        let mut good = Vec::new();
        sorted.write_into(&mut good).unwrap();
        assert!(FlatTables::read_from(&mut &good[..]).is_ok());
    }

    #[test]
    fn pair_table_reps_agree() {
        let entries = &[(0u32, 2u32, 5u64), (1, 0, 9), (1, 3, 2), (3, 3, 7)];
        let d = PairTable::dense(4, entries);
        let c = PairTable::csr(4, entries);
        for row in 0..5 {
            for col in 0..5 {
                assert_eq!(d.get(row, col), c.get(row, col), "({row}, {col})");
            }
        }
        assert_eq!(d.len(), 4);
        assert_eq!(c.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn pair_table_round_trips_both_reps() {
        let entries = &[(0u32, 2u32, 5u64), (1, 0, 9), (1, 3, 2), (3, 3, 7)];
        for t in [PairTable::dense(4, entries), PairTable::csr(4, entries)] {
            let mut buf = Vec::new();
            t.write_into(&mut buf).unwrap();
            let back = PairTable::read_from(&mut &buf[..]).unwrap();
            assert_eq!(t, back);
            let mut buf2 = Vec::new();
            back.write_into(&mut buf2).unwrap();
            assert_eq!(buf, buf2);
        }
    }

    #[test]
    fn auto_picks_dense_for_small_and_csr_for_large_sparse() {
        assert!(matches!(
            PairTable::auto(4, &[(0, 0, 1)]),
            PairTable::Dense { .. }
        ));
        // 100×100 = 10_000 cells > floor, 1 entry ≪ 1/8 fill.
        assert!(matches!(
            PairTable::auto(100, &[(0, 0, 1)]),
            PairTable::Csr { .. }
        ));
        // Same size, well filled → dense.
        let filled: Vec<(u32, u32, u64)> = (0..100u32)
            .flat_map(|r| (0..20u32).map(move |c| (r, c, 1u64)))
            .collect();
        assert!(matches!(
            PairTable::auto(100, &filled),
            PairTable::Dense { .. }
        ));
    }
}
