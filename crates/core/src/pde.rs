//! `(1+ε)`-approximate `(S, h, σ)`-estimation (Theorem 3.3 / Corollary 3.5).

use crate::ladder::{run_rung, BuildMode, LadderSpec};
use crate::pipeline::BuildError;
use crate::rounding::{horizon, level_ladder};
use congest::aggregate::global_max;
use congest::bfs::build_bfs;
use congest::{FxHashMap, Metrics, NodeId, Port, Topology};
use graphs::WGraph;
use sourcedetect::{DetectionOutput, SourceSpace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parameters of a PDE run.
#[derive(Clone, Debug)]
pub struct PdeParams {
    /// Detection horizon `h` (over minimum-hop shortest weighted paths).
    pub h: u64,
    /// List size σ.
    pub sigma: usize,
    /// Approximation parameter ε.
    pub eps: f64,
    /// Optional per-node, per-level broadcast cap (Lemma 3.4: `O(σ²)`).
    pub msg_cap: Option<u64>,
    /// Run every level for its full theoretical round budget instead of
    /// stopping at quiescence (used when validating round bounds).
    pub exact_rounds: bool,
    /// Number of worker threads for the ladder rungs (the per-level
    /// detection instances are independent). `0` = use
    /// [`std::thread::available_parallelism`]; `1` = sequential. Results
    /// are byte-identical for every thread count: rungs are merged in
    /// ladder order regardless of completion order.
    pub threads: usize,
    /// Execution engine (see [`BuildMode`]): `Simulated` charges
    /// paper-faithful rounds through the CONGEST runtime, `Native` runs
    /// the centralized kernel. Artifacts (`lists`, `routes`, `levels`,
    /// `horizon`) are byte-identical across modes; only the metrics
    /// differ.
    pub mode: BuildMode,
}

impl PdeParams {
    /// Convenience constructor with no message cap, quiescence stopping
    /// and automatic rung parallelism.
    pub fn new(h: u64, sigma: usize, eps: f64) -> Self {
        PdeParams {
            h,
            sigma,
            eps,
            msg_cap: None,
            exact_rounds: false,
            threads: 0,
            mode: BuildMode::Simulated,
        }
    }

    /// Sets the worker-thread count (see [`PdeParams::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the execution engine (see [`PdeParams::mode`]).
    pub fn with_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }
}

/// One entry of a node's combined output list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdeEntry {
    /// Distance estimate `wd'(v, src)` (`≥ wd`, and `≤ (1+ε)·wd` when
    /// `h_{v,src} ≤ h`).
    pub est: u64,
    /// The source.
    pub src: NodeId,
    /// The source's tag bit (e.g. membership in a higher sample level).
    pub tag: bool,
}

/// Next-hop information for one source: the estimate, the port it arrived
/// on, and the ladder level that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteInfo {
    /// Distance estimate for this source at this node.
    pub est: u64,
    /// Port towards the neighbor that announced the estimate.
    pub port: Port,
    /// Ladder level index of the winning announcement.
    pub level: u32,
}

/// A node's routing table: source → best [`RouteInfo`].
///
/// Keyed with the deterministic [`congest::FxHasher`] — iteration order is
/// reproducible across runs and inserts are ~10× cheaper than SipHash,
/// which matters when merging millions of archive entries.
pub type RouteTable = FxHashMap<NodeId, RouteInfo>;

/// Metrics of a PDE run, broken down the way the paper's bounds are.
#[derive(Clone, Debug)]
pub struct PdeMetrics {
    /// Aggregate simulator metrics over all phases.
    pub total: Metrics,
    /// Rounds used by each ladder level's detection instance.
    pub per_level_rounds: Vec<u64>,
    /// Rounds used for global coordination (BFS tree + `w_max` aggregate):
    /// the `O(D)` term.
    pub coordination_rounds: u64,
    /// Largest per-node broadcast count in any single level (Lemma 3.4:
    /// `O(σ²)`), and summed over levels (Corollary 3.5: `O(σ²/ε · log n)`).
    pub max_broadcasts_single_level: u64,
    /// Largest total broadcast count of any node across all levels.
    pub max_broadcasts_total: u64,
}

/// Output of a PDE run.
#[derive(Debug)]
pub struct PdeOutput {
    /// Per-node combined lists: the up-to-σ smallest `(wd', src)` pairs.
    pub lists: Vec<Vec<PdeEntry>>,
    /// Per-node routing tables/archives: best `(est, port, level)` per
    /// source ever received. A superset of the list entries (needed to make
    /// greedy forwarding total; see DESIGN.md).
    pub routes: Vec<RouteTable>,
    /// The integer rung ladder used.
    pub levels: Vec<u64>,
    /// The per-level hop horizon `h'`.
    pub horizon: u64,
    /// Execution metrics.
    pub metrics: PdeMetrics,
}

impl PdeOutput {
    /// The distance estimate `wd'(v, s)`, if `v` ever heard of `s`.
    ///
    /// Guaranteed `≥ wd(v, s)`; `≤ (1+ε)·wd(v, s)` whenever `h_{v,s} ≤ h`
    /// *and* `s` survived list truncation along the way.
    pub fn estimate(&self, v: NodeId, s: NodeId) -> Option<u64> {
        if v == s {
            return Some(0);
        }
        self.routes[v.index()].get(&s).map(|r| r.est)
    }

    /// The next hop from `v` towards `s`, if known.
    ///
    /// Following next hops strictly decreases the estimate by at least the
    /// traversed edge weight per hop, so the walk terminates at `s` with
    /// total weight `≤ estimate(v, s)` (greedy-forwarding invariant,
    /// validated by tests).
    pub fn next_hop(&self, v: NodeId, s: NodeId) -> Option<Port> {
        self.routes[v.index()].get(&s).map(|r| r.port)
    }

    /// Traces the route `v → s` by greedy forwarding; returns the visited
    /// nodes and the total weight.
    ///
    /// Takes the prebuilt `topo` (e.g. `g.to_topology()`, built once and
    /// reused across queries) so a trace costs O(path length), not O(m).
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if forwarding gets stuck or fails
    /// to make strict progress (which would falsify the invariant — tests
    /// treat this as a hard failure).
    pub fn trace_route(
        &self,
        topo: &Topology,
        v: NodeId,
        s: NodeId,
    ) -> Result<(Vec<NodeId>, u64), String> {
        let mut cur = v;
        let mut path = vec![v];
        let mut weight = 0u64;
        let mut est = match self.estimate(v, s) {
            Some(e) => e,
            None => return Err(format!("no estimate for {s} at {v}")),
        };
        while cur != s {
            let r = self.routes[cur.index()]
                .get(&s)
                .ok_or_else(|| format!("routing stuck: {cur} has no entry for {s}"))?;
            let next = topo.neighbor(cur, r.port);
            let w = topo.weight(cur, r.port);
            weight += w;
            if cur != v && r.est > est.saturating_sub(1) {
                return Err(format!(
                    "no strict progress at {cur}: est {} after {est}",
                    r.est
                ));
            }
            est = r.est;
            cur = next;
            path.push(cur);
            if path.len() > topo.len() * 4 {
                return Err("route exceeded hop cap".into());
            }
        }
        Ok((path, weight))
    }
}

/// [`run_pde`] with typed input validation: a disconnected graph or an
/// out-of-range ε comes back as a [`BuildError`] instead of a panic, so
/// builders can surface the condition through `try_build` and callers
/// don't need `catch_unwind` shims around degenerate knobs.
///
/// # Errors
///
/// [`BuildError::Disconnected`] for disconnected inputs,
/// [`BuildError::InvalidParam`] for ε outside `(0, 8]`.
///
/// # Panics
///
/// Panics if the flag slices are mis-sized (a caller bug).
pub fn try_run_pde(
    g: &WGraph,
    sources: &[bool],
    tags: &[bool],
    params: &PdeParams,
) -> Result<PdeOutput, BuildError> {
    validate_pde_input(g, params.eps)?;
    Ok(run_pde(g, sources, tags, params))
}

/// The shared input checks behind every `try_` build entry point.
pub(crate) fn validate_pde_input(g: &WGraph, eps: f64) -> Result<(), BuildError> {
    if !(eps > 0.0 && eps <= 8.0) {
        return Err(BuildError::InvalidParam {
            what: "eps must be in (0, 8]",
        });
    }
    if !g.is_connected() {
        return Err(BuildError::Disconnected { nodes: g.len() });
    }
    Ok(())
}

/// Runs `(1+ε)`-approximate `(S, h, σ)`-estimation on `g`
/// (Corollary 3.5).
///
/// `sources[v]` marks membership in `S`; `tags[v]` is an auxiliary bit
/// carried with `v`'s announcements.
///
/// The run consists of: a coordination phase that determines `w_max`
/// (simulated as BFS tree + aggregate, `O(D)` rounds; computed locally in
/// [`BuildMode::Native`]), then one unweighted detection instance per
/// ladder rung (`O((h+σ)/ε)` rounds each, `O(log_{1+ε} w_max)` rungs),
/// executed by the engine `params.mode` selects (see [`crate::ladder`]).
/// The rungs are independent instances, so they execute on
/// [`PdeParams::threads`] worker threads; their outputs are merged in rung
/// order, which makes the result byte-identical to the sequential
/// execution of Theorem 3.3 — and byte-identical across build modes (the
/// round *accounting* still charges the sum over rungs in `Simulated`
/// mode, as the theorem does).
///
/// # Panics
///
/// Panics if the graph is disconnected, flag slices are mis-sized, or ε is
/// out of range. Callers that would rather get a typed error for bad
/// *inputs* (disconnected graph, out-of-range ε) should use
/// [`try_run_pde`]; mis-sized flag slices stay panics in both (a caller
/// bug, not an input condition).
pub fn run_pde(g: &WGraph, sources: &[bool], tags: &[bool], params: &PdeParams) -> PdeOutput {
    assert_eq!(sources.len(), g.len(), "one source flag per node");
    assert_eq!(tags.len(), g.len(), "one tag flag per node");
    let topo = g.to_topology();
    assert!(topo.is_connected(), "PDE requires a connected graph");

    // Coordination: learn w_max. Simulated mode pays the O(D) BFS +
    // aggregate; native mode reads the same value off the graph (the
    // aggregate of per-node maxima is exactly the global maximum).
    let mut total = Metrics::new(g.len());
    let w_max = match params.mode {
        BuildMode::Simulated => {
            let (tree, bfs_metrics) = build_bfs(&topo, NodeId(0));
            let local_max: Vec<u64> = topo
                .nodes()
                .map(|v| topo.arcs(v).map(|(_, _, w, _)| w).max().unwrap_or(1))
                .collect();
            let (w_max, agg_metrics) = global_max(&topo, &tree, &local_max);
            total.absorb(&bfs_metrics);
            total.absorb(&agg_metrics);
            w_max
        }
        BuildMode::Native => topo.max_weight().max(1),
    };
    let coordination_rounds = total.rounds;

    let spec = LadderSpec {
        levels: level_ladder(params.eps, w_max),
        horizon: horizon(params.h, params.eps),
        sigma: params.sigma,
        msg_cap: params.msg_cap,
        exact_rounds: params.exact_rounds,
    };
    let levels = spec.levels.clone();
    let h_prime = spec.horizon;
    let detect_params = spec.detect_params();
    let run_rung = |b: u64| run_rung(&topo, b, sources, tags, &detect_params, params.mode);

    // Execute the rungs — independent detection instances — on a worker
    // pool. Completion order is irrelevant: results land in per-rung slots
    // and are merged in ladder order below.
    let threads = crate::pipeline::resolve_threads(params.threads, levels.len());
    let space = SourceSpace::new(sources, tags);
    let mut merger = RungMerger::new(space, g.len(), levels.len());
    if threads == 1 {
        // Stream: run each rung, fold it into the merge tables, drop it —
        // peak memory is one rung's output, as in the sequential algorithm.
        for (li, &b) in levels.iter().enumerate() {
            merger.absorb(li, b, run_rung(b), &mut total);
        }
    } else {
        // Completion order is irrelevant: results land in per-rung slots
        // and are folded in ladder order afterwards, so the merge is
        // byte-identical to the streamed sequential path.
        let slots: Vec<Mutex<Option<DetectionOutput>>> =
            levels.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let li = next.fetch_add(1, Ordering::Relaxed);
                    if li >= levels.len() {
                        break;
                    }
                    let out = run_rung(levels[li]);
                    *slots[li].lock().expect("rung slot poisoned") = Some(out);
                });
            }
        });
        for (li, slot) in slots.into_iter().enumerate() {
            let out = slot
                .into_inner()
                .expect("rung slot poisoned")
                .expect("every rung produced an output");
            merger.absorb(li, levels[li], out, &mut total);
        }
    }
    let (lists, routes, stats) = merger.finish(params.sigma);

    PdeOutput {
        lists,
        routes,
        levels,
        horizon: h_prime,
        metrics: PdeMetrics {
            total,
            per_level_rounds: stats.per_level_rounds,
            coordination_rounds,
            max_broadcasts_single_level: stats.max_single,
            max_broadcasts_total: stats.max_total,
        },
    }
}

/// Per-rung merge statistics carried out of [`RungMerger::finish`].
struct MergeStats {
    per_level_rounds: Vec<u64>,
    max_single: u64,
    max_total: u64,
}

/// Cap on `n · |S|` for the flat dense merge tables (~16M entries,
/// a few hundred MB). Above it — e.g. `S = V` at large `n`, where the hop
/// horizon makes most `(node, source)` pairs unreachable anyway — the
/// merge falls back to per-node hash tables so memory tracks *reached*
/// pairs, not the full product.
const DENSE_MERGE_LIMIT: usize = 1 << 24;

/// Best-entry tables for one merge key: estimate + payload per
/// `(node, source)` pair, either flat (dense) or per-node maps (sparse).
/// Both keep the same tie-break: merged in ladder order, strictly smaller
/// estimates win, so the lowest level wins ties — identical outputs.
enum MergeTables<T: Copy> {
    Dense { est: Vec<u64>, val: Vec<T> },
    Sparse(Vec<FxHashMap<u32, (u64, T)>>),
}

impl<T: Copy + Default> MergeTables<T> {
    fn new(n: usize, s: usize) -> Self {
        if n.saturating_mul(s) <= DENSE_MERGE_LIMIT {
            MergeTables::Dense {
                est: vec![u64::MAX; n * s],
                val: vec![T::default(); n * s],
            }
        } else {
            MergeTables::Sparse(std::iter::repeat_with(FxHashMap::default).take(n).collect())
        }
    }

    #[inline]
    fn update(&mut self, v: usize, s: usize, si: u32, est: u64, value: T) {
        match self {
            MergeTables::Dense { est: e, val } => {
                let idx = v * s + si as usize;
                if est < e[idx] {
                    e[idx] = est;
                    val[idx] = value;
                }
            }
            MergeTables::Sparse(maps) => {
                let entry = maps[v].entry(si).or_insert((u64::MAX, value));
                if est < entry.0 {
                    *entry = (est, value);
                }
            }
        }
    }

    /// Drains node `v`'s entries as `(si, est, value)`, sorted by `si`.
    fn take_node(&mut self, v: usize, s: usize, scratch: &mut Vec<(u32, u64, T)>) {
        scratch.clear();
        match self {
            MergeTables::Dense { est, val } => {
                let base = v * s;
                for si in 0..s {
                    if est[base + si] != u64::MAX {
                        scratch.push((si as u32, est[base + si], val[base + si]));
                    }
                }
            }
            MergeTables::Sparse(maps) => {
                scratch.extend(maps[v].drain().map(|(si, (est, val))| (si, est, val)));
                scratch.sort_unstable_by_key(|&(si, _, _)| si);
            }
        }
    }
}

/// Folds rung outputs (in ladder order) into combined lists and routes.
struct RungMerger {
    space: SourceSpace,
    n: usize,
    /// Lists key: payload = tag.
    best: MergeTables<bool>,
    /// Routes key: payload = (port, level).
    route: MergeTables<(Port, u32)>,
    per_level_rounds: Vec<u64>,
    max_single: u64,
    totals_per_node: Vec<u64>,
}

impl RungMerger {
    fn new(space: SourceSpace, n: usize, num_levels: usize) -> Self {
        let s = space.len();
        RungMerger {
            space,
            n,
            best: MergeTables::new(n, s),
            route: MergeTables::new(n, s),
            per_level_rounds: Vec::with_capacity(num_levels),
            max_single: 0,
            totals_per_node: vec![0; n],
        }
    }

    /// Folds level `li` (rung value `b`) into the tables; absorbs its
    /// metrics into `total`. Must be called in ladder order.
    fn absorb(&mut self, li: usize, b: u64, out: DetectionOutput, total: &mut Metrics) {
        debug_assert_eq!(li, self.per_level_rounds.len(), "rungs merge in order");
        self.per_level_rounds.push(out.metrics.rounds);
        self.max_single = self
            .max_single
            .max(out.msgs_per_node.iter().copied().max().unwrap_or(0));
        for (t, m) in self.totals_per_node.iter_mut().zip(&out.msgs_per_node) {
            *t += m;
        }
        let s = self.space.len();
        for v in 0..self.n {
            for e in &out.lists[v] {
                let si = self
                    .space
                    .index_of(e.src)
                    .expect("list entries originate at sources");
                let est = e
                    .dist
                    .checked_mul(b)
                    .expect("estimate overflow: weights too large");
                self.best.update(v, s, si, est, e.tag);
            }
            for &(src, d, port) in &out.routes[v] {
                let si = self
                    .space
                    .index_of(src)
                    .expect("route entries originate at sources");
                let est = d.checked_mul(b).expect("estimate overflow");
                self.route.update(v, s, si, est, (port, li as u32));
            }
        }
        total.absorb(&out.metrics);
    }

    fn finish(mut self, sigma: usize) -> (Vec<Vec<PdeEntry>>, Vec<RouteTable>, MergeStats) {
        let s = self.space.len();
        let mut scratch: Vec<(u32, u64, bool)> = Vec::new();
        let mut lists = Vec::with_capacity(self.n);
        for v in 0..self.n {
            self.best.take_node(v, s, &mut scratch);
            let mut list: Vec<PdeEntry> = scratch
                .iter()
                .map(|&(si, est, tag)| PdeEntry {
                    est,
                    src: self.space.id(si),
                    tag,
                })
                .collect();
            list.sort_unstable();
            list.truncate(sigma);
            lists.push(list);
        }

        let mut scratch: Vec<(u32, u64, (Port, u32))> = Vec::new();
        let mut routes = Vec::with_capacity(self.n);
        for v in 0..self.n {
            self.route.take_node(v, s, &mut scratch);
            let mut table = RouteTable::default();
            table.reserve(scratch.len());
            for &(si, est, (port, level)) in scratch.iter() {
                table.insert(self.space.id(si), RouteInfo { est, port, level });
            }
            routes.push(table);
        }

        let stats = MergeStats {
            per_level_rounds: self.per_level_rounds,
            max_single: self.max_single,
            max_total: self.totals_per_node.iter().copied().max().unwrap_or(0),
        };
        (lists, routes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// PDE guarantees of Definition 2.2, checked against exact APSP.
    fn check_guarantees(g: &WGraph, sources: &[bool], params: &PdeParams) {
        let out = run_pde(g, sources, &vec![false; g.len()], params);
        let exact = algo::apsp(g);
        for v in g.nodes() {
            // Soundness: estimates never underestimate (exact integers).
            for e in &out.lists[v.index()] {
                assert!(
                    e.est >= exact.dist(v, e.src),
                    "underestimate at {v} for {}: {} < {}",
                    e.src,
                    e.est,
                    exact.dist(v, e.src)
                );
            }
            for (&s, r) in &out.routes[v.index()] {
                assert!(r.est >= exact.dist(v, s), "route underestimate");
            }
            // Completeness + accuracy: sources within h hops are either
            // listed with a (1+ε)-accurate value, or crowded out by σ
            // entries that are all at least as small.
            let mut in_range: Vec<(u64, NodeId)> = g
                .nodes()
                .filter(|s| sources[s.index()])
                .filter(|&s| u64::from(exact.hops(v, s)) <= params.h)
                .map(|s| (exact.dist(v, s), s))
                .collect();
            in_range.sort_unstable();
            let list = &out.lists[v.index()];
            assert!(
                list.len() >= in_range.len().min(params.sigma),
                "node {v}: list too short ({} < {})",
                list.len(),
                in_range.len().min(params.sigma)
            );
            assert!(list.windows(2).all(|w| w[0] < w[1]), "list not sorted");
            for (i, e) in list.iter().enumerate() {
                if i < in_range.len() {
                    // The i-th listed estimate is within (1+ε) of the i-th
                    // best true distance (standard prefix argument).
                    assert!(
                        e.est as f64 <= (1.0 + params.eps) * in_range[i].0 as f64 + 1e-9,
                        "node {v} entry {i}: est {} vs true {}",
                        e.est,
                        in_range[i].0
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_unit_weights() {
        // With w_max = 1 the ladder is [1] and PDE degenerates to exact
        // unweighted detection.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::gnp_connected(20, 0.15, Weights::Unit, &mut rng);
        let sources = vec![true; 20];
        let out = run_pde(&g, &sources, &[false; 20], &PdeParams::new(20, 20, 0.5));
        assert_eq!(out.levels, vec![1]);
        let exact = algo::apsp(&g);
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                assert_eq!(e.est, exact.dist(v, e.src));
            }
        }
    }

    #[test]
    fn guarantees_on_weighted_path() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gen::path(12, Weights::Uniform { lo: 1, hi: 50 }, &mut rng);
        let sources: Vec<bool> = (0..12).map(|i| i % 3 == 0).collect();
        check_guarantees(&g, &sources, &PdeParams::new(12, 4, 0.25));
    }

    #[test]
    fn guarantees_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(24, 0.12, Weights::Uniform { lo: 1, hi: 100 }, &mut rng);
            let sources: Vec<bool> = (0..24).map(|i| i % 4 == 0).collect();
            check_guarantees(&g, &sources, &PdeParams::new(10, 3, 0.5));
        }
    }

    #[test]
    fn guarantees_with_heavy_tailed_weights() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::gnp_connected(20, 0.15, Weights::PowerOfTwo { max_exp: 10 }, &mut rng);
        let sources: Vec<bool> = (0..20).map(|i| i < 5).collect();
        check_guarantees(&g, &sources, &PdeParams::new(8, 4, 0.25));
    }

    #[test]
    fn routes_reach_sources_with_bounded_weight() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::gnp_connected(20, 0.15, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
        let sources: Vec<bool> = (0..20).map(|i| i < 4).collect();
        let out = run_pde(&g, &sources, &[false; 20], &PdeParams::new(20, 4, 0.5));
        let topo = g.to_topology();
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                if e.src == v {
                    continue;
                }
                let (path, w) = out
                    .trace_route(&topo, v, e.src)
                    .unwrap_or_else(|e| panic!("route failed: {e}"));
                assert_eq!(*path.last().unwrap(), e.src);
                assert!(w <= e.est, "route weight {w} exceeds estimate {}", e.est);
            }
        }
    }

    #[test]
    fn coordination_rounds_are_charged() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::path(10, Weights::Uniform { lo: 1, hi: 5 }, &mut rng);
        let out = run_pde(&g, &[true; 10], &[false; 10], &PdeParams::new(10, 2, 0.5));
        assert!(out.metrics.coordination_rounds > 0);
        assert_eq!(
            out.metrics.total.rounds,
            out.metrics.coordination_rounds + out.metrics.per_level_rounds.iter().sum::<u64>()
        );
    }

    #[test]
    fn dense_and_sparse_merge_tables_agree() {
        // The sparse fallback only triggers past DENSE_MERGE_LIMIT, far
        // beyond test sizes — so check the two table variants directly
        // against each other under the same update stream.
        let (n, s) = (7usize, 5usize);
        let mut dense: MergeTables<(Port, u32)> = MergeTables::Dense {
            est: vec![u64::MAX; n * s],
            val: vec![Default::default(); n * s],
        };
        let mut sparse: MergeTables<(Port, u32)> =
            MergeTables::Sparse(std::iter::repeat_with(Default::default).take(n).collect());
        let updates = [
            (3usize, 2u32, 40u64, (1u32, 0u32)),
            (3, 2, 30, (2, 1)), // improves
            (3, 2, 35, (3, 2)), // worse: ignored
            (3, 4, 30, (4, 2)), // different source, same node
            (0, 0, 7, (5, 3)),
            (6, 2, 1, (6, 0)),
        ];
        for &(v, si, est, val) in &updates {
            dense.update(v, s, si, est, val);
            sparse.update(v, s, si, est, val);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in 0..n {
            dense.take_node(v, s, &mut a);
            sparse.take_node(v, s, &mut b);
            assert_eq!(a, b, "node {v}");
        }
    }

    #[test]
    fn native_mode_matches_simulated_artifacts() {
        for seed in [2u64, 13] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(26, 0.15, Weights::Uniform { lo: 1, hi: 40 }, &mut rng);
            let sources: Vec<bool> = (0..26).map(|i| i % 3 != 1).collect();
            let tags: Vec<bool> = (0..26).map(|i| i % 5 == 0).collect();
            let base = PdeParams::new(9, 4, 0.25);
            let sim = run_pde(&g, &sources, &tags, &base.clone());
            let nat = run_pde(
                &g,
                &sources,
                &tags,
                &base.clone().with_mode(BuildMode::Native),
            );
            assert_eq!(sim.lists, nat.lists, "seed {seed}");
            assert_eq!(sim.routes, nat.routes, "seed {seed}");
            assert_eq!(sim.levels, nat.levels, "seed {seed}");
            assert_eq!(sim.horizon, nat.horizon, "seed {seed}");
            assert!(sim.metrics.total.rounds > 0);
            assert_eq!(nat.metrics.total.rounds, 0, "native charges no rounds");
            assert_eq!(nat.metrics.coordination_rounds, 0);
            // Native rung parallelism keeps the same outputs.
            let nat4 = run_pde(
                &g,
                &sources,
                &tags,
                &base.with_mode(BuildMode::Native).with_threads(4),
            );
            assert_eq!(nat.lists, nat4.lists);
            assert_eq!(nat.routes, nat4.routes);
        }
    }

    #[test]
    fn thread_count_does_not_change_outputs() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = gen::gnp_connected(28, 0.15, Weights::Uniform { lo: 1, hi: 60 }, &mut rng);
        let sources: Vec<bool> = (0..28).map(|i| i % 3 == 0).collect();
        let base = PdeParams::new(9, 3, 0.25);
        let seq = run_pde(&g, &sources, &[false; 28], &base.clone().with_threads(1));
        let par = run_pde(&g, &sources, &[false; 28], &base.with_threads(4));
        assert_eq!(seq.lists, par.lists);
        assert_eq!(seq.routes, par.routes);
        assert_eq!(seq.levels, par.levels);
        assert_eq!(seq.metrics.total.rounds, par.metrics.total.rounds);
        assert_eq!(seq.metrics.total.messages, par.metrics.total.messages);
        assert_eq!(seq.metrics.per_level_rounds, par.metrics.per_level_rounds);
    }
}
