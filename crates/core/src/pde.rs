//! `(1+ε)`-approximate `(S, h, σ)`-estimation (Theorem 3.3 / Corollary 3.5).

use crate::rounding::{horizon, level_ladder, subdivision_len};
use congest::aggregate::global_max;
use congest::bfs::build_bfs;
use congest::{Metrics, NodeId, Port};
use graphs::WGraph;
use sourcedetect::{run_detection, DetectParams};
use std::collections::HashMap;

/// Parameters of a PDE run.
#[derive(Clone, Debug)]
pub struct PdeParams {
    /// Detection horizon `h` (over minimum-hop shortest weighted paths).
    pub h: u64,
    /// List size σ.
    pub sigma: usize,
    /// Approximation parameter ε.
    pub eps: f64,
    /// Optional per-node, per-level broadcast cap (Lemma 3.4: `O(σ²)`).
    pub msg_cap: Option<u64>,
    /// Run every level for its full theoretical round budget instead of
    /// stopping at quiescence (used when validating round bounds).
    pub exact_rounds: bool,
}

impl PdeParams {
    /// Convenience constructor with no message cap and quiescence stopping.
    pub fn new(h: u64, sigma: usize, eps: f64) -> Self {
        PdeParams {
            h,
            sigma,
            eps,
            msg_cap: None,
            exact_rounds: false,
        }
    }
}

/// One entry of a node's combined output list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdeEntry {
    /// Distance estimate `wd'(v, src)` (`≥ wd`, and `≤ (1+ε)·wd` when
    /// `h_{v,src} ≤ h`).
    pub est: u64,
    /// The source.
    pub src: NodeId,
    /// The source's tag bit (e.g. membership in a higher sample level).
    pub tag: bool,
}

/// Next-hop information for one source: the estimate, the port it arrived
/// on, and the ladder level that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteInfo {
    /// Distance estimate for this source at this node.
    pub est: u64,
    /// Port towards the neighbor that announced the estimate.
    pub port: Port,
    /// Ladder level index of the winning announcement.
    pub level: u32,
}

/// Metrics of a PDE run, broken down the way the paper's bounds are.
#[derive(Clone, Debug)]
pub struct PdeMetrics {
    /// Aggregate simulator metrics over all phases.
    pub total: Metrics,
    /// Rounds used by each ladder level's detection instance.
    pub per_level_rounds: Vec<u64>,
    /// Rounds used for global coordination (BFS tree + `w_max` aggregate):
    /// the `O(D)` term.
    pub coordination_rounds: u64,
    /// Largest per-node broadcast count in any single level (Lemma 3.4:
    /// `O(σ²)`), and summed over levels (Corollary 3.5: `O(σ²/ε · log n)`).
    pub max_broadcasts_single_level: u64,
    /// Largest total broadcast count of any node across all levels.
    pub max_broadcasts_total: u64,
}

/// Output of a PDE run.
#[derive(Debug)]
pub struct PdeOutput {
    /// Per-node combined lists: the up-to-σ smallest `(wd', src)` pairs.
    pub lists: Vec<Vec<PdeEntry>>,
    /// Per-node routing tables/archives: best `(est, port, level)` per
    /// source ever received. A superset of the list entries (needed to make
    /// greedy forwarding total; see DESIGN.md).
    pub routes: Vec<HashMap<NodeId, RouteInfo>>,
    /// The integer rung ladder used.
    pub levels: Vec<u64>,
    /// The per-level hop horizon `h'`.
    pub horizon: u64,
    /// Execution metrics.
    pub metrics: PdeMetrics,
}

impl PdeOutput {
    /// The distance estimate `wd'(v, s)`, if `v` ever heard of `s`.
    ///
    /// Guaranteed `≥ wd(v, s)`; `≤ (1+ε)·wd(v, s)` whenever `h_{v,s} ≤ h`
    /// *and* `s` survived list truncation along the way.
    pub fn estimate(&self, v: NodeId, s: NodeId) -> Option<u64> {
        if v == s {
            return Some(0);
        }
        self.routes[v.index()].get(&s).map(|r| r.est)
    }

    /// The next hop from `v` towards `s`, if known.
    ///
    /// Following next hops strictly decreases the estimate by at least the
    /// traversed edge weight per hop, so the walk terminates at `s` with
    /// total weight `≤ estimate(v, s)` (greedy-forwarding invariant,
    /// validated by tests).
    pub fn next_hop(&self, v: NodeId, s: NodeId) -> Option<Port> {
        self.routes[v.index()].get(&s).map(|r| r.port)
    }

    /// Traces the route `v → s` by greedy forwarding; returns the visited
    /// nodes and the total weight.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if forwarding gets stuck or fails
    /// to make strict progress (which would falsify the invariant — tests
    /// treat this as a hard failure).
    pub fn trace_route(
        &self,
        g: &WGraph,
        v: NodeId,
        s: NodeId,
    ) -> Result<(Vec<NodeId>, u64), String> {
        let topo = g.to_topology();
        let mut cur = v;
        let mut path = vec![v];
        let mut weight = 0u64;
        let mut est = match self.estimate(v, s) {
            Some(e) => e,
            None => return Err(format!("no estimate for {s} at {v}")),
        };
        while cur != s {
            let r = self.routes[cur.index()]
                .get(&s)
                .ok_or_else(|| format!("routing stuck: {cur} has no entry for {s}"))?;
            let next = topo.neighbor(cur, r.port);
            let w = topo.weight(cur, r.port);
            weight += w;
            if cur != v && r.est > est.saturating_sub(1) {
                return Err(format!(
                    "no strict progress at {cur}: est {} after {est}",
                    r.est
                ));
            }
            est = r.est;
            cur = next;
            path.push(cur);
            if path.len() > g.len() * 4 {
                return Err("route exceeded hop cap".into());
            }
        }
        Ok((path, weight))
    }
}

/// Runs `(1+ε)`-approximate `(S, h, σ)`-estimation on `g`
/// (Corollary 3.5).
///
/// `sources[v]` marks membership in `S`; `tags[v]` is an auxiliary bit
/// carried with `v`'s announcements.
///
/// The run consists of: a BFS + aggregate phase that determines `w_max`
/// (`O(D)` rounds), then one delay-simulated unweighted detection instance
/// per ladder rung (`O((h+σ)/ε)` rounds each, `O(log_{1+ε} w_max)` rungs),
/// executed sequentially as in Theorem 3.3.
///
/// # Panics
///
/// Panics if the graph is disconnected, flag slices are mis-sized, or ε is
/// out of range.
pub fn run_pde(g: &WGraph, sources: &[bool], tags: &[bool], params: &PdeParams) -> PdeOutput {
    assert_eq!(sources.len(), g.len(), "one source flag per node");
    assert_eq!(tags.len(), g.len(), "one tag flag per node");
    let topo = g.to_topology();
    assert!(topo.is_connected(), "PDE requires a connected graph");

    // O(D) coordination: build a BFS tree, learn w_max.
    let (tree, bfs_metrics) = build_bfs(&topo, NodeId(0));
    let local_max: Vec<u64> = topo
        .nodes()
        .map(|v| topo.arcs(v).map(|(_, _, w, _)| w).max().unwrap_or(1))
        .collect();
    let (w_max, agg_metrics) = global_max(&topo, &tree, &local_max);
    let mut total = Metrics::new(g.len());
    total.absorb(&bfs_metrics);
    total.absorb(&agg_metrics);
    let coordination_rounds = total.rounds;

    let levels = level_ladder(params.eps, w_max);
    let h_prime = horizon(params.h, params.eps);

    let mut best: Vec<HashMap<NodeId, (u64, bool, u32)>> = vec![HashMap::new(); g.len()];
    let mut routes: Vec<HashMap<NodeId, RouteInfo>> = vec![HashMap::new(); g.len()];
    let mut per_level_rounds = Vec::with_capacity(levels.len());
    let mut max_single = 0u64;
    let mut totals_per_node = vec![0u64; g.len()];

    for (li, &b) in levels.iter().enumerate() {
        let level_topo = topo.with_delays(|w| subdivision_len(w, b));
        let out = run_detection(
            &level_topo,
            sources,
            tags,
            &DetectParams {
                h: h_prime,
                sigma: params.sigma,
                msg_cap: params.msg_cap,
                exact_rounds: params.exact_rounds,
            },
        );
        per_level_rounds.push(out.metrics.rounds);
        max_single = max_single.max(out.msgs_per_node.iter().copied().max().unwrap_or(0));
        for (t, m) in totals_per_node.iter_mut().zip(&out.msgs_per_node) {
            *t += m;
        }
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                let est = e
                    .dist
                    .checked_mul(b)
                    .expect("estimate overflow: weights too large");
                let entry = best[v.index()]
                    .entry(e.src)
                    .or_insert((est, e.tag, li as u32));
                if est < entry.0 {
                    *entry = (est, e.tag, li as u32);
                }
            }
            for (&src, &(d, port)) in &out.routes[v.index()] {
                let est = d.checked_mul(b).expect("estimate overflow");
                let entry = routes[v.index()].entry(src).or_insert(RouteInfo {
                    est,
                    port,
                    level: li as u32,
                });
                if est < entry.est {
                    *entry = RouteInfo {
                        est,
                        port,
                        level: li as u32,
                    };
                }
            }
        }
        total.absorb(&out.metrics);
    }

    let lists: Vec<Vec<PdeEntry>> = best
        .into_iter()
        .map(|m| {
            let mut list: Vec<PdeEntry> = m
                .into_iter()
                .map(|(src, (est, tag, _))| PdeEntry { est, src, tag })
                .collect();
            list.sort_unstable();
            list.truncate(params.sigma);
            list
        })
        .collect();

    PdeOutput {
        lists,
        routes,
        levels,
        horizon: h_prime,
        metrics: PdeMetrics {
            total,
            per_level_rounds,
            coordination_rounds,
            max_broadcasts_single_level: max_single,
            max_broadcasts_total: totals_per_node.iter().copied().max().unwrap_or(0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// PDE guarantees of Definition 2.2, checked against exact APSP.
    fn check_guarantees(g: &WGraph, sources: &[bool], params: &PdeParams) {
        let out = run_pde(g, sources, &vec![false; g.len()], params);
        let exact = algo::apsp(g);
        for v in g.nodes() {
            // Soundness: estimates never underestimate (exact integers).
            for e in &out.lists[v.index()] {
                assert!(
                    e.est >= exact.dist(v, e.src),
                    "underestimate at {v} for {}: {} < {}",
                    e.src,
                    e.est,
                    exact.dist(v, e.src)
                );
            }
            for (&s, r) in &out.routes[v.index()] {
                assert!(r.est >= exact.dist(v, s), "route underestimate");
            }
            // Completeness + accuracy: sources within h hops are either
            // listed with a (1+ε)-accurate value, or crowded out by σ
            // entries that are all at least as small.
            let mut in_range: Vec<(u64, NodeId)> = g
                .nodes()
                .filter(|s| sources[s.index()])
                .filter(|&s| u64::from(exact.hops(v, s)) <= params.h)
                .map(|s| (exact.dist(v, s), s))
                .collect();
            in_range.sort_unstable();
            let list = &out.lists[v.index()];
            assert!(
                list.len() >= in_range.len().min(params.sigma),
                "node {v}: list too short ({} < {})",
                list.len(),
                in_range.len().min(params.sigma)
            );
            assert!(list.windows(2).all(|w| w[0] < w[1]), "list not sorted");
            for (i, e) in list.iter().enumerate() {
                if i < in_range.len() {
                    // The i-th listed estimate is within (1+ε) of the i-th
                    // best true distance (standard prefix argument).
                    assert!(
                        e.est as f64 <= (1.0 + params.eps) * in_range[i].0 as f64 + 1e-9,
                        "node {v} entry {i}: est {} vs true {}",
                        e.est,
                        in_range[i].0
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_unit_weights() {
        // With w_max = 1 the ladder is [1] and PDE degenerates to exact
        // unweighted detection.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::gnp_connected(20, 0.15, Weights::Unit, &mut rng);
        let sources = vec![true; 20];
        let out = run_pde(&g, &sources, &[false; 20], &PdeParams::new(20, 20, 0.5));
        assert_eq!(out.levels, vec![1]);
        let exact = algo::apsp(&g);
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                assert_eq!(e.est, exact.dist(v, e.src));
            }
        }
    }

    #[test]
    fn guarantees_on_weighted_path() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gen::path(12, Weights::Uniform { lo: 1, hi: 50 }, &mut rng);
        let sources: Vec<bool> = (0..12).map(|i| i % 3 == 0).collect();
        check_guarantees(&g, &sources, &PdeParams::new(12, 4, 0.25));
    }

    #[test]
    fn guarantees_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(24, 0.12, Weights::Uniform { lo: 1, hi: 100 }, &mut rng);
            let sources: Vec<bool> = (0..24).map(|i| i % 4 == 0).collect();
            check_guarantees(&g, &sources, &PdeParams::new(10, 3, 0.5));
        }
    }

    #[test]
    fn guarantees_with_heavy_tailed_weights() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::gnp_connected(20, 0.15, Weights::PowerOfTwo { max_exp: 10 }, &mut rng);
        let sources: Vec<bool> = (0..20).map(|i| i < 5).collect();
        check_guarantees(&g, &sources, &PdeParams::new(8, 4, 0.25));
    }

    #[test]
    fn routes_reach_sources_with_bounded_weight() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::gnp_connected(20, 0.15, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
        let sources: Vec<bool> = (0..20).map(|i| i < 4).collect();
        let out = run_pde(&g, &sources, &[false; 20], &PdeParams::new(20, 4, 0.5));
        for v in g.nodes() {
            for e in &out.lists[v.index()] {
                if e.src == v {
                    continue;
                }
                let (path, w) = out
                    .trace_route(&g, v, e.src)
                    .unwrap_or_else(|e| panic!("route failed: {e}"));
                assert_eq!(*path.last().unwrap(), e.src);
                assert!(w <= e.est, "route weight {w} exceeds estimate {}", e.est);
            }
        }
    }

    #[test]
    fn coordination_rounds_are_charged() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::path(10, Weights::Uniform { lo: 1, hi: 5 }, &mut rng);
        let out = run_pde(&g, &[true; 10], &[false; 10], &PdeParams::new(10, 2, 0.5));
        assert!(out.metrics.coordination_rounds > 0);
        assert_eq!(
            out.metrics.total.rounds,
            out.metrics.coordination_rounds + out.metrics.per_level_rounds.iter().sum::<u64>()
        );
    }
}
