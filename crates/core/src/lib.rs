//! Partial distance estimation (PDE) and `(1+ε)`-approximate APSP in the
//! CONGEST model — the core contribution of Lenzen & Patt-Shamir, *Fast
//! Partial Distance Estimation and Applications* (PODC 2015).
//!
//! # What this implements
//!
//! * **Section 3, Theorem 3.3 / Corollary 3.5** — `(1+ε)`-approximate
//!   `(S, h, σ)`-estimation: reduce the weighted problem to
//!   `O(log_{1+ε} w_max)` unweighted source-detection instances on the
//!   subdivided graphs `G_i` (simulated via arc delays), solve each with
//!   the Lenzen–Peleg algorithm, and combine the per-level lists. Runs in
//!   `O((h + σ)/ε² · log n + D)` rounds; each node broadcasts
//!   `O(σ²/ε · log n)` messages.
//! * **Section 4.1, Theorem 4.1** — deterministic `(1+ε)`-approximate APSP
//!   in `O(n/ε² · log n)` rounds, by instantiating PDE with `S = V`,
//!   `h = σ = n`.
//!
//! # Deviations from the paper (documented in DESIGN.md)
//!
//! * The real-valued rung `b(i) = (1+ε)^i` is replaced by an *integer*
//!   ladder (see [`rounding::level_ladder`]) so the estimate invariant
//!   `wd'(v,s) ≥ wd(v,s)` holds exactly in integer arithmetic. The horizon
//!   `h' ∈ O(h/ε)` absorbs the ladder's worst-case rung ratio.
//!
//! # Example
//!
//! ```
//! use graphs::{WGraph, NodeId, algo};
//! use pde_core::{run_pde, PdeParams};
//!
//! # fn main() -> Result<(), graphs::GraphError> {
//! let g = WGraph::from_edges(5, &[(0, 1, 4), (1, 2, 4), (2, 3, 4), (3, 4, 4), (0, 4, 100)])?;
//! let sources = vec![true, false, false, false, true]; // S = {0, 4}
//! let out = run_pde(&g, &sources, &[false; 5], &PdeParams::new(4, 2, 0.25));
//! // Node 2's list holds both sources with (1+ε)-approximate distances.
//! let exact = algo::apsp(&g);
//! for e in &out.lists[2] {
//!     let wd = exact.dist(NodeId(2), e.src);
//!     assert!(e.est >= wd);
//!     assert!(e.est as f64 <= 1.25 * wd as f64);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod ladder;
pub mod pde;
pub mod pipeline;
pub mod rounding;
pub mod schedule;
pub mod snapshot;
pub mod tables;

pub use apsp::{approx_apsp, approx_apsp_opts, approx_apsp_with, try_approx_apsp_opts, ApspApprox};
pub use ladder::{BuildMode, LadderSpec};
pub use pde::{
    run_pde, try_run_pde, PdeEntry, PdeMetrics, PdeOutput, PdeParams, RouteInfo, RouteTable,
};
pub use pipeline::{BuildError, StageLog, StageReport};
pub use schedule::BatchSchedule;
pub use tables::{resolve_entry_indices, FlatEntry, FlatTables, PairTable, RowCursor};
