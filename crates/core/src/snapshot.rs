//! Wire codecs for PDE state shared by every scheme snapshot.
//!
//! Route tables are serialized sorted by source id and re-inserted in that
//! order on load; together with the deterministic [`congest::FxHasher`]
//! this makes reload → re-save byte-identical.

use crate::pde::{PdeEntry, RouteInfo, RouteTable};
use congest::arena::{SharedBytes, U32View, U64View};
use congest::wire::{clamped_capacity, invalid_data, WireReader, WireWriter};
use congest::{NodeId, Topology};
use std::io::{self, Read, Write};

/// Serializes a per-node vector of route tables.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_route_tables(sink: &mut dyn Write, tables: &[RouteTable]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(tables.len())?;
    for table in tables {
        let mut entries: Vec<(NodeId, RouteInfo)> =
            table.iter().map(|(&s, &info)| (s, info)).collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        w.len(entries.len())?;
        for (src, info) in entries {
            w.u32(src.0)?;
            w.u64(info.est)?;
            w.u32(info.port)?;
            w.u32(info.level)?;
        }
    }
    Ok(())
}

/// Deserializes what [`write_route_tables`] wrote.
///
/// # Errors
///
/// Returns `InvalidData` on malformed bytes.
pub fn read_route_tables(source: &mut dyn Read) -> io::Result<Vec<RouteTable>> {
    let mut r = WireReader::new(source);
    let n = r.len64(congest::wire::MAX_SEQ_LEN)?;
    let mut tables = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        let entries = r.len64(congest::wire::MAX_SEQ_LEN)?;
        let mut table = RouteTable::default();
        table.reserve(clamped_capacity(entries));
        for _ in 0..entries {
            let src = NodeId(r.u32()?);
            let est = r.u64()?;
            let port = r.u32()?;
            let level = r.u32()?;
            table.insert(src, RouteInfo { est, port, level });
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Validates deserialized route tables against the topology they will be
/// queried on: one table per node, every source id in range, every port
/// within its node's degree.
///
/// [`congest::Topology::neighbor`] only debug-asserts its port argument,
/// so an out-of-range port from a corrupted snapshot would silently
/// resolve to a *wrong neighbor* in release builds — this check turns
/// that into `InvalidData` at load time.
///
/// # Errors
///
/// Returns `InvalidData` on any out-of-range source or port.
pub fn validate_route_tables(tables: &[RouteTable], topo: &Topology) -> io::Result<()> {
    if tables.len() != topo.len() {
        return Err(invalid_data("route table count mismatch"));
    }
    for (v, table) in tables.iter().enumerate() {
        let deg = topo.degree(NodeId::from_index(v)) as u32;
        for (&src, info) in table {
            if src.index() >= topo.len() {
                return Err(invalid_data(format!("route source {src} out of range")));
            }
            if info.port >= deg {
                return Err(invalid_data(format!(
                    "route port {} out of range at node {v} (degree {deg})",
                    info.port
                )));
            }
        }
    }
    Ok(())
}

/// Serializes per-node combined lists (`PdeOutput::lists`).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_lists(sink: &mut dyn Write, lists: &[Vec<PdeEntry>]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(lists.len())?;
    for list in lists {
        w.len(list.len())?;
        for e in list {
            w.u64(e.est)?;
            w.u32(e.src.0)?;
            w.bool(e.tag)?;
        }
    }
    Ok(())
}

/// Deserializes what [`write_lists`] wrote.
///
/// # Errors
///
/// Returns `InvalidData` on malformed bytes.
pub fn read_lists(source: &mut dyn Read) -> io::Result<Vec<Vec<PdeEntry>>> {
    let mut r = WireReader::new(source);
    let n = r.len64(congest::wire::MAX_SEQ_LEN)?;
    let mut lists = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        let len = r.len64(congest::wire::MAX_SEQ_LEN)?;
        let mut list = Vec::with_capacity(clamped_capacity(len));
        for _ in 0..len {
            let est = r.u64()?;
            let src = NodeId(r.u32()?);
            let tag = r.bool()?;
            list.push(PdeEntry { est, src, tag });
        }
        lists.push(list);
    }
    Ok(lists)
}

/// Emits per-node combined lists into a v3 arena, split SoA: row
/// offsets, estimates, sources and tags as four typed sections.
pub fn write_lists_arena(a: &mut congest::arena::ArenaWriter, lists: &[Vec<PdeEntry>]) {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut starts = Vec::with_capacity(lists.len() + 1);
    let mut ests = Vec::with_capacity(total);
    let mut srcs = Vec::with_capacity(total);
    let mut tags = Vec::with_capacity(total);
    starts.push(0u64);
    for list in lists {
        for e in list {
            ests.push(e.est);
            srcs.push(e.src.0);
            tags.push(u8::from(e.tag));
        }
        starts.push(ests.len() as u64);
    }
    a.u64s(&starts);
    a.u64s(&ests);
    a.u32s(&srcs);
    a.u8s(&tags);
}

/// Reads what [`write_lists_arena`] wrote.
///
/// # Errors
///
/// Returns `InvalidData` on malformed sections.
pub fn read_lists_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Vec<Vec<PdeEntry>>> {
    let starts = c.u64s()?;
    let ests = c.u64s()?;
    let srcs = c.u32s()?;
    let tags = c.bools()?;
    let n = starts
        .len()
        .checked_sub(1)
        .ok_or_else(|| invalid_data("list starts section empty"))?;
    let total = ests.len();
    if srcs.len() != total || tags.len() != total {
        return Err(invalid_data("list SoA sections disagree on length"));
    }
    if starts[0] != 0
        || starts.windows(2).any(|w| w[0] > w[1])
        || *starts.last().expect("nonempty") != total as u64
    {
        return Err(invalid_data("list offsets inconsistent"));
    }
    let mut lists = Vec::with_capacity(clamped_capacity(n));
    for w in starts.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        lists.push(
            (lo..hi)
                .map(|i| PdeEntry {
                    est: ests[i],
                    src: NodeId(srcs[i]),
                    tag: tags[i],
                })
                .collect(),
        );
    }
    Ok(lists)
}

/// Per-node combined lists (`PdeOutput::lists`) flattened behind
/// zero-copy views — the query-side replacement for `Vec<Vec<PdeEntry>>`
/// where the lists are hot state of a scheme (RTC's short-range lists).
/// The four arrays mirror [`write_lists_arena`]'s SoA sections (row
/// offsets, estimates, sources, tags), so a v3 load is four views and an
/// O(n) offsets check, and load → re-save is a byte passthrough.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlatLists {
    /// `starts[v]..starts[v + 1]` delimits node `v`'s list (`n + 1`
    /// offsets).
    starts: U64View,
    /// All estimates back to back.
    ests: U64View,
    /// Sources, parallel to `ests`.
    srcs: U32View,
    /// Truncation tags (one byte each, 0/1), parallel to `ests`.
    tags: SharedBytes,
}

impl FlatLists {
    /// Flattens owned per-node lists (the build-side constructor).
    pub fn from_lists(lists: &[Vec<PdeEntry>]) -> Self {
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut starts = Vec::with_capacity(lists.len() + 1);
        let mut ests = Vec::with_capacity(total);
        let mut srcs = Vec::with_capacity(total);
        let mut tags = Vec::with_capacity(total);
        starts.push(0u64);
        for list in lists {
            for e in list {
                ests.push(e.est);
                srcs.push(e.src.0);
                tags.push(u8::from(e.tag));
            }
            starts.push(ests.len() as u64);
        }
        FlatLists {
            starts: U64View::from_vals(&starts),
            ests: U64View::from_vals(&ests),
            srcs: U32View::from_vals(&srcs),
            tags: SharedBytes::from_vec(tags),
        }
    }

    /// Number of nodes covered (rows).
    pub fn len(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// `true` when no node is covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of node `v`'s list.
    #[inline]
    pub fn row_len(&self, v: NodeId) -> usize {
        (self.starts.get(v.index() + 1) - self.starts.get(v.index())) as usize
    }

    /// Iterates node `v`'s list in stored order.
    #[inline]
    pub fn iter_row(&self, v: NodeId) -> impl Iterator<Item = PdeEntry> + '_ {
        let lo = self.starts.get(v.index()) as usize;
        let hi = self.starts.get(v.index() + 1) as usize;
        let tags = &self.tags.as_slice()[lo..hi];
        self.ests
            .iter_range(lo..hi)
            .zip(self.srcs.iter_range(lo..hi))
            .zip(tags)
            .map(|((est, src), &tag)| PdeEntry {
                est,
                src: NodeId(src),
                tag: tag != 0,
            })
    }

    /// Decodes back into owned per-node lists (tests and cold paths).
    pub fn to_lists(&self) -> Vec<Vec<PdeEntry>> {
        (0..self.len())
            .map(|v| self.iter_row(NodeId::from_index(v)).collect())
            .collect()
    }

    /// Serializes with the exact [`write_lists`] v2 framing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut w = WireWriter::new(sink);
        w.len(self.len())?;
        for v in 0..self.len() {
            let v = NodeId::from_index(v);
            w.len(self.row_len(v))?;
            for e in self.iter_row(v) {
                w.u64(e.est)?;
                w.u32(e.src.0)?;
                w.bool(e.tag)?;
            }
        }
        Ok(())
    }

    /// Deserializes what [`FlatLists::write_into`] (or [`write_lists`])
    /// wrote.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes.
    pub fn read_from(source: &mut dyn Read) -> io::Result<Self> {
        Ok(FlatLists::from_lists(&read_lists(source)?))
    }

    /// Emits the lists into a v3 arena, the views' backing bytes
    /// verbatim (same four sections as [`write_lists_arena`]).
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) {
        a.section(self.starts.as_bytes());
        a.section(self.ests.as_bytes());
        a.section(self.srcs.as_bytes());
        a.section(self.tags.as_slice());
    }

    /// Reads what [`FlatLists::write_arena`] (or [`write_lists_arena`])
    /// wrote: four zero-copy views plus O(n) offset checks and a tag
    /// byte scan.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> io::Result<Self> {
        let starts = c.u64v()?;
        let ests = c.u64v()?;
        let srcs = c.u32v()?;
        let tags = c.shared()?;
        let n = starts
            .len()
            .checked_sub(1)
            .ok_or_else(|| invalid_data("list starts section empty"))?;
        let total = ests.len();
        if srcs.len() != total || tags.len() != total {
            return Err(invalid_data("list SoA sections disagree on length"));
        }
        if starts.get(0) != 0
            || (0..n).any(|v| starts.get(v) > starts.get(v + 1))
            || starts.get(n) != total as u64
        {
            return Err(invalid_data("list offsets inconsistent"));
        }
        if tags.as_slice().iter().any(|&b| b > 1) {
            return Err(invalid_data("invalid list tag byte"));
        }
        Ok(FlatLists {
            starts,
            ests,
            srcs,
            tags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_tables_round_trip_byte_identically() {
        let mut t0 = RouteTable::default();
        t0.insert(
            NodeId(3),
            RouteInfo {
                est: 10,
                port: 1,
                level: 0,
            },
        );
        t0.insert(
            NodeId(1),
            RouteInfo {
                est: 7,
                port: 0,
                level: 2,
            },
        );
        let tables = vec![t0, RouteTable::default()];
        let mut buf = Vec::new();
        write_route_tables(&mut buf, &tables).unwrap();
        let back = read_route_tables(&mut &buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].len(), 2);
        assert_eq!(back[0][&NodeId(1)].est, 7);
        assert_eq!(back[0][&NodeId(3)].port, 1);
        assert!(back[1].is_empty());
        let mut buf2 = Vec::new();
        write_route_tables(&mut buf2, &back).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn lists_round_trip() {
        let lists = vec![
            vec![
                PdeEntry {
                    est: 4,
                    src: NodeId(2),
                    tag: true,
                },
                PdeEntry {
                    est: 9,
                    src: NodeId(5),
                    tag: false,
                },
            ],
            vec![],
        ];
        let mut buf = Vec::new();
        write_lists(&mut buf, &lists).unwrap();
        let back = read_lists(&mut &buf[..]).unwrap();
        assert_eq!(back, lists);
    }

    #[test]
    fn flat_lists_round_trip_both_codecs() {
        let lists = vec![
            vec![
                PdeEntry {
                    est: 4,
                    src: NodeId(2),
                    tag: true,
                },
                PdeEntry {
                    est: 9,
                    src: NodeId(5),
                    tag: false,
                },
            ],
            vec![],
            vec![PdeEntry {
                est: 1,
                src: NodeId(0),
                tag: false,
            }],
        ];
        let fl = FlatLists::from_lists(&lists);
        assert_eq!(fl.len(), 3);
        assert_eq!(fl.row_len(NodeId(0)), 2);
        assert_eq!(fl.row_len(NodeId(1)), 0);
        assert_eq!(fl.to_lists(), lists);

        // v2 framing is byte-identical with the free functions.
        let mut a = Vec::new();
        write_lists(&mut a, &lists).unwrap();
        let mut b = Vec::new();
        fl.write_into(&mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(FlatLists::read_from(&mut &b[..]).unwrap(), fl);

        // v3 arena round trip is a byte passthrough, and the sections are
        // interchangeable with write_lists_arena's.
        let mut aw = congest::arena::ArenaWriter::new();
        fl.write_arena(&mut aw);
        let mut free = congest::arena::ArenaWriter::new();
        write_lists_arena(&mut free, &lists);
        let (mut buf, mut free_buf) = (Vec::new(), Vec::new());
        aw.finish(&mut buf).unwrap();
        free.finish(&mut free_buf).unwrap();
        assert_eq!(buf, free_buf);
        let r = congest::arena::ArenaReader::parse(SharedBytes::from_vec(buf.clone())).unwrap();
        let back = FlatLists::read_arena(&mut r.cursor()).unwrap();
        assert_eq!(back, fl);
        let mut aw2 = congest::arena::ArenaWriter::new();
        back.write_arena(&mut aw2);
        let mut buf2 = Vec::new();
        aw2.finish(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }
}
