//! Wire codecs for PDE state shared by every scheme snapshot.
//!
//! Route tables are serialized sorted by source id and re-inserted in that
//! order on load; together with the deterministic [`congest::FxHasher`]
//! this makes reload → re-save byte-identical.

use crate::pde::{PdeEntry, RouteInfo, RouteTable};
use congest::wire::{clamped_capacity, invalid_data, WireReader, WireWriter};
use congest::{NodeId, Topology};
use std::io::{self, Read, Write};

/// Serializes a per-node vector of route tables.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_route_tables(sink: &mut dyn Write, tables: &[RouteTable]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(tables.len())?;
    for table in tables {
        let mut entries: Vec<(NodeId, RouteInfo)> =
            table.iter().map(|(&s, &info)| (s, info)).collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        w.len(entries.len())?;
        for (src, info) in entries {
            w.u32(src.0)?;
            w.u64(info.est)?;
            w.u32(info.port)?;
            w.u32(info.level)?;
        }
    }
    Ok(())
}

/// Deserializes what [`write_route_tables`] wrote.
///
/// # Errors
///
/// Returns `InvalidData` on malformed bytes.
pub fn read_route_tables(source: &mut dyn Read) -> io::Result<Vec<RouteTable>> {
    let mut r = WireReader::new(source);
    let n = r.len(1 << 32)?;
    let mut tables = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        let entries = r.len(1 << 32)?;
        let mut table = RouteTable::default();
        table.reserve(clamped_capacity(entries));
        for _ in 0..entries {
            let src = NodeId(r.u32()?);
            let est = r.u64()?;
            let port = r.u32()?;
            let level = r.u32()?;
            table.insert(src, RouteInfo { est, port, level });
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Validates deserialized route tables against the topology they will be
/// queried on: one table per node, every source id in range, every port
/// within its node's degree.
///
/// [`congest::Topology::neighbor`] only debug-asserts its port argument,
/// so an out-of-range port from a corrupted snapshot would silently
/// resolve to a *wrong neighbor* in release builds — this check turns
/// that into `InvalidData` at load time.
///
/// # Errors
///
/// Returns `InvalidData` on any out-of-range source or port.
pub fn validate_route_tables(tables: &[RouteTable], topo: &Topology) -> io::Result<()> {
    if tables.len() != topo.len() {
        return Err(invalid_data("route table count mismatch"));
    }
    for (v, table) in tables.iter().enumerate() {
        let deg = topo.degree(NodeId::from_index(v)) as u32;
        for (&src, info) in table {
            if src.index() >= topo.len() {
                return Err(invalid_data(format!("route source {src} out of range")));
            }
            if info.port >= deg {
                return Err(invalid_data(format!(
                    "route port {} out of range at node {v} (degree {deg})",
                    info.port
                )));
            }
        }
    }
    Ok(())
}

/// Serializes per-node combined lists (`PdeOutput::lists`).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_lists(sink: &mut dyn Write, lists: &[Vec<PdeEntry>]) -> io::Result<()> {
    let mut w = WireWriter::new(sink);
    w.len(lists.len())?;
    for list in lists {
        w.len(list.len())?;
        for e in list {
            w.u64(e.est)?;
            w.u32(e.src.0)?;
            w.bool(e.tag)?;
        }
    }
    Ok(())
}

/// Deserializes what [`write_lists`] wrote.
///
/// # Errors
///
/// Returns `InvalidData` on malformed bytes.
pub fn read_lists(source: &mut dyn Read) -> io::Result<Vec<Vec<PdeEntry>>> {
    let mut r = WireReader::new(source);
    let n = r.len(1 << 32)?;
    let mut lists = Vec::with_capacity(clamped_capacity(n));
    for _ in 0..n {
        let len = r.len(1 << 32)?;
        let mut list = Vec::with_capacity(clamped_capacity(len));
        for _ in 0..len {
            let est = r.u64()?;
            let src = NodeId(r.u32()?);
            let tag = r.bool()?;
            list.push(PdeEntry { est, src, tag });
        }
        lists.push(list);
    }
    Ok(lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_tables_round_trip_byte_identically() {
        let mut t0 = RouteTable::default();
        t0.insert(
            NodeId(3),
            RouteInfo {
                est: 10,
                port: 1,
                level: 0,
            },
        );
        t0.insert(
            NodeId(1),
            RouteInfo {
                est: 7,
                port: 0,
                level: 2,
            },
        );
        let tables = vec![t0, RouteTable::default()];
        let mut buf = Vec::new();
        write_route_tables(&mut buf, &tables).unwrap();
        let back = read_route_tables(&mut &buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].len(), 2);
        assert_eq!(back[0][&NodeId(1)].est, 7);
        assert_eq!(back[0][&NodeId(3)].port, 1);
        assert!(back[1].is_empty());
        let mut buf2 = Vec::new();
        write_route_tables(&mut buf2, &back).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn lists_round_trip() {
        let lists = vec![
            vec![
                PdeEntry {
                    est: 4,
                    src: NodeId(2),
                    tag: true,
                },
                PdeEntry {
                    est: 9,
                    src: NodeId(5),
                    tag: false,
                },
            ],
            vec![],
        ];
        let mut buf = Vec::new();
        write_lists(&mut buf, &lists).unwrap();
        let back = read_lists(&mut &buf[..]).unwrap();
        assert_eq!(back, lists);
    }
}
