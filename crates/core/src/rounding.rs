//! The integer weight-rounding ladder (Section 3 of the paper).
//!
//! The paper rounds edge weights up to multiples of `b(i) = (1+ε)^i` and
//! solves an unweighted detection instance on each rounded graph `G_i`.
//! Lemma 3.1 shows that for every pair `(v, w)` there is a level whose
//! rounding error is within a `(1+ε)` factor *and* whose subdivided hop
//! distance is `O(h_{v,w}/ε)`.
//!
//! We use integer rungs instead of real powers so that all distance
//! estimates (`hops · b`) are exact integers and the soundness invariant
//! `wd'(v, s) ≥ wd(v, s)` cannot be broken by floating-point rounding:
//!
//! ```text
//! b_0 = 1,   b_{j+1} = max(b_j + 1, ⌊b_j · (1+ε)⌋),   while b_j ≤ w_max.
//! ```
//!
//! **Why the Lemma 3.1 analogue survives.** For a pair `(v, w)` let
//! `X = ε · wd(v,w) / h_{v,w}` and pick the largest rung `b ≤ X` (rung 1
//! always qualifies when `X ≥ 1`). Rounding every edge up to a multiple of
//! `b` adds `< b ≤ X` per hop, so `wd_b(v, w) < wd + h·X = (1+ε)·wd` —
//! identical to the paper. For the horizon: the next rung satisfies
//! `b_next ≤ max(2b, (1+ε)b + 1) ≤ 3b`, so `b > X/3`, hence the subdivided
//! hop distance is `wd_b/b ≤ (1+ε)·wd / b < 3(1+ε)·h/ε`. If instead
//! `X < 1`, then `wd < h/ε` and rung 1 gives exact distances with hop count
//! `wd < h/ε`. Either way [`horizon`]`(h, ε) = ⌈3(1+ε)·h/ε⌉ + 1` hops
//! suffice.

/// Builds the integer rung ladder for `ε` and `w_max`.
///
/// Returns rungs `1 = b_0 < b_1 < … ≤ w_max` (at least the single rung 1
/// for `w_max ≤ 1`). The ladder has `O(1/ε + log_{1+ε} w_max)` rungs.
///
/// # Panics
///
/// Panics unless `0 < ε ≤ 8` (the paper assumes `ε ∈ O(1)`; rung math is
/// validated for this range).
pub fn level_ladder(eps: f64, w_max: u64) -> Vec<u64> {
    assert!(eps > 0.0 && eps <= 8.0, "eps must be in (0, 8]");
    let mut rungs = vec![1u64];
    loop {
        let b = *rungs.last().expect("ladder is never empty");
        if b >= w_max {
            break;
        }
        let grown = (b as f64 * (1.0 + eps)).floor() as u64;
        let next = grown.max(b + 1);
        if next > w_max {
            break;
        }
        rungs.push(next);
    }
    rungs
}

/// The per-level hop horizon `h' ∈ O(h/ε)` (Corollary 3.2 analogue; see
/// the module docs for the constant).
///
/// # Panics
///
/// Panics unless `0 < ε ≤ 8` and `h ≥ 1`.
pub fn horizon(h: u64, eps: f64) -> u64 {
    assert!(eps > 0.0 && eps <= 8.0, "eps must be in (0, 8]");
    assert!(h >= 1, "horizon needs h >= 1");
    (3.0 * (1.0 + eps) * h as f64 / eps).ceil() as u64 + 1
}

/// Rounds a weight up to the next multiple of rung `b`, expressed in units
/// of `b` (i.e. the subdivision length `⌈w/b⌉ = W_i(e)/b(i)`).
#[inline]
pub fn subdivision_len(w: u64, b: u64) -> u64 {
    w.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_starts_at_one_and_is_increasing() {
        for &eps in &[0.1, 0.25, 0.5, 1.0] {
            let l = level_ladder(eps, 1000);
            assert_eq!(l[0], 1);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
            assert!(*l.last().unwrap() <= 1000);
        }
    }

    #[test]
    fn ladder_rung_ratio_bounded_by_three() {
        for &eps in &[0.05, 0.25, 0.5, 1.0, 2.0] {
            let l = level_ladder(eps, 1_000_000);
            for w in l.windows(2) {
                assert!(
                    w[1] <= w[0].max(1) * 3,
                    "ratio too large at eps={eps}: {} -> {}",
                    w[0],
                    w[1]
                );
                assert!(
                    (w[1] as f64) <= (w[0] as f64) * (1.0 + eps) + 1.0,
                    "rung growth violates (1+eps)b+1 at eps={eps}"
                );
            }
        }
    }

    #[test]
    fn ladder_size_scales_with_log_wmax_over_eps() {
        let small = level_ladder(0.5, 100).len();
        let big = level_ladder(0.5, 10_000).len();
        assert!(big > small);
        // O(1/eps + log_{1+eps} w): for eps=0.5, w=10^6 that's ~ 2 + 35.
        assert!(level_ladder(0.5, 1_000_000).len() < 60);
    }

    #[test]
    fn unit_weights_have_single_rung() {
        assert_eq!(level_ladder(0.25, 1), vec![1]);
        assert_eq!(level_ladder(0.25, 0), vec![1]);
    }

    #[test]
    fn horizon_grows_with_inverse_eps() {
        assert!(horizon(10, 0.1) > horizon(10, 0.5));
        assert!(horizon(10, 0.5) >= 10); // never below h
        assert_eq!(horizon(1, 1.0), 7);
    }

    #[test]
    fn subdivision_rounds_up() {
        assert_eq!(subdivision_len(10, 4), 3);
        assert_eq!(subdivision_len(8, 4), 2);
        assert_eq!(subdivision_len(1, 4), 1);
        assert_eq!(subdivision_len(5, 1), 5);
    }

    /// The Lemma 3.1 analogue, checked numerically over a grid of pairs:
    /// for every (wd, h) there is a rung with rounding error ≤ (1+ε)·wd
    /// and subdivided hops ≤ horizon(h, ε).
    #[test]
    fn lemma_3_1_analogue_holds() {
        for &eps in &[0.1, 0.25, 0.5] {
            let w_max = 10_000u64;
            let ladder = level_ladder(eps, w_max);
            for &h in &[1u64, 2, 5, 20, 100] {
                for &wd in &[1u64, 3, 10, 99, 1000, 9999] {
                    // wd ≤ h · w_max must hold for realizable pairs.
                    if wd > h * w_max {
                        continue;
                    }
                    let x = eps * wd as f64 / h as f64;
                    // Largest rung ≤ max(1, X).
                    let b = *ladder
                        .iter()
                        .rfind(|&&b| (b as f64) <= x.max(1.0))
                        .expect("rung 1 always qualifies");
                    // Worst-case rounded distance: wd + h·(b-1) (each of ≤ h
                    // hops rounded up by < b).
                    let rounded = wd + h * (b - 1);
                    assert!(
                        (rounded as f64) < (1.0 + eps) * wd as f64 + h as f64,
                        "rounding error too large: eps={eps} h={h} wd={wd} b={b}"
                    );
                    // Subdivided hops at this rung.
                    let hops = rounded.div_ceil(b);
                    assert!(
                        hops <= horizon(h, eps) + h,
                        "horizon too small: eps={eps} h={h} wd={wd} b={b} hops={hops} h'={}",
                        horizon(h, eps)
                    );
                }
            }
        }
    }
}
